package repro

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/expansion"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/metrics"
	"repro/internal/netsearch"
	"repro/internal/selection"
	"repro/internal/starts"
	"repro/internal/summarize"
)

// TestEndToEndPipeline drives the complete system the way a selection
// service would use it: generate corpora, index them, expose one over TCP,
// learn language models by sampling (local and remote), persist and reload
// a model, run database selection with learned models, summarize a
// database, and expand a query from the union of samples.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline is not short")
	}

	// --- Build a small federation. ---
	dbs, err := experiments.Federation(4, 250, 42)
	if err != nil {
		t.Fatal(err)
	}

	// --- Expose database 0 over TCP; sample it remotely. ---
	srv, err := netsearch.Serve(dbs[0].Index, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := netsearch.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	models := make([]*langmodel.Model, len(dbs))
	pool := expansion.NewPool()
	an := analysis.Database()
	for i, db := range dbs {
		var target core.Database = db.Index
		if i == 0 {
			target = client // remote path for one database
		}
		rec := &recording{db: target}
		cfg := core.DefaultConfig(db.Actual, 80, uint64(1000+i))
		cfg.SnapshotEvery = 0
		res, err := core.Sample(rec, cfg)
		if err != nil {
			t.Fatalf("sampling db %d: %v", i, err)
		}
		if res.Docs == 0 {
			t.Fatalf("db %d: nothing sampled", i)
		}
		models[i] = res.Learned.Normalize(db.Index.Analyzer())
		for _, text := range rec.texts {
			pool.AddDocument(an.Tokens(text))
		}

		// Learned model should be a usable approximation.
		if ctf := metrics.CtfRatio(models[i], db.Actual); ctf < 0.4 {
			t.Errorf("db %d: ctf ratio %f too low for an 80-doc sample", i, ctf)
		}
	}

	// --- Persist and reload one learned model; must round-trip. ---
	path := filepath.Join(t.TempDir(), "lm.json")
	if err := models[0].Save(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := langmodel.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded.Equal(models[0]) {
		t.Error("persisted model does not round-trip")
	}

	// --- Database selection with learned models routes topical queries. ---
	hits := 0
	for target := 0; target < len(dbs); target++ {
		pool := experiments.TopicalTerms(dbs[target], dbs, 4)
		if len(pool) < 2 {
			t.Fatalf("db %d has no topical vocabulary", target)
		}
		query := pool[:2]
		ranked := selection.Rank(selection.CORI{}, query, models)
		if ranked[0].DB == target {
			hits++
		}
	}
	if hits < 2 {
		t.Errorf("selection routed only %d/%d topical queries correctly", hits, len(dbs))
	}

	// --- Cooperative comparison: a liar distorts, sampling does not. ---
	bait := experiments.TopicalTerms(dbs[1], dbs, 3)
	liar := starts.Liar{Model: dbs[2].Actual, Bait: bait, Factor: 1000}
	lied, err := liar.Export()
	if err != nil {
		t.Fatal(err)
	}
	if lied.CTF(bait[0]) <= dbs[2].Actual.CTF(bait[0]) {
		t.Error("liar failed to inflate")
	}
	if models[2].CTF(bait[0]) > 0 {
		t.Error("sampled model contains the lie (it should not: bait is topical to db 1)")
	}

	// --- Summaries and expansion from the union of samples. ---
	rows := summarize.Top(models[0], langmodel.ByAvgTF, 10, analysis.InqueryStoplist())
	if len(rows) == 0 {
		t.Error("summary empty")
	}
	if pool.Docs() < 100 {
		t.Errorf("union of samples has only %d docs", pool.Docs())
	}
}

// recording wraps a database and keeps fetched document text.
type recording struct {
	db    core.Database
	texts []string
}

func (r *recording) Search(q string, n int) ([]int, error) { return r.db.Search(q, n) }

func (r *recording) Fetch(id int) (corpus.Document, error) {
	d, err := r.db.Fetch(id)
	if err == nil {
		r.texts = append(r.texts, d.Text)
	}
	return d, err
}

// TestDeterminismAcrossPipeline guards the repo-wide invariant: identical
// seeds produce identical learned models through the whole stack,
// including the TCP path.
func TestDeterminismAcrossPipeline(t *testing.T) {
	p := corpus.Scaled(corpus.CACM(), 0.1)
	docs := p.MustGenerate()
	ix := index.Build(docs, analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()

	run := func() *langmodel.Model {
		srv, err := netsearch.Serve(ix, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := netsearch.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := core.Sample(c, core.DefaultConfig(actual, 60, 9))
		if err != nil {
			t.Fatal(err)
		}
		return res.Learned
	}
	if !run().Equal(run()) {
		t.Error("identical seeds produced different models over TCP")
	}
}
