// Benchmarks that regenerate every table and figure of the paper, plus
// the extension and ablation experiments of DESIGN.md. Each benchmark
// times one full experiment at REPRO_BENCH_SCALE of the paper corpus
// sizes (default 0.1; use 1 to run paper-size collections) and reports
// the experiment's headline number as a custom metric.
//
// Run them with:
//
//	go test -bench=. -benchmem
//	REPRO_BENCH_SCALE=1 go test -bench=Table1 -benchtime=1x
package repro

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/langmodel"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/selection"
	"repro/internal/service"
	"repro/internal/store"
)

var (
	benchOnce sync.Once
	benchBase *experiments.Suite
)

// benchSuite prepares (once) the corpora at the benchmark scale; each
// benchmark gets a fresh Suite sharing those corpora so iterations time
// the experiment, not corpus generation.
func benchSuite(b *testing.B, i int) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		scale := 0.1
		if env := os.Getenv("REPRO_BENCH_SCALE"); env != "" {
			if f, err := strconv.ParseFloat(env, 64); err == nil && f > 0 {
				scale = f
			}
		}
		benchBase = experiments.NewSuite(scale, 1)
		// Pre-build the three corpora outside any timer.
		for _, name := range experiments.Corpora() {
			if _, err := benchBase.Env(name); err != nil {
				panic(err)
			}
		}
		if _, err := benchBase.Env("Support"); err != nil {
			panic(err)
		}
	})
	return benchBase.WithSharedEnvs(uint64(i + 1))
}

// BenchmarkTable1Corpora regenerates Table 1 (corpus characteristics).
func BenchmarkTable1Corpora(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, i)
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[len(rows)-1].Docs), "trec-docs")
		}
	}
}

// benchBaselines runs the three baseline sampling runs and returns them.
func benchBaselines(b *testing.B, s *experiments.Suite) []*experiments.BaselineRun {
	b.Helper()
	runs := make([]*experiments.BaselineRun, 0, 3)
	for _, name := range experiments.Corpora() {
		run, err := s.Baseline(name)
		if err != nil {
			b.Fatal(err)
		}
		runs = append(runs, run)
	}
	return runs
}

// BenchmarkFigure1aPercentLearned regenerates the Figure 1a curves.
func BenchmarkFigure1aPercentLearned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := benchBaselines(b, benchSuite(b, i))
		if i == 0 {
			last := runs[0].Points[len(runs[0].Points)-1]
			b.ReportMetric(last.PctLearned, "cacm-pct-learned")
		}
	}
}

// BenchmarkFigure1bCtfRatio regenerates the Figure 1b curves.
func BenchmarkFigure1bCtfRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := benchBaselines(b, benchSuite(b, i))
		if i == 0 {
			for _, r := range runs {
				last := r.Points[len(r.Points)-1]
				b.ReportMetric(last.CtfRatio, r.Corpus+"-ctf-ratio")
			}
		}
	}
}

// BenchmarkFigure2Spearman regenerates the Figure 2 curves.
func BenchmarkFigure2Spearman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := benchBaselines(b, benchSuite(b, i))
		if i == 0 {
			for _, r := range runs {
				last := r.Points[len(r.Points)-1]
				b.ReportMetric(last.SpearmanSimple, r.Corpus+"-spearman")
			}
		}
	}
}

// BenchmarkTable2DocsPerQuery regenerates Table 2 (documents-per-query
// sweep to an 80% ctf ratio) across all three corpora.
func BenchmarkTable2DocsPerQuery(b *testing.B) {
	ns := []int{1, 2, 4, 6, 8, 10}
	for i := 0; i < b.N; i++ {
		s := benchSuite(b, i)
		for _, name := range experiments.Corpora() {
			rows, err := s.Table2(name, ns)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && name == "CACM" {
				for _, r := range rows {
					if r.N == 4 {
						b.ReportMetric(float64(r.Docs), "cacm-n4-docs-to-80pct")
					}
				}
			}
		}
	}
}

// BenchmarkFigure3aStrategiesCtf regenerates Figure 3a (ctf ratio by
// query-selection strategy on WSJ88).
func BenchmarkFigure3aStrategiesCtf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := benchSuite(b, i).Strategies("WSJ88")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range runs {
				last := r.Points[len(r.Points)-1]
				b.ReportMetric(last.CtfRatio, r.Strategy+"-ctf")
			}
		}
	}
}

// BenchmarkFigure3bStrategiesSpearman regenerates Figure 3b.
func BenchmarkFigure3bStrategiesSpearman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := benchSuite(b, i).Strategies("WSJ88")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range runs {
				last := r.Points[len(r.Points)-1]
				b.ReportMetric(last.SpearmanSimple, r.Strategy+"-spearman")
			}
		}
	}
}

// BenchmarkTable3QueryCounts regenerates Table 3 (queries needed per
// strategy to reach the document budget).
func BenchmarkTable3QueryCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := benchSuite(b, i).Strategies("WSJ88")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range runs {
				b.ReportMetric(float64(r.Queries), r.Strategy+"-queries")
			}
		}
	}
}

// BenchmarkFigure4Rdiff regenerates Figure 4 (rdiff between 50-document
// model snapshots).
func BenchmarkFigure4Rdiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := benchBaselines(b, benchSuite(b, i))
		if i == 0 {
			for _, r := range runs {
				if len(r.Rdiff) > 0 {
					b.ReportMetric(r.Rdiff[len(r.Rdiff)-1].Rdiff, r.Corpus+"-final-rdiff")
				}
			}
		}
	}
}

// BenchmarkTable4Summary regenerates Table 4 (top avg-tf terms of the
// sampled Support database).
func BenchmarkTable4Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchSuite(b, i).Table4(50)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.SeededFound), "seeded-terms-in-top50")
		}
	}
}

// BenchmarkExtSelectionAgreement runs the selection-fidelity extension.
func BenchmarkExtSelectionAgreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.SelectionAgreement(8, 400, []int{50, 150}, 16, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				last := r.Points[len(r.Points)-1]
				b.ReportMetric(last.Top3Overlap, r.Algorithm+"-top3-overlap")
			}
		}
	}
}

// BenchmarkExtAdversarial runs the misrepresentation extension.
func BenchmarkExtAdversarial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Adversarial(6, 400, 120, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.LiarRankCooperative), "liar-rank-cooperative")
			b.ReportMetric(float64(res.LiarRankSampled), "liar-rank-sampled")
		}
	}
}

// BenchmarkExtSizeEstimation runs the database-size estimation extension
// (the open problem of §3, solved with capture-recapture and
// sample-resample).
func BenchmarkExtSizeEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchSuite(b, i).SizeEstimation(150)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.CaptureRecaptureErr, r.Corpus+"-cr-relerr")
			}
		}
	}
}

// BenchmarkExtPhrase runs the unigram-vs-bigram convergence extension.
func BenchmarkExtPhrase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := benchSuite(b, i).PhraseConvergence("WSJ88")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(points) > 0 {
			last := points[len(points)-1]
			b.ReportMetric(last.UnigramCtf, "unigram-ctf")
			b.ReportMetric(last.BigramCtf, "bigram-ctf")
		}
	}
}

// BenchmarkExtStoppingRule runs the rdiff stopping-rule extension.
func BenchmarkExtStoppingRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchSuite(b, i).StoppingRule(0.005)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Docs), r.Corpus+"-stop-docs")
			}
		}
	}
}

// BenchmarkExtSeedVariance runs the seed-robustness extension.
func BenchmarkExtSeedVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := benchSuite(b, i).SeedVariance("CACM", 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(row.CtfStd, "ctf-std")
		}
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblationScoring compares learned-model accuracy when the
// *database* ranks with BM25 instead of the INQUERY belief function: the
// sampler must be robust to the database's retrieval model, which it
// cannot observe.
func BenchmarkAblationScoring(b *testing.B) {
	docs := corpus.Scaled(corpus.WSJ88(), 0.1).MustGenerate()
	for _, scoring := range []index.Scoring{index.InQuery, index.BM25} {
		b.Run(scoring.String(), func(b *testing.B) {
			ix := index.Build(docs, analysis.Database(), scoring)
			actual := ix.LanguageModel()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(actual, 300, uint64(i+1))
				cfg.SnapshotEvery = 0
				res, err := core.Sample(ix, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					norm := res.Learned.Normalize(ix.Analyzer())
					b.ReportMetric(metrics.CtfRatio(norm, actual), "ctf-ratio")
					b.ReportMetric(metrics.Spearman(norm, actual, langmodel.ByDF), "spearman")
				}
			}
		})
	}
}

// BenchmarkAblationLearnedAnalyzer compares building the learned model
// raw (the paper's §4.1 protocol) against stemming+stopping at sampling
// time: the end-state accuracy is equivalent, which is why the paper can
// defer normalization to comparison time.
func BenchmarkAblationLearnedAnalyzer(b *testing.B) {
	docs := corpus.Scaled(corpus.WSJ88(), 0.1).MustGenerate()
	ix := index.Build(docs, analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()
	for _, mode := range []struct {
		name string
		an   analysis.Analyzer
	}{
		{"raw", analysis.Raw()},
		{"stop+stem", analysis.Database()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(actual, 300, uint64(i+1))
				cfg.Analyzer = mode.an
				cfg.SnapshotEvery = 0
				res, err := core.Sample(ix, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					norm := res.Learned.Normalize(ix.Analyzer())
					b.ReportMetric(metrics.CtfRatio(norm, actual), "ctf-ratio")
				}
			}
		})
	}
}

// BenchmarkSamplerThroughput measures raw sampling speed — documents and
// queries per second against an in-process database, the substrate cost
// floor. The snapshotted sub-run keeps the paper's 50-document metric
// grid, so it prices the copy-on-write Snapshot path too.
func BenchmarkSamplerThroughput(b *testing.B) {
	docs := corpus.Scaled(corpus.WSJ88(), 0.1).MustGenerate()
	ix := index.Build(docs, analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()
	for _, every := range []int{0, 50} {
		name := "snapshots=off"
		if every > 0 {
			name = "snapshots=" + strconv.Itoa(every)
		}
		b.Run(name, func(b *testing.B) {
			totalDocs, totalQueries := 0, 0
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(actual, 200, uint64(i+1))
				cfg.SnapshotEvery = every
				res, err := core.Sample(ix, cfg)
				if err != nil {
					b.Fatal(err)
				}
				totalDocs += res.Docs
				totalQueries += res.Queries
			}
			b.ReportMetric(float64(totalDocs)/b.Elapsed().Seconds(), "docs/s")
			b.ReportMetric(float64(totalQueries)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkSamplerThroughputParallel runs concurrent sampling runs against
// independent prebuilt databases — the worker-pool workload Baselines and
// the strategy matrix fan out, without the experiment bookkeeping. Scale
// GOMAXPROCS (or -cpu) to see how sampling throughput tracks cores.
func BenchmarkSamplerThroughputParallel(b *testing.B) {
	profiles := []corpus.Profile{
		corpus.Scaled(corpus.CACM(), 0.3),
		corpus.Scaled(corpus.WSJ88(), 0.1),
		corpus.Scaled(corpus.TREC123(), 0.02),
	}
	type db struct {
		ix     *index.Index
		actual *langmodel.Model
	}
	dbs := make([]db, len(profiles))
	for i, p := range profiles {
		ix := index.Build(p.MustGenerate(), analysis.Database(), index.InQuery)
		dbs[i] = db{ix: ix, actual: ix.LanguageModel()}
	}
	var iter, docsDone int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&iter, 1)
			d := dbs[int(i)%len(dbs)]
			cfg := core.DefaultConfig(d.actual, 200, uint64(i))
			cfg.SnapshotEvery = 0
			res, err := core.Sample(d.ix, cfg)
			if err != nil {
				b.Fatal(err)
			}
			atomic.AddInt64(&docsDone, int64(res.Docs))
		}
	})
	b.ReportMetric(float64(atomic.LoadInt64(&docsDone))/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkSuiteBaselines times the full three-corpus baseline sweep
// sequentially and on a 4-worker pool — the headline suite-level speedup
// of the parallel experiment engine. Both arms produce identical results
// (TestBaselinesParallelGolden); only wall clock differs, and only when
// the machine has cores to spare.
func BenchmarkSuiteBaselines(b *testing.B) {
	benchSuite(b, 0) // warm the shared corpora outside the sub-benchmark timers
	for _, workers := range []int{1, 4} {
		b.Run("parallel="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := benchSuite(b, i)
				s.Parallel = workers
				runs, err := s.Baselines()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					var docs float64
					for _, run := range runs {
						docs += float64(run.Docs)
					}
					b.ReportMetric(docs/b.Elapsed().Seconds(), "docs/s")
				}
			}
		})
	}
}

// BenchmarkExtFederated runs the end-to-end federated retrieval
// experiment: centralized vs select-and-merge with actual, sampled, and
// random database selection.
func BenchmarkExtFederated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.FederatedRetrieval(6, 300, 100, 12, 3, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PrecisionCentral, "p10-central")
			b.ReportMetric(res.PrecisionSampled, "p10-sampled")
			b.ReportMetric(res.PrecisionRandom, "p10-random")
		}
	}
}

// BenchmarkAblationPruning measures what dropping the df=1 tail of learned
// models costs: model size shrinks by roughly half (half of a text
// vocabulary occurs once, §4.3.1) while ctf coverage barely moves — the
// practical deployment trade for a service indexing many databases.
func BenchmarkAblationPruning(b *testing.B) {
	docs := corpus.Scaled(corpus.WSJ88(), 0.1).MustGenerate()
	ix := index.Build(docs, analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()
	cfg := core.DefaultConfig(actual, 300, 1)
	cfg.SnapshotEvery = 0
	res, err := core.Sample(ix, cfg)
	if err != nil {
		b.Fatal(err)
	}
	learned := res.Learned.Normalize(ix.Analyzer())
	for _, minDF := range []int{1, 2, 3} {
		b.Run("minDF="+strconv.Itoa(minDF), func(b *testing.B) {
			var pruned *langmodel.Model
			for i := 0; i < b.N; i++ {
				pruned = learned.Prune(minDF)
			}
			b.ReportMetric(float64(pruned.VocabSize()), "terms")
			b.ReportMetric(metrics.CtfRatio(pruned, actual), "ctf-ratio")
			b.ReportMetric(metrics.SpearmanSimple(pruned, actual, langmodel.ByDF), "spearman")
		})
	}
}

// --- Serving-path benchmarks (compiled selection snapshots) ---

// rankBenchModels builds n synthetic database models over a shared word
// pool, the shape of a production selection service's model set.
func rankBenchModels(n int) ([]*langmodel.Model, []string) {
	const pool = 8000
	words := make([]string, pool)
	for i := range words {
		words[i] = fmt.Sprintf("w%04d", i)
	}
	src := randx.New(0xbe7c)
	models := make([]*langmodel.Model, n)
	for i := range models {
		m := langmodel.New()
		m.SetDocs(500 + src.Intn(5000))
		terms := 1000 + src.Intn(2000)
		for _, j := range src.Perm(pool)[:terms] {
			df := 1 + src.Intn(400)
			m.AddTerm(words[j], langmodel.TermStats{DF: df, CTF: int64(df * (1 + src.Intn(4)))})
		}
		models[i] = m
	}
	return models, words
}

// BenchmarkRank100DBs prices one ranked selection query against 100
// databases, the serving hot path: the map-based scorers (one hash lookup
// per term per model) versus the compiled snapshot (interned ids, CSR
// postings, pooled buffers). The compiled arm is the ns/op recorded as the
// serving-path regression gate.
func BenchmarkRank100DBs(b *testing.B) {
	models, words := rankBenchModels(100)
	queries := make([][]string, 16)
	src := randx.New(0x9a3e)
	for i := range queries {
		q := make([]string, 4)
		for j := range q {
			q[j] = words[src.Intn(len(words))]
		}
		queries[i] = q
	}
	algs := []struct {
		name string
		alg  selection.Algorithm
	}{
		{"alg=cori", selection.CORI{}},
		{"alg=gloss-sum", selection.Gloss{Estimator: selection.GlossSum}},
	}
	for _, a := range algs {
		b.Run(a.name+"/path=map", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ranked := selection.Rank(a.alg, queries[i%len(queries)], models)
				if len(ranked) != len(models) {
					b.Fatal("short ranking")
				}
			}
		})
		b.Run(a.name+"/path=compiled", func(b *testing.B) {
			c := selection.Compile(models)
			ids := make([]int32, 0, 8)
			scores := make([]float64, c.NumDBs())
			out := make([]selection.Ranked, 0, c.NumDBs())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids = c.AppendIDs(ids[:0], queries[i%len(queries)])
				var ok bool
				out, ok = c.RankInto(a.alg, ids, scores, out[:0])
				if !ok || len(out) != len(models) {
					b.Fatal("short ranking")
				}
			}
		})
	}
}

// BenchmarkSnapshotLoad prices a warm start: loading, verifying, and
// decoding the persisted compiled snapshot of a 100-database federation —
// the work a restarted service does instead of recompiling every model.
// The mmap arm is the production path (numeric sections sliced in place);
// the heap arm is the portable fallback. Sub-millisecond per op is the
// design target.
func BenchmarkSnapshotLoad(b *testing.B) {
	models, _ := rankBenchModels(100)
	names := make([]string, len(models))
	fps := make([]uint64, len(models))
	for i, m := range models {
		names[i] = fmt.Sprintf("db%03d", i)
		fps[i] = m.Fingerprint()
	}
	snap := &selection.Snapshot{
		Epoch:        1,
		Names:        names,
		Fingerprints: fps,
		Compiled:     selection.Compile(models),
	}
	for _, arm := range []struct {
		name        string
		disableMmap bool
	}{{"path=mmap", false}, {"path=heap", true}} {
		b.Run(arm.name, func(b *testing.B) {
			ss, err := store.OpenSnapshots(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			ss.DisableMmap = arm.disableMmap
			size, err := ss.Save(snap)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loaded, _, err := ss.Load()
				if err != nil {
					b.Fatal(err)
				}
				if loaded.Compiled.NumDBs() != len(models) {
					b.Fatal("short snapshot")
				}
			}
		})
	}
}

// BenchmarkIncrementalRecompile prices rebuilding the compiled snapshot
// after one database of a 100-database federation is resampled: the
// incremental path (Patch splices the changed rows and bulk-copies the
// rest) against the full recompile it replaces. The patch arm's cost
// tracks the changed model's vocabulary, not the federation.
func BenchmarkIncrementalRecompile(b *testing.B) {
	models, _ := rankBenchModels(100)
	base := selection.Compile(models)
	replacement, _ := rankBenchModels(1)
	patches := []selection.ModelPatch{{DB: 42, Old: models[42], New: replacement[0]}}
	b.Run("path=patch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := base.Patch(patches); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("path=full", func(b *testing.B) {
		next := append([]*langmodel.Model(nil), models...)
		next[42] = replacement[0]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if c := selection.Compile(next); c.NumDBs() != len(models) {
				b.Fatal("short compile")
			}
		}
	})
}

// BenchmarkRepolintFullRepo prices the lint gate itself: loading,
// type-checking, and running all nine analyzers (CFG construction,
// dataflow fixpoints, call-graph reachability included) over every
// package in the module — the wall time `make lint` adds to CI. One op
// is one cold end-to-end run; load+check dominates, so this also guards
// the stdlib loader against accidental quadratic re-parsing.
func BenchmarkRepolintFullRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := lint.Run(pkgs, lint.All())
		if err != nil {
			b.Fatal(err)
		}
		if findings := lint.Unsuppressed(diags); len(findings) > 0 {
			b.Fatalf("repo must lint clean during the benchmark, got %d finding(s); first: %s",
				len(findings), findings[0])
		}
		if i == 0 {
			b.ReportMetric(float64(len(pkgs)), "packages")
			b.ReportMetric(float64(len(diags)), "suppressed")
		}
	}
}

// BenchmarkTokenizeASCII prices the zero-allocation tokenizer fast path:
// lower-case ASCII text into a recycled token slice.
func BenchmarkTokenizeASCII(b *testing.B) {
	text := ""
	for i := 0; i < 20; i++ {
		text += "the quick brown fox jumps over the lazy dog near the riverbank today "
	}
	dst := make([]string, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = analysis.AppendTokens(dst[:0], text)
		if len(dst) == 0 {
			b.Fatal("no tokens")
		}
	}
}

// BenchmarkScatterGather prices one federated rank query through the
// cluster front tier: scatter to 4 in-process shards over loopback TCP,
// gather the partial rankings, and fuse them into one top-k.
// BenchmarkRank100DBs is the single-process floor for the same model
// set; the delta is the fabric-plus-fusion tax of going sharded.
func BenchmarkScatterGather(b *testing.B) {
	const nDBs, nShards = 100, 4
	models, words := rankBenchModels(nDBs)
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, nDBs)
	for i, m := range models {
		names[i] = fmt.Sprintf("db-%03d", i)
		if err := st.Put(names[i], m); err != nil {
			b.Fatal(err)
		}
	}
	// Each shard registers its ring-assigned share of the databases and
	// loads their models from the shared store — the warm-start path, so
	// no sampling runs inside the benchmark.
	ring := cluster.NewRing(nShards, 0, 0)
	addrs := make([][]string, nShards)
	for s := 0; s < nShards; s++ {
		svc := service.New(analysis.Database(), st)
		defer svc.Close()
		srv, err := cluster.ServeShard(svc, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		addrs[s] = []string{srv.Addr()}
		for _, name := range names {
			if ring.Owner(name) != s {
				continue
			}
			if err := svc.Register(name, "bench.invalid:0"); err != nil {
				b.Fatal(err)
			}
		}
	}
	front, err := cluster.NewFront(addrs, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer front.Close()

	queries := make([]string, 16)
	src := randx.New(0x9a3e)
	for i := range queries {
		q := make([]string, 4)
		for j := range q {
			q[j] = words[src.Intn(len(words))]
		}
		queries[i] = strings.Join(q, " ")
	}
	// One warm query dials every shard and compiles their snapshots.
	if _, err := front.Rank(queries[0], "cori", 10, ""); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked, err := front.Rank(queries[i%len(queries)], "cori", 10, "")
		if err != nil {
			b.Fatal(err)
		}
		if len(ranked) != 10 {
			b.Fatal("short ranking")
		}
	}
}

// BenchmarkBatchRank prices the batch rank API against the N sequential
// ranks it replaces, on a warm 100-database service. The batch arm pays
// for algorithm parsing, snapshot acquisition, and scratch checkout once
// per 32 queries instead of once per query; both arms rank the same 32
// queries per op, so ns/op is directly comparable. The rank cache is off
// in both arms — the batch path bypasses it by design, and a cached
// sequential arm would price a map lookup, not a ranking.
func BenchmarkBatchRank(b *testing.B) {
	const nQueries = 32
	models, words := rankBenchModels(100)
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	for i, m := range models {
		if err := st.Put(fmt.Sprintf("db-%03d", i), m); err != nil {
			b.Fatal(err)
		}
	}
	svc := service.New(analysis.Database(), st)
	defer svc.Close()
	svc.SetRankCacheSize(0)
	for i := range models {
		if err := svc.Register(fmt.Sprintf("db-%03d", i), "bench.invalid:0"); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([]string, nQueries)
	src := randx.New(0x9a3e)
	for i := range queries {
		q := make([]string, 4)
		for j := range q {
			q[j] = words[src.Intn(len(words))]
		}
		queries[i] = strings.Join(q, " ")
	}
	// One warm query compiles the snapshot outside the timed region.
	if _, err := svc.Rank(queries[0], "cori", 10); err != nil {
		b.Fatal(err)
	}
	b.Run("path=sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				ranked, err := svc.Rank(q, "cori", 10)
				if err != nil {
					b.Fatal(err)
				}
				if len(ranked) != 10 {
					b.Fatal("short ranking")
				}
			}
		}
	})
	b.Run("path=batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			items, err := svc.RankBatch(queries, "cori", 10)
			if err != nil {
				b.Fatal(err)
			}
			if len(items) != nQueries {
				b.Fatal("short batch")
			}
			for _, it := range items {
				if it.Error != "" || len(it.Ranked) != 10 {
					b.Fatal("bad batch item")
				}
			}
		}
	})
}

// BenchmarkSearchScored prices the index's dense-accumulator ranked search
// on both topN regimes: selecting a few of many (the sampler's n=4) and a
// full ranking (n >= all hits), which must not regress now that topN is
// the only sort site.
func BenchmarkSearchScored(b *testing.B) {
	docs := corpus.Scaled(corpus.CACM(), 0.5).MustGenerate()
	ix := index.Build(docs, analysis.Database(), index.InQuery)
	query := "system data language program time"
	for _, arm := range []struct {
		name string
		n    int
	}{
		{"n=4", 4},
		{"n=all", ix.NumDocs()},
	} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hits, err := ix.SearchScored(query, arm.n)
				if err != nil {
					b.Fatal(err)
				}
				if len(hits) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}
