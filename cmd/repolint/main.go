// Command repolint runs this repository's determinism and concurrency
// invariant checks (internal/lint) over one or more packages and exits
// non-zero on unsuppressed findings. It is the machine form of the
// review rules that keep experiment output bit-reproducible: all
// randomness through internal/randx, no wall-clock reads on
// golden-output paths, no map-iteration order leaking into results,
// all fan-out through internal/parallel, no locks copied by value.
//
// Usage:
//
//	repolint [flags] [patterns]
//
// Patterns follow go-tool conventions relative to the module root:
// "./..." (default), "./internal/...", or "./cmd/repolint". Flags:
//
//	-C dir        module root to lint (default: ".", must contain go.mod)
//	-json         emit diagnostics as a JSON array instead of text
//	-sarif path   also write a SARIF 2.1.0 log to path ("-" for stdout)
//	-list         list registered analyzers and exit
//	-show-ignored also print suppressed findings (marked "ignored:")
//	-disable a,b  comma-separated analyzer names to skip
//
// Suppress a single finding at its line with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Findings go
// to stdout; usage, load, and type errors go to stderr, so a CI step can
// separate "the code is dirty" from "the linter could not run".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("C", ".", "module root directory (must contain go.mod)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	sarifPath := fs.String("sarif", "", "also write a SARIF 2.1.0 log to this path (\"-\" for stdout)")
	list := fs.Bool("list", false, "list analyzers and exit")
	showIgnored := fs.Bool("show-ignored", false, "also print suppressed findings")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(*disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := lint.ByName(name); !ok {
				fmt.Fprintf(stderr, "repolint: unknown analyzer %q\n", name)
				return 2
			}
			skip[name] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	loadOK := true
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "repolint: %s: type error: %v\n", pkg.PkgPath, terr)
			loadOK = false
		}
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}

	findings := lint.Unsuppressed(diags)

	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, diags, analyzers, loader.Root, stdout); err != nil {
			fmt.Fprintf(stderr, "repolint: %v\n", err)
			return 2
		}
	}

	shown := findings
	if *showIgnored {
		shown = diags
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []lint.Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintf(stderr, "repolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range shown {
			if d.Suppressed {
				fmt.Fprintf(stdout, "ignored: %s [%s]\n", d, d.SuppressReason)
			} else {
				fmt.Fprintln(stdout, d.String())
			}
		}
	}

	switch {
	case !loadOK:
		return 2
	case len(findings) > 0:
		if !*asJSON {
			fmt.Fprintf(stdout, "repolint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	default:
		return 0
	}
}

// writeSARIF marshals the full diagnostic set (suppressed findings ride
// along as SARIF suppressions) and writes it to path, or to stdout when
// path is "-". SARIF carries the whole ledger regardless of
// -show-ignored: the artifact is for auditing, not for gating — the exit
// code still counts only unsuppressed findings.
func writeSARIF(path string, diags []lint.Diagnostic, analyzers []*lint.Analyzer, root string, stdout io.Writer) error {
	doc := lint.ToSARIF(diags, analyzers, root)
	out := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() {
			//lint:ignore errsink best-effort double close; the success path closes explicitly and checks the error
			f.Close()
		}()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if f, ok := out.(*os.File); ok && path != "-" {
		return f.Close()
	}
	return nil
}
