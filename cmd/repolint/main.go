// Command repolint runs this repository's determinism and concurrency
// invariant checks (internal/lint) over one or more packages and exits
// non-zero on unsuppressed findings. It is the machine form of the
// review rules that keep experiment output bit-reproducible: all
// randomness through internal/randx, no wall-clock reads on
// golden-output paths, no map-iteration order leaking into results,
// all fan-out through internal/parallel, no locks copied by value.
//
// Usage:
//
//	repolint [flags] [patterns]
//
// Patterns follow go-tool conventions relative to the module root:
// "./..." (default), "./internal/...", or "./cmd/repolint". Flags:
//
//	-C dir        module root to lint (default: ".", must contain go.mod)
//	-json         emit diagnostics as a JSON array instead of text
//	-list         list registered analyzers and exit
//	-show-ignored also print suppressed findings (marked "ignored:")
//	-disable a,b  comma-separated analyzer names to skip
//
// Suppress a single finding at its line with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("C", ".", "module root directory (must contain go.mod)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	showIgnored := fs.Bool("show-ignored", false, "also print suppressed findings")
	disable := fs.String("disable", "", "comma-separated analyzer names to skip")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(*disable, ",") {
			name = strings.TrimSpace(name)
			if _, ok := lint.ByName(name); !ok {
				fmt.Fprintf(stderr, "repolint: unknown analyzer %q\n", name)
				return 2
			}
			skip[name] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	loader, err := lint.NewLoader(*root)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}
	loadOK := true
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "repolint: %s: type error: %v\n", pkg.PkgPath, terr)
			loadOK = false
		}
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "repolint: %v\n", err)
		return 2
	}

	findings := lint.Unsuppressed(diags)
	shown := findings
	if *showIgnored {
		shown = diags
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []lint.Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintf(stderr, "repolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range shown {
			if d.Suppressed {
				fmt.Fprintf(stdout, "ignored: %s [%s]\n", d, d.SuppressReason)
			} else {
				fmt.Fprintln(stdout, d.String())
			}
		}
	}

	switch {
	case !loadOK:
		return 2
	case len(findings) > 0:
		if !*asJSON {
			fmt.Fprintf(stdout, "repolint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	default:
		return 0
	}
}
