package main

// Exit-code contract tests. CI's lint gate keys off these: 0 means the
// tree is clean, 1 means unsuppressed findings (printed to stdout), and
// 2 means repolint itself could not run — bad flags, no go.mod, or
// type-check failures (reported to stderr). Each test builds a throwaway
// mini-module under t.TempDir so the verdicts are hermetic.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// writeModule lays out a single-package module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = `package tmpmod

// Answer is trivially clean under every analyzer.
func Answer() int { return 42 }
`

// dirtySrc trips maporder: map-iteration order feeds an ordered slice.
const dirtySrc = `package tmpmod

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

const brokenSrc = `package tmpmod

func Broken() int { return "not an int" }
`

func runRepolint(t *testing.T, dir string, extra ...string) (code int, stdout, stderr string) {
	t.Helper()
	args := append([]string{"-C", dir}, extra...)
	args = append(args, "./...")
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestExitZeroOnCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean.go": cleanSrc})
	code, stdout, stderr := runRepolint(t, dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	if stdout != "" || stderr != "" {
		t.Fatalf("clean run must be silent, got stdout=%q stderr=%q", stdout, stderr)
	}
}

func TestExitOneOnFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{"dirty.go": dirtySrc})
	code, stdout, stderr := runRepolint(t, dir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "maporder") {
		t.Errorf("finding missing from stdout: %q", stdout)
	}
	if !strings.Contains(stdout, "1 finding(s)") {
		t.Errorf("summary trailer missing from stdout: %q", stdout)
	}
	if stderr != "" {
		t.Errorf("findings belong on stdout, stderr got %q", stderr)
	}
}

func TestExitTwoOnTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{"broken.go": brokenSrc})
	code, _, stderr := runRepolint(t, dir)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr=%q)", code, stderr)
	}
	if !strings.Contains(stderr, "type error") {
		t.Errorf("type error missing from stderr: %q", stderr)
	}
}

func TestExitTwoOnMissingModule(t *testing.T) {
	code, _, stderr := runRepolint(t, t.TempDir())
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr=%q)", code, stderr)
	}
	if stderr == "" {
		t.Error("load error must be reported to stderr")
	}
}

func TestExitTwoOnUnknownAnalyzer(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean.go": cleanSrc})
	code, _, stderr := runRepolint(t, dir, "-disable", "nosuchanalyzer")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", stderr)
	}
}

// TestSARIFOutput: -sarif writes a parseable SARIF 2.1.0 log whose
// results match the findings, with module-relative forward-slash URIs,
// and still exits 1.
func TestSARIFOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{"dirty.go": dirtySrc})
	sarifPath := filepath.Join(t.TempDir(), "repolint.sarif")
	code, _, stderr := runRepolint(t, dir, "-sarif", sarifPath)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr=%q)", code, stderr)
	}
	raw, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("reading SARIF log: %v", err)
	}
	var doc lint.SARIFLog
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("SARIF log is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	sr := doc.Runs[0]
	if sr.Tool.Driver.Name != "repolint" {
		t.Errorf("driver name = %q, want repolint", sr.Tool.Driver.Name)
	}
	if len(sr.Tool.Driver.Rules) != len(lint.All()) {
		t.Errorf("rules = %d, want %d (one per analyzer)", len(sr.Tool.Driver.Rules), len(lint.All()))
	}
	if len(sr.Results) == 0 {
		t.Fatal("no results in SARIF log despite findings")
	}
	res := sr.Results[0]
	if res.RuleID != "maporder" {
		t.Errorf("ruleId = %q, want maporder", res.RuleID)
	}
	if res.RuleIndex < 0 || res.RuleIndex >= len(sr.Tool.Driver.Rules) ||
		sr.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
		t.Errorf("ruleIndex %d does not point at rule %q", res.RuleIndex, res.RuleID)
	}
	uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI
	if uri != "dirty.go" {
		t.Errorf("uri = %q, want module-relative \"dirty.go\"", uri)
	}
	if res.Locations[0].PhysicalLocation.Region.StartLine == 0 {
		t.Error("startLine missing")
	}
}

// TestSARIFIncludesSuppressed: suppressed findings appear in the SARIF
// log with an inSource suppression carrying the justification, while the
// exit code stays 0.
func TestSARIFIncludesSuppressed(t *testing.T) {
	const suppressed = `package tmpmod

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore maporder callers sort the result themselves
		out = append(out, k)
	}
	return out
}
`
	dir := writeModule(t, map[string]string{"dirty.go": suppressed})
	sarifPath := filepath.Join(t.TempDir(), "repolint.sarif")
	code, stdout, stderr := runRepolint(t, dir, "-sarif", sarifPath)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stdout=%q stderr=%q)", code, stdout, stderr)
	}
	raw, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc lint.SARIFLog
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs[0].Results) != 1 {
		t.Fatalf("results = %d, want the suppressed finding", len(doc.Runs[0].Results))
	}
	sup := doc.Runs[0].Results[0].Suppressions
	if len(sup) != 1 || sup[0].Kind != "inSource" {
		t.Fatalf("suppressions = %+v, want one inSource entry", sup)
	}
	if !strings.Contains(sup[0].Justification, "sort the result themselves") {
		t.Errorf("justification = %q, want the //lint:ignore reason", sup[0].Justification)
	}
}

// TestSARIFToStdout: "-" streams the log to stdout instead of a file.
func TestSARIFToStdout(t *testing.T) {
	dir := writeModule(t, map[string]string{"clean.go": cleanSrc})
	code, stdout, _ := runRepolint(t, dir, "-sarif", "-")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	var doc lint.SARIFLog
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("stdout is not a SARIF document: %v\n%s", err, stdout)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
}
