// Command qbsample learns a language model for a text database by
// query-based sampling and writes it out.
//
// The database can be one of the built-in corpora (-corpus) or any remote
// netsearch server (-addr), in which case qbsample demonstrates the
// paper's premise: no cooperation beyond "run query, fetch document" is
// needed.
//
// Usage:
//
//	qbsample -corpus CACM [-docs 300] [-per-query 4] [-strategy random-llm]
//	         [-seed 1] [-scale 1] [-out lm.json] [-tsv] [-converge 0.005]
//	qbsample -addr 127.0.0.1:7070 -first apple [-docs 300] [-timeout 10s] [-retries 3] ...
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/langmodel"
	"repro/internal/metrics"
	"repro/internal/netsearch"
)

func main() {
	corpusName := flag.String("corpus", "", "built-in corpus to sample (CACM, WSJ88, TREC123, Support)")
	addr := flag.String("addr", "", "remote netsearch database address (alternative to -corpus)")
	first := flag.String("first", "", "initial query term (required with -addr)")
	docs := flag.Int("docs", 300, "document budget")
	perQuery := flag.Int("per-query", 4, "documents examined per query (N)")
	strategy := flag.String("strategy", "random-llm", "term selection: random-llm, df-llm, ctf-llm, avg-tf-llm")
	seed := flag.Uint64("seed", 1, "sampling seed")
	scale := flag.Float64("scale", 1.0, "built-in corpus size multiplier")
	out := flag.String("out", "", "write learned model JSON to this file")
	tsv := flag.Bool("tsv", false, "dump learned model as TSV to stdout")
	converge := flag.Float64("converge", 0, "stop when rdiff over two 50-doc spans falls below this (0 = fixed budget)")
	verbose := flag.Bool("verbose", false, "trace every query to stderr")
	timeout := flag.Duration("timeout", 10*time.Second, "per-operation deadline for -addr databases (0 = none)")
	retries := flag.Int("retries", netsearch.DefaultAttempts, "attempts per remote operation, redialing with backoff in between (1 = no retry)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "qbsample: "+format+"\n", args...)
		os.Exit(1)
	}

	var sel core.TermSelector
	switch *strategy {
	case "random-llm":
		sel = core.RandomLLM{}
	case "df-llm":
		sel = core.FrequencyLLM{Metric: langmodel.ByDF}
	case "ctf-llm":
		sel = core.FrequencyLLM{Metric: langmodel.ByCTF}
	case "avg-tf-llm":
		sel = core.FrequencyLLM{Metric: langmodel.ByAvgTF}
	default:
		fail("unknown strategy %q", *strategy)
	}

	cfg := core.Config{
		DocsPerQuery:  *perQuery,
		Selector:      sel,
		Analyzer:      analysis.Raw(),
		SnapshotEvery: 50,
		Seed:          *seed,
	}
	if *verbose {
		cfg.OnQuery = func(e core.Event) {
			fmt.Fprintf(os.Stderr, "q%-4d %-20s hits=%d new=%d docs=%d vocab=%d\n",
				e.TotalQueries, e.Query, e.Hits, e.NewDocs, e.TotalDocs, e.VocabSize)
		}
	}
	cfg.Stop = core.StopAfterDocs(*docs)
	if *converge > 0 {
		cfg.Stop = core.StopAny(
			core.StopWhenConverged(*converge, 2, langmodel.ByDF),
			core.StopAfterDocs(*docs),
		)
	}

	var db core.Database
	var env *experiments.Env
	switch {
	case *addr != "" && *corpusName != "":
		fail("-corpus and -addr are mutually exclusive")
	case *addr != "":
		if *first == "" {
			fail("-addr requires -first (an initial query term)")
		}
		client, err := netsearch.DialWith(*addr, netsearch.Options{
			Timeout: *timeout,
			Retry:   netsearch.RetryPolicy{Attempts: *retries, Seed: *seed},
		})
		if err != nil {
			fail("%v", err)
		}
		//lint:ignore errsink process-exit cleanup; a close error after the run has no consumer
		defer client.Close()
		db = client
		cfg.InitialTerm = *first
	case *corpusName != "":
		suite := experiments.NewSuite(*scale, *seed)
		suite.InitialFromTREC = false
		var err error
		env, err = suite.Env(*corpusName)
		if err != nil {
			fail("%v", err)
		}
		db = env.Index
		if *first != "" {
			cfg.InitialTerm = *first
		} else {
			cfg.InitialModel = env.Actual
		}
	default:
		fail("need -corpus or -addr")
	}

	res, err := core.Sample(db, cfg)
	if err != nil {
		fail("%v", err)
	}

	fmt.Fprintf(os.Stderr, "sampled %d documents with %d queries (%d failed, %d yielded nothing new)\n",
		res.Docs, res.Queries, res.FailedQueries, res.ZeroNewQueries)
	fmt.Fprintf(os.Stderr, "learned model: %d terms, %d occurrences\n",
		res.Learned.VocabSize(), res.Learned.TotalCTF())
	if res.Exhausted {
		fmt.Fprintln(os.Stderr, "note: sampling exhausted the database before the stop condition")
	}

	if env != nil {
		norm := res.Learned.Normalize(env.Index.Analyzer())
		fmt.Fprintf(os.Stderr, "accuracy vs actual model: pct-learned=%.4f ctf-ratio=%.4f spearman=%.4f\n",
			metrics.PercentageLearned(norm, env.Actual),
			metrics.CtfRatio(norm, env.Actual),
			metrics.Spearman(norm, env.Actual, langmodel.ByDF))
	}

	if *out != "" {
		if err := res.Learned.Save(*out); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *tsv {
		if err := res.Learned.DumpTSV(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
}
