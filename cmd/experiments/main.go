// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale f] [-seed n] [-exp list] [-parallel n]
//
// -exp selects experiments by id (comma-separated), from:
//
//	table1 fig1 fig2 table2 fig3 table3 fig4 table4
//	ext-agree ext-adv ext-stop ext-size ext-phrase ext-var ext-fed ext-expand all
//
// -scale multiplies corpus sizes (1.0 = DESIGN.md defaults; unit tests use
// smaller). Everything is deterministic for a given (-scale, -seed) pair:
// -parallel only changes how many worker goroutines independent sampling
// runs fan out over, never the numbers (0 = one per CPU, 1 = sequential).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

func main() {
	scale := flag.Float64("scale", 1.0, "corpus size multiplier")
	seed := flag.Uint64("seed", 1, "experiment seed")
	exp := flag.String("exp", "all", "comma-separated experiment ids (see doc)")
	lightInit := flag.Bool("light-init", false,
		"draw each run's first query term from the sampled corpus's own model instead of TREC123's (faster for partial runs)")
	par := flag.Int("parallel", 0, "worker goroutines for independent runs (0 = one per CPU, 1 = sequential)")
	timing := flag.Bool("timing", false,
		"print a per-experiment wall-time table (telemetry) after the run")
	flag.Parse()

	// Runtime telemetry: per-experiment wall time, env build time, worker
	// pool utilization. Never feeds into results — it only drives the
	// -timing report.
	reg := telemetry.NewRegistry()
	parallel.SetMetrics(reg)

	suite := experiments.NewSuite(*scale, *seed)
	suite.InitialFromTREC = !*lightInit
	suite.Parallel = *par
	suite.Metrics = reg
	workers := experiments.WithWorkers(*par)
	withMetrics := experiments.WithMetrics(reg)

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	out := os.Stdout
	start := time.Now()
	fmt.Fprintf(out, "query-based sampling experiment suite (scale=%.3f seed=%d)\n\n", *scale, *seed)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if selected("table1") {
		rows, err := suite.Table1()
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteTable1(out, rows); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	needBaselines := selected("fig1") || selected("fig2") || selected("fig4")
	var baselines []*experiments.BaselineRun
	if needBaselines {
		runs, err := suite.Baselines()
		if err != nil {
			fail(err)
		}
		baselines = runs
	}
	if selected("fig1") {
		if err := experiments.WriteFigure1a(out, baselines); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
		if err := experiments.WriteFigure1b(out, baselines); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	if selected("fig2") {
		if err := experiments.WriteFigure2(out, baselines); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("table2") {
		var rows []experiments.Table2Row
		for _, name := range experiments.Corpora() {
			r, err := suite.Table2(name, []int{1, 2, 4, 6, 8, 10})
			if err != nil {
				fail(err)
			}
			rows = append(rows, r...)
		}
		if err := experiments.WriteTable2(out, rows); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("fig3") || selected("table3") {
		runs, err := suite.Strategies("WSJ88")
		if err != nil {
			fail(err)
		}
		if selected("fig3") {
			if err := experiments.WriteFigure3a(out, runs); err != nil {
				fail(err)
			}
			fmt.Fprintln(out)
			if err := experiments.WriteFigure3b(out, runs); err != nil {
				fail(err)
			}
			fmt.Fprintln(out)
		}
		if selected("table3") {
			if err := experiments.WriteTable3(out, runs); err != nil {
				fail(err)
			}
			fmt.Fprintln(out)
		}
	}

	if selected("fig4") {
		if err := experiments.WriteFigure4(out, baselines); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("table4") {
		res, err := suite.Table4(50)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteTable4(out, res); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-agree") {
		numDBs, docsEach := 10, 1000
		sizes := []int{25, 50, 100, 200, 300}
		if *scale < 1 {
			docsEach = int(float64(docsEach) * *scale)
			if docsEach < 100 {
				docsEach = 100
			}
		}
		results, err := experiments.SelectionAgreement(numDBs, docsEach, sizes, 30, *seed, workers, withMetrics)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteAgreement(out, results); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-adv") {
		res, err := experiments.Adversarial(8, 600, 150, *seed, workers, withMetrics)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteAdversarial(out, res); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-size") {
		rows, err := suite.SizeEstimation(300)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteSizes(out, rows); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-phrase") {
		points, err := suite.PhraseConvergence("WSJ88")
		if err != nil {
			fail(err)
		}
		if err := experiments.WritePhrase(out, "WSJ88", points); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-fed") {
		numDBs, docsEach := 8, 800
		if *scale < 1 {
			docsEach = int(float64(docsEach) * *scale)
			if docsEach < 100 {
				docsEach = 100
			}
		}
		res, err := experiments.FederatedRetrieval(numDBs, docsEach, 200, 24, 3, *seed, workers, withMetrics)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteFederated(out, res); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-expand") {
		res, err := experiments.ExpansionSelection(8, 600, 60, 48, 3, *seed, workers, withMetrics)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteExpansion(out, res); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-var") {
		var rows []experiments.VarianceRow
		for _, name := range experiments.Corpora() {
			row, err := suite.SeedVariance(name, 5)
			if err != nil {
				fail(err)
			}
			rows = append(rows, row)
		}
		if err := experiments.WriteVariance(out, rows); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if selected("ext-stop") {
		rows, err := suite.StoppingRule(0.005)
		if err != nil {
			fail(err)
		}
		if err := experiments.WriteStopping(out, rows); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}

	if *timing {
		printTiming(reg)
	}
	fmt.Fprintf(out, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

// printTiming renders the per-experiment wall-time histogram family as a
// table: one row per experiment id (and env build), runs, total and p95.
func printTiming(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "experiments_") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return
	}
	fmt.Printf("%-44s %6s %10s %10s\n", "timer", "runs", "total", "p95")
	for _, name := range names {
		h := snap.Histograms[name]
		fmt.Printf("%-44s %6d %10s %10s\n", name, h.Count,
			time.Duration(h.Sum*float64(time.Second)).Round(time.Millisecond),
			time.Duration(h.P95*float64(time.Second)).Round(time.Millisecond))
	}
}
