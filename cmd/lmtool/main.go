// Command lmtool inspects and manipulates stored language models.
//
// Usage:
//
//	lmtool info <model>                     # docs, vocabulary, occurrences
//	lmtool top <model> [-k 20] [-by avg-tf] # §7-style summary
//	lmtool convert <in> <out>               # JSON <-> binary by extension
//	lmtool compare <learned> <actual>       # the paper's §4.3 metrics
//	lmtool dump <model>                     # TSV to stdout
//	lmtool snapshot <dir|segment>           # inspect a compiled snapshot
//
// Model files are read as the compact binary format when their extension
// is .qblm and as JSON otherwise; convert writes whichever format the
// output extension selects.
//
// snapshot takes a snapshot store directory (it follows the MANIFEST) or
// a .qbsnap segment file directly, prints the header and section table,
// and verifies every section checksum — the first tool to reach for when
// a service refuses a warm start.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/langmodel"
	"repro/internal/metrics"
	"repro/internal/selection"
	"repro/internal/store"
	"repro/internal/summarize"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = runInfo(args)
	case "top":
		err = runTop(args)
	case "convert":
		err = runConvert(args)
	case "compare":
		err = runCompare(args)
	case "dump":
		err = runDump(args)
	case "snapshot":
		err = runSnapshot(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lmtool {info|top|convert|compare|dump|snapshot} ...")
	os.Exit(2)
}

// load reads a model, picking the format by extension.
func load(path string) (*langmodel.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errsink file opened for reading; close cannot lose data
	defer f.Close()
	if strings.HasSuffix(path, ".qblm") {
		return langmodel.ReadBinary(f)
	}
	return langmodel.Read(f)
}

// save writes a model, picking the format by extension.
func save(m *langmodel.Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".qblm") {
		_, err = m.WriteBinary(f)
	} else {
		_, err = m.WriteTo(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func runInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info needs exactly one model file")
	}
	m, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("file:        %s\n", args[0])
	fmt.Printf("documents:   %d\n", m.Docs())
	fmt.Printf("vocabulary:  %d terms\n", m.VocabSize())
	fmt.Printf("occurrences: %d\n", m.TotalCTF())
	if m.Docs() > 0 {
		fmt.Printf("terms/doc:   %.1f\n", float64(m.TotalCTF())/float64(m.Docs()))
	}
	return nil
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	k := fs.Int("k", 20, "terms to show")
	by := fs.String("by", "avg-tf", "ranking metric: df, ctf, avg-tf")
	noStop := fs.Bool("keep-stopwords", false, "do not filter stopwords")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("top needs exactly one model file")
	}
	m, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	metric, err := parseMetric(*by)
	if err != nil {
		return err
	}
	stop := analysis.InqueryStoplist()
	if *noStop {
		stop = nil
	}
	rows := summarize.Top(m, metric, *k, stop)
	return summarize.Render(os.Stdout, rows, metric)
}

func parseMetric(name string) (langmodel.RankMetric, error) {
	switch name {
	case "df":
		return langmodel.ByDF, nil
	case "ctf":
		return langmodel.ByCTF, nil
	case "avg-tf", "avgtf":
		return langmodel.ByAvgTF, nil
	}
	return 0, fmt.Errorf("unknown metric %q", name)
}

func runConvert(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("convert needs <in> and <out>")
	}
	m, err := load(args[0])
	if err != nil {
		return err
	}
	if err := save(m, args[1]); err != nil {
		return err
	}
	in, _ := os.Stat(args[0])
	out, _ := os.Stat(args[1])
	if in != nil && out != nil {
		fmt.Fprintf(os.Stderr, "%s (%d bytes) -> %s (%d bytes)\n",
			args[0], in.Size(), args[1], out.Size())
	}
	return nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	normalize := fs.Bool("normalize", false, "stop+stem the first model before comparing (the §4.1 protocol)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare needs <learned> and <actual>")
	}
	learned, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	actual, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	if *normalize {
		learned = learned.Normalize(analysis.Database())
	}
	fmt.Printf("pct learned:      %.4f\n", metrics.PercentageLearned(learned, actual))
	fmt.Printf("ctf ratio:        %.4f\n", metrics.CtfRatio(learned, actual))
	fmt.Printf("spearman (paper): %.4f\n", metrics.SpearmanSimple(learned, actual, langmodel.ByDF))
	fmt.Printf("spearman (ties):  %.4f\n", metrics.Spearman(learned, actual, langmodel.ByDF))
	fmt.Printf("kendall tau-b:    %.4f\n", metrics.KendallTau(learned, actual, langmodel.ByDF))
	fmt.Printf("rdiff:            %.5f\n", metrics.Rdiff(learned, actual, langmodel.ByDF))
	return nil
}

func runSnapshot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("snapshot needs a store directory or a %s segment", store.SegmentExt)
	}
	path := args[0]
	if fi, err := os.Stat(path); err != nil {
		return err
	} else if fi.IsDir() {
		ss, err := store.OpenSnapshots(path)
		if err != nil {
			return err
		}
		m, err := ss.Manifest()
		if err != nil {
			return err
		}
		fmt.Printf("manifest:    seq %d, epoch %d, %d bytes, crc %08x\n", m.Seq, m.Epoch, m.Size, m.CRC)
		path = ss.SegmentPath(m)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	info, err := selection.InspectSnapshot(data)
	if err != nil {
		return err
	}
	fmt.Printf("segment:     %s (%d bytes)\n", path, len(data))
	fmt.Printf("version:     %d\n", info.Version)
	fmt.Printf("epoch:       %d\n", info.Epoch)
	fmt.Printf("databases:   %d\n", info.DBs)
	fmt.Printf("terms:       %d\n", info.Terms)
	fmt.Printf("postings:    %d\n", info.Postings)
	fmt.Printf("avg cw:      %.2f\n", info.AvgCW)
	fmt.Printf("sections:\n")
	bad := 0
	for _, s := range info.Sections {
		status := "ok"
		if !s.OK {
			status = "CORRUPT"
			bad++
		}
		fmt.Printf("  %-10s off %8d  len %10d  crc %08x  %s\n", s.Name, s.Offset, s.Length, s.CRC, status)
	}
	if bad > 0 {
		return fmt.Errorf("%d section(s) failed checksum verification", bad)
	}
	if _, err := selection.DecodeSnapshot(data); err != nil {
		return fmt.Errorf("sections verify but snapshot does not decode: %w", err)
	}
	fmt.Printf("integrity:   all sections verified; snapshot decodes cleanly\n")
	return nil
}

func runDump(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dump needs exactly one model file")
	}
	m, err := load(args[0])
	if err != nil {
		return err
	}
	return m.DumpTSV(os.Stdout)
}
