// Command dbselect demonstrates the full database-selection pipeline the
// paper motivates: build a federation of text databases, acquire a
// language model for each (by query-based sampling or cooperatively), and
// rank the databases for queries.
//
// Usage:
//
//	dbselect [-dbs 8] [-docs-each 1000] [-sample-docs 200]
//	         [-acquire sampled|cooperative] [-alg cori|gloss-sum|gloss-ind]
//	         [-seed 1] -query "term term ..."
//
// With -acquire cooperative, one database lies about the query terms and
// one refuses to export — the §2.2 failure modes — so the two acquisition
// paths can be compared directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/langmodel"
	"repro/internal/selection"
	"repro/internal/starts"
)

func main() {
	numDBs := flag.Int("dbs", 8, "number of federation databases")
	docsEach := flag.Int("docs-each", 1000, "documents per database")
	sampleDocs := flag.Int("sample-docs", 200, "sampling budget per database")
	acquire := flag.String("acquire", "sampled", "model acquisition: sampled or cooperative")
	algName := flag.String("alg", "cori", "selection algorithm: cori, gloss-sum, gloss-ind")
	seed := flag.Uint64("seed", 1, "seed")
	query := flag.String("query", "", "query terms (space separated); empty picks a topical query")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dbselect: "+format+"\n", args...)
		os.Exit(1)
	}

	var alg selection.Algorithm
	switch *algName {
	case "cori":
		alg = selection.CORI{}
	case "gloss-sum":
		alg = selection.Gloss{Estimator: selection.GlossSum}
	case "gloss-ind":
		alg = selection.Gloss{Estimator: selection.GlossInd}
	default:
		fail("unknown algorithm %q", *algName)
	}

	fmt.Printf("building %d databases of %d documents each...\n", *numDBs, *docsEach)
	dbs, err := experiments.Federation(*numDBs, *docsEach, *seed)
	if err != nil {
		fail("%v", err)
	}

	// The query: user-supplied, or two frequent topical terms of db 0.
	var terms []string
	if *query != "" {
		an := analysis.Database()
		terms = an.Tokens(*query)
	} else {
		pool := experiments.TopicalTerms(dbs[0], dbs, 10)
		if len(pool) < 2 {
			fail("federation too small to derive a topical query")
		}
		terms = pool[:2]
		fmt.Printf("no -query given; using topical query %v (should favor %s)\n", terms, dbs[0].Name)
	}
	if len(terms) == 0 {
		fail("query reduced to no terms after analysis")
	}

	models := make([]*langmodel.Model, len(dbs))
	switch *acquire {
	case "sampled":
		fmt.Printf("sampling %d documents from each database...\n", *sampleDocs)
		for i, db := range dbs {
			cfg := core.DefaultConfig(db.Actual, *sampleDocs, *seed+uint64(i))
			cfg.SnapshotEvery = 0
			res, err := core.Sample(db.Index, cfg)
			if err != nil {
				fail("sampling %s: %v", db.Name, err)
			}
			models[i] = res.Learned.Normalize(db.Index.Analyzer())
			fmt.Printf("  %s: %d docs, %d queries, %d terms\n",
				db.Name, res.Docs, res.Queries, models[i].VocabSize())
		}
	case "cooperative":
		fmt.Println("acquiring models via the cooperative (STARTS) protocol...")
		providers := make([]starts.Provider, len(dbs))
		for i, db := range dbs {
			switch i {
			case 1:
				providers[i] = starts.Liar{Model: db.Actual, Bait: terms, Factor: 500}
				fmt.Printf("  %s will LIE about %v\n", db.Name, terms)
			case 2:
				providers[i] = starts.Noncooperative{}
				fmt.Printf("  %s will refuse to cooperate\n", db.Name)
			default:
				providers[i] = starts.Cooperative{Model: db.Actual}
			}
		}
		acquired, failures := starts.Acquire(providers)
		for i := range dbs {
			if m, ok := acquired[i]; ok {
				models[i] = m
			} else {
				models[i] = langmodel.New() // invisible to the service
				fmt.Printf("  %s: acquisition failed: %v\n", dbs[i].Name, failures[i])
			}
		}
	default:
		fail("unknown acquisition mode %q", *acquire)
	}

	fmt.Printf("\n%s ranking for query %q:\n", alg.Name(), strings.Join(terms, " "))
	for pos, r := range selection.Rank(alg, terms, models) {
		fmt.Printf("  %2d. %-20s score=%.4f\n", pos+1, dbs[r.DB].Name, r.Score)
	}
}
