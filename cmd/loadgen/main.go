// Command loadgen replays a reproducible, seeded Zipf query workload
// against a selection-serving surface and writes a JSON report with
// client-side QPS and exact latency quantiles — the numbers the
// benchdiff gate diffs in CI (make load-smoke / load-gate).
//
// Point it at a running selectd (single process or cluster front):
//
//	loadgen -target http://127.0.0.1:8080 -requests 500 -workers 8
//
// or let it spawn a self-contained loopback deployment with synthetic
// warm models (what CI does — no external service, no sampling):
//
//	loadgen -spawn -spawn-shards 2 -requests 200 -batch 8 -report load.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/admission"
	"repro/internal/loadgen"
)

func main() {
	var (
		target  = flag.String("target", "", "base URL of the serving surface (omit with -spawn)")
		spawn   = flag.Bool("spawn", false, "spawn a loopback deployment with synthetic warm models")
		shards  = flag.Int("spawn-shards", 0, "spawned topology: 0 = single process, N = N-shard cluster front")
		dbs     = flag.Int("spawn-dbs", 50, "spawned federation size")
		maxIn   = flag.Int("spawn-max-inflight", 0, "spawned admission: in-flight cap (0 = off)")
		mode    = flag.String("mode", "closed", `"closed" (next request when the last completes) or "open" (fixed -rate schedule)`)
		rate    = flag.Float64("rate", 100, "open-loop launch rate, requests/second")
		reqs    = flag.Int("requests", 200, "timed HTTP requests to issue")
		workers = flag.Int("workers", 4, "concurrent workers")
		batch   = flag.Int("batch", 0, ">1 sends POST /rank/batch with this many queries per request")
		stream  = flag.Bool("stream", false, "send batches as POST /rank/batch?stream=1 and record TTFR (requires -batch > 1)")
		dupRate = flag.Float64("dup-rate", 0, "probability in (0,1] each query repeats from a seeded hot pool (exercises coalescing)")
		alg     = flag.String("alg", "cori", "selection algorithm")
		k       = flag.Int("k", 10, "rank cutoff")
		terms   = flag.Int("terms", 3, "terms per query")
		zipfS   = flag.Float64("zipf-s", 1.2, "Zipf skew of term draws (> 1)")
		seed    = flag.Uint64("seed", 1, "workload seed")
		label   = flag.String("label", "run", "metric key label: loadgen/<label>/qps")
		report  = flag.String("report", "", "write the JSON report here (default stdout)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Target: *target, Mode: *mode, Workers: *workers, Requests: *reqs,
		Rate: *rate, Batch: *batch, Stream: *stream, DupRate: *dupRate,
		Alg: *alg, K: *k, Terms: *terms,
		ZipfS: *zipfS, Seed: *seed, Label: *label, Timeout: *timeout,
	}
	if *spawn {
		if *target != "" {
			fatal(fmt.Errorf("-spawn and -target are mutually exclusive"))
		}
		d, err := loadgen.Spawn(loadgen.SpawnConfig{
			Shards: *shards, DBs: *dbs,
			Admission: admission.Config{MaxInFlight: *maxIn},
		})
		if err != nil {
			fatal(err)
		}
		defer d.Close()
		cfg.Target = d.URL
		cfg.Vocab = d.Vocab
	} else {
		if *target == "" {
			fatal(fmt.Errorf("need -target URL or -spawn"))
		}
		// Against an external target the workload draws from the same
		// synthetic pool a spawned deployment serves, so a spawned selectd
		// on another port behaves identically to -spawn.
		_, cfg.Vocab = loadgen.SyntheticModels(1, 0xbe7c)
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fatal(err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if *report != "" {
		if err := os.WriteFile(*report, out, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(out)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d requests (%d queries) in %.2fs: %.0f qps, p50 %.0fus p95 %.0fus p99 %.0fus, shed %d, errors %d\n",
		rep.Requests, rep.Queries, rep.ElapsedSeconds, rep.QPS, rep.P50us, rep.P95us, rep.P99us, rep.Shed, rep.Errors)
	if *stream {
		fmt.Fprintf(os.Stderr, "loadgen: ttfr p50 %.0fus p95 %.0fus p99 %.0fus\n",
			rep.TTFRP50us, rep.TTFRP95us, rep.TTFRP99us)
	}
	if rep.CoalescedBatch > 0 || rep.CoalescedFlight > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: coalesced batch %d, flight %d\n",
			rep.CoalescedBatch, rep.CoalescedFlight)
	}
	if rep.Errors > 0 {
		fatal(fmt.Errorf("%d requests failed (first: %s)", rep.Errors, rep.FirstError))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
