// Command selectd runs a database-selection service as an HTTP daemon —
// the deployment the paper envisions: one service, many independently
// operated text databases, language models learned by sampling and kept
// on disk.
//
// Usage:
//
//	selectd [-addr :8080] [-store ./models] [-snapshot-dir ./snap] [-demo n] [-timeout 10s] [-retries 3]
//
// Cluster mode (DESIGN.md §13): with -join, the instance additionally
// serves its rank/register capabilities over the netsearch fabric on the
// given address, making it a shard other processes can scatter to. With
// -shards, the instance instead runs as a stateless front tier over the
// given topology — slots comma-separated, replicas within a slot
// |-separated — scattering every /rank to all slots and fusing the
// partial rankings:
//
//	selectd -join 127.0.0.1:9001 ...   # shard (full selectd + fabric)
//	selectd -shards 'h1:9001|h2:9001,h1:9002|h2:9002'   # front tier
//
// Without either flag, selectd is the unchanged single-process service.
//
// Admission control (DESIGN.md §14) is off by default and flag-tunable in
// every mode: -max-inflight caps concurrent rank requests (shed with 429 +
// Retry-After past it), -degrade-at/-degrade-k serve smaller rankings
// under load instead of shedding, and -max-p99 sheds while the recent
// windowed p99 latency exceeds the bound:
//
//	selectd -max-inflight 64 -degrade-at 48 -degrade-k 10 -max-p99 250ms
//
// Result caching and coalescing (DESIGN.md §15): identical in-flight rank
// work is always computed once and shared across callers; -rank-cache
// additionally sizes the completed-result LRU in single/shard mode (0
// disables it), and -front-cache enables the topology-epoch-keyed result
// cache on a front tier:
//
//	selectd -rank-cache 4096                       # single/shard
//	selectd -shards '...' -front-cache 1024        # front tier
//
// Batch rankings stream: POST /rank/batch?stream=1 flushes each query's
// ranking as it completes (NDJSON, or SSE via Accept: text/event-stream).
//
// With -snapshot-dir, the compiled selection snapshot is persisted in a
// checksummed binary segment and adopted on restart (a warm start: the
// first /rank serves without recompiling the federation); -snapshot-persist
// controls whether newly compiled snapshots are saved back (default true).
//
// With -demo n, selectd also spins up n in-process demo databases (served
// over netsearch, as real remote databases would be), registers them, and
// samples each — so the API is immediately explorable:
//
//	curl localhost:8080/databases
//	curl localhost:8080/rank?q=some+query
//	curl localhost:8080/databases/db00-finance/summary?k=10
//	curl -XPOST localhost:8080/databases -d '{"name":"x","addr":"host:port"}'
//	curl -XPOST localhost:8080/databases/x/sample -d '{"docs":300}'
//
// Observability: every instance serves runtime metrics at /metrics (JSON,
// or Prometheus text via Accept) and /debug/vars; -pprof additionally
// mounts net/http/pprof under /debug/pprof/. Requests are logged as
// structured key=value lines with per-request trace IDs (see DESIGN.md §9).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/admission"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	storeDir := flag.String("store", "", "directory for persisted language models (empty = in-memory only)")
	snapDir := flag.String("snapshot-dir", "", "directory for persisted compiled selection snapshots (empty = compile on first query)")
	snapPersist := flag.Bool("snapshot-persist", true, "with -snapshot-dir, save each newly compiled snapshot on publish")
	demo := flag.Int("demo", 0, "spin up this many demo databases and sample them")
	demoDocs := flag.Int("demo-docs", 600, "documents per demo database")
	sampleDocs := flag.Int("demo-sample", 150, "sampling budget per demo database")
	timeout := flag.Duration("timeout", 10*time.Second, "per-operation deadline for remote databases (0 = none)")
	retries := flag.Int("retries", netsearch.DefaultAttempts, "attempts per remote operation, redialing with backoff in between (1 = no retry)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log", "info", "log level: debug, info, warn, error")
	shards := flag.String("shards", "", "run as a stateless front tier over this shard topology (slots comma-separated, replicas |-separated)")
	join := flag.String("join", "", "also serve this instance as a cluster shard on this netsearch address")
	ringSeed := flag.Uint64("ring-seed", 0, "placement ring seed (front tier; must match across fronts of one cluster)")
	maxInflight := flag.Int("max-inflight", 0, "admission: max concurrent rank requests before shedding with 429 (0 = unbounded)")
	degradeAt := flag.Int("degrade-at", 0, "admission: in-flight depth at which rankings degrade to -degrade-k rows (0 = never)")
	degradeK := flag.Int("degrade-k", 0, "admission: rank cutoff served while degraded (default 10)")
	maxP99 := flag.Duration("max-p99", 0, "admission: shed while the windowed p99 rank latency exceeds this (0 = off)")
	retryAfter := flag.Duration("retry-after", 0, "admission: Retry-After hint on shed responses (default 1s)")
	rankCache := flag.Int("rank-cache", service.DefaultRankCacheSize, "completed rank result LRU capacity, single/shard mode (0 = off)")
	frontCache := flag.Int("front-cache", 0, "front tier: topology-epoch-keyed rank result cache capacity (0 = off)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "selectd: "+format+"\n", args...)
		os.Exit(1)
	}
	if *shards != "" && *join != "" {
		fail("-shards and -join are mutually exclusive: a front tier owns no models to serve as a shard")
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fail("bad -log level %q: %v", *logLevel, err)
	}
	reg := telemetry.NewRegistry()
	logger := telemetry.NewLogger(os.Stderr, level, true)
	adm := admission.Config{
		MaxInFlight: *maxInflight,
		DegradeAt:   *degradeAt,
		DegradeK:    *degradeK,
		MaxP99:      *maxP99,
		RetryAfter:  *retryAfter,
	}
	if adm.Enabled() {
		fmt.Printf("admission control on: max-inflight=%d degrade-at=%d max-p99=%s\n",
			*maxInflight, *degradeAt, *maxP99)
	}

	// Front-tier mode: no service, no store — just ring geometry, shard
	// clients, and transient health. Everything below is shard/single-
	// process setup.
	if *shards != "" {
		slots, err := cluster.ParseSlots(*shards)
		if err != nil {
			fail("%v", err)
		}
		front, err := cluster.NewFront(slots, cluster.Options{
			Net: netsearch.Options{
				Timeout: *timeout,
				Retry:   netsearch.RetryPolicy{Attempts: *retries},
				Metrics: reg,
				Logger:  logger,
			},
			Seed:      *ringSeed,
			Metrics:   reg,
			Logger:    logger,
			Admission: adm,
			CacheSize: *frontCache,
		})
		if err != nil {
			fail("%v", err)
		}
		//lint:ignore errsink process-exit cleanup; a close error after serving has no consumer
		defer front.Close()
		fmt.Printf("front tier over %d slots listening on http://%s\n", len(slots), *addr)
		if err := http.ListenAndServe(*addr, front.Handler()); err != nil {
			fail("%v", err)
		}
		return
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("persisting models under %s\n", st.Dir())
	}

	svc := service.New(analysis.Database(), st)
	//lint:ignore errsink process-exit cleanup; a close error after serving has no consumer
	defer svc.Close()
	if *rankCache != service.DefaultRankCacheSize {
		svc.SetRankCacheSize(*rankCache)
	}
	svc.SetMetrics(reg)
	svc.SetLogger(logger)
	svc.SetAdmission(adm)
	var snaps *store.SnapshotStore
	if *snapDir != "" {
		var err error
		snaps, err = store.OpenSnapshots(*snapDir)
		if err != nil {
			fail("%v", err)
		}
		svc.SetSnapshotStore(snaps, *snapPersist)
		fmt.Printf("persisting compiled snapshots under %s\n", snaps.Dir())
	}
	svc.SetDialOptions(netsearch.Options{
		Timeout: *timeout,
		Retry:   netsearch.RetryPolicy{Attempts: *retries},
		Metrics: reg,
		Logger:  logger,
	})

	if *demo > 0 {
		fmt.Printf("building %d demo databases...\n", *demo)
		dbs, err := experiments.Federation(*demo, *demoDocs, 1)
		if err != nil {
			fail("%v", err)
		}
		for _, db := range dbs {
			ns, err := netsearch.Serve(db.Index, "127.0.0.1:0")
			if err != nil {
				fail("%v", err)
			}
			//lint:ignore errsink process-exit cleanup; a close error after serving has no consumer
			defer ns.Close()
			if err := svc.Register(db.Name, ns.Addr()); err != nil {
				fail("%v", err)
			}
			// A restart with -store resumes from the persisted model
			// instead of re-sampling: query-based sampling seeds its
			// queries off the learned model, so re-sampling would walk a
			// different path, change the model, and (correctly) invalidate
			// any persisted compiled snapshot.
			if st != nil {
				if m, err := st.Get(db.Name); err == nil {
					fmt.Printf("  %s @ %s: model resumed from store (%d terms)\n",
						db.Name, ns.Addr(), m.VocabSize())
					continue
				}
			}
			status, err := svc.Sample(db.Name, service.SampleOptions{Docs: *sampleDocs})
			if err != nil {
				fail("sampling %s: %v", db.Name, err)
			}
			fmt.Printf("  %s @ %s: %d docs sampled, %d terms learned\n",
				db.Name, ns.Addr(), status.SampledDocs, status.Terms)
		}
	}

	// Warm start: with every database registered (and persisted models
	// loaded), adopt the persisted compiled snapshot if it still matches
	// the model set — the first /rank then serves without compiling. Any
	// mismatch or corruption just means a cold start: the first query
	// compiles from the models, and the result is re-persisted on publish.
	if snaps != nil {
		if err := svc.LoadSnapshot(); err != nil {
			logger.Warn("cold start: compiled snapshot not adopted", "err", err.Error())
		} else {
			fmt.Printf("warm start: compiled snapshot loaded from %s\n", snaps.Dir())
		}
	}

	// Shard mode: the full service keeps its HTTP API (operators register
	// and sample through it as usual) and additionally answers the front
	// tier's scattered rank/register RPCs on the fabric address.
	if *join != "" {
		shardSrv, err := cluster.ServeShard(svc, *join)
		if err != nil {
			fail("%v", err)
		}
		//lint:ignore errsink process-exit cleanup; a close error after serving has no consumer
		defer shardSrv.Close()
		fmt.Printf("serving as cluster shard on %s (netsearch fabric)\n", shardSrv.Addr())
	}

	handler := svc.Handler()
	if *pprofOn {
		// pprof is opt-in: mounting it on the service mux would expose
		// profiling endpoints on every deployment. We wrap instead of
		// importing for DefaultServeMux side effects.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		fmt.Printf("pprof enabled at http://%s/debug/pprof/\n", *addr)
	}

	fmt.Printf("selection service listening on http://%s\n", *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fail("%v", err)
	}
}
