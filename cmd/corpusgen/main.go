// Command corpusgen generates the synthetic test corpora and reports
// their Table 1 characteristics. With -sample it prints example documents
// so the reader can see what the generator produces.
//
// Usage:
//
//	corpusgen [-corpus all|CACM|WSJ88|TREC123|Support] [-scale 1] [-sample 0]
//	          [-serve addr]
//
// With -serve, corpusgen builds the corpus's index and serves it as a
// netsearch database — handy for exercising qbsample -addr against a
// separate process.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/netsearch"
)

func main() {
	name := flag.String("corpus", "all", "corpus to generate (all, CACM, WSJ88, TREC123, Support)")
	scale := flag.Float64("scale", 1.0, "document count multiplier")
	sample := flag.Int("sample", 0, "print this many example documents")
	serve := flag.String("serve", "", "serve the corpus as a netsearch database on this address")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "corpusgen: "+format+"\n", args...)
		os.Exit(1)
	}

	var profiles []corpus.Profile
	if *name == "all" {
		profiles = append(corpus.Profiles(), corpus.Support())
	} else {
		suite := experiments.NewSuite(1, 1)
		env, err := suite.Env(*name)
		if err != nil {
			fail("%v", err)
		}
		profiles = []corpus.Profile{env.Profile}
	}

	if *serve != "" && len(profiles) != 1 {
		fail("-serve requires a single -corpus")
	}

	for _, p := range profiles {
		p = corpus.Scaled(p, *scale)
		docs, err := p.Generate()
		if err != nil {
			fail("%v", err)
		}
		st := corpus.ComputeStats(p.Name, docs, analysis.Raw())
		fmt.Printf("%s: %d docs, %d unique terms, %d total terms, %d bytes, %d topics\n",
			st.Name, st.Docs, st.UniqueTerms, st.TotalTerms, st.Bytes, st.Topics)
		for i := 0; i < *sample && i < len(docs); i++ {
			text := docs[i].Text
			if len(text) > 200 {
				text = text[:200] + "..."
			}
			fmt.Printf("  [%d] %s\n      %s\n", docs[i].ID, docs[i].Title, text)
		}
		if *serve != "" {
			ix := index.Build(docs, analysis.Database(), index.InQuery)
			srv, err := netsearch.Serve(ix, *serve)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("serving %s on %s (ctrl-c to stop)\n", p.Name, srv.Addr())
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
			srv.Close()
		}
	}
}
