package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSamplerThroughput/snapshots=off-8   91   13000000 ns/op   15060 docs/s   6635212 B/op   68381 allocs/op
BenchmarkSamplerThroughput/snapshots=off-8   90   15000000 ns/op   14900 docs/s   6635300 B/op   68382 allocs/op
BenchmarkSamplerThroughput/snapshots=off-8   92   11000000 ns/op   15200 docs/s   6635100 B/op   68380 allocs/op
BenchmarkSuiteBaselines/parallel=1-8          1  1066174286 ns/op 291357008 B/op  569657 allocs/op
PASS
ok   repro 5.976s
`

func TestParseBenchMedians(t *testing.T) {
	sum, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := sum.Benchmarks["SamplerThroughput/snapshots=off"]
	if !ok {
		t.Fatalf("missing benchmark; have %v", sum.Benchmarks)
	}
	if got.NsPerOp != 13000000 {
		t.Errorf("median ns/op = %v, want 13000000", got.NsPerOp)
	}
	if got.Runs != 3 {
		t.Errorf("runs = %d, want 3", got.Runs)
	}
	if got.BytesPerOp != 6635212 {
		t.Errorf("median B/op = %v, want 6635212", got.BytesPerOp)
	}
	if one := sum.Benchmarks["SuiteBaselines/parallel=1"]; one.NsPerOp != 1066174286 {
		t.Errorf("single-run ns/op = %v", one.NsPerOp)
	}
}

func TestBenchKey(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":             "Foo",
		"BenchmarkFoo/sub=case-16":   "Foo/sub=case",
		"BenchmarkFoo":               "Foo",
		"BenchmarkFoo/n=-1-8":        "Foo/n=-1", // only the procs suffix is stripped
		"BenchmarkSamplerThroughput": "SamplerThroughput",
	}
	for in, want := range cases {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Summary{Benchmarks: map[string]Result{
		"Fast":    {NsPerOp: 100, Runs: 5},
		"Slowed":  {NsPerOp: 100, Runs: 5},
		"Removed": {NsPerOp: 100, Runs: 5},
	}}
	cur := &Summary{Benchmarks: map[string]Result{
		"Fast":   {NsPerOp: 110, Runs: 5}, // +10%: within threshold
		"Slowed": {NsPerOp: 140, Runs: 5}, // +40%: regression
		"Added":  {NsPerOp: 50, Runs: 5},
	}}
	report, regressions := compare(base, cur, 0.25)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, report)
	}
	for _, want := range []string{"REGRESSION", "missing", "new"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Index(report, "Fast") > strings.Index(report, "Removed") {
		t.Errorf("report rows not sorted:\n%s", report)
	}
}

func TestMissingRequired(t *testing.T) {
	sum := &Summary{Benchmarks: map[string]Result{
		"Rank100DBs/alg=cori/path=compiled": {NsPerOp: 1},
		"SamplerThroughput/snapshots=off":   {NsPerOp: 1},
	}}
	cases := []struct {
		spec string
		want []string
	}{
		{"", nil},
		{"Rank100DBs", nil},                             // substring covers sub-benchmarks
		{"Rank100DBs,SamplerThroughput", nil},           // all present
		{"TokenizeASCII", []string{"TokenizeASCII"}},    // absent
		{" Rank100DBs , Ghost ,", []string{"Ghost"}},    // spaces and empty tokens ignored
		{"Ghost,Phantom", []string{"Ghost", "Phantom"}}, // order preserved
	}
	for _, c := range cases {
		got := missingRequired(sum, c.spec)
		if len(got) != len(c.want) {
			t.Errorf("missingRequired(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("missingRequired(%q) = %v, want %v", c.spec, got, c.want)
				break
			}
		}
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	base := &Summary{Benchmarks: map[string]Result{"B": {NsPerOp: 100}}}
	cur := &Summary{Benchmarks: map[string]Result{"B": {NsPerOp: 125}}}
	if _, n := compare(base, cur, 0.25); n != 0 {
		t.Fatalf("exactly +25%% should pass, got %d regressions", n)
	}
}

func TestCompareMetricsDirectionAware(t *testing.T) {
	base := &Summary{
		Benchmarks: map[string]Result{"B": {NsPerOp: 100}},
		Metrics: map[string]Metric{
			"loadgen/run/qps":    {Value: 1000, Unit: "qps", HigherIsBetter: true},
			"loadgen/run/p99_us": {Value: 500, Unit: "us"},
			"loadgen/gone/qps":   {Value: 10, HigherIsBetter: true},
			"loadgen/steady/qps": {Value: 100, HigherIsBetter: true},
		},
	}
	cur := &Summary{
		Benchmarks: map[string]Result{"B": {NsPerOp: 100}},
		Metrics: map[string]Metric{
			"loadgen/run/qps":    {Value: 600, HigherIsBetter: true}, // -40% throughput: regression
			"loadgen/run/p99_us": {Value: 800},                       // +60% latency: regression
			"loadgen/steady/qps": {Value: 120, HigherIsBetter: true}, // +20% throughput: improvement
			"loadgen/new/qps":    {Value: 5, HigherIsBetter: true},
		},
	}
	report, regressions := compare(base, cur, 0.25)
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (qps drop + p99 rise)\n%s", regressions, report)
	}
	for _, want := range []string{"metric", "missing", "new"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareMetricsHigherIsBetterRiseIsNotRegression(t *testing.T) {
	base := &Summary{
		Benchmarks: map[string]Result{},
		Metrics:    map[string]Metric{"qps": {Value: 100, HigherIsBetter: true}},
	}
	cur := &Summary{
		Benchmarks: map[string]Result{},
		Metrics:    map[string]Metric{"qps": {Value: 400, HigherIsBetter: true}},
	}
	if report, n := compare(base, cur, 0.25); n != 0 {
		t.Fatalf("a 4x throughput gain flagged as regression (%d)\n%s", n, report)
	}
}

func TestMissingRequiredSearchesMetrics(t *testing.T) {
	sum := &Summary{
		Benchmarks: map[string]Result{"Rank100DBs": {NsPerOp: 1}},
		Metrics:    map[string]Metric{"loadgen/batch/qps": {Value: 1}},
	}
	if got := missingRequired(sum, "loadgen/batch,Rank100DBs"); got != nil {
		t.Errorf("metrics not searched: missing = %v", got)
	}
	if got := missingRequired(sum, "loadgen/single"); len(got) != 1 {
		t.Errorf("absent metric not reported: missing = %v", got)
	}
}
