// Command benchdiff records `go test -bench` output as a JSON summary and
// compares two summaries, failing on performance regressions. It is the
// engine of the CI bench job (see .github/workflows/ci.yml):
//
//	go test . -run xxx -bench '...' -benchmem -count=5 | benchdiff record -o BENCH_$(git rev-parse HEAD).json
//	benchdiff compare -threshold 0.25 BENCH_baseline.json BENCH_<sha>.json
//
// record parses the standard benchmark output format and keeps, per
// benchmark name, the median over the repeated -count runs — the median is
// robust to a single noisy run, which matters on shared CI machines.
// compare prints a table of baseline vs current ns/op and exits nonzero if
// any benchmark slowed down by more than the threshold fraction.
//
// Benchmark names are recorded without the GOMAXPROCS "-8" suffix so a
// baseline recorded on one machine keys correctly against runs on hosts
// with different CPU counts.
//
// Besides benchmark output, record ingests named scalar metrics from
// loadgen JSON reports (-load, repeatable) and merges previously recorded
// summaries (-merge), so one BENCH_baseline.json carries both ns/op
// numbers and serving metrics like loadgen/batch/qps. Metrics are
// direction-aware: compare fails a lower-is-better metric (p99_us) that
// grew and a higher-is-better metric (qps) that shrank by more than the
// threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's summary: medians over the repeated runs.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// Metric is one named scalar from a load report (the shape
// internal/loadgen emits): direction-aware, so QPS drops and latency
// rises both read as regressions.
type Metric struct {
	Value          float64 `json:"value"`
	Unit           string  `json:"unit,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
}

// Summary is the on-disk JSON format (BENCH_*.json).
type Summary struct {
	Benchmarks map[string]Result `json:"benchmarks"`
	Metrics    map[string]Metric `json:"metrics,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchdiff record [-o out.json] [-require name[,name...]] [-load report.json]... [-merge summary.json] [bench-output.txt]
  benchdiff compare [-threshold 0.25] baseline.json current.json`)
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	require := fs.String("require", "", "comma-separated name substrings (benchmarks or metrics) that must appear in the recording")
	merge := fs.String("merge", "", "previously recorded summary to merge benchmarks and metrics from")
	var loads []string
	fs.Func("load", "loadgen JSON report to ingest metrics from (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	fs.Parse(args)

	sum := &Summary{Benchmarks: map[string]Result{}}
	// Bench text comes from the positional file when given, from stdin
	// when no -load/-merge flag asks for a metrics-only recording — so
	// existing `go test -bench | benchdiff record` pipelines are untouched.
	readBench := fs.NArg() > 0 || (len(loads) == 0 && *merge == "")
	if readBench {
		in := io.Reader(os.Stdin)
		if fs.NArg() > 0 {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				fail("%v", err)
			}
			//lint:ignore errsink file opened for reading; close cannot lose data
			defer f.Close()
			in = f
		}
		var err error
		sum, err = parseBench(in)
		if err != nil {
			fail("%v", err)
		}
		if len(sum.Benchmarks) == 0 {
			fail("no benchmark lines found in input")
		}
	}
	if *merge != "" {
		prev, err := readSummary(*merge)
		if err != nil {
			fail("%v", err)
		}
		for name, r := range prev.Benchmarks {
			if _, dup := sum.Benchmarks[name]; dup {
				fail("benchmark %q recorded twice (input and -merge %s)", name, *merge)
			}
			sum.Benchmarks[name] = r
		}
		addMetrics(sum, prev.Metrics, *merge)
	}
	for _, path := range loads {
		addMetrics(sum, loadMetrics(path), path)
	}
	if missing := missingRequired(sum, *require); len(missing) > 0 {
		// A required benchmark or metric silently vanishing (renamed,
		// filtered out by a narrowed -bench pattern, a loadgen label typo)
		// would otherwise produce a baseline that can never flag its
		// regressions.
		fail("required benchmark(s)/metric(s) missing from recording: %s", strings.Join(missing, ", "))
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "recorded %d benchmarks, %d metrics to %s\n",
		len(sum.Benchmarks), len(sum.Metrics), *out)
}

// loadMetrics pulls the named metrics out of a loadgen JSON report.
func loadMetrics(path string) map[string]Metric {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var rep struct {
		Metrics map[string]Metric `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		fail("%s: %v", path, err)
	}
	if len(rep.Metrics) == 0 {
		fail("%s: no metrics in load report", path)
	}
	return rep.Metrics
}

// addMetrics merges metrics into the summary, refusing duplicate keys —
// two loadgen runs recorded under the same label is a harness bug that
// would silently keep only one of them.
func addMetrics(sum *Summary, metrics map[string]Metric, src string) {
	if len(metrics) == 0 {
		return
	}
	if sum.Metrics == nil {
		sum.Metrics = map[string]Metric{}
	}
	for name, m := range metrics {
		if _, dup := sum.Metrics[name]; dup {
			fail("metric %q recorded twice (second source: %s); use distinct -label values", name, src)
		}
		sum.Metrics[name] = m
	}
}

// missingRequired returns, in input order, the -require tokens that match
// no recorded benchmark or metric name (substring match, so "Rank100DBs"
// covers all its sub-benchmarks and "loadgen/" covers every load metric).
// An empty spec requires nothing.
func missingRequired(sum *Summary, spec string) []string {
	var missing []string
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		found := false
		for name := range sum.Benchmarks {
			if strings.Contains(name, tok) {
				found = true
				break
			}
		}
		for name := range sum.Metrics {
			if found {
				break
			}
			if strings.Contains(name, tok) {
				found = true
			}
		}
		if !found {
			missing = append(missing, tok)
		}
	}
	return missing
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.25, "fail when ns/op grows by more than this fraction")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	base, err := readSummary(fs.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	cur, err := readSummary(fs.Arg(1))
	if err != nil {
		fail("%v", err)
	}
	report, regressions := compare(base, cur, *threshold)
	fmt.Print(report)
	if regressions > 0 {
		fail("%d benchmark(s)/metric(s) regressed more than %.0f%%", regressions, *threshold*100)
	}
}

func readSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// parseBench reads `go test -bench` output and returns per-benchmark
// medians. Lines look like
//
//	BenchmarkName/sub=case-8   91   13352078 ns/op   15060 docs/s   6635212 B/op   68381 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs; units other
// than ns/op, B/op and allocs/op (custom b.ReportMetric units) are skipped.
func parseBench(r io.Reader) (*Summary, error) {
	type samples struct{ ns, bytes, allocs []float64 }
	acc := map[string]*samples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := benchKey(fields[0])
		s := acc[name]
		if s == nil {
			s = &samples{}
			acc[name] = s
		}
		// fields[1] is the iteration count; value/unit pairs follow.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "B/op":
				s.bytes = append(s.bytes, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sum := &Summary{Benchmarks: map[string]Result{}}
	for name, s := range acc {
		if len(s.ns) == 0 {
			continue
		}
		sum.Benchmarks[name] = Result{
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
			Runs:        len(s.ns),
		}
	}
	return sum, nil
}

// benchKey strips the "Benchmark" prefix and the trailing GOMAXPROCS
// suffix ("-8") so keys are stable across machines.
func benchKey(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// median returns the middle value (average of the two middles for even
// counts); 0 for an empty slice.
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 0 {
		return (sorted[mid-1] + sorted[mid]) / 2
	}
	return sorted[mid]
}

// compare renders a baseline-vs-current table and counts regressions: a
// benchmark regresses when its ns/op grew by more than threshold. Missing
// and new benchmarks are reported but never fail the comparison (a renamed
// benchmark should not break CI; the baseline refresh catches it).
func compare(base, cur *Summary, threshold float64) (string, int) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	regressions := 0
	fmt.Fprintf(&b, "%-52s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, name := range names {
		bb := base.Benchmarks[name]
		cc, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(&b, "%-52s %14.0f %14s %8s\n", name, bb.NsPerOp, "-", "missing")
			continue
		}
		delta := 0.0
		if bb.NsPerOp > 0 {
			delta = (cc.NsPerOp - bb.NsPerOp) / bb.NsPerOp
		}
		mark := ""
		if delta > threshold {
			regressions++
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(&b, "%-52s %14.0f %14.0f %+7.1f%%%s\n", name, bb.NsPerOp, cc.NsPerOp, delta*100, mark)
	}
	extra := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(&b, "%-52s %14s %14.0f %8s\n", name, "-", cur.Benchmarks[name].NsPerOp, "new")
	}
	regressions += compareMetrics(&b, base, cur, threshold)
	return b.String(), regressions
}

// compareMetrics renders the named-metric rows and counts regressions
// direction-aware: a lower-is-better metric (p99_us) regresses when it
// grows past the threshold, a higher-is-better one (qps) when it shrinks
// past it. The direction comes from the baseline entry, so a current run
// cannot flip a metric's polarity to dodge the gate. Missing and new
// metrics are reported but non-fatal, like benchmarks.
func compareMetrics(b *strings.Builder, base, cur *Summary, threshold float64) int {
	if len(base.Metrics) == 0 && len(cur.Metrics) == 0 {
		return 0
	}
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(b, "%-52s %14s %14s %8s\n", "metric", "base", "cur", "delta")
	for _, name := range names {
		bm := base.Metrics[name]
		cm, ok := cur.Metrics[name]
		if !ok {
			fmt.Fprintf(b, "%-52s %14.1f %14s %8s\n", name, bm.Value, "-", "missing")
			continue
		}
		delta := 0.0
		if bm.Value != 0 {
			delta = (cm.Value - bm.Value) / bm.Value
		}
		worse := delta
		if bm.HigherIsBetter {
			worse = -delta
		}
		mark := ""
		if worse > threshold {
			regressions++
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(b, "%-52s %14.1f %14.1f %+7.1f%%%s\n", name, bm.Value, cm.Value, delta*100, mark)
	}
	extra := make([]string, 0, len(cur.Metrics))
	for name := range cur.Metrics {
		if _, ok := base.Metrics[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(b, "%-52s %14s %14.1f %8s\n", name, "-", cur.Metrics[name].Value, "new")
	}
	return regressions
}
