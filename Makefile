# Reproduction of "Automatic Discovery of Language Models for Text
# Databases" (Callan, Connell & Du, SIGMOD 1999).
#
# The targets mirror the checks CI and the PR process run: `make test`
# is the tier-1 gate, `make race` exercises the parallel experiment
# engine under the race detector, `make bench` records throughput.

GO ?= go

.PHONY: all build test race bench vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The suite caches, worker pool, and copy-on-write snapshots are shared
# across goroutines; the race detector over internal/... is the gate
# that keeps them honest.
race:
	$(GO) test -race ./internal/...

# Throughput benchmarks: sampler docs/s and queries/s, the parallel
# sampling fan-out, and the sequential-vs-parallel baseline sweep.
bench:
	$(GO) test . -run xxx -bench 'SamplerThroughput|SuiteBaselines' -benchmem

# Every benchmark (regenerates each table/figure once per iteration).
bench-all:
	$(GO) test . -run xxx -bench . -benchtime=1x

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
