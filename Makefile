# Reproduction of "Automatic Discovery of Language Models for Text
# Databases" (Callan, Connell & Du, SIGMOD 1999).
#
# The targets mirror the checks CI and the PR process run: `make test`
# is the tier-1 gate, `make race` exercises the parallel experiment
# engine under the race detector, `make bench` records throughput.

GO ?= go

# Budget for each fuzz target in fuzz-smoke; CI keeps it short.
FUZZTIME ?= 10s

.PHONY: all build test race bench vet lint chaos fuzz-smoke ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The suite caches, worker pool, and copy-on-write snapshots are shared
# across goroutines; the race detector over internal/... is the gate
# that keeps them honest.
race:
	$(GO) test -race ./internal/...

# Throughput benchmarks: sampler docs/s and queries/s, the parallel
# sampling fan-out, and the sequential-vs-parallel baseline sweep.
bench:
	$(GO) test . -run xxx -bench 'SamplerThroughput|SuiteBaselines' -benchmem

# Every benchmark (regenerates each table/figure once per iteration).
bench-all:
	$(GO) test . -run xxx -bench . -benchtime=1x

vet:
	$(GO) vet ./...

# repolint enforces the determinism/concurrency invariants (randomness
# via internal/randx, no wall clock on golden paths, no map-order
# leaks, fan-out through internal/parallel, no locks by value). Zero
# unsuppressed findings is the bar; suppressions need a reason.
lint:
	$(GO) run ./cmd/repolint ./...

# Chaos suite: deterministic fault injection (internal/faulty) driving
# the sampling fabric end to end — injected transport faults, truncated
# frames, server restarts, tripped circuit breakers — always under the
# race detector. Every fault pattern is seeded, so failures replay.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/netsearch ./internal/service ./internal/faulty

# Short-budget fuzz pass over the parser-shaped attack surfaces:
# tokenization, stemming, and the two model readers. Each target gets
# FUZZTIME; failures reproduce with `go test -fuzz` on the package.
fuzz-smoke:
	$(GO) test ./internal/analysis -run xxx -fuzz '^FuzzTokenize$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/analysis -run xxx -fuzz '^FuzzPorter$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/langmodel -run xxx -fuzz '^FuzzRead$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/langmodel -run xxx -fuzz '^FuzzReadBinary$$' -fuzztime=$(FUZZTIME)

# The full local gate: everything CI runs, in the same order.
ci: build vet lint test race chaos fuzz-smoke

clean:
	$(GO) clean ./...
