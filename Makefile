# Reproduction of "Automatic Discovery of Language Models for Text
# Databases" (Callan, Connell & Du, SIGMOD 1999).
#
# The targets mirror the checks CI and the PR process run: `make test`
# is the tier-1 gate, `make race` exercises the parallel experiment
# engine under the race detector, `make bench` records throughput.

GO ?= go

# Budget for each fuzz target in fuzz-smoke; CI keeps it short.
FUZZTIME ?= 10s

# Tier-1 benchmark set for the regression gate (see bench-check).
BENCH_PATTERN := SamplerThroughput|SuiteBaselines|Rank100DBs|TokenizeASCII|SearchScored|SnapshotLoad|IncrementalRecompile|RepolintFullRepo|ScatterGather|BatchRank
# Benchmarks that must be present in every recording; benchdiff record
# fails otherwise, so a renamed/filtered-out rank benchmark cannot
# silently drop out of the regression gate.
BENCH_REQUIRE := Rank100DBs,SnapshotLoad,IncrementalRecompile,RepolintFullRepo,ScatterGather,BatchRank
# Repeated runs per benchmark; benchdiff keeps the median, which is what
# makes a 25% threshold usable on noisy shared CI machines.
BENCH_COUNT ?= 5
BENCH_OUT ?= BENCH_current.json

# Ratcheted statement-coverage floor over ./internal/... — raise it as
# coverage grows; never lower it to admit a regression. Current: 86.5%.
COVER_FLOOR ?= 86.2

# Load-smoke workload size. CI keeps it short; quadruple locally when
# refreshing the committed baseline on a quiet machine.
LOAD_REQUESTS ?= 200
# The four load reports the gate diffs: sequential /rank against a
# single-process service, POST /rank/batch against a 2-shard front, the
# same front streamed (?stream=1, TTFR percentiles), and a duplicate-heavy
# workload that exercises both coalescing tiers. Distinct -label values
# keep their metric keys apart in one summary.
LOAD_REPORTS := LOADGEN_single.json LOADGEN_batch.json LOADGEN_stream.json LOADGEN_dup.json
LOAD_REQUIRE := loadgen/single/qps,loadgen/single/p99_us,loadgen/batch/qps,loadgen/batch/p99_us,loadgen/stream/qps,loadgen/stream/p99_us,loadgen/stream/ttfr_us,loadgen/dup/qps,loadgen/dup/p99_us
# The load gate's regression threshold. Wider than the benchmark gate's
# 25%: ns/op numbers are 5-run medians, while each load metric is one
# draw of a client-side quantile on a shared runner — its run-to-run
# spread is real serving jitter, not measurement error benchdiff can
# median away. The committed baseline values are 5-run medians (see
# bench-baseline), which centers the comparison but cannot narrow the
# current run's draw.
LOAD_THRESHOLD ?= 0.5

.PHONY: all build test race bench bench-all bench-check bench-baseline \
	cover vet lint lint-sarif chaos fuzz-smoke snapshot-fuzz \
	load-smoke stream-smoke load-gate ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The suite caches, worker pool, and copy-on-write snapshots are shared
# across goroutines; the race detector over internal/... is the gate
# that keeps them honest.
race:
	$(GO) test -race ./internal/...

# Throughput benchmarks: sampler docs/s and queries/s, the parallel
# sampling fan-out, and the sequential-vs-parallel baseline sweep.
bench:
	$(GO) test . -run xxx -bench 'SamplerThroughput|SuiteBaselines' -benchmem

# Every benchmark (regenerates each table/figure once per iteration).
bench-all:
	$(GO) test . -run xxx -bench . -benchtime=1x

# Benchmark regression gate: run the tier-1 set BENCH_COUNT times, record
# the medians to BENCH_OUT (CI uploads it as an artifact), and fail if any
# benchmark's ns/op grew more than 25% over the committed baseline.
bench-check:
	$(GO) test . -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) | tee bench.txt
	$(GO) run ./cmd/benchdiff record -o $(BENCH_OUT) -require $(BENCH_REQUIRE) bench.txt
	$(GO) run ./cmd/benchdiff compare -threshold 0.25 BENCH_baseline.json $(BENCH_OUT)

# Refresh the committed baseline. Run on a quiet machine and commit the
# resulting BENCH_baseline.json together with the change that shifted it.
# The baseline carries both benchmark medians and the loadgen serving
# metrics (QPS, p99), so one file anchors both gates.
bench-baseline: load-smoke stream-smoke
	$(GO) test . -run xxx -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) | tee bench.txt
	$(GO) run ./cmd/benchdiff record -o BENCH_baseline.json -require $(BENCH_REQUIRE) \
		$(foreach r,$(LOAD_REPORTS),-load $(r)) bench.txt

# Reproducible load smoke: replay the seeded Zipf workload against two
# spawned loopback deployments (no external service, models synthetic
# and warm) and write client-side QPS + exact latency quantiles. Any
# request-level failure exits nonzero, so the smoke is a gate by itself.
# The single-query run uses fewer workers and 8x requests: each request
# is so cheap that at high concurrency its gated p99 measured worker
# queueing jitter, not the serving path.
load-smoke:
	$(GO) run ./cmd/loadgen -spawn -requests $$((8 * $(LOAD_REQUESTS))) -workers 4 \
		-label single -report LOADGEN_single.json
	$(GO) run ./cmd/loadgen -spawn -spawn-shards 2 -batch 8 -workers 8 \
		-requests $(LOAD_REQUESTS) -label batch -report LOADGEN_batch.json

# Streaming + coalescing smoke (DESIGN.md §15): the same 2-shard front
# consumed as NDJSON frames (every frame validated, TTFR p50/p95/p99
# recorded) and a duplicate-heavy batched workload whose hot pool
# exercises both coalescing tiers — batched so within-batch dedup runs
# hot, and at 8x requests because coalescing makes each request cheap
# enough that the gated p99 needs the larger sample to measure the
# serving path rather than one-scheduler-hiccup noise. Both reports
# feed the load gate; load-gate and bench-baseline expect load-smoke
# AND stream-smoke to have run first.
stream-smoke:
	$(GO) run ./cmd/loadgen -spawn -spawn-shards 2 -batch 16 -stream -workers 8 \
		-requests $(LOAD_REQUESTS) -label stream -report LOADGEN_stream.json
	$(GO) run ./cmd/loadgen -spawn -dup-rate 0.6 -batch 8 -workers 8 \
		-requests $$((8 * $(LOAD_REQUESTS))) -label dup -report LOADGEN_dup.json

# Serving-regression gate: fold the load reports into a benchdiff
# summary and diff its metrics against the committed baseline — QPS
# dropping or p99/TTFR growing by more than LOAD_THRESHOLD fails,
# direction-aware, exactly like ns/op for benchmarks.
load-gate:
	$(GO) run ./cmd/benchdiff record -o LOADGEN_summary.json \
		-require $(LOAD_REQUIRE) $(foreach r,$(LOAD_REPORTS),-load $(r))
	$(GO) run ./cmd/benchdiff compare -threshold $(LOAD_THRESHOLD) BENCH_baseline.json LOADGEN_summary.json

# Statement coverage over internal/... with a ratcheted floor: the per-
# package table comes from go test itself, the total is gated against
# COVER_FLOOR.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | grep -o '[0-9.]*%' | tr -d '%'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "FAIL: total coverage %.1f%% is below the %.1f%% floor\n", t, floor; exit 1 } \
		printf "total coverage %.1f%% (floor %.1f%%)\n", t, floor }'

vet:
	$(GO) vet ./...

# repolint enforces the determinism/concurrency invariants (randomness
# via internal/randx, no wall clock on golden paths, no map-order
# leaks, fan-out through internal/parallel, no locks by value) plus the
# dataflow proofs (hotpath allocation-freedom, lock discipline, RCU
# atomic consistency, goroutine/defer error sinks). Zero unsuppressed
# findings is the bar; suppressions need a reason. Exit codes: 0 clean,
# 1 findings (stdout), 2 repolint could not run (stderr).
lint:
	$(GO) run ./cmd/repolint ./...

# Same gate, plus a SARIF 2.1.0 log for code-scanning UIs; CI uploads
# repolint.sarif as an artifact. The exit code still counts only
# unsuppressed findings — the log additionally carries suppressed ones
# with their //lint:ignore justifications for auditing.
lint-sarif:
	$(GO) run ./cmd/repolint -sarif repolint.sarif ./...

# Chaos suite: deterministic fault injection (internal/faulty) driving
# the sampling fabric and the scatter-gather cluster end to end —
# injected transport faults, truncated frames, server restarts, tripped
# circuit breakers, a shard killed mid-query — always under the race
# detector. Every fault pattern is seeded, so failures replay.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/netsearch ./internal/service ./internal/faulty ./internal/cluster ./internal/loadgen

# Short-budget fuzz pass over the parser-shaped attack surfaces:
# tokenization, stemming, and the two model readers. Each target gets
# FUZZTIME; failures reproduce with `go test -fuzz` on the package.
fuzz-smoke:
	$(GO) test ./internal/analysis -run xxx -fuzz '^FuzzTokenize$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/analysis -run xxx -fuzz '^FuzzPorter$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/langmodel -run xxx -fuzz '^FuzzRead$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/langmodel -run xxx -fuzz '^FuzzReadBinary$$' -fuzztime=$(FUZZTIME)

# Snapshot decoder fuzz smoke: mutated headers, section tables, and
# payloads against the QBSNAP1 reader. The decoder must reject every
# corruption with an error, never a panic or a silently-wrong Compiled.
snapshot-fuzz:
	$(GO) test ./internal/selection -run xxx -fuzz '^FuzzDecodeSnapshot$$' -fuzztime=$(FUZZTIME)

# The full local gate: everything CI runs, in the same order.
ci: build vet lint test race chaos fuzz-smoke snapshot-fuzz cover bench-check load-smoke stream-smoke load-gate

clean:
	$(GO) clean ./...
