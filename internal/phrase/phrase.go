// Package phrase extends language models beyond single terms. The paper
// notes that "more complex language models might include information about
// phrases or other term co-occurrence information" (§2.1) and that sampled
// documents make richer models possible because the service holds full
// text, not just whatever statistics a provider chose to export (§7).
//
// A bigram model is represented as an ordinary langmodel.Model whose terms
// are adjacent-word pairs joined with a space ("white house"), so all the
// existing metrics (ctf ratio, Spearman, rdiff) apply to phrase models
// unchanged — and the ext-phrase experiment measures how quickly phrase
// statistics converge under sampling compared to unigram statistics.
package phrase

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/langmodel"
)

// Bigrams converts a token stream into adjacent-pair pseudo-terms. With
// stop non-nil, pairs containing a stopword are dropped — the classic
// "phrase" definition of 1990s IR engines (content-word pairs only).
func Bigrams(tokens []string, stop *analysis.Stoplist) []string {
	if len(tokens) < 2 {
		return nil
	}
	out := make([]string, 0, len(tokens)-1)
	for i := 0; i+1 < len(tokens); i++ {
		a, b := tokens[i], tokens[i+1]
		if stop.Contains(a) || stop.Contains(b) {
			continue
		}
		out = append(out, a+" "+b)
	}
	return out
}

// Split returns the two words of a bigram pseudo-term.
func Split(bigram string) (string, string) {
	a, b, _ := strings.Cut(bigram, " ")
	return a, b
}

// ModelFromDocs builds a bigram language model over document texts: each
// document contributes its adjacent content-word pairs, with df counted
// per document and ctf per occurrence, mirroring the unigram construction.
func ModelFromDocs(texts []string, an analysis.Analyzer, stop *analysis.Stoplist) *langmodel.Model {
	m := langmodel.New()
	for _, text := range texts {
		m.AddDocument(Bigrams(an.Tokens(text), stop))
	}
	return m
}

// AddDocument folds one document's bigrams into an existing model.
func AddDocument(m *langmodel.Model, text string, an analysis.Analyzer, stop *analysis.Stoplist) {
	m.AddDocument(Bigrams(an.Tokens(text), stop))
}
