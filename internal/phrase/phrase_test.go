package phrase

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
)

func TestBigramsBasic(t *testing.T) {
	got := Bigrams([]string{"white", "house", "press"}, nil)
	want := []string{"white house", "house press"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Bigrams = %v, want %v", got, want)
	}
}

func TestBigramsShortInputs(t *testing.T) {
	if got := Bigrams(nil, nil); got != nil {
		t.Errorf("nil tokens -> %v", got)
	}
	if got := Bigrams([]string{"solo"}, nil); got != nil {
		t.Errorf("single token -> %v", got)
	}
}

func TestBigramsStopwordFiltering(t *testing.T) {
	stop := analysis.InqueryStoplist()
	got := Bigrams([]string{"the", "white", "house", "of", "cards"}, stop)
	want := []string{"white house"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Bigrams = %v, want %v", got, want)
	}
}

func TestBigramsCountProperty(t *testing.T) {
	// Without a stoplist, n tokens yield exactly n-1 bigrams.
	if err := quick.Check(func(raw [12]uint8, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		tokens := make([]string, n)
		for i := range tokens {
			tokens[i] = string(rune('a' + raw[i%12]%26))
		}
		return len(Bigrams(tokens, nil)) == n-1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	a, b := Split("white house")
	if a != "white" || b != "house" {
		t.Errorf("Split = %q, %q", a, b)
	}
}

func TestModelFromDocs(t *testing.T) {
	texts := []string{
		"stock market rally continues",
		"stock market slump deepens",
	}
	m := ModelFromDocs(texts, analysis.Raw(), nil)
	if m.DF("stock market") != 2 {
		t.Errorf("df(stock market) = %d, want 2", m.DF("stock market"))
	}
	if m.DF("market rally") != 1 {
		t.Errorf("df(market rally) = %d, want 1", m.DF("market rally"))
	}
	if m.Docs() != 2 {
		t.Errorf("docs = %d", m.Docs())
	}
}

func TestAddDocumentIncremental(t *testing.T) {
	m := ModelFromDocs([]string{"alpha beta gamma"}, analysis.Raw(), nil)
	AddDocument(m, "alpha beta again", analysis.Raw(), nil)
	if m.DF("alpha beta") != 2 {
		t.Errorf("df(alpha beta) = %d, want 2", m.DF("alpha beta"))
	}
	if m.Docs() != 2 {
		t.Errorf("docs = %d", m.Docs())
	}
}

func TestBigramVocabularyLargerThanUnigram(t *testing.T) {
	// A structural property the ext-phrase experiment relies on: phrase
	// vocabularies are far larger and sparser than unigram vocabularies.
	// Same ten words in varying orders: unigram vocabulary stays at ten
	// while bigram vocabulary multiplies.
	text := "one two three four five six seven eight nine ten " +
		"two four six eight ten one three five seven nine " +
		"ten nine eight seven six five four three two one"
	an := analysis.Raw()
	tokens := an.Tokens(text)
	uni := map[string]bool{}
	for _, t2 := range tokens {
		uni[t2] = true
	}
	bi := map[string]bool{}
	for _, b := range Bigrams(tokens, nil) {
		bi[b] = true
	}
	if len(bi) <= len(uni) {
		t.Errorf("bigram vocab %d not larger than unigram %d", len(bi), len(uni))
	}
}
