// Package faulty injects deterministic faults into the sampling fabric.
//
// The selection service samples databases it does not control (§3), which
// in practice means flaky networks, restarting servers, and slow peers.
// This package is the test double for that world: a core.Database wrapper
// that fails a seeded fraction of calls, and a net.Conn wrapper that
// drops, truncates, and delays frames — all driven by internal/randx, so
// every "random" outage replays bit-identically from its seed.
//
// Composition points:
//
//   - DB wraps any core.Database; hand it to netsearch.Serve to make the
//     remote side flaky, or register it locally to exercise the service's
//     health tracking and circuit breaker.
//   - Conn wraps any net.Conn; Dialer plugs it into
//     netsearch.Options.DialFunc to make the transport flaky underneath a
//     retrying client.
package faulty

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/randx"
)

// ErrInjected is the root of every error this package injects; test for
// it with errors.Is.
var ErrInjected = errors.New("faulty: injected failure")

// DB wraps a core.Database and fails a deterministic, seeded fraction of
// calls. It is safe for concurrent use. The error rate can be changed at
// runtime (SetRate), so a test can break a database, watch the circuit
// breaker trip, heal it, and watch a probe close the circuit again.
type DB struct {
	inner core.Database

	mu       sync.Mutex
	rng      *randx.Source
	rate     float64
	calls    int
	injected int
	hook     func(op string, call int)
}

// WrapDB returns a DB that fails each call with probability rate, drawn
// from a stream seeded with seed.
func WrapDB(inner core.Database, seed uint64, rate float64) *DB {
	return &DB{inner: inner, rng: randx.New(seed), rate: rate}
}

// SetRate changes the failure probability; 0 heals the database.
func (d *DB) SetRate(rate float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rate = rate
}

// SetHook installs a callback invoked before every call with the operation
// name and the 1-based call number — the chaos suite's trigger for
// mid-run events like a server restart. The hook runs with the DB's lock
// held and must not call back into the DB.
func (d *DB) SetHook(hook func(op string, call int)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook = hook
}

// Calls returns how many operations have been attempted.
func (d *DB) Calls() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

// Injected returns how many operations were failed by injection.
func (d *DB) Injected() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injected
}

// maybeFail counts the call, fires the hook, and decides injection.
func (d *DB) maybeFail(op string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.calls++
	if d.hook != nil {
		d.hook(op, d.calls)
	}
	if d.rate > 0 && d.rng.Float64() < d.rate {
		d.injected++
		return fmt.Errorf("%w: %s call %d", ErrInjected, op, d.calls)
	}
	return nil
}

// Search implements core.Database.
func (d *DB) Search(query string, n int) ([]int, error) {
	if err := d.maybeFail("search"); err != nil {
		return nil, err
	}
	return d.inner.Search(query, n)
}

// Fetch implements core.Database.
func (d *DB) Fetch(id int) (corpus.Document, error) {
	if err := d.maybeFail("fetch"); err != nil {
		return corpus.Document{}, err
	}
	return d.inner.Fetch(id)
}

// TotalHits forwards hit counting when the wrapped database supports it
// (see sizeest.HitCounter), subject to the same fault injection.
func (d *DB) TotalHits(query string) (int, error) {
	if err := d.maybeFail("count"); err != nil {
		return 0, err
	}
	hc, ok := d.inner.(interface {
		TotalHits(query string) (int, error)
	})
	if !ok {
		return 0, errors.New("faulty: wrapped database does not support counting")
	}
	return hc.TotalHits(query)
}

var _ core.Database = (*DB)(nil)

// ConnOptions configure a fault-injecting Conn.
type ConnOptions struct {
	// Seed seeds the fault stream. Zero means 1.
	Seed uint64
	// WriteRate is the probability each Write fails. An injected write
	// fault is the nastiest one a framed protocol can see: half the frame
	// is delivered before the connection drops.
	WriteRate float64
	// ReadRate is the probability each Read fails (connection dropped).
	ReadRate float64
	// FailWriteCall, when positive, deterministically truncates exactly
	// the n-th Write (1-based) regardless of WriteRate — for scripted
	// protocol-desync regression tests.
	FailWriteCall int
	// MaxLatency, when positive, delays each Read and Write by a uniform
	// duration in [0, MaxLatency) drawn from the fault stream.
	MaxLatency time.Duration
	// Sleep replaces time.Sleep for injected latency (tests). nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

// Conn wraps a net.Conn and injects transport faults per its options. An
// injected fault closes the underlying connection, exactly like a peer
// reset would.
type Conn struct {
	net.Conn

	mu     sync.Mutex
	opts   ConnOptions
	rng    *randx.Source
	writes int
}

// WrapConn wraps c with deterministic fault injection.
func WrapConn(c net.Conn, opts ConnOptions) *Conn {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Conn{Conn: c, opts: opts, rng: randx.New(seed)}
}

// draw decides latency and failure for one IO under the lock; sleeping
// happens outside it.
func (c *Conn) draw(rate float64) (delay time.Duration, fail bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.MaxLatency > 0 {
		delay = time.Duration(c.rng.Float64() * float64(c.opts.MaxLatency))
	}
	fail = rate > 0 && c.rng.Float64() < rate
	return delay, fail
}

func (c *Conn) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.opts.Sleep != nil {
		c.opts.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	delay, fail := c.draw(c.opts.ReadRate)
	c.sleep(delay)
	if fail {
		c.Conn.Close()
		return 0, fmt.Errorf("read: %w", ErrInjected)
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn. An injected fault delivers the first half of
// p to the peer, then drops the connection — a truncated frame.
func (c *Conn) Write(p []byte) (int, error) {
	delay, fail := c.draw(c.opts.WriteRate)
	c.mu.Lock()
	c.writes++
	if c.opts.FailWriteCall > 0 && c.writes == c.opts.FailWriteCall {
		fail = true
	}
	c.mu.Unlock()
	c.sleep(delay)
	if fail {
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, fmt.Errorf("write: %w", ErrInjected)
	}
	return c.Conn.Write(p)
}

// Dialer returns a dial function for netsearch.Options.DialFunc that
// wraps every new connection in a fault-injecting Conn. Each connection
// gets an independent stream forked from opts.Seed, so redials see fresh
// but reproducible fault patterns.
func Dialer(opts ConnOptions) func(addr string) (net.Conn, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	root := randx.New(seed)
	var mu sync.Mutex
	var conns uint64
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns++
		connOpts := opts
		connOpts.Seed = root.Fork(conns).Uint64() | 1
		mu.Unlock()
		return WrapConn(conn, connOpts), nil
	}
}

// Writer wraps an io.Writer and deterministically truncates the n-th
// Write (1-based) mid-buffer, delivering the first half and failing every
// write after it — a process crash in the middle of flushing a file. It
// is the filesystem sibling of Conn's torn frame, built for the snapshot
// store's crash-safety tests (store.SnapshotStore.WrapWriter).
type Writer struct {
	inner io.Writer

	mu       sync.Mutex
	failCall int
	writes   int
	dead     bool
}

// WrapWriter returns a Writer that truncates the failCall-th Write.
// failCall <= 0 never injects.
func WrapWriter(inner io.Writer, failCall int) *Writer {
	return &Writer{inner: inner, failCall: failCall}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.writes++
	call := w.writes
	dead := w.dead
	if w.failCall > 0 && call == w.failCall {
		w.dead = true
	}
	trunc := w.dead && !dead
	w.mu.Unlock()
	if dead {
		return 0, fmt.Errorf("write %d: %w", call, ErrInjected)
	}
	if trunc {
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("write %d: %w", call, ErrInjected)
	}
	return w.inner.Write(p)
}
