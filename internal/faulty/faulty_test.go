package faulty

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/corpus"
)

// okDB is a trivially healthy database.
type okDB struct{}

func (okDB) Search(string, int) ([]int, error) { return []int{1, 2}, nil }
func (okDB) Fetch(id int) (corpus.Document, error) {
	return corpus.Document{ID: id, Text: "alpha"}, nil
}
func (okDB) TotalHits(string) (int, error) { return 2, nil }

// failPattern records which of n calls fail.
func failPattern(t *testing.T, seed uint64, rate float64, n int) []bool {
	t.Helper()
	db := WrapDB(okDB{}, seed, rate)
	out := make([]bool, n)
	for i := range out {
		_, err := db.Search("q", 1)
		out[i] = err != nil
	}
	return out
}

func TestDBDeterministicInjection(t *testing.T) {
	a := failPattern(t, 7, 0.3, 200)
	b := failPattern(t, 7, 0.3, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("rate 0.3 injected %d/%d failures", fails, len(a))
	}
}

func TestDBRateZeroAndOne(t *testing.T) {
	healthy := WrapDB(okDB{}, 1, 0)
	if _, err := healthy.Search("q", 1); err != nil {
		t.Errorf("rate 0 failed: %v", err)
	}
	broken := WrapDB(okDB{}, 1, 1)
	if _, err := broken.Fetch(1); !errors.Is(err, ErrInjected) {
		t.Errorf("rate 1 returned %v, want ErrInjected", err)
	}
	if broken.Injected() != 1 || broken.Calls() != 1 {
		t.Errorf("counters: calls=%d injected=%d", broken.Calls(), broken.Injected())
	}
	// Heal and retry.
	broken.SetRate(0)
	if _, err := broken.Fetch(1); err != nil {
		t.Errorf("healed database failed: %v", err)
	}
}

func TestDBHookSeesEveryCall(t *testing.T) {
	db := WrapDB(okDB{}, 1, 0)
	var ops []string
	db.SetHook(func(op string, call int) { ops = append(ops, op) })
	db.Search("q", 1)
	db.Fetch(1)
	db.TotalHits("q")
	if len(ops) != 3 || ops[0] != "search" || ops[1] != "fetch" || ops[2] != "count" {
		t.Errorf("hook saw %v", ops)
	}
}

// plainDB implements core.Database without hit counting.
type plainDB struct{}

func (plainDB) Search(string, int) ([]int, error)  { return nil, nil }
func (plainDB) Fetch(int) (corpus.Document, error) { return corpus.Document{}, nil }

func TestDBTotalHitsUnsupported(t *testing.T) {
	db := WrapDB(plainDB{}, 1, 0)
	if _, err := db.TotalHits("q"); err == nil {
		t.Error("TotalHits on a non-counting database should fail")
	}
}

func TestConnScriptedTruncation(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, ConnOptions{FailWriteCall: 1})

	got := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		buf, err := io.ReadAll(b)
		got <- buf
		errc <- err
	}()

	frame := []byte(`{"op":"search","query":"apple","n":4}` + "\n")
	n, err := fc.Write(frame)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted write fault returned %v", err)
	}
	if n != len(frame)/2 {
		t.Errorf("truncated write reported %d bytes, want %d", n, len(frame)/2)
	}
	if buf := <-got; len(buf) != len(frame)/2 {
		t.Errorf("peer received %d bytes, want the truncated %d", len(buf), len(frame)/2)
	}
	if err := <-errc; err != nil {
		t.Errorf("peer read after close: %v", err)
	}
	// The connection is dead for good.
	if _, err := fc.Write([]byte("more")); err == nil {
		t.Error("write after injected fault succeeded")
	}
}

func TestConnReadFaultClosesConn(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, ConnOptions{ReadRate: 1})
	if _, err := fc.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read fault returned %v", err)
	}
	if _, err := fc.Read(make([]byte, 8)); err == nil {
		t.Error("read after injected fault succeeded")
	}
}

func TestConnLatencyIsDeterministic(t *testing.T) {
	delays := func(seed uint64) []time.Duration {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		var out []time.Duration
		fc := WrapConn(a, ConnOptions{
			Seed:       seed,
			MaxLatency: time.Second,
			Sleep:      func(d time.Duration) { out = append(out, d) },
		})
		go io.Copy(io.Discard, b)
		for i := 0; i < 10; i++ {
			if _, err := fc.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	a, b := delays(5), delays(5)
	if len(a) != 10 {
		t.Fatalf("expected 10 injected delays, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave different delay at write %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= time.Second {
			t.Errorf("delay %v outside [0, MaxLatency)", a[i])
		}
	}
}
