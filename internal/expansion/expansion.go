// Package expansion implements co-occurrence query expansion from the
// union of database samples (§8). The sampling process leaves the
// selection service holding document samples s1..sn from databases d1..dn;
// their union "favors no specific database, but reflects patterns that are
// common to them all", making it the right corpus for expanding queries
// *before* database selection — the previously open problem of which
// database to mine expansion terms from.
package expansion

import (
	"math"
	"sort"

	"repro/internal/analysis"
)

// Pool is the union of sampled documents across databases, held as
// per-document term sets for co-occurrence mining.
type Pool struct {
	docs []map[string]bool
	df   map[string]int
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{df: make(map[string]int)}
}

// AddDocument folds one sampled document's tokens into the pool.
func (p *Pool) AddDocument(tokens []string) {
	set := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		set[t] = true
	}
	for t := range set {
		p.df[t]++
	}
	p.docs = append(p.docs, set)
}

// AddSample folds a whole database sample (documents as token slices).
func (p *Pool) AddSample(docs [][]string) {
	for _, d := range docs {
		p.AddDocument(d)
	}
}

// Docs returns the number of pooled documents.
func (p *Pool) Docs() int { return len(p.docs) }

// DF returns the number of pooled documents containing term.
func (p *Pool) DF(term string) int { return p.df[term] }

// Candidate is one proposed expansion term.
type Candidate struct {
	// Term is the expansion term.
	Term string
	// Score is the co-occurrence weight (EMIM summed over query terms).
	Score float64
	// CoDocs is the number of pooled documents containing the term
	// together with at least one query term.
	CoDocs int
}

// Expand proposes up to k expansion terms for the query: terms that
// co-occur with query terms in pooled documents far more often than chance
// predicts. Scoring is EMIM (expected mutual information measure) summed
// over query terms:
//
//	Σ_q P(t,q) · log( P(t,q) / (P(t)·P(q)) )
//
// with probabilities estimated at document granularity. Stopwords, query
// terms themselves, numbers and very short terms are never proposed —
// "illegal alien" may expand "immigration", "the" must not (§8).
func (p *Pool) Expand(query []string, k int, stop *analysis.Stoplist) []Candidate {
	if len(p.docs) == 0 || len(query) == 0 || k <= 0 {
		return nil
	}
	isQuery := make(map[string]bool, len(query))
	for _, q := range query {
		isQuery[q] = true
	}
	n := float64(len(p.docs))

	// Count co-occurrence of every candidate with each query term.
	co := make(map[string]map[string]int) // query term -> candidate -> co-df
	coAny := make(map[string]int)         // candidate -> docs shared with >= 1 query term
	for _, set := range p.docs {
		var present []string
		for _, q := range query {
			if set[q] {
				present = append(present, q)
			}
		}
		if len(present) == 0 {
			continue
		}
		for t := range set {
			if isQuery[t] || len(t) < 3 || analysis.IsNumber(t) || stop.Contains(t) {
				continue
			}
			coAny[t]++
			for _, q := range present {
				m := co[q]
				if m == nil {
					m = make(map[string]int)
					co[q] = m
				}
				m[t]++
			}
		}
	}

	candidates := make([]Candidate, 0, len(coAny))
	for t, anyCount := range coAny {
		pt := float64(p.df[t]) / n
		var score float64
		for _, q := range query {
			ctq := co[q][t]
			if ctq == 0 {
				continue
			}
			ptq := float64(ctq) / n
			pq := float64(p.df[q]) / n
			score += ptq * math.Log(ptq/(pt*pq))
		}
		if score > 0 {
			candidates = append(candidates, Candidate{Term: t, Score: score, CoDocs: anyCount})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Score != candidates[j].Score {
			return candidates[i].Score > candidates[j].Score
		}
		return candidates[i].Term < candidates[j].Term
	})
	if k < len(candidates) {
		candidates = candidates[:k]
	}
	return candidates
}
