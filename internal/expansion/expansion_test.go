package expansion

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// pool builds a Pool from whitespace documents.
func pool(docs ...string) *Pool {
	p := NewPool()
	for _, d := range docs {
		p.AddDocument(strings.Fields(d))
	}
	return p
}

func TestExpandFindsCooccurringTerm(t *testing.T) {
	// "immigration" co-occurs with "illegal" and "alien"; "soccer" never.
	p := pool(
		"immigration illegal alien border policy",
		"immigration illegal alien reform law",
		"immigration alien visa quota",
		"soccer goal match referee",
		"soccer league cup final",
		"weather rain sun forecast",
	)
	got := p.Expand([]string{"immigration"}, 3, nil)
	if len(got) == 0 {
		t.Fatal("no expansion candidates")
	}
	terms := map[string]bool{}
	for _, c := range got {
		terms[c.Term] = true
	}
	if !terms["alien"] {
		t.Errorf("expected 'alien' among %v", got)
	}
	if terms["soccer"] || terms["weather"] {
		t.Errorf("non-co-occurring term proposed: %v", got)
	}
}

func TestExpandExcludesQueryTermsAndStopwords(t *testing.T) {
	p := pool(
		"the immigration illegal debate",
		"the immigration illegal policy",
		"the immigration illegal law",
	)
	got := p.Expand([]string{"immigration"}, 10, analysis.InqueryStoplist())
	for _, c := range got {
		if c.Term == "immigration" {
			t.Error("query term proposed as its own expansion")
		}
		if c.Term == "the" {
			t.Error("stopword proposed")
		}
	}
}

func TestExpandExcludesShortAndNumeric(t *testing.T) {
	p := pool(
		"tax 42 ab increase",
		"tax 42 ab cut",
		"tax 42 ab reform",
	)
	for _, c := range p.Expand([]string{"tax"}, 10, nil) {
		if c.Term == "42" || c.Term == "ab" {
			t.Errorf("ineligible term %q proposed", c.Term)
		}
	}
}

func TestExpandRanksStrongerAssociationsHigher(t *testing.T) {
	// "bonds" appears in every stocks doc; "tulips" in one of four.
	p := pool(
		"stocks bonds market",
		"stocks bonds rally",
		"stocks bonds trading",
		"stocks tulips anomaly",
		"gardening tulips soil",
		"gardening roses soil",
		"cooking pasta sauce",
		"cooking bread oven",
	)
	got := p.Expand([]string{"stocks"}, 5, nil)
	if len(got) < 2 {
		t.Fatalf("too few candidates: %v", got)
	}
	if got[0].Term != "bonds" {
		t.Errorf("top candidate = %q, want bonds (%v)", got[0].Term, got)
	}
}

func TestExpandEdgeCases(t *testing.T) {
	if got := NewPool().Expand([]string{"x"}, 5, nil); got != nil {
		t.Errorf("empty pool expansion = %v", got)
	}
	p := pool("alpha beta gamma")
	if got := p.Expand(nil, 5, nil); got != nil {
		t.Errorf("empty query expansion = %v", got)
	}
	if got := p.Expand([]string{"alpha"}, 0, nil); got != nil {
		t.Errorf("k=0 expansion = %v", got)
	}
	if got := p.Expand([]string{"missing"}, 5, nil); len(got) != 0 {
		t.Errorf("unseen query term expanded to %v", got)
	}
}

func TestExpandRespectsK(t *testing.T) {
	p := pool(
		"query alpha beta gamma delta epsilon",
		"query alpha beta gamma delta epsilon",
	)
	got := p.Expand([]string{"query"}, 2, nil)
	if len(got) > 2 {
		t.Errorf("k=2 returned %d candidates", len(got))
	}
}

func TestExpandDeterministic(t *testing.T) {
	p := pool(
		"query aaa bbb",
		"query aaa bbb",
		"query ccc ddd",
	)
	a := p.Expand([]string{"query"}, 10, nil)
	b := p.Expand([]string{"query"}, 10, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic candidate count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic ordering: %v vs %v", a, b)
		}
	}
}

func TestAddSampleAndDocs(t *testing.T) {
	p := NewPool()
	p.AddSample([][]string{{"a", "b"}, {"c"}})
	p.AddDocument([]string{"d"})
	if p.Docs() != 3 {
		t.Errorf("Docs = %d, want 3", p.Docs())
	}
}

func TestMultiTermQueryAggregates(t *testing.T) {
	// §8's motivating example: "white house" should pull "president", not
	// terms that co-occur with only one of the words by chance.
	p := pool(
		"white house president oval office",
		"white house president press briefing",
		"white snow mountain ski",
		"house music club dance",
	)
	got := p.Expand([]string{"white", "house"}, 3, nil)
	if len(got) == 0 {
		t.Fatal("no candidates")
	}
	if got[0].Term != "president" {
		t.Errorf("top expansion = %q, want president (%v)", got[0].Term, got)
	}
}
