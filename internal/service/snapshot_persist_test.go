package service

// Tests for snapshot persistence and incremental recompilation: warm
// starts that serve without compiling, scope-labeled compile counters,
// fingerprint staleness rejection, and the equivalence property under
// random sample/register/unregister churn.

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/langmodel"
	"repro/internal/randx"
	"repro/internal/selection"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func snapshotStore(t *testing.T) *store.SnapshotStore {
	t.Helper()
	ss, err := store.OpenSnapshots(filepath.Join(t.TempDir(), "snap"))
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func compileCounters(reg *telemetry.Registry) (full, incr int64) {
	return reg.Counter(`service_snapshot_compiles_total{scope="full"}`).Value(),
		reg.Counter(`service_snapshot_compiles_total{scope="incremental"}`).Value()
}

// TestSnapshotWarmStart is the tentpole acceptance path: service A
// compiles and persists; service B — a fresh process over the same model
// store — adopts the snapshot at startup and serves its first Rank
// without compiling anything, with bit-identical results.
func TestSnapshotWarmStart(t *testing.T) {
	modelDir := filepath.Join(t.TempDir(), "models")
	st, err := store.Open(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	ss := snapshotStore(t)

	svcA, dbs := fixture(t, st)
	regA := telemetry.NewRegistry()
	svcA.SetMetrics(regA)
	svcA.SetSnapshotStore(ss, true)
	for _, db := range dbs {
		if _, err := svcA.Sample(db.Name, SampleOptions{Docs: 50, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	wantRank, err := svcA.Rank("stock market data", "cori", 0)
	if err != nil {
		t.Fatal(err)
	}
	if regA.Counter("service_snapshot_persists_total").Value() != 1 {
		t.Fatal("compiled snapshot was not persisted on publish")
	}

	// "Restart": a new service over the same stores, same registrations.
	st2, err := store.Open(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	svcB := New(analysis.Database(), st2)
	regB := telemetry.NewRegistry()
	svcB.SetMetrics(regB)
	svcB.SetSnapshotStore(ss, true)
	for _, db := range dbs {
		if err := svcB.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
	}
	if err := svcB.LoadSnapshot(); err != nil {
		t.Fatalf("warm start rejected: %v", err)
	}
	gotRank, err := svcB.Rank("stock market data", "cori", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRank, wantRank) {
		t.Fatalf("warm-started ranking diverges:\n%+v\n%+v", gotRank, wantRank)
	}
	if full, incr := compileCounters(regB); full != 0 || incr != 0 ||
		regB.Counter("service_snapshot_compiles_total").Value() != 0 {
		t.Fatalf("warm start compiled (full=%d incremental=%d); the first Rank must serve from the loaded snapshot", full, incr)
	}
	if regB.Gauge("service_snapshot_bytes").Value() <= 0 {
		t.Fatal("snapshot_bytes gauge not set by LoadSnapshot")
	}
}

// TestSnapshotIncrementalResample: replacing one model of a three-database
// federation must rebuild via Patch (scope="incremental"), and the patched
// snapshot must score bit-identically to the map-based gold standard over
// the models it serves.
func TestSnapshotIncrementalResample(t *testing.T) {
	svc, reg := sampledFixture(t)
	if _, err := svc.Rank("stock market data", "cori", 0); err != nil {
		t.Fatal(err)
	}
	if full, incr := compileCounters(reg); full != 1 || incr != 0 {
		t.Fatalf("after first rank: full=%d incremental=%d", full, incr)
	}

	name := svc.Databases()[0].Name
	if _, err := svc.Sample(name, SampleOptions{Docs: 60, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Rank("stock market data", "cori", 0); err != nil {
		t.Fatal(err)
	}
	if full, incr := compileCounters(reg); full != 1 || incr != 1 {
		t.Fatalf("after resample rank: full=%d incremental=%d, want the rebuild to patch", full, incr)
	}

	// Bit-identity of the patched snapshot against the map scorers.
	snap := svc.snapshot()
	query := []string{"stock", "market", "data", "system"}
	ids := snap.compiled.AppendIDs(nil, query)
	scores := make([]float64, snap.compiled.NumDBs())
	for _, alg := range []selection.Algorithm{selection.CORI{}, selection.Gloss{Estimator: selection.GlossSum}} {
		want := alg.Scores(query, snap.models)
		if !snap.compiled.ScoreInto(alg, ids, scores) {
			t.Fatalf("ScoreInto rejected %s", alg.Name())
		}
		for i := range want {
			if math.Float64bits(scores[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: db %d patched score %v != map score %v", alg.Name(), i, scores[i], want[i])
			}
		}
	}

	// Membership changes renumber databases: the next rebuild must be full.
	if err := svc.Unregister(name); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Rank("stock market data", "cori", 0); err != nil {
		t.Fatal(err)
	}
	if full, incr := compileCounters(reg); full != 2 || incr != 1 {
		t.Fatalf("after unregister rank: full=%d incremental=%d, want a full recompile", full, incr)
	}
}

// TestSnapshotStaleFingerprintRejected: a model rewritten after the
// snapshot was persisted (the crash-between-writes scenario) must fail
// verification at load, forcing a cold compile instead of serving stale
// statistics.
func TestSnapshotStaleFingerprintRejected(t *testing.T) {
	modelDir := filepath.Join(t.TempDir(), "models")
	st, err := store.Open(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	ss := snapshotStore(t)
	svcA, dbs := fixture(t, st)
	svcA.SetSnapshotStore(ss, true)
	for _, db := range dbs {
		if _, err := svcA.Sample(db.Name, SampleOptions{Docs: 50, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svcA.Rank("stock market data", "cori", 0); err != nil {
		t.Fatal(err)
	}

	// One model moves on without the snapshot.
	moved := langmodel.New()
	moved.SetDocs(3)
	moved.AddTerm("drifted", langmodel.TermStats{DF: 1, CTF: 1})
	if err := st.Put(dbs[0].Name, moved.Normalize(analysis.Database())); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	svcB := New(analysis.Database(), st2)
	regB := telemetry.NewRegistry()
	svcB.SetMetrics(regB)
	svcB.SetSnapshotStore(ss, false)
	for _, db := range dbs {
		if err := svcB.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
	}
	err = svcB.LoadSnapshot()
	if err == nil || !strings.Contains(err.Error(), "changed since") {
		t.Fatalf("stale snapshot accepted (err = %v)", err)
	}
	if regB.Counter("service_snapshot_load_errors_total").Value() != 1 {
		t.Fatal("load error not counted")
	}
	// The cold path still works and recompiles from the real models.
	if _, err := svcB.Rank("stock market data", "cori", 0); err != nil {
		t.Fatal(err)
	}
	if regB.Counter(`service_snapshot_compiles_total{scope="full"}`).Value() != 1 {
		t.Fatal("cold start did not compile")
	}
}

// TestSnapshotChurnEquivalence drives a random sample/register/unregister
// sequence and, after every operation, requires the served snapshot —
// whether it was produced by Patch or by a full compile — to score
// bit-identically to the map-based scorers over exactly the models it
// serves. The sequence is seeded, so failures replay.
func TestSnapshotChurnEquivalence(t *testing.T) {
	dbs, err := experiments.Federation(8, 150, 31)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(analysis.Database(), nil)
	reg := telemetry.NewRegistry()
	svc.SetMetrics(reg)
	active := dbs[:4]
	spare := dbs[4:]
	for _, db := range active {
		if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Sample(db.Name, SampleOptions{Docs: 30, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}

	src := randx.New(0xc0ffee)
	queries := [][]string{
		{"stock", "market"},
		{"data", "system", "time"},
		{"people", "world", "no-such-term"},
	}
	for step := 0; step < 15; step++ {
		switch op := src.Intn(4); {
		case op < 2: // resample one active database with a fresh seed
			name := active[src.Intn(len(active))].Name
			if _, err := svc.Sample(name, SampleOptions{Docs: 30, Seed: 100 + uint64(step)}); err != nil {
				t.Fatalf("step %d resample %s: %v", step, name, err)
			}
		case op == 2 && len(spare) > 0: // register + sample a new database
			db := spare[0]
			spare = spare[1:]
			active = append(active, db)
			if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Sample(db.Name, SampleOptions{Docs: 30, Seed: 7}); err != nil {
				t.Fatal(err)
			}
		case len(active) > 2: // unregister one
			i := src.Intn(len(active))
			if err := svc.Unregister(active[i].Name); err != nil {
				t.Fatal(err)
			}
			active = append(active[:i], active[i+1:]...)
		}

		snap := svc.snapshot()
		if len(snap.models) != len(snap.names) {
			t.Fatalf("step %d: %d models for %d names", step, len(snap.models), len(snap.names))
		}
		scores := make([]float64, snap.compiled.NumDBs())
		for qi, query := range queries {
			ids := snap.compiled.AppendIDs(nil, query)
			for _, alg := range []selection.Algorithm{
				selection.CORI{},
				selection.Gloss{Estimator: selection.GlossSum, Threshold: 0.2},
				selection.Gloss{Estimator: selection.GlossInd},
			} {
				want := alg.Scores(query, snap.models)
				if !snap.compiled.ScoreInto(alg, ids, scores) {
					t.Fatalf("step %d: ScoreInto rejected %s", step, alg.Name())
				}
				for i := range want {
					if math.Float64bits(scores[i]) != math.Float64bits(want[i]) {
						t.Fatalf("step %d query %d %s: db %s score %v != map score %v",
							step, qi, alg.Name(), snap.names[i], scores[i], want[i])
					}
				}
			}
		}
	}
	full, incr := compileCounters(reg)
	if incr == 0 {
		t.Error("churn never took the incremental path; resamples should patch")
	}
	if full == 0 {
		t.Error("churn never took the full path; membership changes must recompile")
	}
	if total := reg.Counter("service_snapshot_compiles_total").Value(); total != full+incr {
		t.Errorf("scope counters (%d+%d) do not add up to the total %d", full, incr, total)
	}
}

// TestSnapshotPersistOnSwap: with persistence on, each published rebuild
// replaces the stored snapshot; a service restarted mid-sequence adopts
// the newest one.
func TestSnapshotPersistOnSwap(t *testing.T) {
	svc, reg := sampledFixture(t)
	ss := snapshotStore(t)
	svc.SetSnapshotStore(ss, true)

	if _, err := svc.Rank("stock market data", "cori", 0); err != nil {
		t.Fatal(err)
	}
	name := svc.Databases()[0].Name
	if _, err := svc.Sample(name, SampleOptions{Docs: 40, Seed: 55}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Rank("stock market data", "cori", 0); err != nil {
		t.Fatal(err)
	}
	if persists := reg.Counter("service_snapshot_persists_total").Value(); persists != 2 {
		t.Fatalf("persists = %d, want one per published rebuild", persists)
	}
	m, err := ss.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 2 {
		t.Fatalf("manifest seq = %d, want 2", m.Seq)
	}
	if m.Epoch != svc.Epoch() {
		t.Fatalf("persisted epoch %d, service at %d", m.Epoch, svc.Epoch())
	}
	if reg.Gauge("service_snapshot_bytes").Value() != m.Size {
		t.Fatalf("snapshot_bytes gauge %d, manifest size %d",
			reg.Gauge("service_snapshot_bytes").Value(), m.Size)
	}
}

// TestSnapshotLoadWithoutStore: LoadSnapshot without an attached store is
// a configuration error, reported as such.
func TestSnapshotLoadWithoutStore(t *testing.T) {
	svc, _ := fixture(t, nil)
	if err := svc.LoadSnapshot(); err == nil {
		t.Fatal("LoadSnapshot succeeded with no store attached")
	}
}
