package service

// rankCache is the bounded LRU of selection results, keyed by
// (query terms, algorithm, k, snapshot epoch). Keying on the epoch makes
// invalidation free: a resample bumps the generation, new queries key into
// new entries, and the old generation's entries age out of the LRU on
// their own. Concurrent identical misses are single-flighted — one caller
// computes while the rest wait on the entry's ready channel — so a burst
// of the same expensive query costs one scoring pass.

import "sync"

// DefaultRankCacheSize is the default capacity of the selection result
// cache (entries, across all epochs).
const DefaultRankCacheSize = 1024

type rankCacheKey struct {
	// query is the analyzed terms joined with 0x1f (a byte the tokenizer
	// never emits), so equal term sequences collide and raw query spelling
	// does not.
	query string
	alg   string
	k     int
	epoch uint64
}

type rankCacheEntry struct {
	key rankCacheKey

	// ready is closed by the computing caller once val/err are set. A
	// waiter that acquired the entry before it was evicted still gets its
	// result — eviction only removes the map reference.
	ready chan struct{}
	val   []RankedDB
	err   error

	prev, next *rankCacheEntry // LRU list, head = most recent
}

type rankCache struct {
	mu      sync.Mutex
	cap     int
	entries map[rankCacheKey]*rankCacheEntry
	head    *rankCacheEntry
	tail    *rankCacheEntry
}

func newRankCache(capacity int) *rankCache {
	return &rankCache{
		cap:     capacity,
		entries: make(map[rankCacheKey]*rankCacheEntry, capacity),
	}
}

// probe is the hit path: it returns the entry for key refreshed to
// most-recently-used, or nil on a miss. It allocates nothing — a cache
// hit costs one map lookup and two pointer splices under the lock.
//
//lint:hotpath
func (c *rankCache) probe(key rankCacheKey) *rankCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e != nil {
		c.moveToFront(e)
	}
	return e
}

// acquire is probe composed with admit: the entry for key and whether
// the caller leads its computation. The split exists so the hit path is
// a separately provable //lint:hotpath function; acquire is the
// convenience form for callers that do not care.
func (c *rankCache) acquire(key rankCacheKey) (*rankCacheEntry, bool) {
	if e := c.probe(key); e != nil {
		return e, false
	}
	return c.admit(key)
}

// admit is the miss path: it installs a fresh entry for key and makes
// the caller its leader, unless another caller admitted the same key
// between the caller's probe and this lock acquisition — then the
// existing entry is returned and leader is false. The leader must call
// fulfill exactly once; everyone else waits on entry.ready.
func (c *rankCache) admit(key rankCacheKey) (e *rankCacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.entries[key]; e != nil {
		c.moveToFront(e)
		return e, false
	}
	e = &rankCacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		c.evict(c.tail)
	}
	return e, true
}

// fulfill publishes the leader's result. Errors are published to current
// waiters but not cached: the entry is dropped so the next caller retries.
func (c *rankCache) fulfill(e *rankCacheEntry, val []RankedDB, err error) {
	e.val, e.err = val, err
	close(e.ready)
	if err != nil {
		c.mu.Lock()
		if c.entries[e.key] == e {
			c.evict(e)
		}
		c.mu.Unlock()
	}
}

// Len reports the number of cached (or in-flight) entries.
func (c *rankCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evict unlinks e. Caller holds c.mu.
func (c *rankCache) evict(e *rankCacheEntry) {
	delete(c.entries, e.key)
	c.unlink(e)
}

func (c *rankCache) unlink(e *rankCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *rankCache) pushFront(e *rankCacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *rankCache) moveToFront(e *rankCacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
