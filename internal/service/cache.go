package service

// rankCache is the bounded LRU of *completed* selection results, keyed by
// (query terms, algorithm, k, snapshot epoch). Keying on the epoch makes
// invalidation free: a resample bumps the generation, new queries key into
// new entries, and the old generation's entries age out of the LRU on
// their own. In-flight deduplication is not this type's job — concurrent
// identical misses single-flight through the coalescer (coalesce.go),
// which serves batches too without letting them pollute this LRU.

import "sync"

// DefaultRankCacheSize is the default capacity of the selection result
// cache (entries, across all epochs).
const DefaultRankCacheSize = 1024

type rankCacheKey struct {
	// query is the analyzed terms joined with 0x1f (a byte the tokenizer
	// never emits), so equal term sequences collide and raw query spelling
	// does not.
	query string
	alg   string
	k     int
	epoch uint64
}

type rankCacheEntry struct {
	key rankCacheKey
	val []RankedDB

	prev, next *rankCacheEntry // LRU list, head = most recent
}

type rankCache struct {
	mu      sync.Mutex
	cap     int
	entries map[rankCacheKey]*rankCacheEntry
	head    *rankCacheEntry
	tail    *rankCacheEntry
}

func newRankCache(capacity int) *rankCache {
	return &rankCache{
		cap:     capacity,
		entries: make(map[rankCacheKey]*rankCacheEntry, capacity),
	}
}

// probe is the hit path: the cached result for key, refreshed to
// most-recently-used, or (nil, false) on a miss. It allocates nothing — a
// cache hit costs one map lookup and two pointer splices under the lock.
// The returned slice is shared with future hits; callers copy before
// handing it out.
//
//lint:hotpath
func (c *rankCache) probe(key rankCacheKey) ([]RankedDB, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil, false
	}
	c.moveToFront(e)
	return e.val, true
}

// add installs (or refreshes) a completed result, evicting from the LRU
// tail past capacity. Duplicate adds of the same key are idempotent — the
// coalescer can hand one flight's value to several cache-admitting
// followers, and results for one key are bit-identical by construction.
func (c *rankCache) add(key rankCacheKey, val []RankedDB) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &rankCacheEntry{key: key, val: val}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		c.evict(c.tail)
	}
}

// Len reports the number of cached entries.
func (c *rankCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evict unlinks e. Caller holds c.mu.
func (c *rankCache) evict(e *rankCacheEntry) {
	delete(c.entries, e.key)
	c.unlink(e)
}

func (c *rankCache) unlink(e *rankCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *rankCache) pushFront(e *rankCacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *rankCache) moveToFront(e *rankCacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
