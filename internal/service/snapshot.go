package service

// Compiled selection snapshots, swapped RCU-style.
//
// Rank used to walk every registered model's hash maps under the service
// read lock on each query. Model sets change rarely (a resample, a
// registration) while selection queries arrive constantly, so the service
// now compiles the model set into a selection.Compiled snapshot and
// publishes it through an atomic pointer: readers Load the pointer and
// score against immutable flat arrays — no service lock, no map lookups —
// while writers simply bump the generation counter and let the next query
// rebuild. Stale snapshots stay valid for readers already holding them
// (grace period by garbage collection, the RCU property), so a resample
// never blocks or corrupts an in-flight Rank.
//
// Rebuilds are incremental when they can be: writers record *which*
// database changed alongside the generation bump, and when only a small
// fraction of the federation moved (a single resample in a 100-DB
// deployment), the next rebuild patches the previous snapshot's rows
// (selection.Compiled.Patch — bit-identical to a from-scratch compile)
// instead of rehashing every model. Membership changes and wide resamples
// fall back to a full compile.
//
// With a snapshot store attached (SetSnapshotStore), each newly compiled
// snapshot is persisted on swap, and LoadSnapshot warm-starts serving from
// disk: the first Rank after a restart scores against the mmapped segment
// without compiling anything.

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"repro/internal/langmodel"
	"repro/internal/selection"
	"repro/internal/store"
)

// defaultPatchRatio is the fraction of the federation that may be dirty
// before a rebuild abandons patching for a full compile. Patching splices
// CSR rows for every term of every changed model; past roughly half the
// databases, rehashing everything is the cheaper and simpler move.
const defaultPatchRatio = 0.5

// snapshotSet is one immutable compiled view of the model set. names[i] is
// the database compiled as index i (sorted, the order rank always used);
// models[i] is the model it was compiled from, kept so the next rebuild
// can diff against it (Patch needs the old model to know which postings
// to remove).
type snapshotSet struct {
	epoch    uint64
	names    []string
	models   []*langmodel.Model
	compiled *selection.Compiled
}

// invalidateAll marks the published snapshot stale for a membership
// change (register/unregister): database indices shift, so the next
// rebuild must compile from scratch. Callers must hold s.mu (write) — the
// lock orders the bump after the model-set change it reflects, so a
// reader that observes the new generation under RLock also observes the
// new models.
func (s *Service) invalidateAll() {
	s.gen.Add(1)
	s.dirtyAll = true
}

// invalidateDB marks the published snapshot stale for a single database
// whose model was replaced in place (a resample). The next rebuild may
// patch just its rows. Callers must hold s.mu (write).
func (s *Service) invalidateDB(name string) {
	s.gen.Add(1)
	if s.dirty == nil {
		s.dirty = make(map[string]bool)
	}
	s.dirty[name] = true
}

// SetSnapshotStore attaches a persistent snapshot store. When persist is
// true, every snapshot the service compiles from then on is saved to the
// store as it is published; either way LoadSnapshot can warm-start from
// whatever the store holds.
func (s *Service) SetSnapshotStore(ss *store.SnapshotStore, persist bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapStore = ss
	s.persistSnap = persist && ss != nil
}

// snapshot returns a compiled snapshot no older than the model set at call
// time, rebuilding at most once per generation. The fast path is two
// atomic loads; rebuilds are single-flighted through compileMu so a
// resample storm compiles once, not once per waiting query. Persistence
// happens after compileMu is released: the save is disk I/O, and
// compileMu gates every cold query — holding it across an fsync would
// turn one slow disk into a service-wide stall (the lockheld invariant).
func (s *Service) snapshot() *snapshotSet {
	if snap := s.snap.Load(); snap != nil && snap.epoch == s.gen.Load() {
		return snap
	}
	snap, compiled := s.rebuild()
	if compiled {
		s.persistSnapshot(snap)
	}
	return snap
}

// rebuild compiles and publishes a fresh snapshot under compileMu,
// reporting whether this call did the compiling (false when another
// query's rebuild won the race — that query persists it).
func (s *Service) rebuild() (*snapshotSet, bool) {
	s.compileMu.Lock()
	defer s.compileMu.Unlock()
	if snap := s.snap.Load(); snap != nil && snap.epoch == s.gen.Load() {
		return snap, false // another query rebuilt while we waited
	}

	reg := s.Metrics()
	// Collect the models, the generation, and the dirty set under one
	// write lock: writers bump gen while holding the lock, so the triple
	// is consistent — this snapshot is stamped with the generation of
	// exactly the model set it compiles, and the dirt it consumes is
	// exactly the dirt that generation accumulated. If a writer dirties
	// more after we unlock, gen moves past us and the next query rebuilds
	// again.
	s.mu.Lock()
	gen := s.gen.Load()
	names := make([]string, 0, len(s.entries))
	for name, e := range s.entries {
		if e.model != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	models := make([]*langmodel.Model, len(names))
	for i, name := range names {
		models[i] = s.entries[name].model
	}
	dirty, dirtyAll := s.dirty, s.dirtyAll
	s.dirty, s.dirtyAll = nil, false
	s.mu.Unlock()

	stop := reg.Timer("service_snapshot_compile_seconds")
	compiled, scope := s.compile(names, models, dirty, dirtyAll)
	stop()
	reg.Counter("service_snapshot_compiles_total").Inc()
	reg.Counter(`service_snapshot_compiles_total{scope="` + scope + `"}`).Inc()
	reg.Gauge("service_snapshot_epoch").Set(int64(gen))
	reg.Gauge("service_snapshot_terms").Set(int64(compiled.VocabSize()))
	reg.Gauge("service_snapshot_dbs").Set(int64(compiled.NumDBs()))

	snap := &snapshotSet{epoch: gen, names: names, models: models, compiled: compiled}
	s.snap.Store(snap)
	return snap, true
}

// compile builds the flat arrays for the collected model set, patching
// the previous snapshot when only a tolerable fraction of an unchanged
// membership is dirty. The patched result is bit-identical to a full
// compile (selection.Compiled.Patch's contract), so the choice is purely
// a cost decision and never observable through scoring. Returns the
// compiled set and the scope label ("full" or "incremental") for the
// compile counters.
func (s *Service) compile(names []string, models []*langmodel.Model, dirty map[string]bool, dirtyAll bool) (*selection.Compiled, string) {
	prev := s.snap.Load()
	if prev == nil || dirtyAll || len(dirty) == 0 ||
		float64(len(dirty)) > defaultPatchRatio*float64(len(names)) ||
		!slices.Equal(prev.names, names) {
		return selection.Compile(models), "full"
	}
	changed := make([]string, 0, len(dirty))
	for name := range dirty {
		changed = append(changed, name)
	}
	sort.Strings(changed)
	patches := make([]selection.ModelPatch, 0, len(changed))
	for _, name := range changed {
		i := sort.SearchStrings(names, name)
		if i >= len(names) || names[i] != name {
			// Dirty entry no longer served (raced with an unregister whose
			// dirtyAll a later generation will consume): patching has no
			// row to target, so compile from scratch.
			return selection.Compile(models), "full"
		}
		patches = append(patches, selection.ModelPatch{DB: i, Old: prev.models[i], New: models[i]})
	}
	compiled, err := prev.compiled.Patch(patches)
	if err != nil {
		// A patch failure means the previous snapshot disagrees with the
		// models we diffed — recover by recompiling rather than serving
		// nothing.
		s.log().Warn("incremental recompile failed; compiling from scratch", "err", err.Error())
		return selection.Compile(models), "full"
	}
	return compiled, "incremental"
}

// persistSnapshot saves a freshly published snapshot to the attached
// store. Persistence is best effort — the snapshot already serves from
// memory, so a failed save costs the next restart a recompile, nothing
// more. It runs outside compileMu, so two successive rebuilds can race
// here: persistMu serializes the saves (SnapshotStore forbids concurrent
// Save), and the epoch guard drops a late save of an older snapshot
// rather than letting it clobber a newer one already on disk.
func (s *Service) persistSnapshot(snap *snapshotSet) {
	s.mu.RLock()
	ss, persist := s.snapStore, s.persistSnap
	s.mu.RUnlock()
	if !persist || ss == nil {
		return
	}
	reg := s.Metrics()
	fps := make([]uint64, len(snap.models))
	for i, m := range snap.models {
		fps[i] = m.Fingerprint()
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.persisted && snap.epoch <= s.persistedEpoch {
		return // a newer (or this very) snapshot is already on disk
	}
	//lint:ignore lockheld persistMu exists solely to serialize Save against a racing later compile; it nests inside no other lock and no query-serving path can wait on it
	n, err := ss.Save(&selection.Snapshot{
		Epoch:        snap.epoch,
		Names:        snap.names,
		Fingerprints: fps,
		Compiled:     snap.compiled,
	})
	if err != nil {
		reg.Counter("service_snapshot_persist_errors_total").Inc()
		s.log().Warn("snapshot persist failed", "err", err.Error())
		return
	}
	s.persisted, s.persistedEpoch = true, snap.epoch
	reg.Counter("service_snapshot_persists_total").Inc()
	reg.Gauge("service_snapshot_bytes").Set(n)
}

// LoadSnapshot warm-starts query serving from the attached store: it
// loads, verifies, and publishes the persisted snapshot, so the first
// Rank after a restart scores immediately instead of compiling the model
// set. The snapshot is rejected — and the service left to compile on
// first use, exactly as if none existed — unless it describes precisely
// the currently served model set: same database names, and per-database
// model fingerprints matching the models the registry loaded (a crash
// between a model write and the snapshot write leaves the snapshot one
// model behind; fingerprints catch that).
func (s *Service) LoadSnapshot() error {
	s.mu.RLock()
	ss := s.snapStore
	s.mu.RUnlock()
	if ss == nil {
		return errors.New("service: no snapshot store attached")
	}
	reg := s.Metrics()
	stop := reg.Timer("service_snapshot_load_seconds")
	snap, size, err := ss.Load()
	stop()
	if err != nil {
		reg.Counter("service_snapshot_load_errors_total").Inc()
		return fmt.Errorf("service: load snapshot: %w", err)
	}

	// Verify and publish under the compile lock so a concurrent first
	// query cannot compile and swap between our check and our install.
	s.compileMu.Lock()
	defer s.compileMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for name, e := range s.entries {
		if e.model != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if !slices.Equal(names, snap.Names) {
		reg.Counter("service_snapshot_load_errors_total").Inc()
		return fmt.Errorf("service: snapshot describes databases %v, registry serves %v (stale snapshot)",
			snap.Names, names)
	}
	models := make([]*langmodel.Model, len(names))
	for i, name := range names {
		models[i] = s.entries[name].model
	}
	if len(snap.Fingerprints) != len(models) {
		reg.Counter("service_snapshot_load_errors_total").Inc()
		return fmt.Errorf("service: snapshot carries %d fingerprints for %d databases",
			len(snap.Fingerprints), len(models))
	}
	for i, m := range models {
		if got := m.Fingerprint(); got != snap.Fingerprints[i] {
			reg.Counter("service_snapshot_load_errors_total").Inc()
			return fmt.Errorf("service: model %q changed since the snapshot was written (stale snapshot)",
				names[i])
		}
	}

	gen := s.gen.Load()
	s.snap.Store(&snapshotSet{epoch: gen, names: snap.Names, models: models, compiled: snap.Compiled})
	s.dirty, s.dirtyAll = nil, false
	reg.Gauge("service_snapshot_bytes").Set(size)
	reg.Gauge("service_snapshot_epoch").Set(int64(gen))
	reg.Gauge("service_snapshot_terms").Set(int64(snap.Compiled.VocabSize()))
	reg.Gauge("service_snapshot_dbs").Set(int64(snap.Compiled.NumDBs()))
	return nil
}

// Epoch returns the current model-set generation. It changes whenever a
// sampling run, registration, or unregistration alters the served models;
// result caches key on it so stale entries die with their snapshot.
func (s *Service) Epoch() uint64 { return s.gen.Load() }
