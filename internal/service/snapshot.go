package service

// Compiled selection snapshots, swapped RCU-style.
//
// Rank used to walk every registered model's hash maps under the service
// read lock on each query. Model sets change rarely (a resample, a
// registration) while selection queries arrive constantly, so the service
// now compiles the model set into a selection.Compiled snapshot and
// publishes it through an atomic pointer: readers Load the pointer and
// score against immutable flat arrays — no service lock, no map lookups —
// while writers simply bump the generation counter and let the next query
// rebuild. Stale snapshots stay valid for readers already holding them
// (grace period by garbage collection, the RCU property), so a resample
// never blocks or corrupts an in-flight Rank.

import (
	"sort"

	"repro/internal/langmodel"
	"repro/internal/selection"
)

// snapshotSet is one immutable compiled view of the model set. names[i] is
// the database compiled as index i (sorted, the order rank always used).
type snapshotSet struct {
	epoch    uint64
	names    []string
	compiled *selection.Compiled
}

// invalidate marks the published snapshot stale. Callers must hold s.mu
// (write) — the lock orders the bump after the model-set change it
// reflects, so a reader that observes the new generation under RLock also
// observes the new models.
func (s *Service) invalidate() {
	s.gen.Add(1)
}

// snapshot returns a compiled snapshot no older than the model set at call
// time, rebuilding at most once per generation. The fast path is two
// atomic loads; rebuilds are single-flighted through compileMu so a
// resample storm compiles once, not once per waiting query.
func (s *Service) snapshot() *snapshotSet {
	if snap := s.snap.Load(); snap != nil && snap.epoch == s.gen.Load() {
		return snap
	}
	s.compileMu.Lock()
	defer s.compileMu.Unlock()
	if snap := s.snap.Load(); snap != nil && snap.epoch == s.gen.Load() {
		return snap // another query rebuilt while we waited
	}

	reg := s.Metrics()
	// Collect the models and read the generation under one read lock:
	// writers bump gen while holding the write lock, so the pair is
	// consistent — this snapshot is stamped with the generation of exactly
	// the model set it compiles.
	s.mu.RLock()
	gen := s.gen.Load()
	names := make([]string, 0, len(s.entries))
	for name, e := range s.entries {
		if e.model != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	models := make([]*langmodel.Model, len(names))
	for i, name := range names {
		models[i] = s.entries[name].model
	}
	s.mu.RUnlock()

	stop := reg.Timer("service_snapshot_compile_seconds")
	compiled := selection.Compile(models)
	stop()
	reg.Counter("service_snapshot_compiles_total").Inc()
	reg.Gauge("service_snapshot_epoch").Set(int64(gen))
	reg.Gauge("service_snapshot_terms").Set(int64(compiled.VocabSize()))
	reg.Gauge("service_snapshot_dbs").Set(int64(compiled.NumDBs()))

	snap := &snapshotSet{epoch: gen, names: names, compiled: compiled}
	s.snap.Store(snap)
	return snap
}

// Epoch returns the current model-set generation. It changes whenever a
// sampling run, registration, or unregistration alters the served models;
// result caches key on it so stale entries die with their snapshot.
func (s *Service) Epoch() uint64 { return s.gen.Load() }
