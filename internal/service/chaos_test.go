package service

// Chaos suite for the service layer: concurrent sampling on one entry,
// circuit-breaker trip/recover, and the acceptance scenario — SampleAll
// through 20% injected transport faults with a mid-run server restart.
// Run with `make chaos` (always under -race in CI).

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/faulty"
	"repro/internal/index"
	"repro/internal/netsearch"
	"repro/internal/telemetry"
)

func appleIndex() *index.Index {
	return index.Build([]corpus.Document{
		{ID: 0, Text: "apple pie with baked apple slices"},
		{ID: 1, Text: "apple orchards and cider presses"},
		{ID: 2, Text: "pressing cider from fresh apple harvests"},
		{ID: 3, Text: "baking bread with sourdough starters"},
	}, analysis.Raw(), index.InQuery)
}

func TestChaosConcurrentSampleSingleEntry(t *testing.T) {
	// Four goroutines hammer the same entry, half of them extending. The
	// per-entry in-flight guard serializes the runs; without it, lastRun
	// and model writes interleave and a later Extend resumes from a
	// mismatched pair (and the race detector lights up).
	svc, dbs := fixture(t, nil)
	name := dbs[0].Name
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := svc.Sample(name, SampleOptions{Docs: 30, Seed: uint64(i + 1), Extend: i%2 == 1})
			if err != nil {
				t.Errorf("concurrent sample %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	svc.mu.RLock()
	e := svc.entries[name]
	model, lastRun, stats := e.model, e.lastRun, e.stats
	svc.mu.RUnlock()
	if model == nil || lastRun == nil {
		t.Fatal("no model after concurrent sampling")
	}
	// Whichever run finished last, its three writes must be consistent.
	if stats.Terms != model.VocabSize() {
		t.Errorf("stats.Terms = %d, model has %d terms", stats.Terms, model.VocabSize())
	}
	if stats.SampledDocs != lastRun.Docs {
		t.Errorf("stats.SampledDocs = %d, lastRun.Docs = %d", stats.SampledDocs, lastRun.Docs)
	}
}

func TestChaosCircuitBreakerTripsAndRecovers(t *testing.T) {
	flaky := faulty.WrapDB(appleIndex(), 1, 1.0) // every call fails
	svc := New(analysis.Database(), nil)
	if err := svc.RegisterLocal("flaky", flaky); err != nil {
		t.Fatal(err)
	}
	opts := SampleOptions{Docs: 4, InitialTerm: "apple"}

	for i := 0; i < DefaultTripThreshold; i++ {
		if _, err := svc.Sample("flaky", opts); err == nil {
			t.Fatalf("sample %d against a fully broken database succeeded", i)
		}
	}
	st := svc.Databases()[0]
	if !st.CircuitOpen || st.ConsecutiveFailures != DefaultTripThreshold {
		t.Fatalf("breaker did not trip: %+v", st)
	}

	// SampleAll skips the tripped database without touching it.
	callsBefore := flaky.Calls()
	statuses, errs := svc.SampleAll(opts, 2)
	if !errors.Is(errs["flaky"], ErrCircuitOpen) {
		t.Errorf("SampleAll error = %v, want ErrCircuitOpen", errs["flaky"])
	}
	if !statuses["flaky"].CircuitOpen {
		t.Errorf("SampleAll status lost the open circuit: %+v", statuses["flaky"])
	}
	if flaky.Calls() != callsBefore {
		t.Errorf("SampleAll hit the tripped database (%d new calls)", flaky.Calls()-callsBefore)
	}

	// Heal the database; a direct Sample is the half-open probe.
	flaky.SetRate(0)
	st, err := svc.Sample("flaky", opts)
	if err != nil {
		t.Fatalf("probe after healing failed: %v", err)
	}
	if st.CircuitOpen || st.ConsecutiveFailures != 0 || !st.HasModel {
		t.Errorf("breaker did not reset on success: %+v", st)
	}
}

func TestChaosBreakerDisabled(t *testing.T) {
	flaky := faulty.WrapDB(appleIndex(), 1, 1.0)
	svc := New(analysis.Database(), nil)
	svc.SetTripThreshold(0)
	if err := svc.RegisterLocal("flaky", flaky); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultTripThreshold+2; i++ {
		svc.Sample("flaky", SampleOptions{Docs: 4, InitialTerm: "apple"})
	}
	if st := svc.Databases()[0]; st.CircuitOpen {
		t.Errorf("disabled breaker tripped anyway: %+v", st)
	}
}

// TestChaosSampleAllSurvivesFaultsAndRestart is the acceptance scenario:
// three healthy local databases, one remote database reached through a
// transport that corrupts 20% of writes and whose server restarts
// mid-run, and one database that is simply down. SampleAll must finish
// every healthy database, report each failure under its own name, and a
// subsequent direct Sample of the restarted database must succeed without
// a process restart.
func TestChaosSampleAllSurvivesFaultsAndRestart(t *testing.T) {
	dbs, err := experiments.Federation(3, 200, 31)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(analysis.Database(), nil)
	defer svc.Close()
	reg := telemetry.NewRegistry()
	svc.SetMetrics(reg)
	for _, db := range dbs {
		if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
	}

	// The remote database. Its server restarts after the 20th call.
	p := corpus.Profile{
		Name: "remote", Docs: 150, SharedVocabSize: 600, SharedProb: 0.5,
		Topics:   []corpus.TopicSpec{{Name: "t", VocabSize: 2500, Weight: 1}},
		DocLenMu: 4.2, DocLenSigma: 0.5, MinDocLen: 12,
		ZipfS: 1.35, ZipfV: 2, Seed: 8,
	}
	remoteIx := index.Build(p.MustGenerate(), analysis.Database(), index.InQuery)
	remote := faulty.WrapDB(remoteIx, 1, 0) // rate 0: used for its call hook
	restartAt := make(chan struct{})
	var once sync.Once
	remote.SetHook(func(op string, call int) {
		if call == 20 {
			once.Do(func() { close(restartAt) })
		}
	})
	srv, err := netsearch.Serve(remote, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	restarted := make(chan *netsearch.Server, 1)
	go func() {
		<-restartAt
		srv.Close()
		var srv2 *netsearch.Server
		for i := 0; i < 100; i++ {
			if srv2, err = netsearch.Serve(remote, addr); err == nil {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		restarted <- srv2 // nil if the port never came back
	}()

	svc.SetDialOptions(netsearch.Options{
		Timeout: 2 * time.Second,
		Retry: netsearch.RetryPolicy{
			Attempts:  10,
			BaseDelay: 2 * time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
			Seed:      3,
		},
		DialFunc: faulty.Dialer(faulty.ConnOptions{Seed: 17, WriteRate: 0.2}),
	})
	if err := svc.Register("remote", addr); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("down", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}

	statuses, errs := svc.SampleAll(SampleOptions{Docs: 40, Seed: 5}, 4)

	// Every healthy local database completed.
	for _, db := range dbs {
		if st := statuses[db.Name]; !st.HasModel || st.SampledDocs == 0 {
			t.Errorf("healthy database %s not sampled: %+v", db.Name, st)
		}
		if errs[db.Name] != nil {
			t.Errorf("healthy database %s reported error: %v", db.Name, errs[db.Name])
		}
	}
	// The dead database is reported under its own name, not fatal.
	if errs["down"] == nil {
		t.Error("unreachable database missing from the error map")
	}
	if statuses["down"].LastError == "" {
		t.Error("unreachable database's status lost its error")
	}

	srv2 := <-restarted
	if srv2 == nil {
		t.Fatal("server never rebound its address")
	}
	defer srv2.Close()

	// Whether or not the restart window killed the remote run, a direct
	// Sample afterwards must succeed on the same service instance.
	st, err := svc.Sample("remote", SampleOptions{Docs: 30, Seed: 6})
	if err != nil {
		t.Fatalf("sample after server restart: %v (errs during SampleAll: %v)", err, errs["remote"])
	}
	if !st.HasModel || st.CircuitOpen || st.ConsecutiveFailures != 0 {
		t.Errorf("post-restart sample left unhealthy status: %+v", st)
	}

	// Sampling churn — faults, retries, the restart, the epoch bumps it
	// all causes — must never touch the selection result cache: no Rank
	// ran, so both cache counters must still read zero.
	if hits := reg.Counter("service_select_cache_hits_total").Value(); hits != 0 {
		t.Errorf("select cache recorded %d hits during sampling chaos", hits)
	}
	if misses := reg.Counter("service_select_cache_misses_total").Value(); misses != 0 {
		t.Errorf("select cache recorded %d misses during sampling chaos", misses)
	}

	// And the serving path must come up correctly on the post-chaos model
	// set: the first Rank compiles a snapshot (a miss), an identical Rank
	// hits, and the compiled results match the map-based scorers.
	if _, _, err := svc.rankCached("the data system", "cori", 3); err != nil {
		t.Fatalf("rank after chaos: %v", err)
	}
	if _, _, err := svc.rankCached("the data system", "cori", 3); err != nil {
		t.Fatalf("second rank after chaos: %v", err)
	}
	if misses := reg.Counter("service_select_cache_misses_total").Value(); misses != 1 {
		t.Errorf("post-chaos ranks recorded %d misses, want 1", misses)
	}
	if hits := reg.Counter("service_select_cache_hits_total").Value(); hits != 1 {
		t.Errorf("post-chaos ranks recorded %d hits, want 1", hits)
	}
}
