package service

// Tests for the batch rank path and the admission-control wiring around
// the serving surface: bit-identical batch-vs-sequential ranking, whole
// batch and per-item error handling, the POST /rank/batch endpoint, and
// deterministic overload behavior (429 + shed counters, k-degradation).

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/admission"
	"repro/internal/analysis"
)

// TestRankBatchMatchesSequential is the batch-vs-sequential property test:
// RankBatch and Rank share rankSnapshot, so for every query, algorithm,
// and k the rankings must agree to the bit — not approximately, exactly.
func TestRankBatchMatchesSequential(t *testing.T) {
	svc, _ := sampledFixture(t)
	svc.SetRankCacheSize(0) // sequential path computes, never replays
	queries := []string{
		"system data language",
		"stock market data",
		"system data language", // repeats must not perturb scratch reuse
		"data",
		"language model database selection",
	}
	for _, alg := range []string{"cori", "gloss-sum"} {
		for _, k := range []int{0, 1, 2} {
			items, err := svc.RankBatch(queries, alg, k)
			if err != nil {
				t.Fatalf("RankBatch(%s, k=%d): %v", alg, k, err)
			}
			if len(items) != len(queries) {
				t.Fatalf("got %d items for %d queries", len(items), len(queries))
			}
			for i, q := range queries {
				want, err := svc.Rank(q, alg, k)
				if err != nil {
					t.Fatalf("Rank(%q, %s, %d): %v", q, alg, k, err)
				}
				got := items[i]
				if got.Error != "" {
					t.Fatalf("item %d unexpected error %q", i, got.Error)
				}
				if len(got.Ranked) != len(want) {
					t.Fatalf("item %d: %d rows vs %d sequential", i, len(got.Ranked), len(want))
				}
				for j := range want {
					if got.Ranked[j].Name != want[j].Name ||
						math.Float64bits(got.Ranked[j].Score) != math.Float64bits(want[j].Score) {
						t.Fatalf("item %d row %d: batch %+v != sequential %+v",
							i, j, got.Ranked[j], want[j])
					}
				}
			}
		}
	}
}

func TestRankBatchWholeBatchErrors(t *testing.T) {
	svc, _ := sampledFixture(t)
	if _, err := svc.RankBatch(nil, "cori", 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty batch: err = %v, want ErrInvalid", err)
	}
	if _, err := svc.RankBatch([]string{"data"}, "bogus-alg", 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad algorithm: err = %v, want ErrInvalid", err)
	}
	cold := New(analysis.Database(), nil) // registered nothing, no models
	if _, err := cold.RankBatch([]string{"data"}, "cori", 0); !errors.Is(err, ErrNoModels) {
		t.Errorf("no models: err = %v, want ErrNoModels", err)
	}
}

func TestRankBatchPerItemErrors(t *testing.T) {
	svc, _ := sampledFixture(t)
	items, err := svc.RankBatch([]string{"system data", "the and of", "market"}, "cori", 2)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Error != "" || len(items[0].Ranked) == 0 {
		t.Errorf("item 0 should rank: %+v", items[0])
	}
	if items[1].Error == "" || items[1].Ranked != nil {
		t.Errorf("stopword-only query should fail per-item: %+v", items[1])
	}
	if !strings.Contains(items[1].Error, "no index terms") {
		t.Errorf("item 1 error = %q, want a no-index-terms message", items[1].Error)
	}
	if items[2].Error != "" || len(items[2].Ranked) == 0 {
		t.Errorf("item 2 should rank despite its failed neighbor: %+v", items[2])
	}
}

func TestHTTPRankBatch(t *testing.T) {
	svc, _ := sampledFixture(t)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	var out batchRankResponse
	resp := postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{"system data", "the and of"}, Alg: "cori", K: 2}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(out.Results) != 2 || len(out.Results[0].Ranked) == 0 || out.Results[1].Error == "" {
		t.Fatalf("batch response: %+v", out)
	}
	if out.Degraded {
		t.Error("no admission gate installed, yet response claims degradation")
	}

	if resp := getJSON(t, ts.URL+"/rank/batch", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /rank/batch: status %d, want 405", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: make([]string, MaxBatchQueries+1), Alg: "cori"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize batch: status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{"data"}, Alg: "bogus-alg"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad algorithm: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPAdmissionOverload is the deterministic overload test: hold the
// gate's only slot, assert the next request sheds with 429 + Retry-After
// and bumps the capacity shed counter — then release and assert requests
// under the limit never shed.
func TestHTTPAdmissionOverload(t *testing.T) {
	svc, reg := sampledFixture(t)
	svc.SetAdmission(admission.Config{MaxInFlight: 1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	shedCap := reg.Counter(`service_shed_total{reason="inflight"}`)

	// Saturate the gate directly — no races, no timing.
	ticket, ok := svc.gate.Load().Admit()
	if !ok {
		t.Fatal("idle gate refused the first admit")
	}
	resp := getJSON(t, ts.URL+"/rank?q=system+data&alg=cori", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated rank: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var batch batchRankResponse
	if resp := postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{"data"}, Alg: "cori"}, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d, want 429", resp.StatusCode)
	}
	if shedCap.Value() != 2 {
		t.Fatalf("shed counter = %d, want 2", shedCap.Value())
	}

	ticket.Release()
	var ranked []RankedDB
	if resp := getJSON(t, ts.URL+"/rank?q=system+data&alg=cori", &ranked); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release rank: status %d, want 200", resp.StatusCode)
	}
	if len(ranked) == 0 {
		t.Fatal("post-release rank returned no rows")
	}
	if resp := postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{"data"}, Alg: "cori"}, &batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release batch: status %d, want 200", resp.StatusCode)
	}
	if shedCap.Value() != 2 {
		t.Errorf("requests under the limit shed: counter = %d, want 2", shedCap.Value())
	}
	if got := svc.gate.Load().InFlight(); got != 0 {
		t.Errorf("in-flight = %d after all requests completed, want 0", got)
	}
}

// TestHTTPAdmissionDegradesK: above the degradation watermark the gate
// clamps k, the handler reports it via X-Degraded-K, and the batch
// response carries Degraded.
func TestHTTPAdmissionDegradesK(t *testing.T) {
	svc, reg := sampledFixture(t)
	// DegradeAt 1: every admitted request sees depth >= 1, so degradation
	// is deterministic without concurrent traffic.
	svc.SetAdmission(admission.Config{MaxInFlight: 8, DegradeAt: 1, DegradeK: 2})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	var ranked []RankedDB
	resp := getJSON(t, ts.URL+"/rank?q=system+data&alg=cori&k=5", &ranked)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded rank: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Degraded-K") != "2" {
		t.Errorf("X-Degraded-K = %q, want 2", resp.Header.Get("X-Degraded-K"))
	}
	if len(ranked) != 2 {
		t.Errorf("degraded rank returned %d rows, want 2", len(ranked))
	}
	var batch batchRankResponse
	resp = postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{"system data"}, Alg: "cori", K: 5}, &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded batch: status %d", resp.StatusCode)
	}
	if !batch.Degraded || len(batch.Results[0].Ranked) != 2 {
		t.Errorf("degraded batch: %+v", batch)
	}
	if reg.Counter("service_degraded_total").Value() == 0 {
		t.Error("degraded counter never incremented")
	}
}
