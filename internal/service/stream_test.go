package service

// Tests for the streaming batch surface (DESIGN.md §15): NDJSON and SSE
// framing over POST /rank/batch?stream=1, bit-identical equivalence of
// streamed vs buffered vs sequential rankings, whole-batch errors staying
// plain JSON, client-disconnect cleanup, deterministic cross-caller flight
// coalescing, leader panic recovery, and a -race chaos scenario of
// streams racing epoch swaps.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// streamFrame decodes any frame of a rank stream: item frames carry Index
// and Ranked/Error, the terminal frame carries Done/Results/Degraded.
type streamFrame struct {
	Index    int        `json:"index"`
	Ranked   []RankedDB `json:"ranked"`
	Error    string     `json:"error"`
	Done     bool       `json:"done"`
	Results  int        `json:"results"`
	Degraded bool       `json:"degraded"`
}

// readStream POSTs a batch with ?stream=1 and decodes every frame,
// stripping SSE framing when present.
func readStream(t *testing.T, url string, req batchRankRequest, accept string) (*http.Response, []streamFrame) {
	t.Helper()
	frames, resp, err := tryReadStream(url, req, accept)
	if err != nil {
		t.Fatal(err)
	}
	return resp, frames
}

func tryReadStream(url string, req batchRankRequest, accept string) ([]streamFrame, *http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	hr, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	if accept != "" {
		hr.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var frames []streamFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue // SSE event separator
		}
		line = strings.TrimPrefix(line, "data: ")
		var f streamFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return nil, nil, fmt.Errorf("bad frame %q: %w", line, err)
		}
		frames = append(frames, f)
	}
	return frames, resp, sc.Err()
}

// TestHTTPRankBatchStreamNDJSON pins the streamed wire format and the
// bit-identical property: every streamed row must equal the buffered
// RankBatch row exactly (names and math.Float64bits of scores — Go's JSON
// float64 round-trip is exact).
func TestHTTPRankBatchStreamNDJSON(t *testing.T) {
	svc, _ := sampledFixture(t)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	queries := []string{"system data", "the and of", "market stock", "system data"}
	resp, frames := readStream(t, ts.URL+"/rank/batch?stream=1",
		batchRankRequest{Queries: queries, Alg: "cori", K: 2}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	if len(frames) != len(queries)+1 {
		t.Fatalf("got %d frames for %d queries (+done)", len(frames), len(queries))
	}
	done := frames[len(frames)-1]
	if !done.Done || done.Results != len(queries) || done.Degraded {
		t.Fatalf("done frame: %+v", done)
	}
	want, err := svc.RankBatch(queries, "cori", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames[:len(queries)] {
		if f.Index != i {
			t.Fatalf("frame %d carries index %d: streamed frames must arrive in input order", i, f.Index)
		}
		if f.Error != want[i].Error {
			t.Fatalf("frame %d error %q, buffered %q", i, f.Error, want[i].Error)
		}
		if len(f.Ranked) != len(want[i].Ranked) {
			t.Fatalf("frame %d: %d rows, buffered %d", i, len(f.Ranked), len(want[i].Ranked))
		}
		for j := range f.Ranked {
			if f.Ranked[j].Name != want[i].Ranked[j].Name ||
				math.Float64bits(f.Ranked[j].Score) != math.Float64bits(want[i].Ranked[j].Score) {
				t.Fatalf("frame %d row %d: streamed %+v != buffered %+v",
					i, j, f.Ranked[j], want[i].Ranked[j])
			}
		}
	}
	if frames[1].Error == "" {
		t.Error("stopword-only query should stream a per-item error frame")
	}
}

// TestHTTPRankBatchStreamSSE: an Accept: text/event-stream client gets the
// same frames as SSE data events.
func TestHTTPRankBatchStreamSSE(t *testing.T) {
	svc, _ := sampledFixture(t)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	resp, frames := readStream(t, ts.URL+"/rank/batch?stream=1",
		batchRankRequest{Queries: []string{"system data", "market"}, Alg: "cori", K: 2},
		"text/event-stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	if len(frames) != 3 || !frames[2].Done || frames[2].Results != 2 {
		t.Fatalf("SSE frames: %+v", frames)
	}
}

// TestHTTPRankBatchStreamWholeBatchError: failures detected before the
// first frame answer as plain JSON errors with the buffered path's status.
func TestHTTPRankBatchStreamWholeBatchError(t *testing.T) {
	svc, _ := sampledFixture(t)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	for _, req := range []batchRankRequest{
		{Queries: []string{"data"}, Alg: "bogus-alg"},
		{Queries: nil, Alg: "cori"},
	} {
		resp := postJSON(t, ts.URL+"/rank/batch?stream=1", req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%+v: pre-stream error Content-Type = %q, want application/json", req, ct)
		}
	}
}

// TestHTTPRankBatchStreamDisconnect cancels the request mid-stream and
// asserts the server notices: the abort counter bumps, the admission
// ticket releases, and no flight is left in the coalescer.
func TestHTTPRankBatchStreamDisconnect(t *testing.T) {
	svc, reg := sampledFixture(t)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	// The stream's second query joins a flight the test leads, so the
	// server is deterministically blocked mid-stream — one frame out, the
	// rest pending — while the client disconnects.
	queries := []string{"system data", "market stock", "language model"}
	key := flightKey(svc, "market stock", "cori", 2)
	f, leader := svc.joinFlight(key)
	if !leader {
		t.Fatal("test could not lead the blocking flight")
	}
	body, err := json.Marshal(batchRankRequest{Queries: queries, Alg: "cori", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/rank/batch?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first frame, then walk away mid-stream.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()
	// Give the disconnect a moment to propagate to the server's context,
	// then unblock the stream: its next emit must see the dead client.
	time.Sleep(50 * time.Millisecond)
	svc.fulfillFlight(key, f, []RankedDB{{Name: "x"}}, nil)

	aborts := reg.Counter("service_stream_aborts_total")
	deadline := time.Now().Add(5 * time.Second)
	for aborts.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the stream abort")
		}
		time.Sleep(time.Millisecond)
	}
	if got := svc.coal.inflight(); got != 0 {
		t.Errorf("coalescer holds %d flights after disconnect, want 0", got)
	}
	if got := reg.Gauge("service_rank_flights_inflight").Value(); got != 0 {
		t.Errorf("in-flight gauge = %d after disconnect, want 0", got)
	}
	if got := svc.gate.Load().InFlight(); got != 0 {
		t.Errorf("admission in-flight = %d after disconnect, want 0", got)
	}
}

// TestBatchJoinsForeignFlight is the deterministic cross-caller
// coalescing test: a flight led elsewhere (here: by the test) is joined by
// a batch item with the same key, which blocks until the leader fulfills
// and then fans out the leader's exact value.
func TestBatchJoinsForeignFlight(t *testing.T) {
	svc, reg := sampledFixture(t)
	key := flightKey(svc, "system data", "cori", 2)
	f, leader := svc.joinFlight(key)
	if !leader {
		t.Fatal("test could not lead the flight")
	}

	coalesced := reg.Counter(`service_rank_coalesced_total{scope="flight"}`)
	type result struct {
		items []BatchItem
		err   error
	}
	done := make(chan result, 1)
	go func() {
		items, err := svc.RankBatch([]string{"system data"}, "cori", 2)
		done <- result{items, err}
	}()
	// The follower bumps the coalesce counter before blocking on the
	// flight; once we see it, fulfill with a sentinel value.
	deadline := time.Now().Add(5 * time.Second)
	for coalesced.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch item never joined the foreign flight")
		}
		time.Sleep(time.Millisecond)
	}
	want := []RankedDB{{Name: "sentinel", Score: 42}}
	svc.fulfillFlight(key, f, want, nil)

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.items) != 1 || r.items[0].Error != "" ||
		len(r.items[0].Ranked) != 1 || r.items[0].Ranked[0] != want[0] {
		t.Fatalf("follower item = %+v, want the leader's %+v", r.items, want)
	}
	// The emitted slice is a copy, not the flight's backing array.
	r.items[0].Ranked[0].Name = "mutated"
	if want[0].Name != "sentinel" {
		t.Error("batch item aliased the flight's value")
	}
}

// TestFlightErrorNotServedToLaterCallers: an errored flight reaches its
// concurrent followers and no one else — the next identical request
// computes fresh and succeeds.
func TestFlightErrorNotServedToLaterCallers(t *testing.T) {
	svc, reg := sampledFixture(t)
	key := flightKey(svc, "system data", "cori", 2)
	f, leader := svc.joinFlight(key)
	if !leader {
		t.Fatal("test could not lead the flight")
	}
	coalesced := reg.Counter(`service_rank_coalesced_total{scope="flight"}`)
	done := make(chan []BatchItem, 1)
	go func() {
		items, err := svc.RankBatch([]string{"system data"}, "cori", 2)
		if err != nil {
			t.Errorf("follower batch failed whole: %v", err)
		}
		done <- items
	}()
	deadline := time.Now().Add(5 * time.Second)
	for coalesced.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch item never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	svc.fulfillFlight(key, f, nil, errors.New("leader exploded"))
	items := <-done
	if items == nil || items[0].Error != "leader exploded" {
		t.Fatalf("concurrent follower item = %+v, want the flight's error", items)
	}
	// A later identical request must not inherit the failure.
	fresh, err := svc.RankBatch([]string{"system data"}, "cori", 2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Error != "" || len(fresh[0].Ranked) == 0 {
		t.Fatalf("later caller inherited the errored flight: %+v", fresh[0])
	}
}

// TestRankBatchLeaderPanicRecovery: a panicking leader fulfills its flight
// with an error before re-panicking, so followers never block forever.
func TestRankBatchLeaderPanicRecovery(t *testing.T) {
	svc, _ := sampledFixture(t)
	key := flightKey(svc, "system data", "cori", 2)
	f, leader := svc.joinFlight(key)
	if !leader {
		t.Fatal("test could not lead the flight")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		// nil snapshot makes rankSnapshot panic inside the leader.
		svc.rankBatchLeader(key, f, nil, nil, nil, 2)
	}()
	select {
	case <-f.ready:
	default:
		t.Fatal("panicked leader left its flight unfulfilled")
	}
	if f.err == nil || !strings.Contains(f.err.Error(), "panicked") {
		t.Fatalf("flight error = %v, want a rank-panicked error", f.err)
	}
	if svc.coal.inflight() != 0 {
		t.Fatalf("inflight = %d after panic, want 0", svc.coal.inflight())
	}
}

// flightKey builds the coalescer key the serving path would use for this
// query right now (current epoch, canonical algorithm spelling).
func flightKey(svc *Service, query, alg string, k int) rankCacheKey {
	terms := svc.analyzer.Tokens(query)
	return rankCacheKey{
		query: strings.Join(terms, "\x1f"),
		alg:   alg,
		k:     k,
		epoch: svc.snapshot().epoch,
	}
}

// TestChaosStreamCoalesceEpochSwap races streamed batches (with heavy
// within-batch duplication), single ranks, and epoch-bumping resamples.
// Under -race this is the proof that the coalescer, the cache, and the
// streaming surface never cross epochs or leak flights.
func TestChaosStreamCoalesceEpochSwap(t *testing.T) {
	svc, dbs := fixture(t, nil)
	reg := telemetry.NewRegistry()
	svc.SetMetrics(reg)
	for _, db := range dbs {
		if _, err := svc.Sample(db.Name, SampleOptions{Docs: 40, Seed: 3}); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 40
	queries := []string{"system data", "market stock", "system data", "data", "system data"}
	var wg sync.WaitGroup
	// Streamers: RankBatchStream with duplicated queries, checking order.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				next := 0
				err := svc.RankBatchStream(queries, "cori", 2, func(j int, item BatchItem) error {
					if j != next {
						return fmt.Errorf("frame %d arrived out of order (want %d)", j, next)
					}
					next++
					if item.Error != "" {
						return fmt.Errorf("item %d errored: %s", j, item.Error)
					}
					return nil
				})
				if err != nil {
					t.Errorf("streamer %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	// Single-path readers share flights with the streamers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*2; i++ {
			if _, err := svc.Rank("system data", "cori", 2); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
		}
	}()
	// Writer: epoch swaps underneath everyone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			if _, err := svc.Sample(dbs[i%len(dbs)].Name, SampleOptions{Docs: 20, Seed: uint64(i + 5)}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := svc.coal.inflight(); got != 0 {
		t.Fatalf("coalescer holds %d flights after the dust settled, want 0", got)
	}
	if dups := reg.Counter(`service_rank_coalesced_total{scope="batch"}`).Value(); dups != 3*rounds*2 {
		t.Errorf(`scope="batch" coalesce counter = %d, want %d (2 dups x %d batches x 3 streamers)`,
			dups, 3*rounds*2, 3*rounds)
	}
}
