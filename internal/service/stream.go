package service

// Streaming batch rank (DESIGN.md §15): POST /rank/batch?stream=1 answers
// with one frame per query, flushed the moment that query's ranking
// completes, instead of buffering the whole batch — so a client's
// time-to-first-result is one query's latency, not the batch's. The frame
// format is NDJSON by default; a client sending "Accept: text/event-stream"
// gets the same frames as SSE data events. Each item frame carries its
// query's input index; the terminal frame is {"done":true,...} — its
// absence tells a client the stream was cut mid-flight.
//
// Whole-batch errors (bad algorithm, empty batch, cold federation) are
// detected before the first frame and answered as a plain JSON error with
// the usual status code, exactly like the buffered path. The request holds
// one admission ticket for the whole stream, released after the last
// flush.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// streamItem is one query's frame in a rank stream. Ranked is typed any so
// the cluster front (whose rows are netsearch.RankedDB) shares the writer;
// both row types marshal to the same {"name","score"} JSON.
type streamItem struct {
	Index  int    `json:"index"`
	Ranked any    `json:"ranked,omitempty"`
	Error  string `json:"error,omitempty"`
}

// streamDone is the terminal frame: Results counts the item frames sent,
// and Degraded mirrors the buffered response's flag.
type streamDone struct {
	Done     bool `json:"done"`
	Results  int  `json:"results"`
	Degraded bool `json:"degraded,omitempty"`
}

// WantStream reports whether a batch rank request asked for a streamed
// response (?stream=1).
func WantStream(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return false
}

// StreamWriter writes rank stream frames as NDJSON (default) or SSE
// (negotiated from the request's Accept header), flushing after every
// frame. Headers are written lazily on the first frame, so a handler that
// fails before emitting anything can still answer with a plain error
// response. Exported for the cluster front, which streams the same wire
// shape.
type StreamWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	sse     bool
	started bool
}

// NewStreamWriter negotiates the stream format for the request. The
// response is untouched until the first frame.
func NewStreamWriter(w http.ResponseWriter, r *http.Request) *StreamWriter {
	flusher, _ := w.(http.Flusher)
	return &StreamWriter{
		w:       w,
		flusher: flusher,
		sse:     strings.Contains(r.Header.Get("Accept"), "text/event-stream"),
	}
}

// Started reports whether any frame (and therefore the response header)
// has been written.
func (sw *StreamWriter) Started() bool { return sw.started }

// Item writes one query's frame. ranked may be any slice that marshals to
// rows of {"name","score"} (service.RankedDB, netsearch.RankedDB).
func (sw *StreamWriter) Item(index int, ranked any, errMsg string) error {
	return sw.frame(streamItem{Index: index, Ranked: ranked, Error: errMsg})
}

// Done writes the terminal frame.
func (sw *StreamWriter) Done(results int, degraded bool) error {
	return sw.frame(streamDone{Done: true, Results: results, Degraded: degraded})
}

func (sw *StreamWriter) frame(v any) error {
	if !sw.started {
		sw.started = true
		h := sw.w.Header()
		if sw.sse {
			h.Set("Content-Type", "text/event-stream")
		} else {
			h.Set("Content-Type", "application/x-ndjson")
		}
		h.Set("Cache-Control", "no-cache")
		h.Set("X-Accel-Buffering", "no") // tell buffering proxies not to hold frames
		sw.w.WriteHeader(http.StatusOK)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if sw.sse {
		if _, err := fmt.Fprintf(sw.w, "data: %s\n\n", b); err != nil {
			return err
		}
	} else {
		b = append(b, '\n')
		if _, err := sw.w.Write(b); err != nil {
			return err
		}
	}
	if sw.flusher != nil {
		sw.flusher.Flush()
	}
	return nil
}

// streamRankBatch serves one POST /rank/batch?stream=1 request. The
// caller has already admitted the request and clamped k; the admission
// ticket's deferred Release fires after the stream's last flush.
func (s *Service) streamRankBatch(w http.ResponseWriter, r *http.Request, req batchRankRequest, k int, degraded bool) {
	reg := s.Metrics()
	sw := NewStreamWriter(w, r)
	ctx := r.Context()
	results := 0
	err := s.RankBatchStream(req.Queries, req.Alg, k, func(i int, item BatchItem) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr // client disconnected; stop ranking for nobody
		}
		results++
		return sw.Item(i, item.Ranked, item.Error)
	})
	if err != nil {
		if !sw.Started() {
			// Whole-batch refusal before any frame: answer like the
			// buffered path would.
			writeErr(w, statusFor(err), err)
			return
		}
		// Mid-stream cut: the client is gone (context canceled or a write
		// failed). There is no one left to tell.
		reg.Counter("service_stream_aborts_total").Inc()
		return
	}
	if err := sw.Done(results, degraded); err != nil {
		reg.Counter("service_stream_aborts_total").Inc()
		return
	}
	reg.Counter("service_stream_ranks_total").Inc()
}
