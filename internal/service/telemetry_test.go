package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/netsearch"
	"repro/internal/telemetry"
)

// metricsFixture is httpFixture with an installed telemetry registry (and
// the service handle itself, which httpFixture hides).
func metricsFixture(t *testing.T) (*httptest.Server, *Service, []*experiments.FederationDB) {
	t.Helper()
	dbs, err := experiments.Federation(2, 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(analysis.Database(), nil)
	t.Cleanup(func() { svc.Close() })
	svc.SetMetrics(telemetry.NewRegistry())
	for _, db := range dbs {
		ns, err := netsearch.Serve(db.Index, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ns.Close() })
		if err := svc.Register(db.Name, ns.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts, svc, dbs
}

func get(t *testing.T, url string, header http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHTTPMetricsAcceptNegotiation(t *testing.T) {
	ts, _, dbs := metricsFixture(t)
	resp := postJSON(t, ts.URL+"/databases/"+dbs[0].Name+"/sample", SampleOptions{Docs: 30}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample = %d", resp.StatusCode)
	}

	// Default (no JSON in Accept): Prometheus text exposition, with the
	// sampling the request above just did visible as nonzero counters.
	resp, body := get(t, ts.URL+"/metrics", nil)
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentTypePrometheus {
		t.Errorf("default Content-Type = %q, want %q", got, telemetry.ContentTypePrometheus)
	}
	for _, want := range []string{
		"# TYPE service_samples_total counter",
		"service_samples_total 1",
		"service_sampled_docs_total 3", // 30-ish docs: prefix check below
		"netsearch_dials_total",
		"http_requests_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus body missing %q", want)
		}
	}

	// Accept: application/json gets the JSON snapshot with the same data.
	resp, body = get(t, ts.URL+"/metrics", http.Header{"Accept": {"application/json"}})
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("JSON Content-Type = %q", got)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("unmarshal JSON snapshot: %v", err)
	}
	if snap.Counters["service_samples_total"] != 1 {
		t.Errorf("service_samples_total = %d, want 1", snap.Counters["service_samples_total"])
	}
	if snap.Counters["netsearch_dials_total"] == 0 {
		t.Error("sampling left netsearch_dials_total at 0")
	}
	if snap.Histograms["service_sample_seconds"].Count != 1 {
		t.Errorf("service_sample_seconds count = %d, want 1", snap.Histograms["service_sample_seconds"].Count)
	}

	// ?format=json overrides a non-JSON Accept header.
	resp, body = get(t, ts.URL+"/metrics?format=json", http.Header{"Accept": {"text/plain"}})
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("format=json Content-Type = %q", got)
	}
	if !json.Valid([]byte(body)) {
		t.Error("format=json body is not JSON")
	}
	_ = resp
}

func TestHTTPMetricsWithoutRegistryIs404(t *testing.T) {
	ts, _ := httpFixture(t) // no SetMetrics
	resp, _ := get(t, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without registry = %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/debug/vars", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/vars without registry = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPErrorClassCounters(t *testing.T) {
	ts, svc, _ := metricsFixture(t)

	// 404: unknown database; 400: rank without a query.
	if resp, _ := get(t, ts.URL+"/databases/nope/summary", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown summary = %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/rank", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty rank = %d", resp.StatusCode)
	}
	// 502: sampling a database whose server is gone.
	if err := svc.Register("gone", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if resp := postJSON(t, ts.URL+"/databases/gone/sample", SampleOptions{Docs: 5}, nil); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("sample of dead db = %d, want 502", resp.StatusCode)
	}

	snap := svc.Metrics().Snapshot()
	if got := snap.Counters["http_4xx_total"]; got != 2 {
		t.Errorf("http_4xx_total = %d, want 2", got)
	}
	if got := snap.Counters["http_5xx_total"]; got != 1 {
		t.Errorf("http_5xx_total = %d, want 1", got)
	}
	if got := snap.Counters[`http_responses_total{class="4xx"}`]; got != 2 {
		t.Errorf(`http_responses_total{class="4xx"} = %d, want 2`, got)
	}
	if got := snap.Counters[`http_responses_total{class="5xx"}`]; got != 1 {
		t.Errorf(`http_responses_total{class="5xx"} = %d, want 1`, got)
	}
	if got := snap.Counters["service_sample_errors_total"]; got != 1 {
		t.Errorf("service_sample_errors_total = %d, want 1", got)
	}
}

func TestHTTPTraceIDAssignedAndEchoed(t *testing.T) {
	ts, _, _ := metricsFixture(t)
	resp, _ := get(t, ts.URL+"/healthz", nil)
	if id := resp.Header.Get("X-Trace-Id"); !strings.HasPrefix(id, "req-") {
		t.Errorf("assigned trace ID = %q, want req-NNNNNN", id)
	}
	resp, _ = get(t, ts.URL+"/healthz", http.Header{"X-Trace-Id": {"caller-7"}})
	if id := resp.Header.Get("X-Trace-Id"); id != "caller-7" {
		t.Errorf("incoming trace ID not honored: %q", id)
	}
}
