package service

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/netsearch"
	"repro/internal/store"
)

// fixture builds a federation and a service with every database
// registered locally.
func fixture(t *testing.T, st *store.Store) (*Service, []*experiments.FederationDB) {
	t.Helper()
	dbs, err := experiments.Federation(3, 200, 31)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(analysis.Database(), st)
	for _, db := range dbs {
		if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
	}
	return svc, dbs
}

func TestRegisterAndList(t *testing.T) {
	svc, dbs := fixture(t, nil)
	statuses := svc.Databases()
	if len(statuses) != len(dbs) {
		t.Fatalf("got %d databases, want %d", len(statuses), len(dbs))
	}
	for _, st := range statuses {
		if st.HasModel {
			t.Errorf("%s has a model before sampling", st.Name)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	svc := New(analysis.Database(), nil)
	if err := svc.Register("", "addr"); err == nil {
		t.Error("empty name accepted")
	}
	if err := svc.RegisterLocal("x", nil); err == nil {
		t.Error("nil database accepted")
	}
	if err := svc.Register("dup", "a:1"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("dup", "a:2"); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestSampleAndRank(t *testing.T) {
	svc, dbs := fixture(t, nil)
	for _, db := range dbs {
		st, err := svc.Sample(db.Name, SampleOptions{Docs: 60, Seed: 5})
		if err != nil {
			t.Fatalf("sample %s: %v", db.Name, err)
		}
		if !st.HasModel || st.SampledDocs == 0 || st.Terms == 0 {
			t.Errorf("%s status after sampling: %+v", db.Name, st)
		}
	}
	// Topical query for db 0 must rank db 0 first.
	terms := experiments.TopicalTerms(dbs[0], dbs, 4)
	query := terms[0] + " " + terms[1]
	ranked, err := svc.Rank(query, "cori", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d databases", len(ranked))
	}
	if ranked[0].Name != dbs[0].Name {
		t.Errorf("query %q ranked %s first, want %s", query, ranked[0].Name, dbs[0].Name)
	}
	// k limiting.
	top1, err := svc.Rank(query, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 {
		t.Errorf("k=1 returned %d rows", len(top1))
	}
}

func TestRankErrors(t *testing.T) {
	svc, dbs := fixture(t, nil)
	if _, err := svc.Rank("anything", "cori", 0); err == nil {
		t.Error("rank before any sampling should fail")
	}
	if _, err := svc.Sample(dbs[0].Name, SampleOptions{Docs: 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Rank("query", "bogus-alg", 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := svc.Rank("the and of", "cori", 0); err == nil {
		t.Error("stopword-only query accepted")
	}
}

func TestSampleUnknownDatabase(t *testing.T) {
	svc, _ := fixture(t, nil)
	if _, err := svc.Sample("ghost", SampleOptions{}); !errors.Is(err, ErrUnknownDatabase) {
		t.Errorf("got %v, want ErrUnknownDatabase", err)
	}
}

func TestSummary(t *testing.T) {
	svc, dbs := fixture(t, nil)
	if _, err := svc.Summary(dbs[0].Name, "avg-tf", 5); err == nil {
		t.Error("summary before sampling should fail")
	}
	if _, err := svc.Sample(dbs[0].Name, SampleOptions{Docs: 50}); err != nil {
		t.Fatal(err)
	}
	rows, err := svc.Summary(dbs[0].Name, "df", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) > 5 {
		t.Errorf("summary rows = %d", len(rows))
	}
	if _, err := svc.Summary(dbs[0].Name, "bogus", 5); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := svc.Summary("ghost", "df", 5); !errors.Is(err, ErrUnknownDatabase) {
		t.Errorf("got %v, want ErrUnknownDatabase", err)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	svc, dbs := fixture(t, st)
	if _, err := svc.Sample(dbs[0].Name, SampleOptions{Docs: 50, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh service over the same store. Registering the same
	// database name picks up the persisted model without re-sampling.
	svc2 := New(analysis.Database(), st)
	if err := svc2.RegisterLocal(dbs[0].Name, dbs[0].Index); err != nil {
		t.Fatal(err)
	}
	statuses := svc2.Databases()
	if len(statuses) != 1 || !statuses[0].HasModel {
		t.Fatalf("persisted model not loaded: %+v", statuses)
	}
	terms := experiments.TopicalTerms(dbs[0], dbs, 2)
	if _, err := svc2.Rank(terms[0], "cori", 0); err != nil {
		t.Errorf("rank with persisted model failed: %v", err)
	}
}

func TestUnregister(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	svc, dbs := fixture(t, st)
	if _, err := svc.Sample(dbs[0].Name, SampleOptions{Docs: 30}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Unregister(dbs[0].Name); err != nil {
		t.Fatal(err)
	}
	if len(svc.Databases()) != len(dbs)-1 {
		t.Error("database still listed after unregister")
	}
	// Persisted model deleted too.
	if _, err := st.Get(dbs[0].Name); !errors.Is(err, store.ErrNotFound) {
		t.Error("persisted model survived unregister")
	}
	if err := svc.Unregister("ghost"); !errors.Is(err, ErrUnknownDatabase) {
		t.Errorf("got %v, want ErrUnknownDatabase", err)
	}
}

func TestSampleRemoteDatabase(t *testing.T) {
	// A remote database is reached lazily through netsearch.
	p := corpus.Profile{
		Name: "remote", Docs: 150, SharedVocabSize: 600, SharedProb: 0.5,
		Topics:   []corpus.TopicSpec{{Name: "t", VocabSize: 2500, Weight: 1}},
		DocLenMu: 4.2, DocLenSigma: 0.5, MinDocLen: 12,
		ZipfS: 1.35, ZipfV: 2, Seed: 8,
	}
	ix := index.Build(p.MustGenerate(), analysis.Database(), index.InQuery)
	srv, err := netsearch.Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	svc := New(analysis.Database(), nil)
	defer svc.Close()
	if err := svc.Register("remote-db", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Sample("remote-db", SampleOptions{Docs: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.SampledDocs == 0 || !st.HasModel {
		t.Errorf("remote sampling produced %+v", st)
	}
}

func TestSampleConnectFailureRecorded(t *testing.T) {
	svc := New(analysis.Database(), nil)
	if err := svc.Register("down", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Sample("down", SampleOptions{}); err == nil {
		t.Fatal("sampling an unreachable database succeeded")
	}
	statuses := svc.Databases()
	if statuses[0].LastError == "" {
		t.Error("connection failure not recorded in status")
	}
}

func TestSampleAll(t *testing.T) {
	svc, dbs := fixture(t, nil)
	statuses, errs := svc.SampleAll(SampleOptions{Docs: 40, Seed: 3}, 2)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if len(statuses) != len(dbs) {
		t.Fatalf("got %d statuses", len(statuses))
	}
	for name, st := range statuses {
		if !st.HasModel || st.SampledDocs == 0 {
			t.Errorf("%s not sampled: %+v", name, st)
		}
	}
	// Ranking works immediately afterward.
	terms := experiments.TopicalTerms(dbs[0], dbs, 2)
	if _, err := svc.Rank(terms[0]+" "+terms[1], "cori", 0); err != nil {
		t.Errorf("rank after SampleAll: %v", err)
	}
}

func TestSampleAllPartialFailure(t *testing.T) {
	svc, dbs := fixture(t, nil)
	if err := svc.Register("down", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	statuses, errs := svc.SampleAll(SampleOptions{Docs: 30}, 3)
	if errs["down"] == nil {
		t.Fatal("expected an error from the unreachable database")
	}
	if len(errs) != 1 {
		t.Errorf("healthy databases reported errors: %v", errs)
	}
	// The healthy databases were still sampled.
	for _, db := range dbs {
		if st := statuses[db.Name]; !st.HasModel {
			t.Errorf("%s skipped because another database failed", db.Name)
		}
	}
	if statuses["down"].HasModel {
		t.Error("unreachable database claims a model")
	}
}

func TestSampleExtendGrowsSample(t *testing.T) {
	svc, dbs := fixture(t, nil)
	first, err := svc.Sample(dbs[0].Name, SampleOptions{Docs: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Sample(dbs[0].Name, SampleOptions{Docs: 50, Seed: 10, Extend: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.SampledDocs < first.SampledDocs+40 {
		t.Errorf("extend grew sample only %d -> %d", first.SampledDocs, second.SampledDocs)
	}
	if second.Terms <= first.Terms {
		t.Errorf("extend did not grow vocabulary: %d -> %d", first.Terms, second.Terms)
	}
	// Extend without a previous run falls back to a fresh sample.
	fresh, err := svc.Sample(dbs[1].Name, SampleOptions{Docs: 40, Extend: true})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.SampledDocs == 0 {
		t.Error("extend-without-prev sampled nothing")
	}
}

func TestInitialModelGrowsWithKnowledge(t *testing.T) {
	svc, dbs := fixture(t, nil)
	before := svc.initialModel()
	if _, err := svc.Sample(dbs[0].Name, SampleOptions{Docs: 40}); err != nil {
		t.Fatal(err)
	}
	after := svc.initialModel()
	if after.VocabSize() <= before.VocabSize() {
		t.Errorf("union initial model did not grow: %d -> %d",
			before.VocabSize(), after.VocabSize())
	}
}
