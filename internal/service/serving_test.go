package service

// Tests for the compiled query-serving path: snapshot compilation and RCU
// invalidation, the epoch-keyed result cache (hits, misses, single-flight,
// LRU bounds), equivalence with the map-based scorers, and a -race stress
// scenario of Rank racing resamples and registry churn.

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/langmodel"
	"repro/internal/selection"
	"repro/internal/telemetry"
)

// sampledFixture is fixture plus a sampling pass so every database serves
// a model, with a metrics registry installed.
func sampledFixture(t *testing.T) (*Service, *telemetry.Registry) {
	t.Helper()
	svc, dbs := fixture(t, nil)
	reg := telemetry.NewRegistry()
	svc.SetMetrics(reg)
	for _, db := range dbs {
		if _, err := svc.Sample(db.Name, SampleOptions{Docs: 50, Seed: 7}); err != nil {
			t.Fatal(err)
		}
	}
	return svc, reg
}

func TestRankCacheHitAndMissCounters(t *testing.T) {
	svc, reg := sampledFixture(t)
	hits := reg.Counter("service_select_cache_hits_total")
	misses := reg.Counter("service_select_cache_misses_total")

	first, status, err := svc.rankCached("system data language", "cori", 0)
	if err != nil {
		t.Fatal(err)
	}
	if status != "miss" || misses.Value() != 1 || hits.Value() != 0 {
		t.Fatalf("first rank: status=%q hits=%d misses=%d", status, hits.Value(), misses.Value())
	}
	second, status, err := svc.rankCached("system data language", "cori", 0)
	if err != nil {
		t.Fatal(err)
	}
	if status != "hit" || hits.Value() != 1 || misses.Value() != 1 {
		t.Fatalf("second rank: status=%q hits=%d misses=%d", status, hits.Value(), misses.Value())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache hit returned different result:\n%+v\n%+v", first, second)
	}
	// Different k, algorithm, or term sequence are distinct keys.
	for _, q := range []struct{ query, alg string; k int }{
		{"system data language", "cori", 2},
		{"system data language", "gloss-sum", 0},
		{"system data", "cori", 0},
	} {
		if _, status, err = svc.rankCached(q.query, q.alg, q.k); err != nil || status != "miss" {
			t.Fatalf("variant %+v: status=%q err=%v", q, status, err)
		}
	}
	// The cached slice must not alias the caller's: mutating a returned
	// ranking cannot corrupt later hits.
	out, _, _ := svc.rankCached("system data language", "cori", 0)
	out[0].Name = "corrupted"
	again, _, _ := svc.rankCached("system data language", "cori", 0)
	if again[0].Name == "corrupted" {
		t.Fatal("caller mutation reached the cache")
	}
}

func TestRankCacheInvalidatedByEpoch(t *testing.T) {
	svc, reg := sampledFixture(t)
	misses := reg.Counter("service_select_cache_misses_total")

	if _, status, err := svc.rankCached("system data", "cori", 0); err != nil || status != "miss" {
		t.Fatalf("first: %q %v", status, err)
	}
	epoch := svc.Epoch()

	// A resample changes the served set: epoch bumps, same query misses.
	names := svc.Databases()
	if _, err := svc.Sample(names[0].Name, SampleOptions{Docs: 30, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if svc.Epoch() == epoch {
		t.Fatal("Sample did not bump the epoch")
	}
	if _, status, err := svc.rankCached("system data", "cori", 0); err != nil || status != "miss" {
		t.Fatalf("post-resample: %q %v", status, err)
	}
	if misses.Value() != 2 {
		t.Fatalf("misses = %d, want 2", misses.Value())
	}

	// Unregister bumps too (its model left the set).
	epoch = svc.Epoch()
	if err := svc.Unregister(names[1].Name); err != nil {
		t.Fatal(err)
	}
	if svc.Epoch() == epoch {
		t.Fatal("Unregister did not bump the epoch")
	}
	out, status, err := svc.rankCached("system data", "cori", 0)
	if err != nil || status != "miss" {
		t.Fatalf("post-unregister: %q %v", status, err)
	}
	for _, r := range out {
		if r.Name == names[1].Name {
			t.Fatalf("unregistered database %s still ranked", r.Name)
		}
	}
}

func TestRankCacheDisabled(t *testing.T) {
	svc, reg := sampledFixture(t)
	svc.SetRankCacheSize(0)
	for i := 0; i < 3; i++ {
		if _, status, err := svc.rankCached("system data", "cori", 0); err != nil || status != "bypass" {
			t.Fatalf("rank %d with cache off: %q %v", i, status, err)
		}
	}
	if h, m := reg.Counter("service_select_cache_hits_total").Value(),
		reg.Counter("service_select_cache_misses_total").Value(); h != 0 || m != 0 {
		t.Fatalf("disabled cache counted hits=%d misses=%d", h, m)
	}
	svc.SetRankCacheSize(8)
	if _, status, _ := svc.rankCached("system data", "cori", 0); status != "miss" {
		t.Fatalf("re-enabled cache: %q", status)
	}
}

func TestRankCacheLRUBound(t *testing.T) {
	c := newRankCache(3)
	for _, q := range []string{"a", "b", "c", "d", "e"} {
		c.add(rankCacheKey{query: q}, []RankedDB{{Name: q}})
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, cap 3", c.Len())
	}
	// "c","d","e" should remain; touching "c" then inserting evicts "d".
	if _, ok := c.probe(rankCacheKey{query: "c"}); !ok {
		t.Fatal("entry c was evicted prematurely")
	}
	c.add(rankCacheKey{query: "f"}, []RankedDB{{Name: "f"}})
	if _, ok := c.probe(rankCacheKey{query: "d"}); ok {
		t.Fatal("LRU entry d survived eviction")
	}
	// Duplicate adds are idempotent: same key refreshes in place.
	c.add(rankCacheKey{query: "c"}, []RankedDB{{Name: "c", Score: 2}})
	if c.Len() != 3 {
		t.Fatalf("idempotent add grew the cache to %d entries", c.Len())
	}
	if val, ok := c.probe(rankCacheKey{query: "c"}); !ok || val[0].Score != 2 {
		t.Fatalf("refreshed entry c = %+v ok=%v", val, ok)
	}
}

func TestCoalescerSingleFlight(t *testing.T) {
	co := newCoalescer()
	key := rankCacheKey{query: "q"}
	f, leader := co.join(key)
	if !leader {
		t.Fatal("first join not leader")
	}
	if co.inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", co.inflight())
	}
	const waiters = 8
	var wg, joined sync.WaitGroup
	results := make([][]RankedDB, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		joined.Add(1)
		go func(i int) {
			defer wg.Done()
			wf, wl := co.join(key)
			joined.Done()
			if wl {
				t.Errorf("waiter %d became leader", i)
				co.fulfill(key, wf, nil, nil)
				return
			}
			<-wf.ready
			results[i] = wf.val
		}(i)
	}
	// Followers must join before the leader fulfills: fulfill retires the
	// flight, so a straggler would (correctly) lead a fresh one.
	joined.Wait()
	want := []RankedDB{{Name: "db1", Score: 1}}
	co.fulfill(key, f, want, nil)
	wg.Wait()
	for i, r := range results {
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("waiter %d got %+v", i, r)
		}
	}
	if co.inflight() != 0 {
		t.Fatalf("inflight = %d after fulfill, want 0", co.inflight())
	}

	// Errors reach current followers only: the flight is gone from the map
	// at fulfill, so the next identical request starts fresh.
	key2 := rankCacheKey{query: "err"}
	f2, leader := co.join(key2)
	if !leader {
		t.Fatal("error-case join not leader")
	}
	co.fulfill(key2, f2, nil, errors.New("boom"))
	if _, leader := co.join(key2); !leader {
		t.Fatal("failed flight stayed joinable")
	}
}

// TestRankMatchesMapScorers is the service-level equivalence property: for
// every supported algorithm spelling, the compiled serving path returns
// exactly what the map-based selection.Rank over the service's sorted
// model set returns — same names, bit-identical scores.
func TestRankMatchesMapScorers(t *testing.T) {
	svc, _ := sampledFixture(t)

	svc.mu.RLock()
	names := make([]string, 0, len(svc.entries))
	for name, e := range svc.entries {
		if e.model != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	models := make([]*langmodel.Model, len(names))
	for i, name := range names {
		models[i] = svc.entries[name].model
	}
	svc.mu.RUnlock()

	algs := map[string]selection.Algorithm{
		"":              selection.CORI{},
		"cori":          selection.CORI{},
		"gloss-sum":     selection.Gloss{Estimator: selection.GlossSum},
		"gloss-sum@0.2": selection.Gloss{Estimator: selection.GlossSum, Threshold: 0.2},
		"gloss-ind":     selection.Gloss{Estimator: selection.GlossInd},
		"gloss-ind@0.2": selection.Gloss{Estimator: selection.GlossInd, Threshold: 0.2},
	}
	queries := []string{"system data language", "apple", "data", "zzz-unknown data"}
	for algName, alg := range algs {
		for _, q := range queries {
			got, err := svc.Rank(q, algName, 0)
			if err != nil {
				t.Fatalf("%q/%q: %v", algName, q, err)
			}
			terms := svc.analyzer.Tokens(q)
			ranked := selection.Rank(alg, terms, models)
			if len(got) != len(ranked) {
				t.Fatalf("%q/%q: %d rows, want %d", algName, q, len(got), len(ranked))
			}
			for i, r := range ranked {
				if got[i].Name != names[r.DB] ||
					math.Float64bits(got[i].Score) != math.Float64bits(r.Score) {
					t.Fatalf("%q/%q row %d: got %+v, want {%s %v}",
						algName, q, i, got[i], names[r.DB], r.Score)
				}
			}
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in   string
		want selection.Algorithm
		ok   bool
	}{
		{"", selection.CORI{}, true},
		{"cori", selection.CORI{}, true},
		{"gloss-sum", selection.Gloss{Estimator: selection.GlossSum}, true},
		{"gloss-ind", selection.Gloss{Estimator: selection.GlossInd}, true},
		{"gloss-sum@0.2", selection.Gloss{Estimator: selection.GlossSum, Threshold: 0.2}, true},
		{"gloss-ind@0.05", selection.Gloss{Estimator: selection.GlossInd, Threshold: 0.05}, true},
		{"gloss-sum@0", selection.Gloss{Estimator: selection.GlossSum}, true},
		{"cori@0.2", nil, false},
		{"gloss-sum@1.5", nil, false},
		{"gloss-sum@-0.1", nil, false},
		{"gloss-sum@x", nil, false},
		{"bogus", nil, false},
	}
	for _, c := range cases {
		got, err := parseAlgorithm(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseAlgorithm(%q) err = %v", c.in, err)
			continue
		}
		if !c.ok {
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("parseAlgorithm(%q) error not ErrInvalid: %v", c.in, err)
			}
			continue
		}
		if got != c.want {
			t.Errorf("parseAlgorithm(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestSnapshotCompileMetricsAndSingleCompile(t *testing.T) {
	svc, reg := sampledFixture(t)
	compiles := reg.Counter("service_snapshot_compiles_total")
	before := compiles.Value()

	// Many queries against an unchanged model set compile exactly once.
	for i := 0; i < 10; i++ {
		if _, err := svc.Rank(fmt.Sprintf("system data q%d", i), "cori", 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := compiles.Value() - before; got != 1 {
		t.Fatalf("10 ranks compiled %d snapshots, want 1", got)
	}
	if svc.snapshot().compiled.NumDBs() != 3 {
		t.Fatalf("snapshot has %d DBs", svc.snapshot().compiled.NumDBs())
	}
	if reg.Gauge("service_snapshot_dbs").Value() != 3 {
		t.Fatalf("service_snapshot_dbs gauge = %d", reg.Gauge("service_snapshot_dbs").Value())
	}
	if reg.Gauge("service_snapshot_terms").Value() <= 0 {
		t.Fatal("service_snapshot_terms gauge not set")
	}
}

// TestChaosRankRCUStress races Rank against resampling and registry churn.
// Under -race this is the proof that the serving path never reads a model
// set mid-mutation: readers score against immutable snapshots while
// writers swap generations underneath them.
func TestChaosRankRCUStress(t *testing.T) {
	svc, dbs := fixture(t, nil)
	svc.SetMetrics(telemetry.NewRegistry())
	for _, db := range dbs {
		if _, err := svc.Sample(db.Name, SampleOptions{Docs: 40, Seed: 3}); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 60
	var wg sync.WaitGroup
	// Readers: continuous ranking across all algorithm families.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			algs := []string{"cori", "gloss-sum", "gloss-ind@0.1"}
			for i := 0; i < rounds; i++ {
				out, err := svc.Rank("system data language", algs[(i+r)%len(algs)], 2)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if len(out) == 0 {
					t.Errorf("reader %d: empty ranking", r)
					return
				}
			}
		}(r)
	}
	// Writer: resamples bump the epoch continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			if _, err := svc.Sample(dbs[i%len(dbs)].Name, SampleOptions{Docs: 20, Seed: uint64(i + 13)}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	// Churner: a database leaves and rejoins the registry.
	wg.Add(1)
	go func() {
		defer wg.Done()
		name, ix := "churn", appleIndex()
		for i := 0; i < rounds/4; i++ {
			if err := svc.RegisterLocal(name, ix); err != nil {
				t.Errorf("churn register: %v", err)
				return
			}
			if _, err := svc.Sample(name, SampleOptions{Docs: 4, InitialTerm: "apple"}); err != nil {
				t.Errorf("churn sample: %v", err)
				return
			}
			if err := svc.Unregister(name); err != nil {
				t.Errorf("churn unregister: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// After the dust settles the snapshot reflects the final model set.
	final := svc.snapshot()
	if final.epoch != svc.Epoch() {
		t.Fatalf("final snapshot epoch %d != generation %d", final.epoch, svc.Epoch())
	}
	if got := final.compiled.NumDBs(); got != len(dbs) {
		t.Fatalf("final snapshot has %d DBs, want %d", got, len(dbs))
	}
}
