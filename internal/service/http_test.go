package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/netsearch"
	"repro/internal/summarize"
)

// httpFixture starts the federation behind netsearch servers and the
// service behind httptest, exactly the deployment cmd/selectd runs.
func httpFixture(t *testing.T) (*httptest.Server, []*experiments.FederationDB) {
	t.Helper()
	dbs, err := experiments.Federation(3, 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(analysis.Database(), nil)
	t.Cleanup(func() { svc.Close() })
	for _, db := range dbs {
		ns, err := netsearch.Serve(db.Index, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ns.Close() })
		if err := svc.Register(db.Name, ns.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts, dbs
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPHealthz(t *testing.T) {
	ts, _ := httpFixture(t)
	var health map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, health)
	}
}

func TestHTTPListDatabases(t *testing.T) {
	ts, dbs := httpFixture(t)
	var statuses []DBStatus
	getJSON(t, ts.URL+"/databases", &statuses)
	if len(statuses) != len(dbs) {
		t.Fatalf("listed %d databases, want %d", len(statuses), len(dbs))
	}
}

func TestHTTPSampleRankSummaryFlow(t *testing.T) {
	ts, dbs := httpFixture(t)

	// Sample every database through the API.
	for _, db := range dbs {
		var st DBStatus
		resp := postJSON(t, fmt.Sprintf("%s/databases/%s/sample", ts.URL, db.Name),
			SampleOptions{Docs: 50, Seed: 7}, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample %s: status %d", db.Name, resp.StatusCode)
		}
		if !st.HasModel || st.SampledDocs == 0 {
			t.Errorf("sample %s status: %+v", db.Name, st)
		}
	}

	// Rank a topical query.
	terms := experiments.TopicalTerms(dbs[1], dbs, 2)
	var ranked []RankedDB
	resp := getJSON(t, ts.URL+"/rank?q="+url.QueryEscape(strings.Join(terms, " "))+"&alg=cori", &ranked)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank: status %d", resp.StatusCode)
	}
	if len(ranked) != len(dbs) || ranked[0].Name != dbs[1].Name {
		t.Errorf("ranking = %+v, want %s first", ranked, dbs[1].Name)
	}

	// Summarize.
	var rows []summarize.Row
	resp = getJSON(t, fmt.Sprintf("%s/databases/%s/summary?metric=avg-tf&k=5", ts.URL, dbs[0].Name), &rows)
	if resp.StatusCode != http.StatusOK || len(rows) == 0 {
		t.Errorf("summary: status %d rows %d", resp.StatusCode, len(rows))
	}
}

func TestHTTPSampleEmptyBodyUsesDefaults(t *testing.T) {
	ts, dbs := httpFixture(t)
	resp, err := http.Post(fmt.Sprintf("%s/databases/%s/sample", ts.URL, dbs[0].Name), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty-body sample: status %d", resp.StatusCode)
	}
}

func TestHTTPRegisterAndDelete(t *testing.T) {
	ts, _ := httpFixture(t)
	// Register a new (unreachable) database.
	resp := postJSON(t, ts.URL+"/databases", map[string]string{"name": "newdb", "addr": "127.0.0.1:1"}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	// Duplicate registration conflicts.
	resp = postJSON(t, ts.URL+"/databases", map[string]string{"name": "newdb", "addr": "127.0.0.1:1"}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register: status %d", resp.StatusCode)
	}
	// Missing addr rejected.
	resp = postJSON(t, ts.URL+"/databases", map[string]string{"name": "x"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("register without addr: status %d", resp.StatusCode)
	}
	// Unroutable names rejected up front: an empty or "/"-only name would
	// register an entry that /databases/{name} can never address again
	// (empty path segment routes to 404), so it could never be sampled or
	// unregistered over HTTP.
	for _, bad := range []string{"", "/", "///"} {
		resp = postJSON(t, ts.URL+"/databases", map[string]string{"name": bad, "addr": "127.0.0.1:1"}, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register name %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	var statuses []DBStatus
	getJSON(t, ts.URL+"/databases", &statuses)
	for _, st := range statuses {
		if st.Name == "" || st.Name == "/" || st.Name == "///" {
			t.Errorf("unroutable name %q reached the registry", st.Name)
		}
	}
	// Delete it.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/databases/newdb", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("delete: status %d", dresp.StatusCode)
	}
}

func TestHTTPEscapedDatabaseName(t *testing.T) {
	ts, dbs := httpFixture(t)
	// A name containing "/" and " " is legal in the registry; the HTTP
	// layer must route its escaped form back to the same entry.
	resp := postJSON(t, ts.URL+"/databases", map[string]string{"name": "team/db one", "addr": "127.0.0.1:1"}, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/databases/team%2Fdb%20one", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete escaped name: status %d", dresp.StatusCode)
	}
	var statuses []DBStatus
	getJSON(t, ts.URL+"/databases", &statuses)
	if len(statuses) != len(dbs) {
		t.Errorf("escaped delete removed the wrong entry: %d databases left, want %d", len(statuses), len(dbs))
	}
}

func TestHTTPValidationErrorsAre400(t *testing.T) {
	ts, dbs := httpFixture(t)
	// An unsampled database's summary is the caller's mistake (400), not
	// an upstream failure (502).
	resp := getJSON(t, fmt.Sprintf("%s/databases/%s/summary?metric=df", ts.URL, dbs[0].Name), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("summary before sampling: status %d, want 400", resp.StatusCode)
	}
	postJSON(t, fmt.Sprintf("%s/databases/%s/sample", ts.URL, dbs[0].Name), SampleOptions{Docs: 30}, nil)
	resp = getJSON(t, fmt.Sprintf("%s/databases/%s/summary?metric=bogus", ts.URL, dbs[0].Name), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown metric: status %d, want 400", resp.StatusCode)
	}
	// A genuinely unreachable upstream is still a 502.
	postJSON(t, ts.URL+"/databases", map[string]string{"name": "down", "addr": "127.0.0.1:1"}, nil)
	resp = postJSON(t, ts.URL+"/databases/down/sample", nil, nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable database sample: status %d, want 502", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _ := httpFixture(t)
	cases := []struct {
		method string
		path   string
		want   int
	}{
		{"GET", "/rank?q=", http.StatusBadRequest}, // empty query: the client's fault
		// An unready federation is the service's state, not the client's
		// mistake: 503, never 400 (the cluster front tier relies on rank
		// 4xx meaning "retrying elsewhere is pointless").
		{"GET", "/rank?q=apple", http.StatusServiceUnavailable}, // no models yet
		{"POST", "/databases/ghost/sample", http.StatusNotFound},
		{"GET", "/databases/ghost/summary", http.StatusNotFound},
		{"GET", "/databases/ghost/explode", http.StatusNotFound},
		{"DELETE", "/databases/ghost", http.StatusNotFound},
		{"PUT", "/databases", http.StatusMethodNotAllowed},
		{"POST", "/rank", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestHTTPRankCacheHeader(t *testing.T) {
	ts, dbs := httpFixture(t)
	// Sample one database so ranking has a model to serve.
	var st DBStatus
	resp := postJSON(t, ts.URL+"/databases/"+url.PathEscape(dbs[0].Name)+"/sample", SampleOptions{Docs: 30, Seed: 9}, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample returned %d", resp.StatusCode)
	}

	rankURL := ts.URL + "/rank?q=" + url.QueryEscape("system data") + "&alg=cori&k=2"
	var ranked []RankedDB
	if resp = getJSON(t, rankURL, &ranked); resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first rank X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if resp = getJSON(t, rankURL, &ranked); resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second rank X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	// A GlOSS threshold spelling is routable end to end.
	thrURL := ts.URL + "/rank?q=" + url.QueryEscape("system data") + "&alg=" + url.QueryEscape("gloss-sum@0.2")
	if resp = getJSON(t, thrURL, &ranked); resp.StatusCode != http.StatusOK {
		t.Fatalf("threshold rank returned %d", resp.StatusCode)
	}
	// Invalid requests bypass the cache.
	badURL := ts.URL + "/rank?q=x&alg=bogus"
	if resp = getJSON(t, badURL, nil); resp.Header.Get("X-Cache") != "bypass" || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad alg: X-Cache=%q status=%d", resp.Header.Get("X-Cache"), resp.StatusCode)
	}
}
