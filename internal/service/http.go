package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// HTTP API. The handler exposes the service's operations as JSON
// endpoints, so a selection service can run as a standalone daemon
// (cmd/selectd):
//
//	GET    /databases                      -> []DBStatus
//	POST   /databases                      {"name":"x","addr":"host:port"}
//	DELETE /databases/{name}
//	POST   /databases/{name}/sample        SampleOptions (all optional)
//	GET    /databases/{name}/summary?metric=avg-tf&k=20
//	GET    /rank?q=apple+pie&alg=cori&k=5  -> []RankedDB
//	POST   /rank/batch                     {"queries":[...],"alg":"cori","k":5}
//	                                       -> {"results":[{"ranked":[...]}...]}
//	POST   /rank/batch?stream=1            same body -> NDJSON frames, one per
//	                                       query as it completes (SSE with
//	                                       Accept: text/event-stream)
//	GET    /healthz
//	GET    /metrics                        (when SetMetrics was called;
//	                                        JSON or Prometheus text per Accept)
//	GET    /debug/vars                     (when SetMetrics was called; JSON)
//
// Every request is assigned a trace ID (honoring an incoming X-Trace-Id
// header), echoed back in the response's X-Trace-Id header, logged, and —
// for sampling requests — propagated down through the netsearch wire
// protocol so remote-side logs correlate with the originating request.

// traceKey is the context key the middleware stores the request's trace
// ID under.
type traceKey struct{}

// TraceFromContext returns the trace ID the HTTP middleware assigned to
// this request ("" outside a traced request).
func TraceFromContext(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Handler returns the HTTP handler for the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/rank", s.handleRank)
	mux.HandleFunc("/rank/batch", s.handleRankBatch)
	mux.HandleFunc("/databases", s.handleDatabases)
	mux.HandleFunc("/databases/", s.handleDatabase)
	// The registry is resolved per request, so SetMetrics works whether
	// it is called before or after Handler; without one, the endpoints
	// answer 404.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg := s.Metrics(); reg != nil {
			telemetry.Handler(reg).ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		if reg := s.Metrics(); reg != nil {
			telemetry.VarsHandler(reg).ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	})
	return s.instrument(mux)
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streamed responses (POST
// /rank/batch?stream=1) push each frame through the middleware instead of
// buffering until the handler returns.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the API mux with the observability middleware: trace
// ID assignment, per-status-class counters (http_responses_total and the
// 4xx/5xx satellites), request latency, and one structured log line per
// request.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reg, lg := s.Metrics(), s.log()
		trace := r.Header.Get("X-Trace-Id")
		if trace == "" {
			trace = s.traces.Next()
		}
		w.Header().Set("X-Trace-Id", trace)
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, trace))

		sp := reg.StartSpan("http_request_seconds")
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		d := sp.End()

		class := fmt.Sprintf("%dxx", sw.status/100)
		reg.Counter("http_requests_total").Inc()
		reg.Counter(`http_responses_total{class="` + class + `"}`).Inc()
		switch {
		case sw.status >= 500:
			reg.Counter("http_5xx_total").Inc()
		case sw.status >= 400:
			reg.Counter("http_4xx_total").Inc()
		}
		lg.Info("http request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"elapsed", d, telemetry.TraceKey, trace)
	})
}

type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error()})
}

// shed answers a load-shed request: 429 with the gate's Retry-After hint.
// Shared verbatim by the single-process service and the cluster front so
// clients see one overload contract everywhere.
func shed(w http.ResponseWriter, retryAfterSeconds int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, http.StatusTooManyRequests,
		httpError{Error: "service overloaded, retry later"})
}

func (s *Service) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	gate := s.gate.Load()
	ticket, ok := gate.Admit()
	if !ok {
		shed(w, gate.RetryAfterSeconds())
		return
	}
	defer ticket.Release()
	q := r.URL.Query()
	k, _ := strconv.Atoi(q.Get("k"))
	if clamped := ticket.ClampK(k); clamped != k {
		k = clamped
		w.Header().Set("X-Degraded-K", strconv.Itoa(k))
	}
	ranked, cacheStatus, err := s.rankCached(q.Get("q"), q.Get("alg"), k)
	// X-Cache reports how the result was served: "hit" (cached, including
	// single-flight waits on an identical in-flight query), "miss"
	// (computed and cached), or "bypass" (cache disabled or bad request).
	w.Header().Set("X-Cache", cacheStatus)
	if err != nil {
		// statusFor keeps blame where it belongs: only ErrInvalid (bad
		// algorithm, unusable query) is the client's 400. A snapshot
		// compile failure or an unready federation is the service's
		// problem and must surface as 5xx — the cluster front tier's
		// failover logic keys off that distinction.
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ranked)
}

// batchRankRequest is the POST /rank/batch body, shared with the cluster
// front so one client speaks to both surfaces.
type batchRankRequest struct {
	Queries []string `json:"queries"`
	Alg     string   `json:"alg,omitempty"`
	K       int      `json:"k,omitempty"`
}

// batchRankResponse is the POST /rank/batch reply: one item per query, in
// request order. Degraded reports that admission control clamped k.
type batchRankResponse struct {
	Results  []BatchItem `json:"results"`
	Degraded bool        `json:"degraded,omitempty"`
}

// MaxBatchQueries bounds one batch request; a larger batch is the
// client's mistake (400), not an invitation to unbounded work per
// admission slot.
const MaxBatchQueries = 1024

func (s *Service) handleRankBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req batchRankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds the %d-query limit: %w",
				len(req.Queries), MaxBatchQueries, ErrInvalid))
		return
	}
	// One batch holds one admission slot: the in-flight unit is the
	// request (what bounds memory and scatter fan-out), not the query.
	gate := s.gate.Load()
	ticket, ok := gate.Admit()
	if !ok {
		shed(w, gate.RetryAfterSeconds())
		return
	}
	defer ticket.Release()
	k := ticket.ClampK(req.K)
	if k != req.K {
		w.Header().Set("X-Degraded-K", strconv.Itoa(k))
	}
	if WantStream(r) {
		s.streamRankBatch(w, r, req, k, k != req.K)
		return
	}
	items, err := s.RankBatch(req.Queries, req.Alg, k)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, batchRankResponse{Results: items, Degraded: k != req.K})
}

func (s *Service) handleDatabases(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Databases())
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			Addr string `json:"addr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Addr == "" {
			writeErr(w, http.StatusBadRequest, errors.New("addr is required"))
			return
		}
		// An empty (or "/"-only) name would register a database that
		// /databases/{name} can never route to — it could never be
		// sampled or unregistered over HTTP. Reject it up front.
		if err := ValidateName(req.Name); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if err := s.Register(req.Name, req.Addr); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"registered": req.Name})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET or POST"))
	}
}

// handleDatabase routes /databases/{name}[/sample|/summary]. Routing
// works on the escaped path so a database name containing "/" (sent as
// %2F) stays one segment; the name is unescaped before lookup.
func (s *Service) handleDatabase(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/databases/")
	parts := strings.SplitN(rest, "/", 2)
	name, err := url.PathUnescape(parts[0])
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad database name %q: %w", parts[0], err))
		return
	}
	if name == "" {
		writeErr(w, http.StatusNotFound, errors.New("missing database name"))
		return
	}
	action := ""
	if len(parts) == 2 {
		action = parts[1]
	}
	switch {
	case action == "" && r.Method == http.MethodDelete:
		if err := s.Unregister(name); err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	case action == "sample" && r.Method == http.MethodPost:
		var opts SampleOptions
		// An empty body means default options.
		if err := json.NewDecoder(r.Body).Decode(&opts); err != nil && !errors.Is(err, io.EOF) {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// The run inherits the request's trace ID; the service pushes it
		// down to the netsearch frames the run sends.
		opts.TraceID = TraceFromContext(r.Context())
		st, err := s.Sample(name, opts)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case action == "summary" && r.Method == http.MethodGet:
		q := r.URL.Query()
		k, _ := strconv.Atoi(q.Get("k"))
		rows, err := s.Summary(name, q.Get("metric"), k)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, rows)
	default:
		writeErr(w, http.StatusNotFound, errors.New("unknown endpoint"))
	}
}

// statusFor distinguishes the caller's mistakes (400), unknown names
// (404), a federation that has not learned any models yet (503), and
// genuine upstream failures (502). Before ErrInvalid existed, every
// non-404 error — including an unknown metric name — was blamed on the
// remote database with a 502.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownDatabase):
		return http.StatusNotFound
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoModels):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadGateway
	}
}
