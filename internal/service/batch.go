package service

import (
	"fmt"

	"repro/internal/selection"
)

// Batch rank: the high-QPS serving entry point (DESIGN.md §14–15). A batch
// request carries many queries that share one algorithm and one k; the
// service parses the algorithm once, acquires the compiled snapshot once,
// and reuses a single pooled rankScratch across every query — so the
// per-query cost converges on pure tokenize+score, with the per-request
// overhead (pool round-trips, snapshot load, timer, HTTP envelope when
// called over the wire) amortized across the batch.
//
// Two layers of coalescing ride on top (DESIGN.md §15): identical queries
// *within* one batch rank once and copy into each position
// (rank_coalesced_total{scope=batch}), and a batch item identical to any
// rank in flight elsewhere — another batch, a single /rank — joins that
// flight instead of recomputing (scope=flight). Both are bit-identical to
// independent ranks because every path funnels into rankSnapshot against
// the same epoch's snapshot.

// BatchItem is one query's outcome inside a batch ranking. Items fail
// independently: a query that tokenizes to nothing reports its error here
// while its neighbors still rank.
type BatchItem struct {
	Ranked []RankedDB `json:"ranked,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// RankBatch ranks every query in the batch against the same compiled
// snapshot, returning one BatchItem per query in input order. Whole-batch
// failures — an unknown algorithm (ErrInvalid), an empty batch
// (ErrInvalid), a federation with no learned models (ErrNoModels) — are
// returned as an error; per-query problems land in the item's Error.
//
// RankBatch scores exactly like Rank (both funnel into rankSnapshot), so
// batched and sequential rankings are bit-identical. It deliberately
// bypasses the result cache: a batch is the bulk path, and filling the
// LRU with its queries would evict the interactive working set. It still
// coalesces through the in-flight map, which caches nothing.
func (s *Service) RankBatch(queries []string, algName string, k int) ([]BatchItem, error) {
	items := make([]BatchItem, len(queries))
	err := s.RankBatchStream(queries, algName, k, func(i int, item BatchItem) error {
		items[i] = item
		return nil
	})
	if err != nil {
		return nil, err
	}
	return items, nil
}

// RankBatchStream is RankBatch's streaming core: emit is called once per
// query, in input order, the moment that query's ranking completes — the
// HTTP layer flushes each item to the client instead of buffering the
// batch (POST /rank/batch?stream=1). A non-nil error from emit aborts the
// stream (the client disconnected); the error is returned as-is. Whole-
// batch failures are detected and returned before the first emit, so the
// HTTP layer can still answer them with a plain status code.
//
// The emitted Ranked slice is the caller's to keep: it is a fresh copy,
// never shared with the cache, the coalescer, or other emits.
func (s *Service) RankBatchStream(queries []string, algName string, k int, emit func(i int, item BatchItem) error) error {
	reg := s.Metrics()
	defer reg.Timer("service_rank_batch_seconds")()

	if len(queries) == 0 {
		reg.Counter("service_select_errors_total").Inc()
		return fmt.Errorf("service: empty batch: %w", ErrInvalid)
	}
	alg, err := parseAlgorithm(algName)
	if err != nil {
		reg.Counter("service_select_errors_total").Inc()
		return err
	}
	snap := s.snapshot()
	if snap.compiled.NumDBs() == 0 {
		reg.Counter("service_select_errors_total").Inc()
		return ErrNoModels
	}
	algName = alg.Name()

	scr := rankScratchPool.Get().(*rankScratch)
	defer rankScratchPool.Put(scr)

	// seen holds this batch's completed rankings by term key, so a query
	// repeated within the batch ranks once — the slices are shared across
	// positions internally and copied per emit.
	var seen map[string][]RankedDB
	if len(queries) > 1 {
		seen = make(map[string][]RankedDB, len(queries))
	}
	for i, q := range queries {
		scr.terms = s.analyzer.AppendTokens(scr.terms[:0], q)
		if len(scr.terms) == 0 {
			err := emit(i, BatchItem{Error: fmt.Sprintf("service: query has no index terms: %v", ErrInvalid)})
			if err != nil {
				return err
			}
			continue
		}
		scr.key = scr.key[:0]
		for j, t := range scr.terms {
			if j > 0 {
				scr.key = append(scr.key, 0x1f)
			}
			scr.key = append(scr.key, t...)
		}
		termKey := string(scr.key)
		if val, ok := seen[termKey]; ok {
			reg.Counter(`service_rank_coalesced_total{scope="batch"}`).Inc()
			if err := emit(i, BatchItem{Ranked: append([]RankedDB(nil), val...)}); err != nil {
				return err
			}
			continue
		}
		key := rankCacheKey{query: termKey, alg: algName, k: k, epoch: snap.epoch}
		f, leader := s.joinFlight(key)
		var val []RankedDB
		if leader {
			val = s.rankBatchLeader(key, f, snap, alg, scr, k)
		} else {
			reg.Counter(`service_rank_coalesced_total{scope="flight"}`).Inc()
			<-f.ready
			if f.err != nil {
				// The flight failed (its leader panicked). Deliver the error
				// to this position — it asked for exactly that computation —
				// but keep it out of `seen`, so a later duplicate retries
				// fresh instead of inheriting the failure.
				if err := emit(i, BatchItem{Error: f.err.Error()}); err != nil {
					return err
				}
				continue
			}
			val = f.val
		}
		if seen != nil {
			seen[termKey] = val
		}
		if err := emit(i, BatchItem{Ranked: append([]RankedDB(nil), val...)}); err != nil {
			return err
		}
	}
	reg.Counter("service_batch_ranks_total").Inc()
	reg.Counter("service_batch_queries_total").Add(int64(len(queries)))
	return nil
}

// rankBatchLeader computes one batch item as its flight's leader,
// fulfilling exactly once even if scoring panics — the same discipline as
// the single-query path, so a follower can never block forever.
func (s *Service) rankBatchLeader(key rankCacheKey, f *flight, snap *snapshotSet, alg selection.Algorithm, scr *rankScratch, k int) []RankedDB {
	fulfilled := false
	defer func() {
		if r := recover(); r != nil {
			if !fulfilled {
				s.fulfillFlight(key, f, nil, fmt.Errorf("service: rank panicked: %v", r))
			}
			panic(r)
		}
	}()
	out := s.rankSnapshot(snap, alg, scr, k)
	s.fulfillFlight(key, f, out, nil)
	fulfilled = true
	return out
}
