package service

import (
	"fmt"
)

// Batch rank: the high-QPS serving entry point (DESIGN.md §14). A batch
// request carries many queries that share one algorithm and one k; the
// service parses the algorithm once, acquires the compiled snapshot once,
// and reuses a single pooled rankScratch across every query — so the
// per-query cost converges on pure tokenize+score, with the per-request
// overhead (pool round-trips, snapshot load, timer, HTTP envelope when
// called over the wire) amortized across the batch.

// BatchItem is one query's outcome inside a batch ranking. Items fail
// independently: a query that tokenizes to nothing reports its error here
// while its neighbors still rank.
type BatchItem struct {
	Ranked []RankedDB `json:"ranked,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// RankBatch ranks every query in the batch against the same compiled
// snapshot, returning one BatchItem per query in input order. Whole-batch
// failures — an unknown algorithm (ErrInvalid), an empty batch
// (ErrInvalid), a federation with no learned models (ErrNoModels) — are
// returned as an error; per-query problems land in the item's Error.
//
// RankBatch scores exactly like Rank (both funnel into rankSnapshot), so
// batched and sequential rankings are bit-identical. It deliberately
// bypasses the result cache: a batch is the bulk path, and filling the
// LRU with its queries would evict the interactive working set.
func (s *Service) RankBatch(queries []string, algName string, k int) ([]BatchItem, error) {
	reg := s.Metrics()
	defer reg.Timer("service_rank_batch_seconds")()

	if len(queries) == 0 {
		reg.Counter("service_select_errors_total").Inc()
		return nil, fmt.Errorf("service: empty batch: %w", ErrInvalid)
	}
	alg, err := parseAlgorithm(algName)
	if err != nil {
		reg.Counter("service_select_errors_total").Inc()
		return nil, err
	}
	snap := s.snapshot()
	if snap.compiled.NumDBs() == 0 {
		reg.Counter("service_select_errors_total").Inc()
		return nil, ErrNoModels
	}

	scr := rankScratchPool.Get().(*rankScratch)
	defer rankScratchPool.Put(scr)

	items := make([]BatchItem, len(queries))
	for i, q := range queries {
		scr.terms = s.analyzer.AppendTokens(scr.terms[:0], q)
		if len(scr.terms) == 0 {
			items[i].Error = fmt.Sprintf("service: query has no index terms: %v", ErrInvalid)
			continue
		}
		items[i].Ranked = s.rankSnapshot(snap, alg, scr, k)
	}
	reg.Counter("service_batch_ranks_total").Inc()
	reg.Counter("service_batch_queries_total").Add(int64(len(queries)))
	return items, nil
}
