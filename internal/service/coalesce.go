package service

// coalescer single-flights identical in-flight rank computations across
// every caller of the serving path — GET /rank, POST /rank/batch (buffered
// or streamed), and the cluster shard RPCs, which all funnel into
// Service.rank / Service.RankBatchStream. Work is keyed by the same
// (analyzed terms, algorithm, k, epoch) tuple as the result cache, so two
// concurrent batches carrying the same query, or a batch item racing a
// single /rank, compute once and fan the result out bit-identically.
//
// The coalescer is not a cache: a flight exists only while its leader
// computes, and fulfill removes it. Completed results live (or not) in the
// separate rankCache LRU — which is why batches can coalesce here without
// polluting the interactive working set there. Keying on the epoch makes
// cross-epoch coalescing impossible by construction: a Sample/Register/
// Unregister bumps the generation, and requests on either side of the bump
// key into different flights.

import "sync"

// flight is one in-flight rank computation. The leader closes ready after
// setting val/err; followers block on ready and read them afterwards.
// Errors ride the flight to its current followers — they asked for the
// exact same computation — but the flight is gone from the map by then, so
// an error is never served to a later, unrelated caller.
type flight struct {
	ready chan struct{}
	val   []RankedDB
	err   error
}

// coalescer tracks in-flight rank computations by key. The map is bounded
// by serving concurrency, not by data volume: every entry has a live
// leader goroutine computing it, and fulfill always removes it.
type coalescer struct {
	mu      sync.Mutex
	flights map[rankCacheKey]*flight
}

func newCoalescer() *coalescer {
	return &coalescer{flights: make(map[rankCacheKey]*flight)}
}

// peek is the coalescer's fast path: the in-flight entry for key, or nil.
// It allocates nothing — one map lookup under the lock.
//
//lint:hotpath
func (co *coalescer) peek(key rankCacheKey) *flight {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.flights[key]
}

// join returns the flight for key and whether the caller leads it. A
// leader must call fulfill exactly once; followers wait on flight.ready.
// The split from peek exists so the lookup is a separately provable
// //lint:hotpath function.
func (co *coalescer) join(key rankCacheKey) (*flight, bool) {
	if f := co.peek(key); f != nil {
		return f, false
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if f := co.flights[key]; f != nil {
		// Another caller admitted the same key between peek and this lock.
		return f, false
	}
	f := &flight{ready: make(chan struct{})}
	co.flights[key] = f
	return f, true
}

// fulfill publishes the leader's result and retires the flight: followers
// unblock, and the next identical request starts a fresh computation (or
// hits the result cache, where the single-query path admitted it).
func (co *coalescer) fulfill(key rankCacheKey, f *flight, val []RankedDB, err error) {
	f.val, f.err = val, err
	co.mu.Lock()
	if co.flights[key] == f {
		delete(co.flights, key)
	}
	co.mu.Unlock()
	close(f.ready)
}

// inflight reports the number of live flights (tests and the
// service_rank_flights_inflight gauge).
func (co *coalescer) inflight() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.flights)
}
