// Package service assembles the pieces into the thing the paper is
// actually about: a *database selection service* (§1). The service keeps a
// registry of searchable text databases, learns a language model for each
// by query-based sampling (no cooperation needed — remote databases are
// reached through netsearch), persists the models, and answers selection
// queries by ranking the registered databases with CORI or GlOSS.
//
// The service applies its own, uniform analysis pipeline to everything it
// learns — the control over representation that §3 argues is a key
// advantage of sampling over cooperative model exchange.
package service

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/langmodel"
	"repro/internal/netsearch"
	"repro/internal/parallel"
	"repro/internal/selection"
	"repro/internal/store"
	"repro/internal/summarize"
	"repro/internal/telemetry"
)

// ErrUnknownDatabase is returned for operations on unregistered names.
var ErrUnknownDatabase = errors.New("service: unknown database")

// ErrInvalid marks arguments the caller got wrong (unknown metric or
// algorithm, unusable query). The HTTP layer maps it to 400 rather than
// blaming the upstream database with a 502.
var ErrInvalid = errors.New("invalid argument")

// ErrCircuitOpen is reported by SampleAll for databases whose circuit
// breaker has tripped. A direct Sample call is the half-open probe: it
// always attempts the database and closes the circuit on success.
var ErrCircuitOpen = errors.New("service: circuit open")

// ErrNoModels is returned by Rank when no registered database has a
// learned model yet. It is a service-state condition, not a client
// mistake: the HTTP layer maps it to 503, and a cluster shard reports an
// empty partial ranking instead of failing the whole scatter.
var ErrNoModels = errors.New("service: no databases have learned models yet")

// ErrExists marks a registration of a name that is already registered.
// The cluster front tier treats it as success so that replica-fan-out
// registration is idempotent and a retry can heal a partial failure.
var ErrExists = errors.New("already registered")

// ValidateName rejects database names that the HTTP API could never
// route back to: an empty name, or one made only of "/" (its path
// segment escapes to an empty string, so /databases/{name} can never
// address it for sampling or unregistration). The error wraps ErrInvalid
// so the HTTP layer answers 400.
func ValidateName(name string) error {
	if name == "" || strings.Trim(name, "/") == "" {
		return fmt.Errorf("service: unroutable database name %q: %w", name, ErrInvalid)
	}
	return nil
}

// DefaultTripThreshold is the number of consecutive sampling failures
// after which a database's circuit breaker opens.
const DefaultTripThreshold = 3

// DBStatus describes one registered database.
type DBStatus struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Addr is the netsearch address for remote databases ("" for local).
	Addr string `json:"addr,omitempty"`
	// HasModel reports whether a learned model is available.
	HasModel bool `json:"has_model"`
	// Terms, SampledDocs and Queries summarize the learned model and the
	// cost of acquiring it.
	Terms       int `json:"terms"`
	SampledDocs int `json:"sampled_docs"`
	Queries     int `json:"queries"`
	// LastError records the most recent sampling failure, if any.
	LastError string `json:"last_error,omitempty"`
	// ConsecutiveFailures counts sampling failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// CircuitOpen reports that the breaker has tripped: SampleAll skips
	// this database until a direct Sample succeeds.
	CircuitOpen bool `json:"circuit_open,omitempty"`
}

// SampleOptions parameterize a sampling run for one database.
type SampleOptions struct {
	// Docs is the document budget (default 300).
	Docs int `json:"docs"`
	// PerQuery is N, documents examined per query (default 4).
	PerQuery int `json:"per_query"`
	// Seed makes the run reproducible (default 1).
	Seed uint64 `json:"seed"`
	// InitialTerm seeds the first query. If empty, the service uses a
	// term from its union model, falling back to a built-in common word.
	InitialTerm string `json:"initial_term"`
	// Extend continues the previous sampling run instead of starting
	// over: Docs more documents are added to the existing sample — the
	// paper's "sampling can be continued" property (§5).
	Extend bool `json:"extend"`
	// TraceID correlates the run's log lines and netsearch wire frames
	// with the request that triggered it. The HTTP layer fills it from
	// the request's trace ID; it is never decoded from a client body.
	TraceID string `json:"-"`
}

func (o SampleOptions) withDefaults() SampleOptions {
	if o.Docs <= 0 {
		o.Docs = 300
	}
	if o.PerQuery <= 0 {
		o.PerQuery = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// entry is one registered database.
type entry struct {
	name string
	addr string

	// run serializes sampling runs on this entry: a 1-buffered channel
	// semaphore (acquire by send, release by receive). Without it, two
	// concurrent Sample("x") calls would interleave their lastRun/model
	// writes and corrupt a later Extend. It is deliberately not a mutex:
	// the guard is held across the entire network sampling run, and the
	// lockheld discipline reserves mutexes for memory — nothing blocking
	// may happen under one. It is always acquired before the service
	// mutex, never while holding it.
	run chan struct{}

	db      core.Database // non-nil once connected (or local)
	model   *langmodel.Model
	lastRun *core.Result // raw result, kept so Extend can resume
	stats   DBStatus
}

// Service is a database selection service. Create it with New; all methods
// are safe for concurrent use.
type Service struct {
	analyzer analysis.Analyzer
	st       *store.Store // optional persistence

	// metrics and logger are no-op capable: a nil registry discards
	// every observation and logger defaults to a discarding slog.
	metrics *telemetry.Registry
	logger  *slog.Logger
	traces  *telemetry.TraceIDs

	mu        sync.RWMutex
	entries   map[string]*entry
	dialOpts  netsearch.Options
	tripAfter int

	// Query-serving state (snapshot.go, cache.go): gen counts model-set
	// generations (bumped under mu whenever served models change), snap is
	// the RCU-published compiled snapshot, compileMu single-flights
	// rebuilds, and cache holds recent selection results (nil = disabled).
	gen       atomic.Uint64
	snap      atomic.Pointer[snapshotSet]
	compileMu sync.Mutex
	cache     atomic.Pointer[rankCache]

	// coal single-flights identical in-flight rank work across every
	// serving path (coalesce.go). Unlike cache it is never nil: coalescing
	// is a correctness-neutral dedup of concurrent identical computation,
	// not a tunable store.
	coal *coalescer

	// gate is the admission controller for the rank endpoints (nil, the
	// default, admits everything; see SetAdmission and DESIGN.md §14).
	gate atomic.Pointer[admission.Gate]

	// Incremental-rebuild state (snapshot.go), guarded by mu: dirty names
	// databases whose model was replaced in place since the last rebuild
	// collected dirt; dirtyAll records a membership change, which forces
	// the next rebuild to compile from scratch.
	dirty    map[string]bool
	dirtyAll bool

	// Snapshot persistence (snapshot.go), guarded by mu: snapStore is the
	// optional on-disk home for compiled snapshots; persistSnap saves each
	// published snapshot there.
	snapStore   *store.SnapshotStore
	persistSnap bool

	// persistMu serializes snapshot saves, which run outside compileMu
	// (disk I/O must not be held under the lock that gates cold queries);
	// persisted/persistedEpoch, guarded by persistMu, keep a late save of
	// an older snapshot from clobbering a newer one.
	persistMu      sync.Mutex
	persisted      bool
	persistedEpoch uint64
}

// New returns a service that normalizes learned models with the given
// analyzer. st may be nil (no persistence); when non-nil, previously
// stored models are loaded for databases as they are registered.
func New(an analysis.Analyzer, st *store.Store) *Service {
	s := &Service{
		analyzer:  an,
		st:        st,
		logger:    telemetry.NopLogger(),
		traces:    telemetry.NewTraceIDs("req"),
		entries:   make(map[string]*entry),
		tripAfter: DefaultTripThreshold,
		coal:      newCoalescer(),
	}
	s.cache.Store(newRankCache(DefaultRankCacheSize))
	return s
}

// SetRankCacheSize resizes the selection result cache (default
// DefaultRankCacheSize entries); n <= 0 disables result caching. Resizing
// installs a fresh, empty cache.
func (s *Service) SetRankCacheSize(n int) {
	if n <= 0 {
		s.cache.Store(nil)
		return
	}
	s.cache.Store(newRankCache(n))
}

// SetAdmission installs admission control on the rank endpoints (GET
// /rank, POST /rank/batch): bounded concurrency, latency shedding, and
// k-degradation per cfg (all thresholds off by default — a zero cfg
// removes the gate). The gate's telemetry lands in the registry installed
// at call time, so install metrics first. Direct Rank/RankBatch calls are
// not gated: admission protects the serving surface, not embedded use.
func (s *Service) SetAdmission(cfg admission.Config) {
	s.gate.Store(admission.New(cfg, s.Metrics(), "service"))
}

// SetMetrics installs a telemetry registry. Every sampling run, selection
// query and HTTP request from now on is counted there, and the HTTP
// handler additionally serves /metrics and /debug/vars. Connections
// dialed from now on inherit the registry (unless SetDialOptions already
// set one explicitly). nil reverts to no instrumentation.
func (s *Service) SetMetrics(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = reg
	if s.dialOpts.Metrics == nil || reg == nil {
		s.dialOpts.Metrics = reg
	}
}

// SetLogger installs a structured logger for request and sampling-run
// log lines (key=value via slog; see telemetry.NewLogger). nil reverts
// to discarding.
func (s *Service) SetLogger(lg *slog.Logger) {
	if lg == nil {
		lg = telemetry.NopLogger()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = lg
	if s.dialOpts.Logger == nil {
		s.dialOpts.Logger = lg
	}
}

// Metrics returns the installed registry (nil when uninstrumented).
func (s *Service) Metrics() *telemetry.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metrics
}

// log returns the current logger.
func (s *Service) log() *slog.Logger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logger
}

// SetDialOptions configures the fault tolerance (per-operation deadline,
// retry/backoff policy) applied to connections dialed to remote databases
// from now on; already-established connections keep their options.
func (s *Service) SetDialOptions(opts netsearch.Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dialOpts = opts
}

// SetTripThreshold sets how many consecutive sampling failures open a
// database's circuit breaker (default DefaultTripThreshold); n <= 0
// disables the breaker.
func (s *Service) SetTripThreshold(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tripAfter = n
}

// Register adds a remote database reachable at a netsearch address. The
// connection is established lazily on first sampling. If a persisted model
// exists for the name it is loaded immediately.
func (s *Service) Register(name, addr string) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	// Load any persisted model before taking the registry lock: the store
	// read is disk I/O, which must never run under mu (a duplicate
	// registration wastes one read — fine for an administrative call).
	e := newEntry(name, addr)
	s.loadPersisted(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[name]; dup {
		return fmt.Errorf("service: database %q %w", name, ErrExists)
	}
	s.entries[name] = e
	if e.model != nil {
		s.invalidateAll() // a persisted model joined the served set
	}
	return nil
}

// newEntry builds an unpublished entry with its run guard ready.
func newEntry(name, addr string) *entry {
	return &entry{
		name:  name,
		addr:  addr,
		run:   make(chan struct{}, 1),
		stats: DBStatus{Name: name, Addr: addr},
	}
}

// RegisterLocal adds an in-process database (used by tests, examples, and
// embedded deployments).
func (s *Service) RegisterLocal(name string, db core.Database) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	if db == nil {
		return errors.New("service: nil database")
	}
	e := newEntry(name, "")
	e.db = db
	s.loadPersisted(e) // before the lock: store reads are disk I/O
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[name]; dup {
		return fmt.Errorf("service: database %q %w", name, ErrExists)
	}
	s.entries[name] = e
	if e.model != nil {
		s.invalidateAll()
	}
	return nil
}

// loadPersisted fills e.model from the store when available. e must be
// unpublished (not yet in s.entries) so no lock is needed; s.st is
// immutable after New.
func (s *Service) loadPersisted(e *entry) {
	if s.st == nil {
		return
	}
	m, err := s.st.Get(e.name)
	if err != nil {
		return // not found or unreadable: sample anew
	}
	e.model = m
	e.stats.HasModel = true
	e.stats.Terms = m.VocabSize()
	e.stats.SampledDocs = m.Docs()
}

// Unregister removes a database and its persisted model. The store
// delete (disk I/O) happens after the registry lock is released; the
// entry is already unpublished by then, so a concurrent Register of the
// same name at worst re-reads a model this call is about to delete —
// the same outcome as running the two calls in the other order.
func (s *Service) Unregister(name string) error {
	s.mu.Lock()
	e, ok := s.entries[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("service: %q: %w", name, ErrUnknownDatabase)
	}
	delete(s.entries, name)
	if e.model != nil {
		s.invalidateAll() // its model left the served set
	}
	st := s.st
	s.mu.Unlock()
	if st != nil {
		return st.Delete(name)
	}
	return nil
}

// Databases returns the status of every registered database, sorted by
// name.
func (s *Service) Databases() []DBStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]DBStatus, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e.stats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// connect returns the entry's database, dialing remote ones on demand. A
// cached client that exhausted its retries is discarded and replaced — a
// dead connection must not poison the entry forever. Caller holds the
// entry's run guard, not mu: dialing is network I/O, and the guard
// already makes this entry's connection state single-writer, so mu is
// taken only for the short reads and writes of e.db.
func (s *Service) connect(e *entry) (core.Database, error) {
	s.mu.Lock()
	db, addr, opts := e.db, e.addr, s.dialOpts
	var stale *netsearch.Client
	if c, ok := db.(*netsearch.Client); ok && c.Broken() {
		stale, db = c, nil
		e.db = nil
	}
	s.mu.Unlock()
	if stale != nil {
		stale.Close() // best effort; the connection is already broken
	}
	if db != nil {
		return db, nil
	}
	if addr == "" {
		return nil, fmt.Errorf("service: database %q has no address", e.name)
	}
	client, err := netsearch.DialWith(addr, opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	e.db = client
	s.mu.Unlock()
	return client, nil
}

// initialModel builds the model the first query term is drawn from: the
// union of everything the service has already learned, or a tiny built-in
// model of very common words when nothing is known yet.
func (s *Service) initialModel() *langmodel.Model {
	union := langmodel.New()
	for _, e := range s.entries {
		if e.model != nil {
			union.Merge(e.model)
		}
	}
	if union.VocabSize() > 0 {
		return union
	}
	seedWords := []string{
		"the", "and", "for", "that", "with", "this", "from", "have",
		"new", "time", "year", "people", "world", "data", "system",
	}
	union.AddDocument(seedWords)
	return union
}

// recordFailure updates an entry's health counters after a failed connect
// or sampling run, tripping the circuit breaker once the consecutive
// failure count reaches the threshold. Caller holds mu.
func (s *Service) recordFailure(e *entry, err error) {
	e.stats.LastError = err.Error()
	e.stats.ConsecutiveFailures++
	if s.tripAfter > 0 && e.stats.ConsecutiveFailures >= s.tripAfter {
		if !e.stats.CircuitOpen {
			s.metrics.Counter("service_breaker_trips_total").Inc()
			s.logger.Warn("circuit breaker tripped",
				"db", e.name, "consecutive_failures", e.stats.ConsecutiveFailures)
		}
		e.stats.CircuitOpen = true
	}
}

// Sample learns (or re-learns) the language model for one database. The
// learned model is normalized to the service's analyzer and persisted when
// a store is configured.
//
// Sample always attempts the database, even when its circuit breaker is
// open — it is the half-open probe that can close the circuit again. Runs
// on the same database are serialized; runs on different databases
// proceed concurrently.
func (s *Service) Sample(name string, opts SampleOptions) (DBStatus, error) {
	opts = opts.withDefaults()
	reg, lg := s.Metrics(), s.log()
	defer reg.Timer("service_sample_seconds")()

	s.mu.RLock()
	e, ok := s.entries[name]
	s.mu.RUnlock()
	if !ok {
		reg.Counter("service_sample_errors_total").Inc()
		return DBStatus{}, fmt.Errorf("service: %q: %w", name, ErrUnknownDatabase)
	}

	// In-flight guard: one sampling run per entry at a time, held for the
	// whole network run — which is exactly why it is a channel semaphore
	// and not a mutex (see entry.run). The gauge counts runs actually
	// executing, not ones parked on the guard.
	e.run <- struct{}{}
	defer func() { <-e.run }()
	inflight := reg.Gauge("service_inflight_samples")
	inflight.Add(1)
	defer inflight.Add(-1)
	lg.Info("sample start", "db", name, "docs", opts.Docs,
		"extend", opts.Extend, telemetry.TraceKey, opts.TraceID)

	db, err := s.connect(e)
	if err != nil {
		s.mu.Lock()
		s.recordFailure(e, err)
		st := e.stats
		s.mu.Unlock()
		reg.Counter("service_sample_errors_total").Inc()
		reg.Counter("service_sample_errors_total{" + dbLabel(name) + "}").Inc()
		return st, fmt.Errorf("service: connect %q: %w", name, err)
	}
	// Propagate the trace ID onto the wire: runs on this entry are
	// serialized by the run guard, so the client's trace is ours for the
	// run.
	if c, ok := db.(*netsearch.Client); ok {
		c.SetTrace(opts.TraceID)
		defer c.SetTrace("")
	}
	s.mu.Lock()
	initial := s.initialModel()
	prev := e.lastRun
	s.mu.Unlock()

	cfg := core.Config{
		DocsPerQuery: opts.PerQuery,
		Selector:     core.RandomLLM{},
		Stop:         core.StopAfterDocs(opts.Docs),
		Analyzer:     analysis.Raw(),
		Seed:         opts.Seed,
	}
	if opts.InitialTerm != "" {
		cfg.InitialTerm = opts.InitialTerm
	} else {
		cfg.InitialModel = initial
	}
	var res *core.Result
	if opts.Extend && prev != nil {
		cfg.Stop = core.StopAfterDocs(prev.Docs + opts.Docs)
		res, err = core.Resume(db, cfg, prev)
	} else {
		res, err = core.Sample(db, cfg)
	}

	if err != nil {
		s.mu.Lock()
		s.recordFailure(e, err)
		st := e.stats
		s.mu.Unlock()
		reg.Counter("service_sample_errors_total").Inc()
		reg.Counter("service_sample_errors_total{" + dbLabel(name) + "}").Inc()
		lg.Warn("sample failed", "db", name, telemetry.TraceKey, opts.TraceID, "err", err.Error())
		return st, fmt.Errorf("service: sample %q: %w", name, err)
	}
	reg.Counter("service_samples_total").Inc()
	reg.Counter("service_samples_total{" + dbLabel(name) + "}").Inc()
	reg.Counter("service_sampled_docs_total").Add(int64(res.Docs))
	reg.Counter("service_probe_queries_total").Add(int64(res.Queries))
	lg.Info("sample done", "db", name, "docs", res.Docs, "queries", res.Queries,
		telemetry.TraceKey, opts.TraceID)
	model := res.Learned.Normalize(s.analyzer) // CPU-heavy; keep outside the lock
	s.mu.Lock()
	hadModel := e.model != nil
	e.model = model
	if hadModel {
		// A resample replaced one model in place: the next rebuild may
		// patch just this database's rows instead of recompiling the
		// federation.
		s.invalidateDB(name)
	} else {
		s.invalidateAll() // a new model joined the served set
	}
	e.lastRun = res
	e.stats.HasModel = true
	e.stats.Terms = model.VocabSize()
	e.stats.SampledDocs = res.Docs
	e.stats.Queries = res.Queries
	e.stats.LastError = ""
	e.stats.ConsecutiveFailures = 0
	e.stats.CircuitOpen = false
	st := e.stats
	s.mu.Unlock()
	if s.st != nil {
		// Persist after releasing the registry lock: Put fsyncs, and an
		// fsync under mu would stall every reader behind disk. The run
		// guard serializes runs on this entry, so the write always matches
		// the model just installed.
		if err := s.st.Put(name, model); err != nil {
			s.mu.Lock()
			e.stats.LastError = err.Error()
			st = e.stats
			s.mu.Unlock()
			return st, fmt.Errorf("service: persist %q: %w", name, err)
		}
	}
	return st, nil
}

// SampleAll samples every registered database concurrently with the same
// options (seeds are offset per database so runs stay independent) and
// returns the per-database statuses keyed by name, plus a map of the
// databases that failed (nil when everything sampled). One database
// failing never stops the others; each failure is reported under its own
// name. Databases whose circuit breaker is open are skipped — their error
// is ErrCircuitOpen — so a fleet-wide resample does not hammer a peer
// that is known to be down; a direct Sample remains the probe that can
// close the circuit.
func (s *Service) SampleAll(opts SampleOptions, parallelism int) (map[string]DBStatus, map[string]error) {
	if parallelism < 1 {
		parallelism = 4
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.entries))
	tripped := make(map[string]bool)
	for name, e := range s.entries {
		names = append(names, name)
		if e.stats.CircuitOpen {
			tripped[name] = true
		}
	}
	s.mu.RUnlock()
	sort.Strings(names)

	type outcome struct {
		st  DBStatus
		err error
	}
	// The pool caps concurrency; collecting outcomes by input order keeps
	// the maps deterministic regardless of completion order.
	results, _ := parallel.Map(parallelism, names, func(i int, name string) (outcome, error) {
		if tripped[name] {
			s.mu.RLock()
			var st DBStatus
			if e, ok := s.entries[name]; ok {
				st = e.stats
			}
			s.mu.RUnlock()
			return outcome{st, fmt.Errorf("service: %q skipped: %w", name, ErrCircuitOpen)}, nil
		}
		o := opts.withDefaults()
		o.Seed += uint64(i) * 7919
		st, err := s.Sample(name, o)
		return outcome{st, err}, nil
	})
	statuses := make(map[string]DBStatus, len(names))
	var errs map[string]error
	for i, name := range names {
		statuses[name] = results[i].st
		if results[i].err != nil {
			if errs == nil {
				errs = make(map[string]error)
			}
			errs[name] = results[i].err
		}
	}
	return statuses, errs
}

// RankedDB is one row of a selection ranking.
type RankedDB struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// dbLabel renders a registered database name as a Prometheus label set
// fragment, escaping the three characters the text format reserves.
// Cardinality stays bounded because values come only from the registry's
// (small, operator-controlled) set of database names.
func dbLabel(name string) string {
	return `db="` + labelEscaper.Replace(name) + `"`
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// parseAlgorithm resolves an algorithm name to its selection.Algorithm.
// "cori" (or "") selects CORI; "gloss-sum" and "gloss-ind" select the
// GlOSS estimators, optionally with an "@l" threshold suffix (e.g.
// "gloss-sum@0.2" for GlOSS(0.2)) in [0, 1].
func parseAlgorithm(algName string) (selection.Algorithm, error) {
	base, thr, hasThr := strings.Cut(algName, "@")
	var threshold float64
	if hasThr {
		v, err := strconv.ParseFloat(thr, 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("service: bad algorithm threshold %q (want a number in [0,1]): %w", thr, ErrInvalid)
		}
		threshold = v
	}
	switch base {
	case "", "cori":
		if hasThr {
			return nil, fmt.Errorf("service: algorithm %q does not take a threshold: %w", base, ErrInvalid)
		}
		return selection.CORI{}, nil
	case "gloss-sum":
		return selection.Gloss{Estimator: selection.GlossSum, Threshold: threshold}, nil
	case "gloss-ind":
		return selection.Gloss{Estimator: selection.GlossInd, Threshold: threshold}, nil
	}
	return nil, fmt.Errorf("service: unknown algorithm %q: %w", algName, ErrInvalid)
}

// rankScratch is the per-query working memory of the serving path — token
// list, interned term ids, dense scores, ranking — recycled through a pool
// so a cache-missing Rank allocates only the result it returns (and a
// cache-hitting one only the copy it hands back).
type rankScratch struct {
	terms  []string
	ids    []int32
	scores []float64
	ranked []selection.Ranked
	key    []byte
}

var rankScratchPool = sync.Pool{New: func() any { return new(rankScratch) }}

// Rank scores every database with a learned model against the query and
// returns them best first. algName is "cori" (default), "gloss-sum" or
// "gloss-ind", the latter two optionally suffixed "@l" for a GlOSS
// threshold. Query text is analyzed with the service's pipeline.
//
// Rank is the service's Select operation: its latency is observed into
// service_select_seconds and its outcomes into service_selects_total /
// service_select_errors_total. Scoring runs against the compiled snapshot
// (snapshot.go) — no service lock is held while scoring — and results are
// served from the epoch-keyed cache when possible (cache hits and misses
// count into service_select_cache_hits_total / _misses_total).
func (s *Service) Rank(query string, algName string, k int) ([]RankedDB, error) {
	out, _, err := s.rankCached(query, algName, k)
	return out, err
}

// rankCached is Rank plus the cache disposition for the X-Cache response
// header: "hit" (served from cache, including single-flight waits), "miss"
// (computed and cached), or "bypass" (cache disabled or request invalid).
func (s *Service) rankCached(query string, algName string, k int) (_ []RankedDB, cacheStatus string, _ error) {
	reg := s.Metrics()
	defer reg.Timer("service_select_seconds")()
	out, status, err := s.rank(query, algName, k)
	if err != nil {
		reg.Counter("service_select_errors_total").Inc()
	} else {
		reg.Counter("service_selects_total").Inc()
	}
	return out, status, err
}

func (s *Service) rank(query string, algName string, k int) ([]RankedDB, string, error) {
	alg, err := parseAlgorithm(algName)
	if err != nil {
		return nil, "bypass", err
	}

	scr := rankScratchPool.Get().(*rankScratch)
	defer rankScratchPool.Put(scr)

	scr.terms = s.analyzer.AppendTokens(scr.terms[:0], query)
	if len(scr.terms) == 0 {
		return nil, "bypass", fmt.Errorf("service: query has no index terms: %w", ErrInvalid)
	}
	snap := s.snapshot()
	if snap.compiled.NumDBs() == 0 {
		return nil, "bypass", ErrNoModels
	}

	cache := s.cache.Load()
	scr.key = scr.key[:0]
	for i, t := range scr.terms {
		if i > 0 {
			scr.key = append(scr.key, 0x1f) // never produced by the tokenizer
		}
		scr.key = append(scr.key, t...)
	}
	key := rankCacheKey{query: string(scr.key), alg: alg.Name(), k: k, epoch: snap.epoch}
	status := "bypass" // cache disabled; coalescing still applies
	if cache != nil {
		if val, ok := cache.probe(key); ok {
			s.Metrics().Counter("service_select_cache_hits_total").Inc()
			return append([]RankedDB(nil), val...), "hit", nil
		}
		status = "miss"
	}
	f, leader := s.joinFlight(key)
	if !leader {
		reg := s.Metrics()
		reg.Counter(`service_rank_coalesced_total{scope="flight"}`).Inc()
		<-f.ready
		if f.err != nil {
			return nil, status, f.err
		}
		if cache != nil {
			// The flight's leader may have been a batch (which never admits
			// into the LRU); the single-query path wants this result cached.
			cache.add(key, f.val)
			reg.Counter("service_select_cache_hits_total").Inc()
			status = "hit"
		}
		return append([]RankedDB(nil), f.val...), status, nil
	}
	if cache != nil {
		s.Metrics().Counter("service_select_cache_misses_total").Inc()
	}
	// The leader owes fulfill exactly once. If scoring panics (e.g.
	// rankSnapshot's defensive "not compiled" panic, recovered by
	// net/http), publish an error — unblocking every waiter and retiring
	// the flight — before letting the panic propagate.
	fulfilled := false
	defer func() {
		if r := recover(); r != nil {
			if !fulfilled {
				s.fulfillFlight(key, f, nil, fmt.Errorf("service: rank panicked: %v", r))
			}
			panic(r)
		}
	}()
	out := s.rankSnapshot(snap, alg, scr, k)
	s.fulfillFlight(key, f, out, nil)
	fulfilled = true
	if cache != nil {
		cache.add(key, out)
	}
	// Hand back a copy: the cached slice is shared with followers and hits.
	return append([]RankedDB(nil), out...), status, nil
}

// joinFlight enters the coalescer for key, maintaining the
// service_rank_flights_inflight gauge (tests assert it returns to zero —
// a leaked flight would wedge every future identical query).
func (s *Service) joinFlight(key rankCacheKey) (*flight, bool) {
	f, leader := s.coal.join(key)
	if leader {
		s.Metrics().Gauge("service_rank_flights_inflight").Set(int64(s.coal.inflight()))
	}
	return f, leader
}

// fulfillFlight publishes a leader's result and drops the in-flight gauge.
func (s *Service) fulfillFlight(key rankCacheKey, f *flight, val []RankedDB, err error) {
	s.coal.fulfill(key, f, val, err)
	s.Metrics().Gauge("service_rank_flights_inflight").Set(int64(s.coal.inflight()))
}

// rankSnapshot scores and ranks against a compiled snapshot using the
// pooled scratch buffers; only the returned result is freshly allocated.
func (s *Service) rankSnapshot(snap *snapshotSet, alg selection.Algorithm, scr *rankScratch, k int) []RankedDB {
	c := snap.compiled
	scr.ids = c.AppendIDs(scr.ids[:0], scr.terms)
	if cap(scr.scores) < c.NumDBs() {
		scr.scores = make([]float64, c.NumDBs())
	}
	scr.scores = scr.scores[:c.NumDBs()]
	ranked, ok := c.RankInto(alg, scr.ids, scr.scores, scr.ranked[:0])
	scr.ranked = ranked[:0]
	if !ok {
		// parseAlgorithm only yields CORI/Gloss, which ScoreInto always
		// accepts; reaching here means a new family was added to one side.
		panic("service: algorithm " + alg.Name() + " is not compiled")
	}
	if k > 0 && k < len(ranked) {
		ranked = ranked[:k]
	}
	out := make([]RankedDB, len(ranked))
	for i, r := range ranked {
		out[i] = RankedDB{Name: snap.names[r.DB], Score: r.Score}
	}
	return out
}

// Summary returns the top-k terms of a database's learned model under the
// given metric ("df", "ctf", or default avg-tf) — the §7 peek-inside view.
func (s *Service) Summary(name string, metricName string, k int) ([]summarize.Row, error) {
	var metric langmodel.RankMetric
	switch metricName {
	case "df":
		metric = langmodel.ByDF
	case "ctf":
		metric = langmodel.ByCTF
	case "", "avg-tf", "avgtf":
		metric = langmodel.ByAvgTF
	default:
		return nil, fmt.Errorf("service: unknown metric %q: %w", metricName, ErrInvalid)
	}
	if k <= 0 {
		k = 20
	}
	s.mu.RLock()
	e, ok := s.entries[name]
	var m *langmodel.Model
	if ok && e.model != nil {
		m = e.model
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: %q: %w", name, ErrUnknownDatabase)
	}
	if m == nil {
		return nil, fmt.Errorf("service: database %q has no learned model: %w", name, ErrInvalid)
	}
	return summarize.Top(m, metric, k, analysis.InqueryStoplist()), nil
}

// Close releases remote connections. The clients are detached from the
// registry under the lock, then closed outside it (Close writes a FIN to
// the peer — network I/O that must not run under mu); name order makes
// any close-error deterministic.
func (s *Service) Close() error {
	s.mu.Lock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	clients := make([]*netsearch.Client, 0, len(names))
	for _, name := range names {
		e := s.entries[name]
		if c, ok := e.db.(*netsearch.Client); ok {
			clients = append(clients, c)
			e.db = nil
		}
	}
	s.mu.Unlock()
	var firstErr error
	for _, c := range clients {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
