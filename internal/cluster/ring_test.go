package cluster

import (
	"fmt"
	"testing"
)

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("db-%04d", i)
	}
	return names
}

func TestRingDeterministic(t *testing.T) {
	// Two fronts built from the same (slots, vnodes, seed) triple must
	// route every name identically — the property replica placement and
	// stateless front tiers rest on.
	a := NewRing(4, 64, 42)
	b := NewRing(4, 64, 42)
	for _, name := range ringNames(1000) {
		if a.Owner(name) != b.Owner(name) {
			t.Fatalf("rings with identical parameters disagree on %q: %d vs %d",
				name, a.Owner(name), b.Owner(name))
		}
	}
}

func TestRingSeedChangesPlacement(t *testing.T) {
	a := NewRing(4, 64, 1)
	b := NewRing(4, 64, 2)
	moved := 0
	for _, name := range ringNames(1000) {
		if a.Owner(name) != b.Owner(name) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the seed moved no names; placements are not seed-dependent")
	}
}

func TestRingBalance(t *testing.T) {
	// With the default vnode count a 4-slot ring should spread 2000 names
	// roughly evenly; a slot grabbing more than half (or nearly nothing)
	// means the virtual-point projection is broken.
	r := NewRing(4, 0, 7)
	counts := make([]int, 4)
	names := ringNames(2000)
	for _, name := range names {
		slot := r.Owner(name)
		if slot < 0 || slot >= 4 {
			t.Fatalf("Owner(%q) = %d, out of range", name, slot)
		}
		counts[slot]++
	}
	for slot, c := range counts {
		if c < len(names)/10 || c > len(names)/2 {
			t.Errorf("slot %d owns %d of %d names; balance is off: %v", slot, c, len(names), counts)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// The consistent-hashing contract: growing the ring by one slot only
	// moves names onto the new slot — no name shuffles between surviving
	// slots — and only a minority of names move at all.
	small := NewRing(4, 64, 9)
	grown := NewRing(5, 64, 9)
	names := ringNames(2000)
	moved := 0
	for _, name := range names {
		before, after := small.Owner(name), grown.Owner(name)
		if before == after {
			continue
		}
		moved++
		if after != 4 {
			t.Fatalf("%q moved from slot %d to surviving slot %d; only the new slot may gain names",
				name, before, after)
		}
	}
	if moved == 0 {
		t.Error("no names moved to the new slot")
	}
	if moved > len(names)/2 {
		t.Errorf("%d of %d names moved when adding one slot to four; expected roughly 1/5", moved, len(names))
	}
}

func TestRingDegenerateParameters(t *testing.T) {
	r := NewRing(0, -1, 0) // clamps to one slot, default vnodes
	if r.Slots() != 1 {
		t.Fatalf("Slots() = %d, want 1", r.Slots())
	}
	for _, name := range ringNames(50) {
		if got := r.Owner(name); got != 0 {
			t.Fatalf("single-slot ring routed %q to %d", name, got)
		}
	}
}
