package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// Front HTTP API — the cluster's client-facing surface, mirroring the
// single-process selectd endpoints it stands in for:
//
//	GET    /rank?q=apple+pie&alg=cori&k=5  -> []RankedDB (scatter-gathered)
//	POST   /rank/batch                     {"queries":[...],"alg":"cori","k":5}
//	                                       -> {"results":[{"ranked":[...]}...]}
//	POST   /rank/batch?stream=1            same body -> NDJSON frames, one
//	                                       fused item per query as every
//	                                       slot delivers it (SSE with
//	                                       Accept: text/event-stream)
//	POST   /databases                      {"name":"x","addr":"host:port"}
//	                                       (routed to the owning slot's replicas)
//	DELETE /databases/{name}               (routed likewise)
//	GET    /cluster                        -> topology + per-replica health
//	GET    /healthz
//	GET    /metrics, /debug/vars           (when Options.Metrics was set)
//
// Sampling stays shard-side: replicas sample their registered databases
// through their own HTTP APIs with identical seeds, which (sampling
// being deterministic) keeps replica models byte-identical.

// Handler returns the front tier's HTTP handler.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "front", "slots": f.ring.Slots()})
	})
	mux.HandleFunc("/rank", f.handleRank)
	mux.HandleFunc("/rank/batch", f.handleRankBatch)
	mux.HandleFunc("/databases", f.handleDatabases)
	mux.HandleFunc("/databases/", f.handleDatabase)
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"slots":    f.ring.Slots(),
			"replicas": f.Health(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if f.reg != nil {
			telemetry.Handler(f.reg).ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		if f.reg != nil {
			telemetry.VarsHandler(f.reg).ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	})
	return f.instrument(mux)
}

// instrument is the front's observability middleware: trace IDs (honored
// from X-Trace-Id, echoed back, and propagated onto every scattered wire
// frame), status-class counters, request latency, one log line per
// request — the same contract the single-process service keeps.
func (f *Front) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get("X-Trace-Id")
		if trace == "" {
			trace = f.traces.Next()
		}
		w.Header().Set("X-Trace-Id", trace)
		r.Header.Set("X-Trace-Id", trace) // downstream handlers read it back

		sp := f.reg.StartSpan("http_request_seconds")
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		d := sp.End()

		f.reg.Counter("http_requests_total").Inc()
		f.reg.Counter(fmt.Sprintf(`http_responses_total{class="%dxx"}`, sw.status/100)).Inc()
		switch {
		case sw.status >= 500:
			f.reg.Counter("http_5xx_total").Inc()
		case sw.status >= 400:
			f.reg.Counter("http_4xx_total").Inc()
		}
		f.logger.Info("front request",
			"method", r.Method, "path", r.URL.Path, "status", sw.status,
			"elapsed", d, telemetry.TraceKey, trace)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streamed responses (POST
// /rank/batch?stream=1) push each frame through the middleware instead of
// buffering until the handler returns.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor maps a scatter-path error the same way the single-process
// service does: the client's mistakes are 400, an unready federation is
// 503, everything else — including a slot whose replicas all failed — is
// a 502 the caller can alert on.
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrUnknownDatabase):
		return http.StatusNotFound
	case errors.Is(err, service.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, service.ErrNoModels):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadGateway
	}
}

// shed answers a load-shed request: 429 with the gate's Retry-After hint,
// the same overload contract the single-process service's surface keeps.
func shed(w http.ResponseWriter, retryAfterSeconds int) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, http.StatusTooManyRequests,
		map[string]string{"error": "service overloaded, retry later"})
}

func (f *Front) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	ticket, ok := f.gate.Admit()
	if !ok {
		shed(w, f.gate.RetryAfterSeconds())
		return
	}
	defer ticket.Release()
	q := r.URL.Query()
	k, _ := strconv.Atoi(q.Get("k"))
	if clamped := ticket.ClampK(k); clamped != k {
		k = clamped
		w.Header().Set("X-Degraded-K", strconv.Itoa(k))
	}
	ranked, err := f.Rank(q.Get("q"), q.Get("alg"), k, r.Header.Get("X-Trace-Id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, ranked)
}

// batchRankRequest and batchRankResponse mirror the single-process
// service's POST /rank/batch wire shapes, so one client speaks to both
// surfaces interchangeably.
type batchRankRequest struct {
	Queries []string `json:"queries"`
	Alg     string   `json:"alg,omitempty"`
	K       int      `json:"k,omitempty"`
}

type batchRankResponse struct {
	Results  []netsearch.RankedBatch `json:"results"`
	Degraded bool                    `json:"degraded,omitempty"`
}

func (f *Front) handleRankBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req batchRankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) > service.MaxBatchQueries {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d queries exceeds the %d-query limit: %w",
				len(req.Queries), service.MaxBatchQueries, service.ErrInvalid))
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("cluster: empty batch: %w", service.ErrInvalid))
		return
	}
	// One batch holds one admission slot, as on the shards: the in-flight
	// unit is the request — what bounds the scatter fan-out — not the query.
	ticket, ok := f.gate.Admit()
	if !ok {
		shed(w, f.gate.RetryAfterSeconds())
		return
	}
	defer ticket.Release()
	k := ticket.ClampK(req.K)
	if k != req.K {
		w.Header().Set("X-Degraded-K", strconv.Itoa(k))
	}
	if service.WantStream(r) {
		f.streamRankBatch(w, r, req, k, k != req.K)
		return
	}
	items, err := f.RankBatch(req.Queries, req.Alg, k, r.Header.Get("X-Trace-Id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, batchRankResponse{Results: items, Degraded: k != req.K})
}

// streamRankBatch serves one POST /rank/batch?stream=1 request on the
// front, reusing the service tier's StreamWriter so both surfaces speak
// one frame format. The admission ticket's deferred Release fires after
// the last flush.
func (f *Front) streamRankBatch(w http.ResponseWriter, r *http.Request, req batchRankRequest, k int, degraded bool) {
	sw := service.NewStreamWriter(w, r)
	ctx := r.Context()
	results := 0
	err := f.RankBatchStream(req.Queries, req.Alg, k, r.Header.Get("X-Trace-Id"), func(i int, item netsearch.RankedBatch) error {
		if cerr := ctx.Err(); cerr != nil {
			// Wrap the sentinel so the slot teardown skips failover and
			// health penalties all the way down.
			return fmt.Errorf("%w: %v", netsearch.ErrStreamCanceled, cerr)
		}
		results++
		return sw.Item(i, item.Ranked, item.Error)
	})
	if err != nil {
		if !sw.Started() {
			writeErr(w, statusFor(err), err)
			return
		}
		f.reg.Counter("cluster_stream_aborts_total").Inc()
		return
	}
	if err := sw.Done(results, degraded); err != nil {
		f.reg.Counter("cluster_stream_aborts_total").Inc()
		return
	}
	f.reg.Counter("cluster_stream_ranks_total").Inc()
}

func (f *Front) handleDatabases(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only (listing is served by the shards)"))
		return
	}
	var req struct {
		Name string `json:"name"`
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Addr == "" {
		writeErr(w, http.StatusBadRequest, errors.New("addr is required"))
		return
	}
	if err := service.ValidateName(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	slot := f.ring.Owner(req.Name)
	if err := f.registerOnSlot(slot, req.Name, req.Addr); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"registered": req.Name, "slot": slot})
}

func (f *Front) handleDatabase(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.EscapedPath(), "/databases/")
	name, err := url.PathUnescape(rest)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad database name %q: %w", rest, err))
		return
	}
	if name == "" || r.Method != http.MethodDelete {
		writeErr(w, http.StatusNotFound, errors.New("unknown endpoint (shard-local operations are served by the shards)"))
		return
	}
	slot := f.ring.Owner(name)
	if err := f.unregisterOnSlot(slot, name); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name, "slot": slot})
}

// registerOnSlot places a database on every replica of its owning slot.
// "Already registered" from a replica counts as success, so the call is
// idempotent and a retry heals a previous partial failure instead of
// conflicting with it.
func (f *Front) registerOnSlot(slot int, name, addr string) error {
	// Any registration attempt — even a failed one, which may have changed
	// some replicas — moves the topology epoch, invalidating the front's
	// result cache wholesale. Invalidation is cheap; serving a fused
	// ranking that predates a placement change is not.
	defer f.epoch.Add(1)
	for _, r := range f.reps[slot] {
		c, err := f.connect(r)
		if err != nil {
			f.recordFailure(r, err)
			return fmt.Errorf("cluster: register %q on slot %d replica %s: %w", name, slot, r.addr, err)
		}
		err = classify(c.RegisterDB(name, addr))
		switch {
		case err == nil, errors.Is(err, service.ErrExists):
			// Registered, or already there: idempotent success.
		case errors.Is(err, service.ErrInvalid):
			// The client's mistake, not the replica's health.
			return fmt.Errorf("cluster: register %q on slot %d replica %s: %w", name, slot, r.addr, err)
		default:
			f.recordFailure(r, err)
			return fmt.Errorf("cluster: register %q on slot %d replica %s: %w", name, slot, r.addr, err)
		}
	}
	return nil
}

// unregisterOnSlot removes a database from every replica of its owning
// slot. Only when every replica reports the name unknown does the front
// answer 404; one replica knowing it means a previous partial state is
// being healed.
func (f *Front) unregisterOnSlot(slot int, name string) error {
	defer f.epoch.Add(1) // see registerOnSlot
	unknown := 0
	for _, r := range f.reps[slot] {
		c, err := f.connect(r)
		if err != nil {
			f.recordFailure(r, err)
			return fmt.Errorf("cluster: unregister %q on slot %d replica %s: %w", name, slot, r.addr, err)
		}
		err = classify(c.UnregisterDB(name))
		switch {
		case err == nil:
		case errors.Is(err, service.ErrUnknownDatabase):
			unknown++
		default:
			f.recordFailure(r, err)
			return fmt.Errorf("cluster: unregister %q on slot %d replica %s: %w", name, slot, r.addr, err)
		}
	}
	if unknown == len(f.reps[slot]) {
		return fmt.Errorf("cluster: %q on slot %d: %w", name, slot, service.ErrUnknownDatabase)
	}
	return nil
}
