package cluster

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/netsearch"
	"repro/internal/service"
)

// Error markers carried in wire error strings between a shard and the
// front tier. The netsearch fabric transports errors as opaque text; the
// shard adapter prefixes the classes the front's failover logic must
// distinguish — a client mistake (no replica will answer differently, so
// failing over is pointless) versus an infrastructure failure (the next
// replica may well succeed). Both ends of the convention live in this
// package.
const (
	markInvalid = "EINVAL: "
	markExists  = "EEXIST: "
	markUnknown = "ENOENT: "
)

// Shard adapts a selection service to the netsearch fabric so a front
// tier can scatter to it: it implements core.Database (vacuously — a
// shard is not a document database), netsearch.DBRanker, and
// netsearch.Registrar. Serve it with ServeShard.
type Shard struct {
	svc *service.Service
}

// NewShard wraps a service for serving over netsearch.
func NewShard(svc *service.Service) *Shard { return &Shard{svc: svc} }

// ServeShard exposes svc's rank/register capabilities on addr over the
// netsearch wire protocol — the shard's way of joining the scatter
// fabric. The returned server is stopped with Close.
func ServeShard(svc *service.Service, addr string) (*netsearch.Server, error) {
	srv, err := netsearch.Serve(NewShard(svc), addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard listen %s: %w", addr, err)
	}
	return srv, nil
}

// Search implements core.Database. A shard serves database rankings, not
// documents; sampling traffic belongs on the registered databases
// themselves.
func (sh *Shard) Search(query string, n int) ([]int, error) {
	return nil, errors.New("cluster: shard is not a document database")
}

// Fetch implements core.Database.
func (sh *Shard) Fetch(id int) (corpus.Document, error) {
	return corpus.Document{}, errors.New("cluster: shard is not a document database")
}

// RankDBs implements netsearch.DBRanker: the shard-local half of a
// scattered rank query. A shard with no learned models yet contributes an
// empty partial ranking rather than an error — one cold shard must not
// fail the whole federation's query. Invalid-argument errors are marked
// so the front tier knows failover cannot help.
func (sh *Shard) RankDBs(query, alg string, k int) ([]netsearch.RankedDB, error) {
	ranked, err := sh.svc.Rank(query, alg, k)
	if err != nil {
		if errors.Is(err, service.ErrNoModels) {
			return nil, nil
		}
		if errors.Is(err, service.ErrInvalid) {
			return nil, errors.New(markInvalid + err.Error())
		}
		return nil, err
	}
	out := make([]netsearch.RankedDB, len(ranked))
	for i, r := range ranked {
		out[i] = netsearch.RankedDB{Name: r.Name, Score: r.Score}
	}
	return out, nil
}

// RankDBsBatch implements netsearch.BatchDBRanker: the shard-local half
// of a scattered batch. The cold-shard convention carries over from
// RankDBs — a shard with no models answers every query with an empty
// partial rather than failing the batch. Per-query problems ride in each
// item's Error (already plain text, no marker needed: the front passes
// them through to the matching item, never fails over on them).
func (sh *Shard) RankDBsBatch(queries []string, alg string, k int) ([]netsearch.RankedBatch, error) {
	items, err := sh.svc.RankBatch(queries, alg, k)
	if err != nil {
		if errors.Is(err, service.ErrNoModels) {
			return make([]netsearch.RankedBatch, len(queries)), nil
		}
		if errors.Is(err, service.ErrInvalid) {
			return nil, errors.New(markInvalid + err.Error())
		}
		return nil, err
	}
	out := make([]netsearch.RankedBatch, len(items))
	for i, it := range items {
		out[i].Error = it.Error
		if it.Ranked == nil {
			continue
		}
		out[i].Ranked = make([]netsearch.RankedDB, len(it.Ranked))
		for j, r := range it.Ranked {
			out[i].Ranked[j] = netsearch.RankedDB{Name: r.Name, Score: r.Score}
		}
	}
	return out, nil
}

// RankDBsStream implements netsearch.StreamBatchRanker: the shard-local
// half of a scattered streaming batch. Each item is emitted the moment the
// service ranks it, so the front's fused stream never waits on the whole
// shard batch. The conventions carry over from RankDBsBatch: a cold shard
// answers every query with an empty partial (emitted only after the
// whole-batch check, which the service runs before its first emit), and
// invalid arguments come back marked so the front fails fast without
// failover.
func (sh *Shard) RankDBsStream(queries []string, alg string, k int, emit func(i int, item netsearch.RankedBatch) error) error {
	err := sh.svc.RankBatchStream(queries, alg, k, func(i int, it service.BatchItem) error {
		out := netsearch.RankedBatch{Error: it.Error}
		if it.Ranked != nil {
			out.Ranked = make([]netsearch.RankedDB, len(it.Ranked))
			for j, r := range it.Ranked {
				out.Ranked[j] = netsearch.RankedDB{Name: r.Name, Score: r.Score}
			}
		}
		return emit(i, out)
	})
	if err != nil {
		if errors.Is(err, service.ErrNoModels) {
			// Cold shard: contribute empty partials. ErrNoModels is raised
			// before the service's first emit, so no item has gone out yet.
			for i := range queries {
				if eerr := emit(i, netsearch.RankedBatch{}); eerr != nil {
					return eerr
				}
			}
			return nil
		}
		if errors.Is(err, service.ErrInvalid) {
			return errors.New(markInvalid + err.Error())
		}
		return err
	}
	return nil
}

// RegisterDB implements netsearch.Registrar.
func (sh *Shard) RegisterDB(name, addr string) error {
	err := sh.svc.Register(name, addr)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, service.ErrExists):
		return errors.New(markExists + err.Error())
	case errors.Is(err, service.ErrInvalid):
		return errors.New(markInvalid + err.Error())
	}
	return err
}

// UnregisterDB implements netsearch.Registrar.
func (sh *Shard) UnregisterDB(name string) error {
	err := sh.svc.Unregister(name)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, service.ErrUnknownDatabase):
		return errors.New(markUnknown + err.Error())
	}
	return err
}

var _ core.Database = (*Shard)(nil)
var _ netsearch.DBRanker = (*Shard)(nil)
var _ netsearch.BatchDBRanker = (*Shard)(nil)
var _ netsearch.StreamBatchRanker = (*Shard)(nil)
var _ netsearch.Registrar = (*Shard)(nil)

// classify re-attaches the service sentinel matching a marked wire error,
// so the front tier can reuse the HTTP layer's statusFor-style mapping on
// errors that crossed the fabric as text.
func classify(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	// The markers arrive embedded in the client's transport wrapping.
	switch {
	case strings.Contains(msg, markInvalid):
		return fmt.Errorf("%s: %w", strings.TrimPrefix(msg, markInvalid), service.ErrInvalid)
	case strings.Contains(msg, markExists):
		return fmt.Errorf("%s: %w", strings.TrimPrefix(msg, markExists), service.ErrExists)
	case strings.Contains(msg, markUnknown):
		return fmt.Errorf("%s: %w", strings.TrimPrefix(msg, markUnknown), service.ErrUnknownDatabase)
	}
	return err
}
