// Package cluster scales the selection service horizontally: registered
// databases are partitioned across shard processes by consistent hashing
// on database name, each shard runs an ordinary selection service, and a
// stateless front tier scatters every rank query to all shards over the
// netsearch fabric and fuses the partial rankings into one top-k.
//
// Topology (DESIGN.md §13):
//
//	client ──HTTP──▶ Front ──netsearch──▶ slot 0: replica A | replica B
//	                        └─netsearch──▶ slot 1: replica C | replica D
//
// Each ring slot holds N replica shards with identical database sets; the
// front fails over to the next replica when a shard's breaker is open or
// its RPC errors. Because query-based sampling is deterministic (same
// seed, same stopping rule), replicas that sample the same databases
// converge to byte-identical models, so failover preserves bit-identical
// fused rankings.
package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Ring assigns database names to slots by consistent hashing. Each slot
// is projected onto the ring as a number of virtual points; a name is
// owned by the slot whose point follows the name's hash clockwise.
// Construction is deterministic: positions come from a seeded FNV-1a
// hash (no randomness, no map iteration), so every front tier built from
// the same (slots, vnodes, seed) triple routes identically — the
// property the whole placement scheme rests on.
type Ring struct {
	seed   uint64
	slots  int
	points []ringPoint // sorted by (pos, slot)
}

type ringPoint struct {
	pos  uint64
	slot int
}

// NewRing builds a ring of the given number of slots, each projected as
// vnodes virtual points (vnodes <= 0 defaults to 64 — enough that a
// 4-slot ring balances within a few percent). seed perturbs every hash,
// letting disjoint clusters decorrelate their placements.
func NewRing(slots, vnodes int, seed uint64) *Ring {
	if slots < 1 {
		slots = 1
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{seed: seed, slots: slots, points: make([]ringPoint, 0, slots*vnodes)}
	var label [16]byte
	for s := 0; s < slots; s++ {
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint64(label[0:8], uint64(s))
			binary.LittleEndian.PutUint64(label[8:16], uint64(v))
			r.points = append(r.points, ringPoint{pos: r.hash(label[:]), slot: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].slot < r.points[j].slot
	})
	return r
}

// Slots returns the number of slots the ring was built with.
func (r *Ring) Slots() int { return r.slots }

// Owner returns the slot that owns the database name: the slot of the
// first ring point at or clockwise-after the name's hash.
func (r *Ring) Owner(name string) int {
	h := r.hash([]byte(name))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is a circle
	}
	return r.points[i].slot
}

// hash is seeded FNV-1a: the seed bytes are folded in before the label,
// so different seeds produce independent ring geometries while staying
// fully deterministic across processes and runs.
func (r *Ring) hash(b []byte) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], r.seed)
	h.Write(seed[:])
	h.Write(b)
	return h.Sum64()
}
