package cluster

// Streaming scatter-gather (DESIGN.md §15). The buffered RankBatch waits
// for every slot's whole batch before fusing anything, so the client's
// first byte arrives after the slowest slot finishes its slowest query.
// RankBatchStream instead opens one "rankstream" exchange per slot, lets a
// reader goroutine buffer each slot's items as frames arrive, and fuses
// inline in input order: query i's fused ranking is emitted as soon as
// every slot has delivered *its* item i — queries i+1… may still be
// computing anywhere. Shards emit in input order too, so the gather never
// waits on an item it will not need next, and time-to-first-result is one
// query's scatter latency instead of the batch's.
//
// Duplicate queries within the batch collapse before the scatter: each
// unique query travels (and fuses) once, and every original position gets
// a copy (cluster_rank_coalesced_total{scope="batch"}).
//
// Divergence from the buffered path, by necessity: a federation with no
// models reports per-item errors here (each wrapping ErrNoModels' text)
// rather than a whole-batch 503 — streaming cannot wait to see every item
// before answering the first. Invalid-argument refusals still fail the
// whole batch before the first emit, because every slot refuses the same
// way and slot errors surface on the first wait.

import (
	"fmt"
	"sync"

	"repro/internal/netsearch"
	"repro/internal/parallel"
	"repro/internal/selection"
	"repro/internal/service"
)

// dedupQueries returns the unique queries in first-appearance order and,
// per original position, the index of its unique query.
func dedupQueries(queries []string) (uniq []string, pos []int) {
	pos = make([]int, len(queries))
	idx := make(map[string]int, len(queries))
	for i, q := range queries {
		u, ok := idx[q]
		if !ok {
			u = len(uniq)
			uniq = append(uniq, q)
			idx[q] = u
		}
		pos[i] = u
	}
	return uniq, pos
}

// slotStream buffers one slot's arriving rank stream for the inline fuser.
// There is no backpressure by design: a batch is bounded by
// service.MaxBatchQueries, so buffering all items costs less than stalling
// the shard's stream behind the slowest sibling slot.
type slotStream struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []netsearch.RankedBatch
	have     []bool
	done     bool
	err      error // terminal scatter failure, set by finish
	canceled bool
}

func newSlotStream(n int) *slotStream {
	ss := &slotStream{
		items: make([]netsearch.RankedBatch, n),
		have:  make([]bool, n),
	}
	ss.cond = sync.NewCond(&ss.mu)
	return ss
}

// put records one arriving item. A duplicate index (a transport retry
// replaying the stream) keeps the first delivery — replicas serve
// identical models, so the replay is bit-identical anyway. Once the
// consumer has canceled, put refuses with ErrStreamCanceled, which aborts
// the client's stream at its next frame.
func (ss *slotStream) put(i int, item netsearch.RankedBatch) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.canceled {
		return netsearch.ErrStreamCanceled
	}
	if i < 0 || i >= len(ss.items) {
		return fmt.Errorf("cluster: stream item index %d out of range [0,%d)", i, len(ss.items))
	}
	if !ss.have[i] {
		ss.items[i] = item
		ss.have[i] = true
		ss.cond.Broadcast()
	}
	return nil
}

// finish marks the slot's stream over; a non-nil err is the scatter
// failure waiters for undelivered items will see.
func (ss *slotStream) finish(err error) {
	ss.mu.Lock()
	ss.done = true
	ss.err = err
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

// cancel poisons the stream: waiters unblock and the reader's next put
// aborts its RPC.
func (ss *slotStream) cancel() {
	ss.mu.Lock()
	ss.canceled = true
	ss.cond.Broadcast()
	ss.mu.Unlock()
}

// wait blocks until item i arrives. An item that was delivered before the
// stream ended is still served after done — failure only poisons what it
// actually prevented.
func (ss *slotStream) wait(i int) (netsearch.RankedBatch, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for {
		if ss.have[i] {
			return ss.items[i], nil
		}
		if ss.done {
			if ss.err != nil {
				return netsearch.RankedBatch{}, ss.err
			}
			return netsearch.RankedBatch{}, fmt.Errorf("cluster: slot stream ended before item %d", i)
		}
		if ss.canceled {
			return netsearch.RankedBatch{}, netsearch.ErrStreamCanceled
		}
		//lint:ignore lockheld sync.Cond.Wait atomically releases ss.mu while blocked and reacquires it before returning — the canonical condvar wait, not I/O under a lock
		ss.cond.Wait()
	}
}

// RankBatchStream is RankBatch's streaming twin: emit receives each
// query's fused ranking, in input order, as soon as every slot has
// delivered its partial for that query. A non-nil error from emit cancels
// the scatter (every slot's stream is torn down without failover or
// health penalty) and is returned as-is. Whole-batch refusals surface
// before the first emit. See the package comment above for the documented
// divergences from the buffered path.
func (f *Front) RankBatchStream(queries []string, alg string, k int, trace string, emit func(i int, item netsearch.RankedBatch) error) error {
	defer f.reg.Timer("cluster_scatter_stream_seconds")()
	uniq, pos := dedupQueries(queries)
	if dups := len(queries) - len(uniq); dups > 0 {
		f.reg.Counter(`cluster_rank_coalesced_total{scope="batch"}`).Add(int64(dups))
	}
	streams := make([]*slotStream, len(f.reps))
	for i := range streams {
		streams[i] = newSlotStream(len(uniq))
	}
	readers := parallel.NewGroup(len(f.reps))
	for slot := range f.reps {
		slot, ss := slot, streams[slot]
		readers.Go(func() error {
			err := f.callSlot(slot, func(c *netsearch.Client) error {
				return c.RankDBsStream(uniq, alg, k, trace, ss.put)
			})
			// The scatter outcome travels to the fuser through the stream,
			// not the group: wait() hands it to exactly the items it hurt.
			ss.finish(err)
			return nil
		})
	}
	// However this returns, poison every slot stream (so still-running RPCs
	// abort at their next frame) and join the readers — no goroutine may
	// outlive the request that spawned it.
	defer func() {
		for _, ss := range streams {
			ss.cancel()
		}
		//lint:ignore errsink reader errors were already routed through slotStream.finish; Wait only joins
		readers.Wait()
	}()

	// Fusion scratch, recycled across unique queries (same shapes as the
	// buffered RankBatch).
	lists := make([][]selection.DocScore, len(streams))
	weights := make([]float64, len(streams))
	for i := range weights {
		weights[i] = 1
	}
	var fused []selection.MergedHit
	partials := make([]netsearch.RankedBatch, len(streams))
	fusedByUniq := make([][]netsearch.RankedDB, len(uniq))
	errByUniq := make([]string, len(uniq))
	fusedDone := make([]bool, len(uniq))
	for i := range queries {
		u := pos[i]
		if !fusedDone[u] {
			itemErr := ""
			total := 0
			for slot, ss := range streams {
				it, err := ss.wait(u)
				if err != nil {
					return err
				}
				partials[slot] = it
				if it.Error != "" {
					// Deterministic per-query refusal: every slot tokenizes
					// the same way, so any slot's report stands for all.
					itemErr = it.Error
				}
				list := lists[slot][:0]
				for j, r := range it.Ranked {
					list = append(list, selection.DocScore{Doc: j, Score: r.Score})
				}
				lists[slot] = list
				total += len(it.Ranked)
			}
			switch {
			case itemErr != "":
				errByUniq[u] = itemErr
			case total == 0:
				errByUniq[u] = fmt.Sprintf("cluster: %v", service.ErrNoModels)
			default:
				var err error
				fused, err = selection.MergeWeightedInto(fused[:0], lists, weights, k)
				if err != nil {
					// Unreachable by construction (lists and weights are
					// parallel); surfaced rather than swallowed all the same.
					return fmt.Errorf("cluster: fuse: %w", err)
				}
				ranked := make([]netsearch.RankedDB, len(fused))
				for j, h := range fused {
					ranked[j] = netsearch.RankedDB{Name: partials[h.DB].Ranked[h.Doc].Name, Score: h.Score}
				}
				fusedByUniq[u] = ranked
			}
			fusedDone[u] = true
		}
		item := netsearch.RankedBatch{Error: errByUniq[u]}
		if item.Error == "" {
			item.Ranked = append([]netsearch.RankedDB(nil), fusedByUniq[u]...)
		}
		if err := emit(i, item); err != nil {
			return err
		}
	}
	return nil
}
