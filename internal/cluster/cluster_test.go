package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// stubShard is a scriptable shard servable: it speaks the cluster
// capability interfaces directly, with the same wire-error markers the
// real Shard adapter emits, so front-tier failover logic can be tested
// without sampling a single document.
type stubShard struct {
	mu         sync.Mutex
	partial    []netsearch.RankedDB
	rankErr    error // returned while failFirst > 0, or always if failFirst == 0
	failFirst  int   // fail this many RankDBs calls, then serve partial
	rankCalls  int
	registered map[string]string
}

func (s *stubShard) Search(query string, n int) ([]int, error) {
	return nil, errors.New("stub shard is not a document database")
}

func (s *stubShard) Fetch(id int) (corpus.Document, error) {
	return corpus.Document{}, errors.New("stub shard is not a document database")
}

func (s *stubShard) RankDBs(query, alg string, k int) ([]netsearch.RankedDB, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rankCalls++
	if s.rankErr != nil && (s.failFirst == 0 || s.rankCalls <= s.failFirst) {
		return nil, s.rankErr
	}
	out := s.partial
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

func (s *stubShard) calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rankCalls
}

func (s *stubShard) RegisterDB(name, addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.registered == nil {
		s.registered = map[string]string{}
	}
	if _, dup := s.registered[name]; dup {
		return errors.New(markExists + "database " + name + " already registered")
	}
	s.registered[name] = addr
	return nil
}

func (s *stubShard) UnregisterDB(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.registered[name]; !ok {
		return errors.New(markUnknown + "unknown database " + name)
	}
	delete(s.registered, name)
	return nil
}

func (s *stubShard) has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.registered[name]
	return ok
}

var _ core.Database = (*stubShard)(nil)
var _ netsearch.DBRanker = (*stubShard)(nil)
var _ netsearch.Registrar = (*stubShard)(nil)

// serveStub exposes a stub shard on a loopback port and returns its addr.
func serveStub(t *testing.T, s *stubShard) string {
	t.Helper()
	srv, err := netsearch.Serve(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

func newTestFront(t *testing.T, slots [][]string, reg *telemetry.Registry) *Front {
	t.Helper()
	f, err := NewFront(slots, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFrontScatterGatherFusesTopK(t *testing.T) {
	// Two slots partition the database set; the fused ranking interleaves
	// their partials by score, and — slot weights being uniform — the
	// shard-reported scores pass through the merge unscaled.
	s0 := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.9}, {Name: "db-c", Score: 0.2}}}
	s1 := &stubShard{partial: []netsearch.RankedDB{{Name: "db-b", Score: 0.5}, {Name: "db-d", Score: 0.1}}}
	f := newTestFront(t, [][]string{{serveStub(t, s0)}, {serveStub(t, s1)}}, telemetry.NewRegistry())

	got, err := f.Rank("apple pie", "cori", 3, "")
	if err != nil {
		t.Fatal(err)
	}
	want := []netsearch.RankedDB{{Name: "db-a", Score: 0.9}, {Name: "db-b", Score: 0.5}, {Name: "db-c", Score: 0.2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fused ranking = %+v, want %+v", got, want)
	}
}

func TestFrontFailoverOnReplicaError(t *testing.T) {
	// The preferred replica reports an infrastructure failure; the slot
	// answers from the next replica and the failover is booked.
	reg := telemetry.NewRegistry()
	bad := &stubShard{rankErr: errors.New("disk on fire")}
	good := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.7}}}
	f := newTestFront(t, [][]string{{serveStub(t, bad), serveStub(t, good)}}, reg)

	got, err := f.Rank("q", "cori", 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "db-a" {
		t.Fatalf("failover ranking = %+v, want db-a from the healthy replica", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster_failovers_total"] != 1 {
		t.Errorf("cluster_failovers_total = %d, want 1", snap.Counters["cluster_failovers_total"])
	}
	health := f.Health()
	if health[0].ConsecutiveFailures != 1 || health[0].BreakerOpen {
		t.Errorf("failed replica health = %+v, want one booked failure and a closed breaker", health[0])
	}
	foundShardErr := false
	for name, v := range snap.Counters {
		if v > 0 && len(name) > len("cluster_shard_errors") && name[:len("cluster_shard_errors")] == "cluster_shard_errors" {
			foundShardErr = true
		}
	}
	if !foundShardErr {
		t.Error("no cluster_shard_errors{shard=...} counter was incremented")
	}
}

func TestFrontBreakerTripsAndCloses(t *testing.T) {
	// A lone replica failing DefaultTripThreshold times in a row trips its
	// breaker; the next success through the half-open probe closes it.
	reg := telemetry.NewRegistry()
	s := &stubShard{
		partial:   []netsearch.RankedDB{{Name: "db-a", Score: 0.4}},
		rankErr:   errors.New("transient shard failure"),
		failFirst: DefaultTripThreshold,
	}
	f := newTestFront(t, [][]string{{serveStub(t, s)}}, reg)

	for i := 0; i < DefaultTripThreshold; i++ {
		if _, err := f.Rank("q", "cori", 1, ""); err == nil {
			t.Fatalf("rank %d succeeded against an all-failing slot", i)
		}
	}
	if h := f.Health(); !h[0].BreakerOpen || h[0].ConsecutiveFailures != DefaultTripThreshold {
		t.Fatalf("health after %d failures = %+v, want an open breaker", DefaultTripThreshold, h[0])
	}
	if trips := reg.Snapshot().Counters["cluster_breaker_trips_total"]; trips != 1 {
		t.Errorf("cluster_breaker_trips_total = %d, want 1", trips)
	}

	// The stub now serves; the last-resort probe must close the breaker.
	got, err := f.Rank("q", "cori", 1, "")
	if err != nil {
		t.Fatalf("rank through half-open breaker: %v", err)
	}
	if len(got) != 1 || got[0].Name != "db-a" {
		t.Fatalf("half-open probe ranking = %+v", got)
	}
	if h := f.Health(); h[0].BreakerOpen || h[0].ConsecutiveFailures != 0 {
		t.Errorf("health after recovery = %+v, want a closed breaker and zero failures", h[0])
	}
}

func TestFrontOpenBreakerRoutesAroundPrimary(t *testing.T) {
	// Once the preferred replica's breaker is open, queries go to the
	// healthy replica first — and that routing counts as a failover even
	// though no RPC failed on the spot.
	reg := telemetry.NewRegistry()
	bad := &stubShard{rankErr: errors.New("shard wedged")}
	good := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.6}}}
	f := newTestFront(t, [][]string{{serveStub(t, bad), serveStub(t, good)}}, reg)

	for i := 0; i < DefaultTripThreshold; i++ {
		if _, err := f.Rank("q", "cori", 1, ""); err != nil {
			t.Fatalf("rank %d: %v (the healthy replica should have answered)", i, err)
		}
	}
	if h := f.Health(); !h[0].BreakerOpen {
		t.Fatalf("primary breaker still closed after %d failures: %+v", DefaultTripThreshold, h[0])
	}
	before := reg.Snapshot().Counters["cluster_failovers_total"]
	badCalls := bad.calls()
	if _, err := f.Rank("q", "cori", 1, ""); err != nil {
		t.Fatal(err)
	}
	if after := reg.Snapshot().Counters["cluster_failovers_total"]; after != before+1 {
		t.Errorf("cluster_failovers_total = %d, want %d (open primary routed around)", after, before+1)
	}
	if bad.calls() != badCalls {
		t.Errorf("open-breaker replica was still probed first (%d new calls)", bad.calls()-badCalls)
	}
}

func TestFrontInvalidErrorAbortsWithoutFailover(t *testing.T) {
	// A marked invalid-argument error is the client's mistake: every
	// replica would refuse identically, so the front must not fail over,
	// must not damage replica health, and must surface ErrInvalid.
	reg := telemetry.NewRegistry()
	bad := &stubShard{rankErr: errors.New(markInvalid + "unknown algorithm \"bogus\"")}
	second := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.5}}}
	f := newTestFront(t, [][]string{{serveStub(t, bad), serveStub(t, second)}}, reg)

	_, err := f.Rank("q", "bogus", 1, "")
	if !errors.Is(err, service.ErrInvalid) {
		t.Fatalf("rank error = %v, want service.ErrInvalid", err)
	}
	if second.calls() != 0 {
		t.Errorf("invalid error failed over to the second replica (%d calls)", second.calls())
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster_failovers_total"] != 0 {
		t.Errorf("cluster_failovers_total = %d, want 0", snap.Counters["cluster_failovers_total"])
	}
	if h := f.Health(); h[0].ConsecutiveFailures != 0 {
		t.Errorf("client mistake booked as replica failure: %+v", h[0])
	}
}

func TestFrontAllReplicasDown(t *testing.T) {
	s := &stubShard{rankErr: errors.New("wedged")}
	f := newTestFront(t, [][]string{{serveStub(t, s)}}, telemetry.NewRegistry())
	_, err := f.Rank("q", "cori", 1, "")
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("all 1 replicas failed")) {
		t.Errorf("error = %v, want the all-replicas-failed report", err)
	}
}

func TestFrontColdFederation(t *testing.T) {
	// Shards with no models contribute empty partials; an entirely cold
	// federation is ErrNoModels (503 over HTTP), not an empty 200.
	s0, s1 := &stubShard{}, &stubShard{}
	f := newTestFront(t, [][]string{{serveStub(t, s0)}, {serveStub(t, s1)}}, telemetry.NewRegistry())
	if _, err := f.Rank("q", "cori", 5, ""); !errors.Is(err, service.ErrNoModels) {
		t.Fatalf("cold-federation error = %v, want service.ErrNoModels", err)
	}

	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/rank?q=apple")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /rank on cold cluster = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("front response is missing X-Trace-Id")
	}
}

func TestFrontHTTPRegisterRoutesByRing(t *testing.T) {
	// POST /databases must land the name on every replica of exactly the
	// ring-owning slot, idempotently; DELETE must remove it and 404 only
	// once no replica knows it.
	stubs := [][]*stubShard{
		{{}, {}},
		{{}, {}},
	}
	slots := make([][]string, len(stubs))
	for i, reps := range stubs {
		for _, s := range reps {
			slots[i] = append(slots[i], serveStub(t, s))
		}
	}
	f := newTestFront(t, slots, telemetry.NewRegistry())
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/databases", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := post(`{"name":"db-x","addr":"127.0.0.1:1"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /databases = %d, want 201", resp.StatusCode)
	}
	var created struct {
		Registered string `json:"registered"`
		Slot       int    `json:"slot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	owner := f.Ring().Owner("db-x")
	if created.Slot != owner {
		t.Errorf("reported slot %d, ring owner is %d", created.Slot, owner)
	}
	for i, reps := range stubs {
		for j, s := range reps {
			if got, want := s.has("db-x"), i == owner; got != want {
				t.Errorf("slot %d replica %d has db-x = %v, want %v", i, j, got, want)
			}
		}
	}

	// Registering again is idempotent (heals partial failures).
	if resp := post(`{"name":"db-x","addr":"127.0.0.1:1"}`); resp.StatusCode != http.StatusCreated {
		t.Errorf("duplicate POST /databases = %d, want 201", resp.StatusCode)
	}

	// Unroutable names and missing addrs are the client's fault.
	for _, body := range []string{
		`{"name":"","addr":"127.0.0.1:1"}`,
		`{"name":"///","addr":"127.0.0.1:1"}`,
		`{"name":"db-y"}`,
	} {
		if resp := post(body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /databases %s = %d, want 400", body, resp.StatusCode)
		}
	}

	del := func(name string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/databases/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del("db-x"); code != http.StatusOK {
		t.Errorf("DELETE /databases/db-x = %d, want 200", code)
	}
	for _, s := range stubs[owner] {
		if s.has("db-x") {
			t.Error("db-x still registered on the owning slot after DELETE")
		}
	}
	if code := del("db-x"); code != http.StatusNotFound {
		t.Errorf("second DELETE /databases/db-x = %d, want 404", code)
	}
}

func TestFrontHTTPRankMatchesDirectRank(t *testing.T) {
	s := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.9}, {Name: "db-b", Score: 0.3}}}
	f := newTestFront(t, [][]string{{serveStub(t, s)}}, telemetry.NewRegistry())
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/rank?q=apple&alg=cori&k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /rank = %d, want 200", resp.StatusCode)
	}
	var got []netsearch.RankedDB
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want, err := f.Rank("apple", "cori", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HTTP ranking %+v != direct ranking %+v", got, want)
	}
}

func TestParseSlots(t *testing.T) {
	slots, err := ParseSlots("h1:9001|h2:9001, h1:9002|h2:9002 ,h3:9003")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"h1:9001", "h2:9001"}, {"h1:9002", "h2:9002"}, {"h3:9003"}}
	if !reflect.DeepEqual(slots, want) {
		t.Errorf("ParseSlots = %v, want %v", slots, want)
	}
	for _, bad := range []string{"", ",", "a:1,|"} {
		if _, err := ParseSlots(bad); err == nil {
			t.Errorf("ParseSlots(%q) accepted a broken spec", bad)
		}
	}
}

// TestFrontShardedEqualsSingleProcessGloss is the partitioning soundness
// check: gGlOSS scores are per-database local (unlike CORI's
// federation-wide cf and avg_cw), so sharding the federation must not
// change any database's score. The fused cluster ranking and the
// single-process ranking must agree score-for-score.
func TestFrontShardedEqualsSingleProcessGloss(t *testing.T) {
	dbs, err := experiments.Federation(5, 150, 31)
	if err != nil {
		t.Fatal(err)
	}
	sample := service.SampleOptions{Docs: 40, Seed: 7}

	single := service.New(analysis.Database(), nil)
	for _, db := range dbs {
		if err := single.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
		if _, err := single.Sample(db.Name, sample); err != nil {
			t.Fatal(err)
		}
	}

	// Two shards, databases assigned by the same ring the front routes by.
	shards := []*service.Service{service.New(analysis.Database(), nil), service.New(analysis.Database(), nil)}
	var addrs [][]string
	for _, svc := range shards {
		srv, err := ServeShard(svc, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, []string{srv.Addr()})
	}
	f := newTestFront(t, addrs, telemetry.NewRegistry())
	for _, db := range dbs {
		svc := shards[f.Ring().Owner(db.Name)]
		if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Sample(db.Name, sample); err != nil {
			t.Fatal(err)
		}
	}

	terms := experiments.TopicalTerms(dbs[0], dbs, 4)
	query := terms[0] + " " + terms[1]

	want, err := single.Rank(query, "gloss-sum", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Rank(query, "gloss-sum", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded ranking has %d rows, single-process has %d", len(got), len(want))
	}
	// Scores must agree exactly per database (tie order between equal
	// scores may differ across topologies, so compare as a score map and
	// check both rankings are sorted).
	wantScores := map[string]float64{}
	for _, r := range want {
		wantScores[r.Name] = r.Score
	}
	for i, r := range got {
		if s, ok := wantScores[r.Name]; !ok || s != r.Score {
			t.Errorf("sharded score for %s = %v, single-process = %v (present %v)", r.Name, r.Score, s, ok)
		}
		if i > 0 && got[i-1].Score < r.Score {
			t.Errorf("sharded ranking not sorted at %d: %v < %v", i, got[i-1].Score, r.Score)
		}
	}
}
