package cluster

// Chaos suite for the cluster tier: a shard replica is killed in the
// middle of a scattered rank query — its last frame truncated on the
// wire, its listener gone for redials — and the front must answer the
// query from the surviving replica with a bit-identical fused ranking.
// That identity is the payoff of deterministic sampling: replicas that
// sampled the same databases with the same seeds hold byte-identical
// models, so failover is invisible to the caller. Run with `make chaos`
// (always under -race in CI).

import (
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/faulty"
	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func TestChaosShardKillFailover(t *testing.T) {
	dbs, err := experiments.Federation(4, 150, 31)
	if err != nil {
		t.Fatal(err)
	}
	sample := service.SampleOptions{Docs: 40, Seed: 7}

	// Two slots, two replicas each, all real services.
	const nSlots, nReplicas = 2, 2
	svcs := make([][]*service.Service, nSlots)
	servers := make([][]*netsearch.Server, nSlots)
	addrs := make([][]string, nSlots)
	for s := 0; s < nSlots; s++ {
		for r := 0; r < nReplicas; r++ {
			svc := service.New(analysis.Database(), nil)
			srv, err := ServeShard(svc, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			svcs[s] = append(svcs[s], svc)
			servers[s] = append(servers[s], srv)
			addrs[s] = append(addrs[s], srv.Addr())
		}
	}

	// The victim is the first replica of whichever slot owns dbs[0], so
	// the killed shard is provably serving part of the answer. Its
	// connections are wrapped from the start: the first Write (the warm
	// query) passes, the second is truncated mid-frame — the query that
	// is on the wire when the shard dies.
	ring := NewRing(nSlots, 0, 0)
	victimSlot := ring.Owner(dbs[0].Name)
	victimAddr := addrs[victimSlot][0]
	dial := func(addr string) (net.Conn, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if addr == victimAddr {
			return faulty.WrapConn(c, faulty.ConnOptions{FailWriteCall: 2}), nil
		}
		return c, nil
	}

	reg := telemetry.NewRegistry()
	f, err := NewFront(addrs, Options{
		Net: netsearch.Options{
			DialFunc:  dial,
			Retry:     netsearch.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1},
			SleepFunc: func(time.Duration) {},
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	// Replicas of a slot hold the same databases and sample them with the
	// same options — deterministic sampling makes their models, and hence
	// their partial rankings, byte-identical.
	for _, db := range dbs {
		for _, svc := range svcs[f.Ring().Owner(db.Name)] {
			if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
				t.Fatal(err)
			}
			if _, err := svc.Sample(db.Name, sample); err != nil {
				t.Fatal(err)
			}
		}
	}

	terms := experiments.TopicalTerms(dbs[0], dbs, 4)
	query := terms[0] + " " + terms[1]

	baseline, err := f.Rank(query, "cori", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("warm query returned an empty ranking; the chaos scenario needs a real answer to protect")
	}

	// Kill the victim: the listener goes away (redials will be refused)
	// and the next frame on the warm connection dies mid-write.
	servers[victimSlot][0].Close()

	failoversBefore := reg.Snapshot().Counters["cluster_failovers_total"]
	for i := 0; i < DefaultTripThreshold+1; i++ {
		got, err := f.Rank(query, "cori", 0, "")
		if err != nil {
			t.Fatalf("rank %d after shard kill: %v", i, err)
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("rank %d after shard kill diverged:\n got %+v\nwant %+v", i, got, baseline)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["cluster_failovers_total"] <= failoversBefore {
		t.Errorf("cluster_failovers_total = %d, want > %d after killing a shard",
			snap.Counters["cluster_failovers_total"], failoversBefore)
	}
	if snap.Counters["cluster_breaker_trips_total"] == 0 {
		t.Error("the dead replica's breaker never tripped")
	}
	open := false
	for _, h := range f.Health() {
		if h.Addr == victimAddr && h.BreakerOpen {
			open = true
		}
	}
	if !open {
		t.Errorf("dead replica %s not marked open in %+v", victimAddr, f.Health())
	}
}
