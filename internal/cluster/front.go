package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/netsearch"
	"repro/internal/parallel"
	"repro/internal/selection"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// DefaultTripThreshold is the number of consecutive failed RPCs after
// which the front tier stops preferring a replica (its breaker opens).
// An open replica is still probed as a last resort — and any success
// closes the breaker again — mirroring the sampling fabric's half-open
// discipline.
const DefaultTripThreshold = 3

// Options configure a front tier.
type Options struct {
	// Net carries the fault tolerance every shard RPC inherits from the
	// netsearch fabric: per-op deadlines, retry/backoff policy, dial
	// hooks for fault injection, and metrics/logging.
	Net netsearch.Options
	// TripAfter is the per-replica breaker threshold (default
	// DefaultTripThreshold; < 0 disables the breaker).
	TripAfter int
	// Vnodes and Seed parameterize the placement ring (see NewRing).
	Vnodes int
	Seed   uint64
	// Metrics receives the scatter-path instruments:
	// cluster_scatter_seconds, cluster_shard_errors{shard=...},
	// cluster_failovers_total, cluster_breaker_trips_total. nil disables.
	Metrics *telemetry.Registry
	// Logger receives one line per failover and breaker transition. nil
	// discards.
	Logger *slog.Logger
	// Admission configures load shedding and graceful degradation on the
	// front's serving surface (GET /rank, POST /rank/batch). The zero
	// value disables admission control entirely — the default, so a front
	// upgraded across this feature behaves exactly as before.
	Admission admission.Config
	// CacheSize enables the front-tier result cache for single-query
	// rankings: a hit saves a whole scatter (one RPC per slot). 0 — the
	// default — disables it, so existing fronts behave exactly as before;
	// entries are keyed by (query, alg, k, topology epoch) and a
	// register/unregister through this front invalidates them all (see
	// cache.go).
	CacheSize int
}

// replica is one shard process inside a slot, with the front's local
// view of its health. The breaker state is the front tier's own (a
// stateless front must not depend on shard-side state to route around a
// dead shard); it feeds the shared telemetry registry.
type replica struct {
	slot int
	addr string

	mu     sync.Mutex
	client *netsearch.Client // lazily dialed; replaced when broken
	fails  int               // consecutive RPC failures
	open   bool              // breaker: deprioritize until a success
}

// ReplicaHealth is the front tier's view of one shard replica, exposed
// on GET /cluster for operators and tests.
type ReplicaHealth struct {
	Slot                int    `json:"slot"`
	Addr                string `json:"addr"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	BreakerOpen         bool   `json:"breaker_open,omitempty"`
}

// Front is a stateless scatter-gather tier over a sharded selectd
// cluster: it owns no models and no registry, only the ring geometry,
// the replica addresses, and transient health — so any number of fronts
// can serve the same cluster and a restarted front is warm instantly.
//
// A rank query is scattered to every slot over the netsearch fabric
// (slots partition the database set, so all of them own part of the
// answer), each slot answering from its first healthy replica, and the
// partial rankings are fused with selection.MergeWeighted into one
// top-k. Registration routes by ring placement to the owning slot's
// replicas. All methods are safe for concurrent use.
type Front struct {
	ring      *Ring
	reps      [][]*replica // [slot][replica], configured failover order
	tripAfter int
	netOpts   netsearch.Options
	reg       *telemetry.Registry
	logger    *slog.Logger
	traces    *telemetry.TraceIDs
	gate      *admission.Gate // nil unless Options.Admission enables it
	cache     *frontCache     // nil unless Options.CacheSize enables it
	epoch     atomic.Uint64   // topology epoch: bumped per register/unregister
}

// NewFront builds a front tier over the given slot topology: slots[i] is
// the replica address list of ring slot i, in failover-preference order.
func NewFront(slots [][]string, opts Options) (*Front, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("cluster: front needs at least one slot")
	}
	for i, reps := range slots {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: slot %d has no replica addresses", i)
		}
	}
	tripAfter := opts.TripAfter
	if tripAfter == 0 {
		tripAfter = DefaultTripThreshold
	}
	logger := opts.Logger
	if logger == nil {
		logger = telemetry.NopLogger()
	}
	f := &Front{
		ring:      NewRing(len(slots), opts.Vnodes, opts.Seed),
		reps:      make([][]*replica, len(slots)),
		tripAfter: tripAfter,
		netOpts:   opts.Net,
		reg:       opts.Metrics,
		logger:    logger,
		traces:    telemetry.NewTraceIDs("req"),
		gate:      admission.New(opts.Admission, opts.Metrics, "cluster"),
	}
	if opts.CacheSize > 0 {
		f.cache = newFrontCache(opts.CacheSize)
	}
	if f.netOpts.Metrics == nil {
		f.netOpts.Metrics = opts.Metrics
	}
	for i, addrs := range slots {
		f.reps[i] = make([]*replica, len(addrs))
		for j, addr := range addrs {
			f.reps[i][j] = &replica{slot: i, addr: addr}
		}
	}
	return f, nil
}

// ParseSlots parses a -shards topology spec: slots separated by commas,
// replicas within a slot separated by "|", e.g.
//
//	"h1:9001|h2:9001,h1:9002|h2:9002"
//
// is two slots with two replicas each.
func ParseSlots(spec string) ([][]string, error) {
	var slots [][]string
	for i, group := range strings.Split(spec, ",") {
		var reps []string
		for _, addr := range strings.Split(group, "|") {
			if addr = strings.TrimSpace(addr); addr != "" {
				reps = append(reps, addr)
			}
		}
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: slot %d of spec %q has no replica addresses", i, spec)
		}
		slots = append(slots, reps)
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("cluster: empty topology spec")
	}
	return slots, nil
}

// Ring exposes the placement ring (read-only; the ring is immutable).
func (f *Front) Ring() *Ring { return f.ring }

// Health returns the front's view of every replica, slot-major — the
// per-shard health that also feeds the telemetry registry.
func (f *Front) Health() []ReplicaHealth {
	var out []ReplicaHealth
	for _, reps := range f.reps {
		for _, r := range reps {
			r.mu.Lock()
			out = append(out, ReplicaHealth{
				Slot: r.slot, Addr: r.addr,
				ConsecutiveFailures: r.fails, BreakerOpen: r.open,
			})
			r.mu.Unlock()
		}
	}
	return out
}

// Close releases every dialed shard connection.
func (f *Front) Close() error {
	var firstErr error
	for _, reps := range f.reps {
		for _, r := range reps {
			r.mu.Lock()
			c := r.client
			r.client = nil
			r.mu.Unlock()
			if c != nil {
				if err := c.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// Rank scatters the query to every slot, gathers the partial rankings,
// and fuses them into a single top-k with selection.MergeWeighted (every
// slot weighted equally — slots partition the database set, so partial
// scores are already on the algorithm's own scale and pass through
// unscaled). Ties break by (slot, partial rank) — deterministic for a
// fixed topology, and invariant under failover because replicas of a
// slot serve identical database sets and deterministic models. trace
// correlates the scattered frames with the originating request.
//
// With Options.CacheSize set, completed rankings are served from the
// front's epoch-keyed LRU and concurrent identical scatters single-flight
// through it (cluster_select_cache_hits_total / _misses_total,
// cluster_rank_coalesced_total{scope="flight"}). Errors are never cached
// and reach only the callers already waiting on the failed scatter.
func (f *Front) Rank(query, alg string, k int, trace string) ([]netsearch.RankedDB, error) {
	if f.cache == nil {
		return f.rankScatter(query, alg, k, trace)
	}
	key := frontCacheKey{query: query, alg: alg, k: k, epoch: f.epoch.Load()}
	if val, ok := f.cache.probe(key); ok {
		f.reg.Counter("cluster_select_cache_hits_total").Inc()
		return append([]netsearch.RankedDB(nil), val...), nil
	}
	fl, leader := f.cache.join(key)
	if !leader {
		f.reg.Counter(`cluster_rank_coalesced_total{scope="flight"}`).Inc()
		<-fl.ready
		if fl.err != nil {
			return nil, fl.err
		}
		f.reg.Counter("cluster_select_cache_hits_total").Inc()
		return append([]netsearch.RankedDB(nil), fl.val...), nil
	}
	f.reg.Counter("cluster_select_cache_misses_total").Inc()
	fulfilled := false
	defer func() {
		// A panicking leader must still fulfill, or its followers would
		// block forever on a flight nobody owns.
		if r := recover(); r != nil {
			if !fulfilled {
				f.cache.fulfill(key, fl, nil, fmt.Errorf("cluster: rank panicked: %v", r))
			}
			panic(r)
		}
	}()
	val, err := f.rankScatter(query, alg, k, trace)
	f.cache.fulfill(key, fl, val, err)
	fulfilled = true
	if err != nil {
		return nil, err
	}
	return append([]netsearch.RankedDB(nil), val...), nil
}

// rankScatter is the uncached scatter-gather core behind Rank.
func (f *Front) rankScatter(query, alg string, k int, trace string) ([]netsearch.RankedDB, error) {
	defer f.reg.Timer("cluster_scatter_seconds")()
	partials, err := parallel.Map(len(f.reps), f.reps, func(slot int, _ []*replica) ([]netsearch.RankedDB, error) {
		return f.rankSlot(slot, query, alg, k, trace)
	})
	if err != nil {
		f.reg.Counter("cluster_scatter_errors_total").Inc()
		return nil, err
	}
	lists := make([][]selection.DocScore, len(partials))
	weights := make([]float64, len(partials))
	total := 0
	for slot, partial := range partials {
		list := make([]selection.DocScore, len(partial))
		for i, r := range partial {
			list[i] = selection.DocScore{Doc: i, Score: r.Score}
		}
		lists[slot] = list
		weights[slot] = 1
		total += len(partial)
	}
	if total == 0 {
		return nil, fmt.Errorf("cluster: %w", service.ErrNoModels)
	}
	merged, err := selection.MergeWeighted(lists, weights, k)
	if err != nil {
		// Unreachable by construction (lists and weights are built
		// together above); surfaced rather than swallowed all the same.
		return nil, fmt.Errorf("cluster: fuse: %w", err)
	}
	out := make([]netsearch.RankedDB, len(merged))
	for i, h := range merged {
		out[i] = netsearch.RankedDB{Name: partials[h.DB][h.Doc].Name, Score: h.Score}
	}
	return out, nil
}

// RankBatch scatters a whole batch of queries to every slot in one wire
// frame per slot, then fuses each query's partial rankings exactly as
// Rank does — same uniform weights, same tie-break, so a batched query's
// ranking is bit-identical to ranking it alone. The fan-out cost (slot
// RPCs, failover bookkeeping, merge scratch) is paid once per batch
// instead of once per query; duplicate queries within the batch scatter
// and fuse once, with every original position receiving a copy
// (cluster_rank_coalesced_total{scope="batch"}). Per-query problems (no
// index terms) ride in the matching item's Error; a cold federation is a
// whole-batch ErrNoModels, mirroring the single-query path.
func (f *Front) RankBatch(queries []string, alg string, k int, trace string) ([]netsearch.RankedBatch, error) {
	uniq, pos := dedupQueries(queries)
	if dups := len(queries) - len(uniq); dups > 0 {
		f.reg.Counter(`cluster_rank_coalesced_total{scope="batch"}`).Add(int64(dups))
	}
	items, err := f.rankBatchUnique(uniq, alg, k, trace)
	if err != nil {
		return nil, err
	}
	if len(uniq) == len(queries) {
		return items, nil
	}
	out := make([]netsearch.RankedBatch, len(queries))
	for i, u := range pos {
		out[i].Error = items[u].Error
		if items[u].Ranked != nil {
			out[i].Ranked = append([]netsearch.RankedDB(nil), items[u].Ranked...)
		}
	}
	return out, nil
}

// rankBatchUnique is the scatter-fuse core behind RankBatch, operating on
// an already-deduplicated query list.
func (f *Front) rankBatchUnique(queries []string, alg string, k int, trace string) ([]netsearch.RankedBatch, error) {
	defer f.reg.Timer("cluster_scatter_batch_seconds")()
	partials, err := parallel.Map(len(f.reps), f.reps, func(slot int, _ []*replica) ([]netsearch.RankedBatch, error) {
		return f.rankSlotBatch(slot, queries, alg, k, trace)
	})
	if err != nil {
		f.reg.Counter("cluster_scatter_errors_total").Inc()
		return nil, err
	}
	out := make([]netsearch.RankedBatch, len(queries))
	// Merge scratch recycled across the batch: per-slot DocScore lists, the
	// uniform weights, and the fused-hit buffer (MergeWeightedInto).
	lists := make([][]selection.DocScore, len(partials))
	weights := make([]float64, len(partials))
	for slot := range partials {
		weights[slot] = 1
	}
	var fused []selection.MergedHit
	grandTotal := 0
	for q := range queries {
		itemErr := ""
		total := 0
		for slot, batch := range partials {
			it := batch[q]
			if it.Error != "" {
				// Deterministic per-query refusal (every slot tokenizes the
				// same way); any slot's report stands for all of them.
				itemErr = it.Error
			}
			list := lists[slot][:0]
			for i, r := range it.Ranked {
				list = append(list, selection.DocScore{Doc: i, Score: r.Score})
			}
			lists[slot] = list
			total += len(it.Ranked)
		}
		grandTotal += total
		if itemErr != "" {
			out[q].Error = itemErr
			continue
		}
		if total == 0 {
			out[q].Error = fmt.Sprintf("cluster: %v", service.ErrNoModels)
			continue
		}
		fused, err = selection.MergeWeightedInto(fused[:0], lists, weights, k)
		if err != nil {
			// Unreachable by construction (lists and weights are parallel);
			// surfaced rather than swallowed all the same.
			return nil, fmt.Errorf("cluster: fuse: %w", err)
		}
		ranked := make([]netsearch.RankedDB, len(fused))
		for i, h := range fused {
			ranked[i] = netsearch.RankedDB{Name: partials[h.DB][q].Ranked[h.Doc].Name, Score: h.Score}
		}
		out[q].Ranked = ranked
	}
	if grandTotal == 0 {
		// Every query found nothing anywhere and none carried its own
		// error: the federation has no models — the whole batch fails the
		// way a single cold-federation Rank does (503, not 200-with-errors).
		allItemErrs := true
		for _, it := range out {
			if it.Error == "" || !strings.Contains(it.Error, service.ErrNoModels.Error()) {
				allItemErrs = false
				break
			}
		}
		if allItemErrs && len(out) > 0 {
			return nil, fmt.Errorf("cluster: %w", service.ErrNoModels)
		}
	}
	return out, nil
}

// rankSlot answers one slot's share of a scattered query.
func (f *Front) rankSlot(slot int, query, alg string, k int, trace string) ([]netsearch.RankedDB, error) {
	var ranked []netsearch.RankedDB
	err := f.callSlot(slot, func(c *netsearch.Client) error {
		var err error
		ranked, err = c.RankDBs(query, alg, k, trace)
		return err
	})
	if err != nil {
		return nil, err
	}
	return ranked, nil
}

// rankSlotBatch answers one slot's share of a scattered batch: the whole
// batch travels in one wire frame and the shard ranks it against one
// snapshot with one scratch, so failover (when it happens) retries the
// batch as a unit and never splits it across replicas with divergent
// model states.
func (f *Front) rankSlotBatch(slot int, queries []string, alg string, k int, trace string) ([]netsearch.RankedBatch, error) {
	var batch []netsearch.RankedBatch
	err := f.callSlot(slot, func(c *netsearch.Client) error {
		var err error
		batch, err = c.RankDBsBatch(queries, alg, k, trace)
		return err
	})
	if err != nil {
		return nil, err
	}
	return batch, nil
}

// callSlot runs one RPC against a slot, failing over across the slot's
// replicas: healthy ones first in configured order, then open-breaker
// ones as last-resort half-open probes. op runs once per attempted
// replica and captures its own result. A marked invalid-argument error
// aborts immediately — every replica would refuse the same way, so
// failover cannot help and the client gets its 400.
func (f *Front) callSlot(slot int, op func(c *netsearch.Client) error) error {
	reps := f.reps[slot]
	ordered := make([]*replica, 0, len(reps))
	var open []*replica
	for _, r := range reps {
		if r.breakerOpen() {
			open = append(open, r)
		} else {
			ordered = append(ordered, r)
		}
	}
	if len(ordered) > 0 && len(open) > 0 && open[0] == reps[0] {
		// The preferred replica sat behind an open breaker and was routed
		// around: that is a failover even if the healthy one answers.
		f.countFailover(slot, "breaker open")
	}
	ordered = append(ordered, open...)
	var lastErr error
	for i, r := range ordered {
		if i > 0 {
			f.countFailover(slot, fmt.Sprint(lastErr))
		}
		err := f.callReplica(r, op)
		if err == nil {
			return nil
		}
		if classified := classify(err); classified != err {
			// Marked by the shard as the client's mistake: deterministic
			// across replicas, so do not burn failovers or health on it.
			return classified
		}
		if errors.Is(err, netsearch.ErrStreamCanceled) {
			// The stream's consumer tore it down; the replica did nothing
			// wrong. No failover, no health penalty.
			return err
		}
		f.recordFailure(r, err)
		lastErr = err
	}
	return fmt.Errorf("cluster: slot %d: all %d replicas failed: %w", slot, len(ordered), lastErr)
}

// callReplica performs one RPC against one replica, dialing (or
// redialing a broken connection) as needed and updating breaker state.
func (f *Front) callReplica(r *replica, op func(c *netsearch.Client) error) error {
	c, err := f.connect(r)
	if err != nil {
		return err
	}
	if err := op(c); err != nil {
		return err
	}
	r.mu.Lock()
	r.fails = 0
	wasOpen := r.open
	r.open = false
	r.mu.Unlock()
	if wasOpen {
		f.logger.Info("cluster breaker closed", "slot", r.slot, "replica", r.addr)
	}
	return nil
}

// connect returns the replica's client, dialing on demand and replacing
// a client whose connection died beyond repair. Dialing is network I/O
// and runs outside the replica lock; a concurrent dial race is settled
// under the lock with the loser's connection closed.
func (f *Front) connect(r *replica) (*netsearch.Client, error) {
	r.mu.Lock()
	c := r.client
	var stale *netsearch.Client
	if c != nil && c.Broken() {
		stale, c = c, nil
		r.client = nil
	}
	r.mu.Unlock()
	if stale != nil {
		stale.Close() // already broken; closing is best-effort teardown
	}
	if c != nil {
		return c, nil
	}
	dialed, err := netsearch.DialWith(r.addr, f.netOpts)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.client != nil && !r.client.Broken() {
		winner := r.client
		r.mu.Unlock()
		dialed.Close() // losing half of a dial race; the winner is what matters
		return winner, nil
	}
	r.client = dialed
	r.mu.Unlock()
	return dialed, nil
}

// breakerOpen reports the replica's breaker state.
func (r *replica) breakerOpen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.open
}

// recordFailure books one failed RPC against the replica: the per-shard
// error counter, the consecutive-failure count, and — past the trip
// threshold — the breaker.
func (f *Front) recordFailure(r *replica, err error) {
	f.reg.Counter(`cluster_shard_errors{shard="` + shardLabel(r.slot, r.addr) + `"}`).Inc()
	r.mu.Lock()
	r.fails++
	tripped := f.tripAfter > 0 && r.fails >= f.tripAfter && !r.open
	if tripped {
		r.open = true
	}
	fails := r.fails
	r.mu.Unlock()
	if tripped {
		f.reg.Counter("cluster_breaker_trips_total").Inc()
		f.logger.Warn("cluster breaker tripped",
			"slot", r.slot, "replica", r.addr, "consecutive_failures", fails)
	}
	f.logger.Debug("cluster shard rpc failed", "slot", r.slot, "replica", r.addr, "err", err.Error())
}

// countFailover books one routed-around replica.
func (f *Front) countFailover(slot int, why string) {
	f.reg.Counter("cluster_failovers_total").Inc()
	f.logger.Info("cluster failover", "slot", slot, "reason", why)
}

// shardLabel renders a slot/replica pair as a bounded Prometheus label
// value (addresses come from the operator's topology spec, never from
// clients, so cardinality is the cluster size).
func shardLabel(slot int, addr string) string {
	return labelEscaper.Replace(fmt.Sprintf("s%d/%s", slot, addr))
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
