package cluster

// Tests for the streaming scatter-gather path (DESIGN.md §15): the fused
// stream must be bit-identical to the buffered batch (which is itself
// pinned to the single-query path), legacy shards must keep working via
// the netsearch server's fallback chain, client aborts must tear the
// scatter down without failover or health penalties, and the front cache
// must hit, coalesce, and invalidate on topology epochs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// collectStream runs RankBatchStream and records every emitted item with
// its index, verifying in-order delivery.
func collectStream(t *testing.T, f *Front, queries []string, alg string, k int) []netsearch.RankedBatch {
	t.Helper()
	items := make([]netsearch.RankedBatch, 0, len(queries))
	err := f.RankBatchStream(queries, alg, k, "", func(i int, item netsearch.RankedBatch) error {
		if i != len(items) {
			return fmt.Errorf("item %d arrived out of order (want %d)", i, len(items))
		}
		items = append(items, item)
		return nil
	})
	if err != nil {
		t.Fatalf("RankBatchStream: %v", err)
	}
	return items
}

// TestFrontStreamMatchesBatch: streamed fusion over the real wire must be
// bit-identical to the buffered RankBatch — same partials, same weights,
// same tie-break — with duplicate queries collapsing before the scatter.
func TestFrontStreamMatchesBatch(t *testing.T) {
	f, dbs := sampledCluster(t, 2)
	terms := experiments.TopicalTerms(dbs[0], dbs, 4)
	queries := []string{
		terms[0] + " " + terms[1],
		terms[2],
		terms[0] + " " + terms[1], // duplicate: must fuse once, emit twice
		"the and of",              // per-item error must stream too
		terms[3],
	}
	coalesced := f.reg.Counter(`cluster_rank_coalesced_total{scope="batch"}`)
	before := coalesced.Value()
	for _, alg := range []string{"cori", "gloss-sum"} {
		got := collectStream(t, f, queries, alg, 3)
		want, err := f.RankBatch(queries, alg, 3, "")
		if err != nil {
			t.Fatalf("RankBatch(%s): %v", alg, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d streamed items, %d buffered", alg, len(got), len(want))
		}
		for i := range want {
			if got[i].Error != want[i].Error {
				t.Fatalf("%s item %d: streamed error %q, buffered %q", alg, i, got[i].Error, want[i].Error)
			}
			if len(got[i].Ranked) != len(want[i].Ranked) {
				t.Fatalf("%s item %d: %d rows vs %d buffered", alg, i, len(got[i].Ranked), len(want[i].Ranked))
			}
			for j := range want[i].Ranked {
				if got[i].Ranked[j].Name != want[i].Ranked[j].Name ||
					math.Float64bits(got[i].Ranked[j].Score) != math.Float64bits(want[i].Ranked[j].Score) {
					t.Fatalf("%s item %d row %d: streamed %+v != buffered %+v",
						alg, i, j, got[i].Ranked[j], want[i].Ranked[j])
				}
			}
		}
	}
	// One duplicate per run, two algorithms, stream + buffered each: 4.
	if got := coalesced.Value() - before; got != 4 {
		t.Errorf(`scope="batch" coalesce counter grew %d, want 4`, got)
	}
}

// TestFrontStreamLegacyShardFallback: stub shards implement only the
// per-query DBRanker, so the netsearch server answers "rankstream" by
// looping — an old shard keeps working behind a streaming front.
func TestFrontStreamLegacyShardFallback(t *testing.T) {
	s0 := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.9}, {Name: "db-c", Score: 0.2}}}
	s1 := &stubShard{partial: []netsearch.RankedDB{{Name: "db-b", Score: 0.5}}}
	f := newTestFront(t, [][]string{{serveStub(t, s0)}, {serveStub(t, s1)}}, telemetry.NewRegistry())

	got := collectStream(t, f, []string{"apple pie", "plum"}, "cori", 2)
	want, err := f.RankBatch([]string{"apple pie", "plum"}, "cori", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Error != want[i].Error || len(got[i].Ranked) != len(want[i].Ranked) {
			t.Fatalf("item %d: streamed %+v, buffered %+v", i, got[i], want[i])
		}
		for j := range want[i].Ranked {
			if got[i].Ranked[j] != want[i].Ranked[j] {
				t.Errorf("item %d row %d: %+v != %+v", i, j, got[i].Ranked[j], want[i].Ranked[j])
			}
		}
	}
}

// TestFrontStreamColdFederation: the documented divergence — a federation
// with no models streams per-item errors (each wrapping ErrNoModels' text)
// instead of the buffered path's whole-batch refusal.
func TestFrontStreamColdFederation(t *testing.T) {
	s0, s1 := &stubShard{}, &stubShard{}
	f := newTestFront(t, [][]string{{serveStub(t, s0)}, {serveStub(t, s1)}}, telemetry.NewRegistry())

	items := collectStream(t, f, []string{"a", "b"}, "cori", 5)
	for i, it := range items {
		if it.Error == "" || !strings.Contains(it.Error, service.ErrNoModels.Error()) {
			t.Errorf("cold item %d = %+v, want a no-models error", i, it)
		}
	}
}

// TestFrontStreamBadAlgFailsWholeBatch: an invalid-argument refusal
// surfaces before the first emit, classifies to ErrInvalid, and burns no
// replica health.
func TestFrontStreamBadAlgFailsWholeBatch(t *testing.T) {
	f, _ := sampledCluster(t, 1)
	emitted := 0
	err := f.RankBatchStream([]string{"data", "more data"}, "bogus-alg", 0, "", func(int, netsearch.RankedBatch) error {
		emitted++
		return nil
	})
	if !errors.Is(err, service.ErrInvalid) {
		t.Errorf("bad-algorithm stream error = %v, want service.ErrInvalid", err)
	}
	if emitted != 0 {
		t.Errorf("%d items emitted before the whole-batch refusal", emitted)
	}
	if h := f.Health(); h[0].ConsecutiveFailures != 0 {
		t.Errorf("client mistake booked as replica failure: %+v", h[0])
	}
}

// TestFrontStreamEmitAbortNoFailover: a consumer abort (the HTTP layer's
// client hung up) cancels the scatter mid-stream — the abort error comes
// back as-is and the torn-down RPCs cost the replicas no health.
func TestFrontStreamEmitAbortNoFailover(t *testing.T) {
	f, dbs := sampledCluster(t, 2)
	terms := experiments.TopicalTerms(dbs[0], dbs, 3)
	queries := []string{terms[0], terms[1], terms[2]}
	abort := fmt.Errorf("%w: client hung up", netsearch.ErrStreamCanceled)
	err := f.RankBatchStream(queries, "cori", 2, "", func(i int, item netsearch.RankedBatch) error {
		if i == 0 {
			return abort
		}
		return nil
	})
	if !errors.Is(err, netsearch.ErrStreamCanceled) {
		t.Fatalf("aborted stream error = %v, want ErrStreamCanceled", err)
	}
	for _, h := range f.Health() {
		if h.ConsecutiveFailures != 0 {
			t.Errorf("caller abort penalized replica health: %+v", h)
		}
	}
	// The fabric must still serve: the teardown may not have wedged a
	// connection or marked a replica down.
	if _, err := f.Rank(queries[0], "cori", 2, ""); err != nil {
		t.Fatalf("rank after aborted stream: %v", err)
	}
}

// TestFrontHTTPRankBatchStream: NDJSON over the front's HTTP surface, done
// frame included.
func TestFrontHTTPRankBatchStream(t *testing.T) {
	f, dbs := sampledCluster(t, 2)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	terms := experiments.TopicalTerms(dbs[0], dbs, 2)

	queries := []string{terms[0] + " " + terms[1], "the and of"}
	body, err := json.Marshal(batchRankRequest{Queries: queries, Alg: "cori", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/rank/batch?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	type frame struct {
		Index   int                  `json:"index"`
		Ranked  []netsearch.RankedDB `json:"ranked"`
		Error   string               `json:"error"`
		Done    bool                 `json:"done"`
		Results int                  `json:"results"`
	}
	var frames []frame
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var fr frame
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, fr)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 2 items + done", len(frames))
	}
	if frames[0].Index != 0 || len(frames[0].Ranked) == 0 {
		t.Errorf("frame 0: %+v", frames[0])
	}
	if frames[1].Index != 1 || frames[1].Error == "" {
		t.Errorf("frame 1 should carry the stopword error: %+v", frames[1])
	}
	if !frames[2].Done || frames[2].Results != 2 {
		t.Errorf("done frame: %+v", frames[2])
	}

	// Whole-batch errors stay plain JSON with the buffered status.
	resp2 := postJSON(t, ts.URL+"/rank/batch?stream=1", batchRankRequest{Alg: "cori"}, nil)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty streamed batch: status %d, want 400", resp2.StatusCode)
	}
}

// TestFrontCacheHitsAndEpochInvalidation: with Options.CacheSize set, a
// repeated query is served without a scatter; any register/unregister
// routed through the front bumps its topology epoch and invalidates.
func TestFrontCacheHitsAndEpochInvalidation(t *testing.T) {
	s := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.9}}}
	reg := telemetry.NewRegistry()
	f, err := NewFront([][]string{{serveStub(t, s)}}, Options{Metrics: reg, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	hits := reg.Counter("cluster_select_cache_hits_total")
	misses := reg.Counter("cluster_select_cache_misses_total")

	first, err := f.Rank("apple", "cori", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 0 || misses.Value() != 1 {
		t.Fatalf("first rank: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	calls := s.calls()
	second, err := f.Rank("apple", "cori", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 1 || s.calls() != calls {
		t.Fatalf("second rank: hits=%d, shard calls %d -> %d (want no scatter)", hits.Value(), calls, s.calls())
	}
	if len(first) != len(second) || first[0] != second[0] {
		t.Fatalf("cache hit differs: %+v vs %+v", first, second)
	}
	// Returned slices are copies, not the cache's backing array.
	second[0].Name = "mutated"
	if again, _ := f.Rank("apple", "cori", 2, ""); again[0].Name != "db-a" {
		t.Fatal("caller mutation reached the front cache")
	}

	// A registration routed through this front bumps the epoch: the same
	// query misses and scatters again.
	if err := f.registerOnSlot(0, "db-new", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	missesBefore := misses.Value()
	if _, err := f.Rank("apple", "cori", 2, ""); err != nil {
		t.Fatal(err)
	}
	if misses.Value() != missesBefore+1 {
		t.Fatalf("post-register rank did not miss: misses=%d, want %d", misses.Value(), missesBefore+1)
	}
	// So does an unregister — even though the entry count is unchanged.
	if err := f.unregisterOnSlot(0, "db-new"); err != nil {
		t.Fatal(err)
	}
	missesBefore = misses.Value()
	if _, err := f.Rank("apple", "cori", 2, ""); err != nil {
		t.Fatal(err)
	}
	if misses.Value() != missesBefore+1 {
		t.Fatalf("post-unregister rank did not miss: misses=%d, want %d", misses.Value(), missesBefore+1)
	}
}

// TestFrontCacheFlightErrors: a failed scatter reaches only the followers
// already waiting on it — never the LRU, never a later caller.
func TestFrontCacheFlightErrors(t *testing.T) {
	c := newFrontCache(4)
	key := frontCacheKey{query: "q", alg: "cori", k: 2}
	fl, leader := c.join(key)
	if !leader {
		t.Fatal("first join not leader")
	}
	c.fulfill(key, fl, nil, errors.New("scatter failed"))
	if _, ok := c.probe(key); ok {
		t.Fatal("errored scatter was cached")
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after an error, want 0", c.Len())
	}
	if _, leader := c.join(key); !leader {
		t.Fatal("failed flight stayed joinable")
	}
}
