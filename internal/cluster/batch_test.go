package cluster

// Tests for the batched scatter-gather path: bit-identical fusion against
// the single-query path, the wire fallback for shards that only rank one
// query at a time, per-item error propagation, cold-federation handling,
// and admission control on the front's serving surface.

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/admission"
	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// sampledCluster builds a front over nShards real shards, registers a
// small federation by ring placement, and samples every database — the
// full wire stack with learned models.
func sampledCluster(t *testing.T, nShards int) (*Front, []*experiments.FederationDB) {
	t.Helper()
	dbs, err := experiments.Federation(4, 150, 31)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*service.Service, nShards)
	var addrs [][]string
	for i := range shards {
		shards[i] = service.New(analysis.Database(), nil)
		srv, err := ServeShard(shards[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, []string{srv.Addr()})
	}
	f := newTestFront(t, addrs, telemetry.NewRegistry())
	sample := service.SampleOptions{Docs: 40, Seed: 7}
	for _, db := range dbs {
		svc := shards[f.Ring().Owner(db.Name)]
		if err := svc.RegisterLocal(db.Name, db.Index); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Sample(db.Name, sample); err != nil {
			t.Fatal(err)
		}
	}
	return f, dbs
}

// TestFrontBatchMatchesSequential: a query ranked inside a batch must
// fuse to the bit the same as the query ranked alone — same partials,
// same uniform weights, same tie-break.
func TestFrontBatchMatchesSequential(t *testing.T) {
	f, dbs := sampledCluster(t, 2)
	terms := experiments.TopicalTerms(dbs[0], dbs, 4)
	queries := []string{
		terms[0] + " " + terms[1],
		terms[2],
		terms[0] + " " + terms[1], // repeats must not perturb merge-scratch reuse
		terms[3] + " " + terms[0],
	}
	for _, alg := range []string{"cori", "gloss-sum"} {
		batch, err := f.RankBatch(queries, alg, 3, "")
		if err != nil {
			t.Fatalf("RankBatch(%s): %v", alg, err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("got %d items for %d queries", len(batch), len(queries))
		}
		for i, q := range queries {
			want, err := f.Rank(q, alg, 3, "")
			if err != nil {
				t.Fatalf("Rank(%q, %s): %v", q, alg, err)
			}
			got := batch[i]
			if got.Error != "" {
				t.Fatalf("item %d unexpected error %q", i, got.Error)
			}
			if len(got.Ranked) != len(want) {
				t.Fatalf("item %d: %d rows vs %d sequential", i, len(got.Ranked), len(want))
			}
			for j := range want {
				if got.Ranked[j].Name != want[j].Name ||
					math.Float64bits(got.Ranked[j].Score) != math.Float64bits(want[j].Score) {
					t.Fatalf("item %d row %d: batch %+v != sequential %+v", i, j, got.Ranked[j], want[j])
				}
			}
		}
	}
}

// TestFrontBatchLegacyShardFallback: stub shards implement only the
// per-query DBRanker, so the netsearch server answers "rankbatch" by
// looping — an old shard keeps working behind a new front, and the fused
// result still matches the single-query path.
func TestFrontBatchLegacyShardFallback(t *testing.T) {
	s0 := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.9}, {Name: "db-c", Score: 0.2}}}
	s1 := &stubShard{partial: []netsearch.RankedDB{{Name: "db-b", Score: 0.5}}}
	f := newTestFront(t, [][]string{{serveStub(t, s0)}, {serveStub(t, s1)}}, telemetry.NewRegistry())

	batch, err := f.RankBatch([]string{"apple pie", "plum"}, "cori", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		want, err := f.Rank("q", "cori", 2, "") // stubs ignore the query text
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Error != "" || len(batch[i].Ranked) != len(want) {
			t.Fatalf("item %d = %+v, want %d rows", i, batch[i], len(want))
		}
		for j := range want {
			if batch[i].Ranked[j] != want[j] {
				t.Errorf("item %d row %d = %+v, want %+v", i, j, batch[i].Ranked[j], want[j])
			}
		}
	}
}

func TestFrontBatchPerItemErrors(t *testing.T) {
	f, dbs := sampledCluster(t, 2)
	terms := experiments.TopicalTerms(dbs[0], dbs, 2)
	batch, err := f.RankBatch([]string{terms[0], "the and of"}, "cori", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Error != "" || len(batch[0].Ranked) == 0 {
		t.Errorf("item 0 should rank: %+v", batch[0])
	}
	if batch[1].Error == "" || batch[1].Ranked != nil {
		t.Errorf("stopword-only query should fail per-item: %+v", batch[1])
	}
}

func TestFrontBatchColdFederationAndBadAlg(t *testing.T) {
	s0, s1 := &stubShard{}, &stubShard{}
	f := newTestFront(t, [][]string{{serveStub(t, s0)}, {serveStub(t, s1)}}, telemetry.NewRegistry())
	if _, err := f.RankBatch([]string{"a", "b"}, "cori", 5, ""); !errors.Is(err, service.ErrNoModels) {
		t.Errorf("cold-federation batch error = %v, want service.ErrNoModels", err)
	}

	// A real shard refuses a bogus algorithm with a marked EINVAL, which
	// must classify back to ErrInvalid without burning failovers.
	fr, _ := sampledCluster(t, 1)
	if _, err := fr.RankBatch([]string{"data"}, "bogus-alg", 0, ""); !errors.Is(err, service.ErrInvalid) {
		t.Errorf("bad-algorithm batch error = %v, want service.ErrInvalid", err)
	}
	if h := fr.Health(); h[0].ConsecutiveFailures != 0 {
		t.Errorf("client mistake booked as replica failure: %+v", h[0])
	}
}

func TestFrontHTTPRankBatch(t *testing.T) {
	f, dbs := sampledCluster(t, 2)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	terms := experiments.TopicalTerms(dbs[0], dbs, 2)

	var out batchRankResponse
	resp := postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{terms[0] + " " + terms[1], "the and of"}, Alg: "cori", K: 3}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	if len(out.Results) != 2 || len(out.Results[0].Ranked) == 0 || out.Results[1].Error == "" {
		t.Fatalf("batch response: %+v", out)
	}

	if resp := postJSON(t, ts.URL+"/rank/batch", batchRankRequest{Alg: "cori"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: make([]string, service.MaxBatchQueries+1), Alg: "cori"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversize batch: status %d, want 400", resp.StatusCode)
	}
	get, err := http.Get(ts.URL + "/rank/batch")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /rank/batch: status %d, want 405", get.StatusCode)
	}
}

// TestFrontAdmissionOverload: the front sheds deterministically at its
// in-flight cap with 429 + Retry-After, and serves normally under it.
func TestFrontAdmissionOverload(t *testing.T) {
	s := &stubShard{partial: []netsearch.RankedDB{{Name: "db-a", Score: 0.9}}}
	reg := telemetry.NewRegistry()
	f, err := NewFront([][]string{{serveStub(t, s)}}, Options{
		Metrics:   reg,
		Admission: admission.Config{MaxInFlight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	shedCap := reg.Counter(`cluster_shed_total{reason="inflight"}`)

	ticket, ok := f.gate.Admit()
	if !ok {
		t.Fatal("idle gate refused the first admit")
	}
	resp, err := http.Get(ts.URL + "/rank?q=apple&alg=cori")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated rank: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp = postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{"apple"}, Alg: "cori"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d, want 429", resp.StatusCode)
	}
	// Retry-After parity: the batch shed speaks the same overload contract
	// as the single path.
	if resp.Header.Get("Retry-After") == "" {
		t.Error("batch 429 without a Retry-After header")
	}
	// A streamed batch sheds identically — the refusal happens before any
	// frame, so the client still gets a plain 429.
	resp = postJSON(t, ts.URL+"/rank/batch?stream=1",
		batchRankRequest{Queries: []string{"apple"}, Alg: "cori"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated streamed batch: status %d, Retry-After %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if shedCap.Value() != 3 {
		t.Fatalf("shed counter = %d, want 3", shedCap.Value())
	}

	ticket.Release()
	resp, err = http.Get(ts.URL + "/rank?q=apple&alg=cori")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release rank: status %d", resp.StatusCode)
	}
	if shedCap.Value() != 3 {
		t.Errorf("request under the limit shed: counter = %d, want 3", shedCap.Value())
	}
}

func TestFrontAdmissionDegradesK(t *testing.T) {
	s := &stubShard{partial: []netsearch.RankedDB{
		{Name: "db-a", Score: 0.9}, {Name: "db-b", Score: 0.5}, {Name: "db-c", Score: 0.2},
	}}
	f, err := NewFront([][]string{{serveStub(t, s)}}, Options{
		Metrics:   telemetry.NewRegistry(),
		Admission: admission.Config{MaxInFlight: 8, DegradeAt: 1, DegradeK: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)

	var ranked []netsearch.RankedDB
	resp := getJSON(t, ts.URL+"/rank?q=apple&alg=cori&k=3", &ranked)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded rank: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Degraded-K") != "1" || len(ranked) != 1 {
		t.Errorf("degraded rank: X-Degraded-K=%q rows=%d, want 1 and 1",
			resp.Header.Get("X-Degraded-K"), len(ranked))
	}
	var batch batchRankResponse
	resp = postJSON(t, ts.URL+"/rank/batch",
		batchRankRequest{Queries: []string{"apple"}, Alg: "cori", K: 3}, &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded batch: status %d", resp.StatusCode)
	}
	if !batch.Degraded || len(batch.Results[0].Ranked) != 1 {
		t.Errorf("degraded batch: %+v", batch)
	}
}
