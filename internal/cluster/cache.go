package cluster

// frontCache is the front tier's result cache and in-flight coalescer for
// single-query rankings (DESIGN.md §15). A front-tier cache hit saves an
// entire scatter — one RPC per slot — which is why it exists even though
// every shard already has its own rank cache. The key carries a front-
// local topology epoch, bumped on every register/unregister routed through
// this front, so a placement change invalidates the whole cache at the
// cost of one atomic increment; stale entries age out of the LRU. The
// epoch is best-effort by design: a registration routed through a
// *different* front is invisible here, exactly as stale as the shards' own
// epoch-keyed caches already allow, and bounded by the LRU's size.
//
// The flights map single-flights concurrent identical scatters the same
// way the service coalescer does: a flight lives only while its leader
// scatters, fulfill retires it, errors reach only the followers that were
// already waiting — never a later, unrelated caller.

import (
	"sync"

	"repro/internal/netsearch"
)

// DefaultFrontCacheSize is the capacity -front-cache enables by default.
const DefaultFrontCacheSize = 1024

type frontCacheKey struct {
	// query is the raw query string: the front has no analyzer, so spelling
	// variants miss here and coalesce shard-side on the term key instead.
	query string
	alg   string
	k     int
	epoch uint64
}

type frontFlight struct {
	ready chan struct{}
	val   []netsearch.RankedDB
	err   error
}

type frontCacheEntry struct {
	key frontCacheKey
	val []netsearch.RankedDB

	prev, next *frontCacheEntry // LRU list, head = most recent
}

type frontCache struct {
	mu      sync.Mutex
	cap     int
	entries map[frontCacheKey]*frontCacheEntry
	head    *frontCacheEntry
	tail    *frontCacheEntry
	flights map[frontCacheKey]*frontFlight
}

func newFrontCache(capacity int) *frontCache {
	return &frontCache{
		cap:     capacity,
		entries: make(map[frontCacheKey]*frontCacheEntry, capacity),
		flights: make(map[frontCacheKey]*frontFlight),
	}
}

// probe returns the cached fused ranking for key, refreshed to most-
// recently-used. The returned slice is shared; callers copy before handing
// it out.
//
//lint:hotpath
func (c *frontCache) probe(key frontCacheKey) ([]netsearch.RankedDB, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil, false
	}
	c.moveToFront(e)
	return e.val, true
}

// join returns the in-flight scatter for key and whether the caller leads
// it. A leader must call fulfill exactly once.
func (c *frontCache) join(key frontCacheKey) (*frontFlight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.flights[key]; f != nil {
		return f, false
	}
	f := &frontFlight{ready: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// fulfill publishes the leader's scatter result, retires the flight, and —
// on success — admits the result to the LRU.
func (c *frontCache) fulfill(key frontCacheKey, f *frontFlight, val []netsearch.RankedDB, err error) {
	f.val, f.err = val, err
	c.mu.Lock()
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	if err == nil {
		c.addLocked(key, val)
	}
	c.mu.Unlock()
	close(f.ready)
}

// Len reports the number of cached entries.
func (c *frontCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// addLocked installs (or refreshes) a completed result. Caller holds c.mu.
func (c *frontCache) addLocked(key frontCacheKey, val []netsearch.RankedDB) {
	if e := c.entries[key]; e != nil {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &frontCacheEntry{key: key, val: val}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		c.evict(c.tail)
	}
}

// evict unlinks e. Caller holds c.mu.
func (c *frontCache) evict(e *frontCacheEntry) {
	delete(c.entries, e.key)
	c.unlink(e)
}

func (c *frontCache) unlink(e *frontCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *frontCache) pushFront(e *frontCacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *frontCache) moveToFront(e *frontCacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
