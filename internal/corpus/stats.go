package corpus

import "repro/internal/analysis"

// Stats summarizes a corpus the way Table 1 of the paper does.
type Stats struct {
	Name        string
	Bytes       int64
	Docs        int
	UniqueTerms int
	TotalTerms  int64
	Topics      int
}

// ComputeStats tabulates a Table 1 row for docs, counting terms under the
// given analyzer (the paper's corpus figures describe the raw collections,
// so callers typically pass analysis.Raw()).
func ComputeStats(name string, docs []Document, an analysis.Analyzer) Stats {
	s := Stats{Name: name, Docs: len(docs)}
	vocab := make(map[string]struct{})
	topics := make(map[int]struct{})
	for i := range docs {
		d := &docs[i]
		s.Bytes += int64(len(d.Text)) + int64(len(d.Title))
		topics[d.Topic] = struct{}{}
		for _, t := range an.Tokens(d.Text) {
			s.TotalTerms++
			vocab[t] = struct{}{}
		}
	}
	s.UniqueTerms = len(vocab)
	s.Topics = len(topics)
	return s
}
