package corpus

// Built-in profiles reproduce the structure of the paper's test corpora
// (Table 1) at a default scale that keeps the full experiment suite
// runnable on one machine. Document counts scale with corpus.Scaled;
// `-scale 1` in cmd/experiments restores paper-size collections.
//
// The paper's corpora, for reference (Table 1):
//
//	CACM      2 MB    3,204 docs      homogeneous scientific abstracts
//	WSJ88   104 MB   39,904 docs      newspaper articles (one source)
//	TREC-123 3.2 GB 1,078,166 docs    heterogeneous: news, abstracts, gov docs
//
// Heterogeneity ordering (CACM < WSJ88 < TREC-123) and roughly 1.5 orders of
// magnitude size spread are preserved; those two properties drive every
// size-dependent result in the paper (§5, Figure 2, Table 2).

// DefaultWSJ88Scale and DefaultTREC123Scale are the document-count scale
// factors applied to the paper's corpus sizes by the default profiles.
const (
	DefaultWSJ88Scale   = 0.30  // 39,904 -> 11,971
	DefaultTREC123Scale = 0.045 // 1,078,166 -> 48,517
)

// CACM mirrors the small, homogeneous collection of scientific titles and
// abstracts: one topic, short documents, small vocabulary. Kept at full
// paper size (3,204 documents).
func CACM() Profile {
	return Profile{
		Name:            "CACM",
		Docs:            3204,
		SharedVocabSize: 2500,
		SharedProb:      0.55,
		Topics: []TopicSpec{
			{Name: "computing", VocabSize: 9000, Weight: 1},
		},
		DocLenMu:    4.36, // mean ~100 tokens: title + abstract
		DocLenSigma: 0.60,
		MinDocLen:   10,
		ZipfS:       1.35,
		ZipfV:       2,
		MorphProb:   0.18,
		Seed:        0xCAC0,
	}
}

// WSJ88 mirrors a medium newspaper collection: one publication, a handful of
// desks (topics), longer articles, medium vocabulary.
func WSJ88() Profile {
	return Profile{
		Name:            "WSJ88",
		Docs:            11971,
		SharedVocabSize: 6000,
		SharedProb:      0.50,
		Topics: []TopicSpec{
			{Name: "markets", VocabSize: 30000, Weight: 4},
			{Name: "politics", VocabSize: 30000, Weight: 3},
			{Name: "business", VocabSize: 30000, Weight: 3},
			{Name: "world", VocabSize: 30000, Weight: 2},
		},
		DocLenMu:    5.34, // mean ~250 tokens
		DocLenSigma: 0.60,
		MinDocLen:   30,
		ZipfS:       1.35,
		ZipfV:       2,
		MorphProb:   0.18,
		Seed:        0x5319,
	}
}

// TREC123 mirrors the large, heterogeneous TREC CD 1-3 collection:
// many distinct sources with disjoint topical sub-languages.
func TREC123() Profile {
	// TREC CDs 1-3 contain the Wall Street Journal, so four of the topics
	// are WSJ88's own (topic vocabularies are salted by name and therefore
	// shared across corpora with the same topic name) — that overlap is
	// what lets the paper draw "other language model" query terms from
	// TREC-123 when sampling WSJ88 (§5.2).
	topics := []TopicSpec{
		{Name: "markets", VocabSize: 30000, Weight: 3},
		{Name: "politics", VocabSize: 30000, Weight: 2},
		{Name: "business", VocabSize: 30000, Weight: 2},
		{Name: "world", VocabSize: 30000, Weight: 2},
		{Name: "newswire", VocabSize: 26000, Weight: 4},
		{Name: "federal-register", VocabSize: 26000, Weight: 4},
		{Name: "patents", VocabSize: 26000, Weight: 2},
		{Name: "abstracts", VocabSize: 26000, Weight: 3},
		{Name: "energy", VocabSize: 26000, Weight: 2},
		{Name: "medicine", VocabSize: 26000, Weight: 2},
		{Name: "computing", VocabSize: 26000, Weight: 2},
		{Name: "agriculture", VocabSize: 26000, Weight: 1},
	}
	return Profile{
		Name:            "TREC123",
		Docs:            48517,
		SharedVocabSize: 8000,
		SharedProb:      0.45,
		Topics:          topics,
		DocLenMu:        5.20, // mean ~220 tokens
		DocLenSigma:     0.65,
		MinDocLen:       20,
		ZipfS:           1.35,
		ZipfV:           2,
		MorphProb:       0.18,
		Seed:            0x73EC,
	}
}

// Support mirrors the Microsoft Customer Support database of §7: a
// single-domain technical knowledge base whose frequent content terms are
// the product names of Table 4 (seeded at the top topical ranks).
func Support() Profile {
	return Profile{
		Name:            "Support",
		Docs:            5000,
		SharedVocabSize: 4000,
		SharedProb:      0.45,
		Topics: []TopicSpec{
			{
				Name:      "support",
				VocabSize: 22000,
				Weight:    1,
				SeedWords: Table4Terms(),
			},
		},
		DocLenMu:    5.00, // mean ~165 tokens: KB articles
		DocLenSigma: 0.55,
		MinDocLen:   20,
		ZipfS:       1.35,
		ZipfV:       2,
		MorphProb:   0.10,
		Seed:        0x5077,
	}
}

// Table4Terms returns the 50 content terms the paper reports as the top
// avg-tf words of the sampled Microsoft Customer Support database (Table 4),
// in the paper's order.
func Table4Terms() []string {
	return []string{
		"project", "microsoft", "access", "set", "command",
		"excel", "object", "print", "application", "following",
		"office", "user", "data", "product", "windows",
		"works", "visual", "internet", "menu", "new",
		"server", "beta", "error", "text", "settings",
		"word", "service", "box", "software", "example",
		"table", "basic", "articles", "code", "version",
		"printer", "file", "setup", "name", "message",
		"foxpro", "nt", "mail", "system", "information",
		"database", "field", "users", "dialog", "select",
	}
}

// Profiles returns the three Table 1 corpora in paper order.
func Profiles() []Profile {
	return []Profile{CACM(), WSJ88(), TREC123()}
}
