// Package corpus provides the synthetic full-text corpora that stand in for
// the paper's test collections (CACM, WSJ88, TREC-123, and the Microsoft
// Customer Support database of §7).
//
// We do not have the original collections, but every result in the paper is
// a function of term-frequency *structure* — Zipf-distributed term
// frequencies, Heaps-law vocabulary growth, document-length skew, and
// topical (in)homogeneity — not of English semantics. The generator
// reproduces that structure: documents draw tokens from a mixture of a
// shared Zipfian vocabulary (whose head is real English function words, so
// stopword processing is meaningful) and a per-topic Zipfian vocabulary
// (disjoint across topics, so heterogeneous corpora have genuinely distinct
// sub-languages). Morphological suffixes are attached stochastically so that
// stemming merges variants, as it does in real text.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/randx"
)

// Document is a retrievable full-text item. The sampler sees only Text (and
// Title); Topic is generator metadata used by tests.
type Document struct {
	ID    int
	Title string
	Text  string
	Topic int
}

// TopicSpec describes one topical sub-language of a corpus.
type TopicSpec struct {
	// Name labels the topic (appears in document titles).
	Name string
	// VocabSize is the number of distinct topic-specific terms available.
	VocabSize int
	// Weight is the relative probability a document is about this topic.
	Weight float64
	// SeedWords, if non-empty, occupy the most frequent ranks of the topic
	// vocabulary. The Support profile seeds the §7 product terms this way.
	SeedWords []string
}

// Profile is a reproducible recipe for a synthetic corpus.
type Profile struct {
	// Name identifies the profile in reports (Table 1 rows).
	Name string
	// Docs is the number of documents to generate.
	Docs int
	// SharedVocabSize is the size of the corpus-wide shared vocabulary. Its
	// most frequent ranks are real English function words.
	SharedVocabSize int
	// SharedProb is the probability that a token is drawn from the shared
	// vocabulary rather than the document's topic vocabulary.
	SharedProb float64
	// Topics lists the topical sub-languages; one topic per document.
	Topics []TopicSpec
	// DocLenMu and DocLenSigma parameterize the log-normal distribution of
	// document token counts; MinDocLen clamps the left tail.
	DocLenMu, DocLenSigma float64
	MinDocLen             int
	// ZipfS and ZipfV parameterize term-frequency skew (exponent and
	// Mandelbrot shift) for both shared and topic vocabularies.
	ZipfS, ZipfV float64
	// MorphProb is the probability a generated token carries an inflectional
	// suffix (-s, -ed, -ing, ...), giving the stemmer real work.
	MorphProb float64
	// Burstiness models word adaptation in real text: a word that occurs
	// once in a document is likely to recur (Church & Gale). It is the
	// mean number of occurrences per distinct word within a document;
	// values <= 1 disable it (every token drawn independently). Real prose
	// sits around 1.5–3.
	Burstiness float64
	// Seed makes generation fully deterministic.
	Seed uint64
}

// Validate reports the first problem with the profile, or nil.
func (p Profile) Validate() error {
	switch {
	case p.Docs <= 0:
		return fmt.Errorf("corpus %q: Docs must be positive, got %d", p.Name, p.Docs)
	case p.SharedVocabSize <= 0:
		return fmt.Errorf("corpus %q: SharedVocabSize must be positive", p.Name)
	case len(p.Topics) == 0:
		return fmt.Errorf("corpus %q: need at least one topic", p.Name)
	case p.SharedProb < 0 || p.SharedProb > 1:
		return fmt.Errorf("corpus %q: SharedProb %f outside [0,1]", p.Name, p.SharedProb)
	case p.ZipfS <= 1 || p.ZipfV < 1:
		return fmt.Errorf("corpus %q: Zipf parameters require S > 1, V >= 1", p.Name)
	}
	total := 0.0
	for i, t := range p.Topics {
		if t.VocabSize <= 0 {
			return fmt.Errorf("corpus %q: topic %d has non-positive vocabulary", p.Name, i)
		}
		if t.Weight <= 0 {
			return fmt.Errorf("corpus %q: topic %d has non-positive weight", p.Name, i)
		}
		total += t.Weight
	}
	if total <= 0 {
		return fmt.Errorf("corpus %q: topic weights sum to zero", p.Name)
	}
	return nil
}

// Scaled returns a copy of p with document count multiplied by f (minimum 1
// document). Vocabulary sizes are left alone: a sample of a collection sees
// the same underlying language.
func Scaled(p Profile, f float64) Profile {
	p.Docs = int(float64(p.Docs) * f)
	if p.Docs < 1 {
		p.Docs = 1
	}
	return p
}

// Generate materializes the corpus. The same profile always yields the same
// documents.
func (p Profile) Generate() ([]Document, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := randx.New(p.Seed)

	shared := newVocab(sharedHead(), p.SharedVocabSize, "sx", 0)
	sharedZipf := randx.NewZipf(root.Fork(1), p.ZipfS, p.ZipfV, uint64(p.SharedVocabSize-1))

	topicVocabs := make([]*vocab, len(p.Topics))
	topicZipfs := make([]*randx.Zipf, len(p.Topics))
	cumWeights := make([]float64, len(p.Topics))
	sum := 0.0
	for i, t := range p.Topics {
		// Salt topical vocabularies by the topic *name*, so same-named
		// topics share a sub-language across corpora (CACM "computing"
		// overlaps TREC-123 "computing") while differently named topics
		// are vocabulary-disjoint even across independently generated
		// databases (the federation experiments rely on this).
		topicVocabs[i] = newVocab(t.SeedWords, t.VocabSize, "t", nameSalt(t.Name))
		topicZipfs[i] = randx.NewZipf(root.Fork(uint64(100+i)), p.ZipfS, p.ZipfV, uint64(t.VocabSize-1))
		sum += t.Weight
		cumWeights[i] = sum
	}

	docRng := root.Fork(2)
	lenRng := root.Fork(3)
	morphRng := root.Fork(4)

	docs := make([]Document, p.Docs)
	var b strings.Builder
	for d := 0; d < p.Docs; d++ {
		// Pick the document's topic by mixture weight.
		topic := len(p.Topics) - 1
		r := docRng.Float64() * sum
		for i, cw := range cumWeights {
			if r < cw {
				topic = i
				break
			}
		}
		n := int(lenRng.LogNormal(p.DocLenMu, p.DocLenSigma))
		if n < p.MinDocLen {
			n = p.MinDocLen
		}
		draw := func() string {
			var w string
			inflectable := true
			if docRng.Float64() < p.SharedProb {
				rank := int(sharedZipf.Uint64())
				w = shared.word(rank)
				// Function words (the shared head) do not inflect; "thes"
				// and "ofing" are not English.
				inflectable = rank >= len(shared.head)
			} else {
				rank := int(topicZipfs[topic].Uint64())
				w = topicVocabs[topic].word(rank)
				// Seeded head words (e.g. product names) do not inflect
				// either.
				inflectable = rank >= len(topicVocabs[topic].head)
			}
			if inflectable && p.MorphProb > 0 && morphRng.Float64() < p.MorphProb {
				w += suffixes[morphRng.Intn(len(suffixes))]
			}
			return w
		}
		b.Reset()
		if p.Burstiness > 1 {
			// Two-stage (bursty) generation: pick the document's distinct
			// word types first, then spread the token budget over them.
			types := make([]string, 0, n)
			nTypes := int(float64(n)/p.Burstiness + 0.5)
			if nTypes < 1 {
				nTypes = 1
			}
			for len(types) < nTypes {
				types = append(types, draw())
			}
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(types[docRng.Intn(len(types))])
			}
		} else {
			for i := 0; i < n; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(draw())
			}
		}
		docs[d] = Document{
			ID:    d,
			Title: fmt.Sprintf("%s document %d (%s)", p.Name, d, p.Topics[topic].Name),
			Text:  b.String(),
			Topic: topic,
		}
	}
	return docs, nil
}

// MustGenerate is Generate for profiles known valid at compile time (the
// built-in ones); it panics on error.
func (p Profile) MustGenerate() []Document {
	docs, err := p.Generate()
	if err != nil {
		panic(err)
	}
	return docs
}

var suffixes = []string{"s", "ed", "ing", "er", "ation"}

// vocab maps a frequency rank to a term string. Ranks below len(head) are
// the given head words (function words for the shared vocabulary, seed words
// for topics); the rest are synthetic pseudo-words, distinct across vocabs
// via the salt.
type vocab struct {
	head  []string
	salt  uint64
	tag   string
	cache []string // lazily filled synthetic words
}

func newVocab(head []string, size int, tag string, salt uint64) *vocab {
	if len(head) > size {
		head = head[:size]
	}
	return &vocab{head: head, salt: salt, tag: tag, cache: make([]string, size)}
}

func (v *vocab) word(rank int) string {
	if rank < len(v.head) {
		return v.head[rank]
	}
	if v.cache[rank] == "" {
		v.cache[rank] = synthWord(v.tag, v.salt, rank)
	}
	return v.cache[rank]
}

// nameSalt hashes a topic name into a vocabulary salt (FNV-1a, folded to
// three salt syllables' worth of range — ~8M buckets, so distinct names
// collide with negligible probability).
func nameSalt(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	salt := h % 7999999
	if salt == 0 {
		salt = 1
	}
	return salt
}

// Consonant-vowel syllables give pronounceable, clearly synthetic words.
var (
	onsets = []string{
		"b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
		"n", "p", "r", "s", "t", "v", "w", "z", "br", "cr",
		"dr", "fr", "gr", "pr", "tr", "bl", "cl", "fl", "gl", "pl",
		"sl", "sm", "sn", "sp", "st", "sk", "sh", "ch", "th", "wh",
	}
	nuclei = []string{"a", "e", "i", "o", "u"}
)

// synthWord deterministically encodes (salt, rank) as a pronounceable word.
// The encoding is injective for a fixed tag+salt, and the tag/salt prefix
// keeps vocabularies disjoint across topics.
func synthWord(tag string, salt uint64, rank int) string {
	nSyll := uint64(len(onsets) * len(nuclei))
	var b strings.Builder
	b.WriteString(tag)
	if salt > 0 {
		// Three salt syllables distinguish topics (salt < 200^3).
		for i, v := 0, salt; i < 3; i, v = i+1, v/nSyll {
			syl := v % nSyll
			b.WriteString(onsets[syl%uint64(len(onsets))])
			b.WriteString(nuclei[syl/uint64(len(onsets))])
		}
	}
	n := rank
	for {
		syl := n % (len(onsets) * len(nuclei))
		b.WriteString(onsets[syl%len(onsets)])
		b.WriteString(nuclei[syl/len(onsets)])
		n = n/(len(onsets)*len(nuclei)) - 1
		if n < 0 {
			break
		}
	}
	return b.String()
}

// sharedHead returns the real English function words that occupy the most
// frequent ranks of every shared vocabulary, ordered roughly by real-text
// frequency. Their presence makes stopword handling in the experiments
// meaningful (§4.1 discards InQuery's stopwords before comparisons).
func sharedHead() []string {
	return []string{
		"the", "of", "and", "to", "a", "in", "that", "is", "was", "he",
		"for", "it", "with", "as", "his", "on", "be", "at", "by", "had",
		"not", "are", "but", "from", "or", "have", "an", "they", "which",
		"one", "you", "were", "her", "all", "she", "there", "would",
		"their", "we", "him", "been", "has", "when", "who", "will", "more",
		"no", "if", "out", "so", "said", "what", "up", "its", "about",
		"into", "than", "them", "can", "only", "other", "new", "some",
		"could", "time", "these", "two", "may", "then", "do", "first",
		"any", "my", "now", "such", "like", "our", "over", "man", "me",
		"even", "most", "made", "after", "also", "did", "many", "before",
		"must", "through", "years", "where", "much", "your", "way", "well",
		"down", "should", "because", "each", "just", "those", "people",
		"how", "too", "little", "state", "good", "very", "make", "world",
		"still", "own", "see", "men", "work", "long", "get", "here",
		"between", "both", "life", "being", "under", "never", "day",
		"same", "another", "know", "while", "last", "might", "us", "great",
		"old", "year", "off", "come", "since", "against", "go", "came",
		"right", "used", "take", "three",
	}
}
