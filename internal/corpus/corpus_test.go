package corpus

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
)

// tiny returns a fast two-topic profile for unit tests.
func tiny() Profile {
	return Profile{
		Name:            "tiny",
		Docs:            200,
		SharedVocabSize: 500,
		SharedProb:      0.5,
		Topics: []TopicSpec{
			{Name: "alpha", VocabSize: 2000, Weight: 1},
			{Name: "beta", VocabSize: 2000, Weight: 1},
		},
		DocLenMu:    3.5,
		DocLenSigma: 0.5,
		MinDocLen:   5,
		ZipfS:       1.35,
		ZipfV:       2,
		MorphProb:   0.15,
		Seed:        99,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := tiny().Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tiny().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("doc %d differs between identical profiles", i)
		}
	}
}

func TestGenerateDocCountAndIDs(t *testing.T) {
	docs, err := tiny().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 200 {
		t.Fatalf("got %d docs, want 200", len(docs))
	}
	for i, d := range docs {
		if d.ID != i {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
		if d.Text == "" {
			t.Fatalf("doc %d has empty text", i)
		}
	}
}

func TestGenerateMinDocLen(t *testing.T) {
	p := tiny()
	p.MinDocLen = 7
	docs, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if n := len(strings.Fields(d.Text)); n < 7 {
			t.Fatalf("doc %d has %d tokens, want >= 7", d.ID, n)
		}
	}
}

func TestTopicsDisjointVocabularies(t *testing.T) {
	// Topic-specific words from different topics must not collide: collect
	// words that appear only in alpha docs vs only in beta docs and check
	// the synthetic topical markers differ.
	p := tiny()
	p.SharedProb = 0 // topic words only
	p.MorphProb = 0
	docs, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	vocabByTopic := map[int]map[string]bool{0: {}, 1: {}}
	for _, d := range docs {
		for _, w := range strings.Fields(d.Text) {
			vocabByTopic[d.Topic][w] = true
		}
	}
	if len(vocabByTopic[0]) == 0 || len(vocabByTopic[1]) == 0 {
		t.Fatal("a topic generated no vocabulary")
	}
	for w := range vocabByTopic[0] {
		if vocabByTopic[1][w] {
			t.Fatalf("word %q appears in both topic vocabularies", w)
		}
	}
}

func TestSharedHeadIsFunctionWords(t *testing.T) {
	// With SharedProb=1 the most frequent tokens must be real function
	// words, so stopword processing has something to do.
	p := tiny()
	p.SharedProb = 1
	p.MorphProb = 0
	docs, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range docs {
		for _, w := range strings.Fields(d.Text) {
			counts[w]++
		}
	}
	best, bestN := "", 0
	for w, n := range counts {
		if n > bestN {
			best, bestN = w, n
		}
	}
	if best != "the" {
		t.Fatalf("most frequent shared word = %q (%d), want \"the\"", best, bestN)
	}
	stop := analysis.InqueryStoplist()
	if !stop.Contains(best) {
		t.Fatalf("head word %q not a stopword", best)
	}
}

func TestZipfSkewInGeneratedText(t *testing.T) {
	docs, err := tiny().Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	total := 0
	for _, d := range docs {
		for _, w := range strings.Fields(d.Text) {
			counts[w]++
			total++
		}
	}
	// Head mass: the single most frequent term should hold >1% of tokens;
	// the vocabulary should be much smaller than the token count.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if float64(max)/float64(total) < 0.01 {
		t.Errorf("head term mass %.4f too small for Zipfian text", float64(max)/float64(total))
	}
	if len(counts) >= total/2 {
		t.Errorf("vocabulary %d vs tokens %d: not enough repetition", len(counts), total)
	}
}

func TestHeapsLawVocabularyGrowth(t *testing.T) {
	// Vocabulary keeps growing with more documents, but sub-linearly —
	// the paper's premise that %learned is a poor metric (§4.3.1).
	p := tiny()
	p.Docs = 800
	docs, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	vocabAt := func(n int) int {
		v := map[string]bool{}
		for _, d := range docs[:n] {
			for _, w := range strings.Fields(d.Text) {
				v[w] = true
			}
		}
		return len(v)
	}
	v200, v400, v800 := vocabAt(200), vocabAt(400), vocabAt(800)
	if !(v200 < v400 && v400 < v800) {
		t.Fatalf("vocabulary not growing: %d, %d, %d", v200, v400, v800)
	}
	// Sub-linear: doubling docs must not double vocabulary.
	if v800 >= 2*v400 || v400 >= 2*v200 {
		t.Fatalf("vocabulary growth not sub-linear: %d, %d, %d", v200, v400, v800)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.Docs = 0 },
		func(p *Profile) { p.SharedVocabSize = 0 },
		func(p *Profile) { p.Topics = nil },
		func(p *Profile) { p.SharedProb = 1.5 },
		func(p *Profile) { p.ZipfS = 1.0 },
		func(p *Profile) { p.ZipfV = 0.5 },
		func(p *Profile) { p.Topics[0].VocabSize = 0 },
		func(p *Profile) { p.Topics[0].Weight = 0 },
	}
	for i, mutate := range bad {
		p := tiny()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
		if _, err := p.Generate(); err == nil {
			t.Errorf("mutation %d: Generate accepted invalid profile", i)
		}
	}
}

func TestScaled(t *testing.T) {
	p := tiny()
	if got := Scaled(p, 0.5).Docs; got != 100 {
		t.Errorf("Scaled(0.5) docs = %d, want 100", got)
	}
	if got := Scaled(p, 0.00001).Docs; got != 1 {
		t.Errorf("Scaled(tiny) docs = %d, want 1", got)
	}
	if got := Scaled(p, 2).Docs; got != 400 {
		t.Errorf("Scaled(2) docs = %d, want 400", got)
	}
}

func TestBuiltinProfilesValid(t *testing.T) {
	for _, p := range []Profile{CACM(), WSJ88(), TREC123(), Support()} {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestBuiltinProfileOrdering(t *testing.T) {
	// Size and heterogeneity orderings drive the paper's results; guard them.
	c, w, tr := CACM(), WSJ88(), TREC123()
	if !(c.Docs < w.Docs && w.Docs < tr.Docs) {
		t.Errorf("doc counts not ordered: %d, %d, %d", c.Docs, w.Docs, tr.Docs)
	}
	if !(len(c.Topics) < len(w.Topics) && len(w.Topics) < len(tr.Topics)) {
		t.Errorf("heterogeneity not ordered: %d, %d, %d topics",
			len(c.Topics), len(w.Topics), len(tr.Topics))
	}
}

func TestSupportSeedsTable4Terms(t *testing.T) {
	p := Scaled(Support(), 0.1)
	docs, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range docs {
		for _, w := range strings.Fields(d.Text) {
			counts[w]++
		}
	}
	missing := 0
	for _, w := range Table4Terms() {
		if counts[w] == 0 {
			missing++
		}
	}
	// Seed words hold the top topical ranks; nearly all must appear even in
	// a 10% sample of the corpus.
	if missing > 5 {
		t.Errorf("%d of 50 Table 4 seed terms never generated", missing)
	}
}

func TestSynthWordInjective(t *testing.T) {
	seen := map[string]int{}
	for i := 0; i < 50000; i++ {
		w := synthWord("sx", 0, i)
		if prev, dup := seen[w]; dup {
			t.Fatalf("synthWord collision: ranks %d and %d both yield %q", prev, i, w)
		}
		seen[w] = i
	}
}

func TestSynthWordDisjointAcrossSalts(t *testing.T) {
	a := map[string]bool{}
	for i := 0; i < 5000; i++ {
		a[synthWord("t", 1, i)] = true
	}
	for i := 0; i < 5000; i++ {
		if w := synthWord("t", 2, i); a[w] {
			t.Fatalf("salt collision on %q", w)
		}
	}
}

func TestSynthWordLowercaseLetters(t *testing.T) {
	if err := quick.Check(func(rank uint16, salt uint8) bool {
		w := synthWord("t", uint64(salt), int(rank))
		for _, r := range w {
			if r < 'a' || r > 'z' {
				return false
			}
		}
		return len(w) >= 3
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	docs := []Document{
		{ID: 0, Text: "the cat sat", Topic: 0},
		{ID: 1, Text: "the dog ran fast", Topic: 1},
	}
	s := ComputeStats("x", docs, analysis.Raw())
	if s.Docs != 2 {
		t.Errorf("Docs = %d", s.Docs)
	}
	if s.TotalTerms != 7 {
		t.Errorf("TotalTerms = %d, want 7", s.TotalTerms)
	}
	if s.UniqueTerms != 6 { // the, cat, sat, dog, ran, fast
		t.Errorf("UniqueTerms = %d, want 6", s.UniqueTerms)
	}
	if s.Topics != 2 {
		t.Errorf("Topics = %d, want 2", s.Topics)
	}
	if s.Bytes <= 0 {
		t.Errorf("Bytes = %d", s.Bytes)
	}
}

func TestMustGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic on invalid profile")
		}
	}()
	Profile{}.MustGenerate()
}

func BenchmarkGenerateTiny(b *testing.B) {
	p := tiny()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNameSaltDistinct(t *testing.T) {
	names := []string{
		"finance", "law", "medicine", "sport", "energy", "travel",
		"science", "art", "farming", "military", "weather", "music",
		"film", "food", "space", "computing", "markets", "politics",
		"business", "world", "newswire", "federal-register", "patents",
		"abstracts", "magazine", "agriculture", "transport", "support",
	}
	seen := map[uint64]string{}
	for _, n := range names {
		s := nameSalt(n)
		if s == 0 {
			t.Errorf("nameSalt(%q) = 0", n)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("salt collision: %q and %q", prev, n)
		}
		seen[s] = n
	}
}

func TestSameTopicNameSharesVocabularyAcrossCorpora(t *testing.T) {
	// Two independently seeded corpora with the same topic name draw from
	// the same topical vocabulary...
	mk := func(seed uint64, topic string) map[string]bool {
		p := tiny()
		p.Seed = seed
		p.SharedProb = 0
		p.MorphProb = 0
		p.Topics = []TopicSpec{{Name: topic, VocabSize: 2000, Weight: 1}}
		vocab := map[string]bool{}
		for _, d := range p.MustGenerate() {
			for _, w := range strings.Fields(d.Text) {
				vocab[w] = true
			}
		}
		return vocab
	}
	a := mk(1, "computing")
	b := mk(2, "computing")
	shared := 0
	for w := range a {
		if b[w] {
			shared++
		}
	}
	if shared < len(a)/4 {
		t.Errorf("same-named topics share only %d/%d words", shared, len(a))
	}
	// ...while differently named topics are disjoint.
	c := mk(3, "gardening")
	for w := range a {
		if c[w] {
			t.Fatalf("word %q shared between computing and gardening topics", w)
		}
	}
}

func TestTRECContainsWSJTopics(t *testing.T) {
	// TREC CDs 1-3 contain the Wall Street Journal; the profiles encode
	// that by sharing four topic names, which in turn shares topical
	// vocabulary. The random-olm experiments (§5.2) depend on this overlap.
	wsjTopics := map[string]bool{}
	for _, topic := range WSJ88().Topics {
		wsjTopics[topic.Name] = true
	}
	shared := 0
	for _, topic := range TREC123().Topics {
		if wsjTopics[topic.Name] {
			shared++
		}
	}
	if shared != len(wsjTopics) {
		t.Errorf("TREC123 shares %d of WSJ88's %d topics, want all", shared, len(wsjTopics))
	}
}
