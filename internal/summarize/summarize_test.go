package summarize

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/langmodel"
)

func testModel() *langmodel.Model {
	m := langmodel.New()
	m.AddTerm("the", langmodel.TermStats{DF: 90, CTF: 500})
	m.AddTerm("windows", langmodel.TermStats{DF: 50, CTF: 400})
	m.AddTerm("excel", langmodel.TermStats{DF: 20, CTF: 220})
	m.AddTerm("printer", langmodel.TermStats{DF: 30, CTF: 90})
	m.AddTerm("ok", langmodel.TermStats{DF: 40, CTF: 40})
	m.AddTerm("1988", langmodel.TermStats{DF: 25, CTF: 25})
	m.SetDocs(100)
	return m
}

func TestTopFiltersAndRanks(t *testing.T) {
	rows := Top(testModel(), langmodel.ByAvgTF, 10, analysis.InqueryStoplist())
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (windows, excel, printer): %+v", len(rows), rows)
	}
	// avg-tf: excel 11, windows 8, printer 3.
	if rows[0].Term != "excel" || rows[1].Term != "windows" || rows[2].Term != "printer" {
		t.Errorf("order wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.Term == "the" || r.Term == "ok" || r.Term == "1988" {
			t.Errorf("filtered term %q present", r.Term)
		}
	}
}

func TestTopRespectsK(t *testing.T) {
	rows := Top(testModel(), langmodel.ByDF, 1, nil)
	if len(rows) != 1 {
		t.Fatalf("k=1 gave %d rows", len(rows))
	}
	if rows[0].Term != "the" { // nil stoplist keeps everything eligible
		t.Errorf("top df term = %q", rows[0].Term)
	}
	if rows := Top(testModel(), langmodel.ByDF, 0, nil); rows != nil {
		t.Errorf("k=0 gave %v", rows)
	}
}

func TestTopRowStats(t *testing.T) {
	rows := Top(testModel(), langmodel.ByAvgTF, 1, analysis.InqueryStoplist())
	r := rows[0]
	if r.DF != 20 || r.CTF != 220 || r.AvgTF != 11 {
		t.Errorf("row stats wrong: %+v", r)
	}
}

func TestRenderColumns(t *testing.T) {
	rows := Top(testModel(), langmodel.ByAvgTF, 3, analysis.InqueryStoplist())
	var buf bytes.Buffer
	if err := Render(&buf, rows, langmodel.ByAvgTF); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, term := range []string{"excel", "windows", "printer"} {
		if !strings.Contains(out, term) {
			t.Errorf("render missing %q:\n%s", term, out)
		}
	}
	if !strings.Contains(out, "11.00") {
		t.Errorf("render missing avg-tf value:\n%s", out)
	}
}

func TestRenderMetrics(t *testing.T) {
	rows := []Row{{Term: "x", DF: 7, CTF: 21, AvgTF: 3}}
	for metric, want := range map[langmodel.RankMetric]string{
		langmodel.ByDF:    "7.00",
		langmodel.ByCTF:   "21.00",
		langmodel.ByAvgTF: "3.00",
	} {
		var buf bytes.Buffer
		if err := Render(&buf, rows, metric); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metric %v: output %q missing %q", metric, buf.String(), want)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, nil, langmodel.ByDF); err != nil {
		t.Fatal(err)
	}
}
