// Package summarize implements §7: presenting a learned language model to
// a person as a summary of what an unknown database is about. "A simple
// and well-known method of summarizing database contents is to display the
// terms that occur frequently and are not stopwords" — Table 4 is exactly
// such a display, ranked by avg-tf.
package summarize

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/langmodel"
)

// Row is one term in a database summary.
type Row struct {
	// Term is the displayed term.
	Term string
	// DF, CTF and AvgTF are its learned statistics.
	DF    int
	CTF   int64
	AvgTF float64
}

// Top returns the k highest-ranked non-stopword terms of the model under
// the metric — the §7 browsing display. Terms shorter than 3 characters
// and numbers are skipped, matching the index-term conventions.
func Top(m *langmodel.Model, metric langmodel.RankMetric, k int, stop *analysis.Stoplist) []Row {
	if k <= 0 {
		return nil
	}
	rows := make([]Row, 0, k)
	for _, t := range m.TopTerms(metric, m.VocabSize()) {
		if len(t) < 3 || analysis.IsNumber(t) || stop.Contains(t) {
			continue
		}
		st, _ := m.Stats(t)
		rows = append(rows, Row{Term: t, DF: st.DF, CTF: st.CTF, AvgTF: st.AvgTF()})
		if len(rows) == k {
			break
		}
	}
	return rows
}

// Render writes rows the way Table 4 lays them out: five columns of
// term/value pairs, filling left to right.
func Render(w io.Writer, rows []Row, metric langmodel.RankMetric) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	const cols = 5
	for start := 0; start < len(rows); start += cols {
		end := start + cols
		if end > len(rows) {
			end = len(rows)
		}
		for _, r := range rows[start:end] {
			fmt.Fprintf(tw, "%s\t%.2f\t", r.Term, metricOf(r, metric))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func metricOf(r Row, metric langmodel.RankMetric) float64 {
	switch metric {
	case langmodel.ByDF:
		return float64(r.DF)
	case langmodel.ByCTF:
		return float64(r.CTF)
	default:
		return r.AvgTF
	}
}
