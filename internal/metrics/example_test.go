package metrics_test

import (
	"fmt"

	"repro/internal/langmodel"
	"repro/internal/metrics"
)

// ExampleCtfRatio reproduces the worked example of §4.3.2: a database of
// 99 "apple" and 1 "bear"; a learned model containing only "apple" covers
// 99% of term occurrences.
func ExampleCtfRatio() {
	actual := langmodel.New()
	actual.AddTerm("apple", langmodel.TermStats{DF: 1, CTF: 99})
	actual.AddTerm("bear", langmodel.TermStats{DF: 1, CTF: 1})

	learned := langmodel.New()
	learned.AddTerm("apple", langmodel.TermStats{DF: 1, CTF: 3})

	fmt.Printf("%.2f\n", metrics.CtfRatio(learned, actual))
	// Output:
	// 0.99
}

// ExampleRdiff reproduces the worked example of §6: 100 terms with two
// adjacent terms swapped gives rdiff = 0.0002.
func ExampleRdiff() {
	a := langmodel.New()
	b := langmodel.New()
	for i := 0; i < 100; i++ {
		term := fmt.Sprintf("t%02d", i)
		a.AddTerm(term, langmodel.TermStats{DF: 1000 - i, CTF: 1})
		b.AddTerm(term, langmodel.TermStats{DF: 1000 - i, CTF: 1})
	}
	// Swap the df values (and hence ranks) of the terms at ranks 4 and 5.
	b2 := langmodel.New()
	b.Range(func(term string, st langmodel.TermStats) bool {
		switch term {
		case "t03":
			st.DF = 1000 - 4
		case "t04":
			st.DF = 1000 - 3
		}
		b2.AddTerm(term, st)
		return true
	})
	fmt.Printf("%.4f\n", metrics.Rdiff(a, b2, langmodel.ByDF))
	// Output:
	// 0.0002
}
