package metrics

import (
	"math"
	"sort"

	"repro/internal/langmodel"
)

// KendallTau computes Kendall's tau-b (tie-corrected) between the term
// rankings of the two models over their common vocabulary. It is an
// extension beyond the paper: a second tie-aware rank statistic to
// cross-check Spearman-based conclusions. O(n log n) via Knight's
// algorithm. Returns 1 for fewer than 2 common terms, 0 when either
// ranking is constant.
func KendallTau(learned, actual *langmodel.Model, metric langmodel.RankMetric) float64 {
	x, y := commonRanks(learned, actual, metric, false)
	return kendallTauB(x, y)
}

func kendallTauB(x, y []float64) float64 {
	n := len(x)
	if n < 2 {
		return 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by x, breaking ties by y.
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if x[i] != x[j] {
			return x[i] < x[j]
		}
		return y[i] < y[j]
	})
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, id := range idx {
		xs[i] = x[id]
		ys[i] = y[id]
	}

	n0 := float64(n) * float64(n-1) / 2
	n1 := tiePairs(xs)          // pairs tied in x
	n3 := jointTiePairs(xs, ys) // pairs tied in both
	swaps := float64(mergeCountInversions(append([]float64(nil), ys...)))

	sortedY := append([]float64(nil), ys...)
	sort.Float64s(sortedY)
	n2 := tiePairs(sortedY) // pairs tied in y

	denom := math.Sqrt((n0 - n1) * (n0 - n2))
	if denom == 0 {
		return 0
	}
	// C - D = n0 - n1 - n2 + n3 - 2*D, with D the inversion count of y
	// among pairs not tied in x (ties in x were sorted by y, so they are
	// never counted as inversions; joint ties are added back via n3).
	return (n0 - n1 - n2 + n3 - 2*swaps) / denom
}

// tiePairs returns Σ t(t-1)/2 over groups of equal adjacent values in a
// sorted slice.
func tiePairs(sorted []float64) float64 {
	var total float64
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		t := float64(j - i)
		total += t * (t - 1) / 2
		i = j
	}
	return total
}

// jointTiePairs returns Σ t(t-1)/2 over groups tied in both x and y, where
// the input is sorted by (x, y).
func jointTiePairs(xs, ys []float64) float64 {
	var total float64
	for i := 0; i < len(xs); {
		j := i
		for j < len(xs) && xs[j] == xs[i] && ys[j] == ys[i] {
			j++
		}
		t := float64(j - i)
		total += t * (t - 1) / 2
		i = j
	}
	return total
}

// mergeCountInversions counts strict inversions (a[i] > a[j] for i < j)
// while merge-sorting a in place.
func mergeCountInversions(a []float64) int64 {
	if len(a) < 2 {
		return 0
	}
	buf := make([]float64, len(a))
	return mergeCount(a, buf)
}

func mergeCount(a, buf []float64) int64 {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf[:mid]) + mergeCount(a[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			j++
			inv += int64(mid - i) // a[i:mid] all exceed a[j]
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:n])
	return inv
}
