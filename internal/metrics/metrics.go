// Package metrics implements the paper's evaluation metrics (§4.3):
//
//   - Percentage learned — the share of the actual vocabulary present in
//     the learned vocabulary (§4.3.1).
//   - Ctf ratio — the share of database term *occurrences* covered by the
//     learned vocabulary (§4.3.2): Σ_{i∈V'} ctf_i / Σ_{i∈V} ctf_i.
//   - Spearman rank correlation — agreement of term orderings between
//     learned and actual models (§4.3.3). The paper's simple formula
//     (1 - 6Σd²/(n(n²-1))) plus a tie-corrected variant (Pearson on
//     fractional ranks), because df-ranked vocabularies are massively tied.
//   - rdiff — the average normalized rank movement between two models
//     (§6), used for stopping criteria.
//
// Kendall's tau-b is included as an extension: another tie-aware rank
// statistic that cross-checks the Spearman results.
package metrics

import (
	"math"

	"repro/internal/langmodel"
)

// PercentageLearned returns |V_learned ∩ V_actual| / |V_actual| in [0, 1].
// Returns 0 when the actual vocabulary is empty.
func PercentageLearned(learned, actual *langmodel.Model) float64 {
	if actual.VocabSize() == 0 {
		return 0
	}
	common := 0
	learned.Range(func(t string, _ langmodel.TermStats) bool {
		if actual.Contains(t) {
			common++
		}
		return true
	})
	return float64(common) / float64(actual.VocabSize())
}

// CtfRatio returns the proportion of actual term occurrences covered by the
// learned vocabulary: Σ ctf_i over learned∩actual divided by Σ ctf_i over
// actual. A ratio of 0.80 means the learned model contains the words that
// account for 80% of word occurrences in the database (§4.3.2).
func CtfRatio(learned, actual *langmodel.Model) float64 {
	if actual.TotalCTF() == 0 {
		return 0
	}
	var covered int64
	learned.Range(func(t string, _ langmodel.TermStats) bool {
		if st, ok := actual.Stats(t); ok {
			covered += st.CTF
		}
		return true
	})
	return float64(covered) / float64(actual.TotalCTF())
}

// commonRanks intersects the two vocabularies and returns, for every common
// term, its rank within each restricted model under the metric. Ranking
// after intersection follows §4.3.3: "rank terms by their frequency of
// occurrence and then compare the rankings of terms that occur in both".
// With dense=true, tied terms share one integer rank value — the paper's
// convention ("multiple terms can occupy each rank", §6); otherwise ties
// get fractional (averaged) ranks, as modern rank statistics require.
func commonRanks(a, b *langmodel.Model, metric langmodel.RankMetric, dense bool) (ra, rb []float64) {
	ar := a.Restrict(b)
	br := b.Restrict(a)
	var ranksA, ranksB map[string]float64
	if dense {
		ranksA = ar.DenseRanks(metric)
		ranksB = br.DenseRanks(metric)
	} else {
		ranksA = ar.Ranks(metric)
		ranksB = br.Ranks(metric)
	}
	ra = make([]float64, 0, len(ranksA))
	rb = make([]float64, 0, len(ranksA))
	for _, t := range ar.Vocabulary() {
		ra = append(ra, ranksA[t])
		rb = append(rb, ranksB[t])
	}
	return ra, rb
}

// SpearmanSimple computes the paper's formula R = 1 - 6Σd²/(n(n²-1)) over
// the common vocabulary, with the paper's dense shared ranks (tied terms
// occupy one rank). With heavy ties this reads higher than the
// tie-corrected Spearman, which is why the paper's absolute values (e.g.
// CACM 0.9 at 82 documents) are only reproduced under this convention.
// Returns 1 for fewer than 2 common terms (identical trivial rankings).
func SpearmanSimple(learned, actual *langmodel.Model, metric langmodel.RankMetric) float64 {
	ra, rb := commonRanks(learned, actual, metric, true)
	n := len(ra)
	if n < 2 {
		return 1
	}
	var sumD2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		sumD2 += d * d
	}
	nf := float64(n)
	return 1 - 6*sumD2/(nf*(nf*nf-1))
}

// Spearman computes the tie-corrected Spearman rank correlation
// coefficient: the Pearson correlation of the fractional ranks over the
// common vocabulary. Returns 1 for fewer than 2 common terms and 0 when a
// ranking is constant (all terms tied — correlation undefined).
func Spearman(learned, actual *langmodel.Model, metric langmodel.RankMetric) float64 {
	ra, rb := commonRanks(learned, actual, metric, false)
	return pearson(ra, rb)
}

// pearson returns the Pearson correlation of x and y.
func pearson(x, y []float64) float64 {
	n := len(x)
	if n < 2 {
		return 1
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Rdiff measures the average distance, as a fraction of the number of
// ranks, that each common term must move to convert one ranking into the
// other (§6): (1/n²)·Σ|d_i|, with the paper's dense shared ranks
// ("multiple terms can occupy each rank ... rdiff varies between 0.0 and
// 1.0"). Small rdiff between successive learned-model snapshots signals
// convergence. Returns 0 for fewer than 2 common terms.
func Rdiff(m1, m2 *langmodel.Model, metric langmodel.RankMetric) float64 {
	ra, rb := commonRanks(m1, m2, metric, true)
	n := len(ra)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := range ra {
		sum += math.Abs(ra[i] - rb[i])
	}
	return sum / (float64(n) * float64(n))
}
