package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/langmodel"
)

func model(texts ...string) *langmodel.Model {
	m := langmodel.New()
	for _, t := range texts {
		m.AddDocument(strings.Fields(t))
	}
	return m
}

// modelWithStats builds a model with explicit per-term (df, ctf).
func modelWithStats(stats map[string][2]int64) *langmodel.Model {
	m := langmodel.New()
	for t, s := range stats {
		m.AddTerm(t, langmodel.TermStats{DF: int(s[0]), CTF: s[1]})
	}
	return m
}

func TestPercentageLearned(t *testing.T) {
	actual := model("a b c d")
	learned := model("a b x")
	got := PercentageLearned(learned, actual)
	if got != 0.5 { // a, b of {a,b,c,d}
		t.Errorf("PercentageLearned = %f, want 0.5", got)
	}
}

func TestPercentageLearnedEdges(t *testing.T) {
	empty := langmodel.New()
	if got := PercentageLearned(empty, empty); got != 0 {
		t.Errorf("empty/empty = %f, want 0", got)
	}
	actual := model("a b")
	if got := PercentageLearned(empty, actual); got != 0 {
		t.Errorf("empty learned = %f, want 0", got)
	}
	if got := PercentageLearned(actual, actual); got != 1 {
		t.Errorf("identical = %f, want 1", got)
	}
}

func TestCtfRatioPaperExample(t *testing.T) {
	// §4.3.2: database = 99 occurrences of "apple", 1 of "bear"; learned
	// contains only "apple" -> ctf ratio = 0.99.
	actual := modelWithStats(map[string][2]int64{"apple": {1, 99}, "bear": {1, 1}})
	learned := modelWithStats(map[string][2]int64{"apple": {1, 3}})
	got := CtfRatio(learned, actual)
	if math.Abs(got-0.99) > 1e-12 {
		t.Errorf("CtfRatio = %f, want 0.99", got)
	}
}

func TestCtfRatioBounds(t *testing.T) {
	if err := quick.Check(func(a, b, c uint8) bool {
		actual := modelWithStats(map[string][2]int64{
			"x": {1, int64(a) + 1}, "y": {1, int64(b) + 1}, "z": {1, int64(c) + 1},
		})
		learned := modelWithStats(map[string][2]int64{"x": {1, 1}, "w": {1, 5}})
		r := CtfRatio(learned, actual)
		return r >= 0 && r <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCtfRatioEmptyActual(t *testing.T) {
	if got := CtfRatio(model("a"), langmodel.New()); got != 0 {
		t.Errorf("CtfRatio vs empty = %f, want 0", got)
	}
}

func TestCtfRatioMonotoneInVocabulary(t *testing.T) {
	// Adding learned terms can only increase coverage.
	actual := modelWithStats(map[string][2]int64{
		"a": {1, 10}, "b": {1, 20}, "c": {1, 30},
	})
	small := modelWithStats(map[string][2]int64{"a": {1, 1}})
	big := modelWithStats(map[string][2]int64{"a": {1, 1}, "c": {1, 1}})
	if CtfRatio(small, actual) > CtfRatio(big, actual) {
		t.Error("ctf ratio decreased when vocabulary grew")
	}
}

func TestSpearmanPerfect(t *testing.T) {
	// Same df ordering in both models -> coefficient 1.
	a := modelWithStats(map[string][2]int64{"x": {10, 10}, "y": {5, 5}, "z": {1, 1}})
	b := modelWithStats(map[string][2]int64{"x": {30, 30}, "y": {20, 20}, "z": {2, 2}})
	if got := Spearman(a, b, langmodel.ByDF); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman = %f, want 1", got)
	}
	if got := SpearmanSimple(a, b, langmodel.ByDF); math.Abs(got-1) > 1e-12 {
		t.Errorf("SpearmanSimple = %f, want 1", got)
	}
}

func TestSpearmanReversed(t *testing.T) {
	a := modelWithStats(map[string][2]int64{"x": {10, 10}, "y": {5, 5}, "z": {1, 1}})
	b := modelWithStats(map[string][2]int64{"x": {1, 1}, "y": {5, 5}, "z": {10, 10}})
	if got := Spearman(a, b, langmodel.ByDF); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman = %f, want -1", got)
	}
	if got := SpearmanSimple(a, b, langmodel.ByDF); math.Abs(got+1) > 1e-12 {
		t.Errorf("SpearmanSimple = %f, want -1", got)
	}
}

func TestSpearmanIgnoresNonCommonTerms(t *testing.T) {
	a := modelWithStats(map[string][2]int64{"x": {10, 10}, "y": {5, 5}, "only-a": {99, 99}})
	b := modelWithStats(map[string][2]int64{"x": {30, 30}, "y": {20, 20}, "only-b": {1, 1}})
	if got := Spearman(a, b, langmodel.ByDF); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman with disjoint extras = %f, want 1", got)
	}
}

func TestSpearmanConstantRanking(t *testing.T) {
	// All terms tied in one model: correlation undefined -> 0.
	a := modelWithStats(map[string][2]int64{"x": {1, 1}, "y": {1, 1}, "z": {1, 1}})
	b := modelWithStats(map[string][2]int64{"x": {3, 3}, "y": {2, 2}, "z": {1, 1}})
	if got := Spearman(a, b, langmodel.ByDF); got != 0 {
		t.Errorf("Spearman with constant ranking = %f, want 0", got)
	}
}

func TestSpearmanTinyIntersection(t *testing.T) {
	a := model("x")
	b := model("x")
	if got := Spearman(a, b, langmodel.ByDF); got != 1 {
		t.Errorf("single common term = %f, want 1", got)
	}
	if got := Spearman(model("p"), model("q"), langmodel.ByDF); got != 1 {
		t.Errorf("no common terms = %f, want 1", got)
	}
}

func TestSpearmanBounds(t *testing.T) {
	if err := quick.Check(func(dfs [6]uint8) bool {
		a := modelWithStats(map[string][2]int64{
			"t1": {int64(dfs[0]) + 1, 1}, "t2": {int64(dfs[1]) + 1, 1}, "t3": {int64(dfs[2]) + 1, 1},
		})
		b := modelWithStats(map[string][2]int64{
			"t1": {int64(dfs[3]) + 1, 1}, "t2": {int64(dfs[4]) + 1, 1}, "t3": {int64(dfs[5]) + 1, 1},
		})
		s := Spearman(a, b, langmodel.ByDF)
		ss := SpearmanSimple(a, b, langmodel.ByDF)
		return s >= -1-1e-9 && s <= 1+1e-9 && ss >= -1-1e-9 && ss <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRdiffPaperExample(t *testing.T) {
	// §6: 100 terms, two swap ranks 4 and 5 -> rdiff = (1/100²)·2 = 0.0002.
	sa := map[string][2]int64{}
	sb := map[string][2]int64{}
	for i := 0; i < 100; i++ {
		term := "t" + string(rune('a'+i/26)) + string(rune('a'+i%26))
		df := int64(1000 - i) // distinct dfs: rank i+1
		sa[term] = [2]int64{df, df}
		sb[term] = [2]int64{df, df}
	}
	// Swap the terms at ranks 4 and 5 in b (0-based 3 and 4).
	t4 := "t" + string(rune('a'+3/26)) + string(rune('a'+3%26))
	t5 := "t" + string(rune('a'+4/26)) + string(rune('a'+4%26))
	sb[t4], sb[t5] = sb[t5], sb[t4]
	a, b := modelWithStats(sa), modelWithStats(sb)
	got := Rdiff(a, b, langmodel.ByDF)
	if math.Abs(got-0.0002) > 1e-12 {
		t.Errorf("Rdiff = %g, want 0.0002", got)
	}
}

func TestRdiffIdentical(t *testing.T) {
	a := model("x x y z", "x y")
	if got := Rdiff(a, a.Clone(), langmodel.ByDF); got != 0 {
		t.Errorf("Rdiff of identical models = %f, want 0", got)
	}
}

func TestRdiffSymmetric(t *testing.T) {
	a := modelWithStats(map[string][2]int64{"x": {5, 5}, "y": {3, 3}, "z": {1, 1}})
	b := modelWithStats(map[string][2]int64{"x": {1, 1}, "y": {5, 5}, "z": {3, 3}})
	if d1, d2 := Rdiff(a, b, langmodel.ByDF), Rdiff(b, a, langmodel.ByDF); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("Rdiff not symmetric: %f vs %f", d1, d2)
	}
}

func TestRdiffBounds(t *testing.T) {
	// With one term per rank, rdiff <= 0.5 (reverse ordering); always >= 0.
	if err := quick.Check(func(dfs [5]uint8) bool {
		sa := map[string][2]int64{}
		sb := map[string][2]int64{}
		for i := 0; i < 5; i++ {
			term := string(rune('a' + i))
			sa[term] = [2]int64{int64(i) + 1, 1}
			sb[term] = [2]int64{int64(dfs[i]) + 1, 1}
		}
		d := Rdiff(modelWithStats(sa), modelWithStats(sb), langmodel.ByDF)
		return d >= 0 && d <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauPerfectAndReversed(t *testing.T) {
	a := modelWithStats(map[string][2]int64{"x": {10, 1}, "y": {5, 1}, "z": {1, 1}})
	b := modelWithStats(map[string][2]int64{"x": {20, 1}, "y": {9, 1}, "z": {2, 1}})
	if got := KendallTau(a, b, langmodel.ByDF); math.Abs(got-1) > 1e-12 {
		t.Errorf("tau = %f, want 1", got)
	}
	rev := modelWithStats(map[string][2]int64{"x": {2, 1}, "y": {9, 1}, "z": {20, 1}})
	if got := KendallTau(a, rev, langmodel.ByDF); math.Abs(got+1) > 1e-12 {
		t.Errorf("tau = %f, want -1", got)
	}
}

func TestKendallTauAgainstBruteForce(t *testing.T) {
	brute := func(x, y []float64) float64 {
		n := len(x)
		var c, d, tx, ty float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx, dy := x[i]-x[j], y[i]-y[j]
				switch {
				case dx == 0 && dy == 0:
					// joint tie: counted in both tx and ty
					tx++
					ty++
				case dx == 0:
					tx++
				case dy == 0:
					ty++
				case dx*dy > 0:
					c++
				default:
					d++
				}
			}
		}
		n0 := float64(n*(n-1)) / 2
		denom := math.Sqrt((n0 - tx) * (n0 - ty))
		if denom == 0 {
			return 0
		}
		return (c - d) / denom
	}
	if err := quick.Check(func(vals [8]uint8) bool {
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range vals {
			x[i] = float64(vals[i] % 4) // force ties
			y[i] = float64((vals[i] >> 2) % 4)
		}
		got := kendallTauB(append([]float64(nil), x...), append([]float64(nil), y...))
		want := brute(x, y)
		return math.Abs(got-want) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCountInversions(t *testing.T) {
	cases := []struct {
		in   []float64
		want int64
	}{
		{[]float64{1, 2, 3}, 0},
		{[]float64{3, 2, 1}, 3},
		{[]float64{2, 1, 3}, 1},
		{[]float64{1, 1, 1}, 0}, // ties are not inversions
		{[]float64{}, 0},
		{[]float64{5}, 0},
	}
	for _, c := range cases {
		if got := mergeCountInversions(append([]float64(nil), c.in...)); got != c.want {
			t.Errorf("inversions(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSpearmanAgreesWithSimpleWithoutTies(t *testing.T) {
	// Without ties, the tie-corrected and simple formulas coincide.
	a := modelWithStats(map[string][2]int64{
		"p": {9, 1}, "q": {7, 1}, "r": {5, 1}, "s": {3, 1}, "t": {1, 1},
	})
	b := modelWithStats(map[string][2]int64{
		"p": {8, 1}, "q": {9, 1}, "r": {4, 1}, "s": {2, 1}, "t": {1, 1},
	})
	s1 := Spearman(a, b, langmodel.ByDF)
	s2 := SpearmanSimple(a, b, langmodel.ByDF)
	if math.Abs(s1-s2) > 1e-12 {
		t.Errorf("tie-free disagreement: %f vs %f", s1, s2)
	}
}

func BenchmarkSpearman(b *testing.B) {
	a := langmodel.New()
	c := langmodel.New()
	for i := 0; i < 5000; i++ {
		term := "t" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		a.AddTerm(term, langmodel.TermStats{DF: i%97 + 1, CTF: 1})
		c.AddTerm(term, langmodel.TermStats{DF: i%89 + 1, CTF: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Spearman(a, c, langmodel.ByDF)
	}
}

func BenchmarkKendallTau(b *testing.B) {
	a := langmodel.New()
	c := langmodel.New()
	for i := 0; i < 5000; i++ {
		term := "t" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		a.AddTerm(term, langmodel.TermStats{DF: i%97 + 1, CTF: 1})
		c.AddTerm(term, langmodel.TermStats{DF: i%89 + 1, CTF: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KendallTau(a, c, langmodel.ByDF)
	}
}
