package langmodel

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
)

func docModel(texts ...string) *Model {
	m := New()
	for _, t := range texts {
		m.AddDocument(strings.Fields(t))
	}
	return m
}

func TestAddDocumentCounts(t *testing.T) {
	m := docModel("apple apple bear", "apple cat")
	if got := m.DF("apple"); got != 2 {
		t.Errorf("df(apple) = %d, want 2", got)
	}
	if got := m.CTF("apple"); got != 3 {
		t.Errorf("ctf(apple) = %d, want 3", got)
	}
	if got := m.DF("bear"); got != 1 {
		t.Errorf("df(bear) = %d, want 1", got)
	}
	if m.Docs() != 2 {
		t.Errorf("docs = %d, want 2", m.Docs())
	}
	if m.TotalCTF() != 5 {
		t.Errorf("totalCTF = %d, want 5", m.TotalCTF())
	}
	if m.VocabSize() != 3 {
		t.Errorf("vocab = %d, want 3", m.VocabSize())
	}
}

func TestAvgTF(t *testing.T) {
	st := TermStats{DF: 4, CTF: 10}
	if got := st.AvgTF(); got != 2.5 {
		t.Errorf("AvgTF = %f, want 2.5", got)
	}
	if got := (TermStats{}).AvgTF(); got != 0 {
		t.Errorf("AvgTF of zero stats = %f, want 0", got)
	}
}

func TestStatsAndContains(t *testing.T) {
	m := docModel("x y x")
	if st, ok := m.Stats("x"); !ok || st.DF != 1 || st.CTF != 2 {
		t.Errorf("Stats(x) = %+v, %v", st, ok)
	}
	if _, ok := m.Stats("zzz"); ok {
		t.Error("Stats(zzz) reported present")
	}
	if !m.Contains("y") || m.Contains("zzz") {
		t.Error("Contains wrong")
	}
}

func TestVocabularySorted(t *testing.T) {
	m := docModel("zebra apple mango")
	want := []string{"apple", "mango", "zebra"}
	if got := m.Vocabulary(); !reflect.DeepEqual(got, want) {
		t.Errorf("Vocabulary = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := docModel("a b c")
	c := m.Clone()
	c.AddDocument([]string{"a", "d"})
	if m.DF("a") != 1 || m.Docs() != 1 {
		t.Error("mutating clone affected original")
	}
	if c.DF("a") != 2 || !c.Contains("d") {
		t.Error("clone did not record update")
	}
}

func TestMerge(t *testing.T) {
	a := docModel("x x y")
	b := docModel("y z")
	a.Merge(b)
	if a.Docs() != 2 {
		t.Errorf("docs = %d, want 2", a.Docs())
	}
	if a.DF("y") != 2 || a.CTF("x") != 2 || a.DF("z") != 1 {
		t.Errorf("merge stats wrong: %v", a)
	}
	if a.TotalCTF() != 5 {
		t.Errorf("totalCTF = %d, want 5", a.TotalCTF())
	}
}

func TestAddTerm(t *testing.T) {
	m := New()
	m.AddTerm("apple", TermStats{DF: 1000, CTF: 2000})
	m.AddTerm("apple", TermStats{DF: 1, CTF: 5})
	m.SetDocs(3204)
	if m.DF("apple") != 1001 || m.CTF("apple") != 2005 || m.Docs() != 3204 {
		t.Errorf("AddTerm stats wrong: %v", m)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m := docModel("a b c d e")
	n := 0
	m.Range(func(string, TermStats) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("Range visited %d terms, want 2", n)
	}
}

func TestTopTerms(t *testing.T) {
	m := docModel("a a a b b c", "a b", "d d d d")
	// df: a=2 b=2 c=1 d=1; ctf: a=4 b=3 c=1 d=4; avgtf: a=2 b=1.5 c=1 d=4
	if got := m.TopTerms(ByDF, 2); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("TopTerms(ByDF) = %v", got)
	}
	if got := m.TopTerms(ByCTF, 2); !reflect.DeepEqual(got, []string{"a", "d"}) {
		t.Errorf("TopTerms(ByCTF) = %v", got)
	}
	if got := m.TopTerms(ByAvgTF, 1); !reflect.DeepEqual(got, []string{"d"}) {
		t.Errorf("TopTerms(ByAvgTF) = %v", got)
	}
	if got := m.TopTerms(ByDF, 100); len(got) != 4 {
		t.Errorf("TopTerms overshoot = %v", got)
	}
}

func TestRanksFractional(t *testing.T) {
	m := docModel("a a b", "a b", "c")
	// df: a=2, b=2, c=1 -> a and b tie for ranks 1-2 (avg 1.5), c rank 3.
	r := m.Ranks(ByDF)
	if r["a"] != 1.5 || r["b"] != 1.5 {
		t.Errorf("tied ranks = %f, %f, want 1.5", r["a"], r["b"])
	}
	if r["c"] != 3 {
		t.Errorf("rank(c) = %f, want 3", r["c"])
	}
}

func TestDenseRanks(t *testing.T) {
	m := docModel("a a b", "a b", "c")
	// df: a=2, b=2, c=1 -> dense: a,b share rank 1; c gets rank 2.
	r := m.DenseRanks(ByDF)
	if r["a"] != 1 || r["b"] != 1 {
		t.Errorf("tied dense ranks = %f, %f, want 1", r["a"], r["b"])
	}
	if r["c"] != 2 {
		t.Errorf("dense rank(c) = %f, want 2", r["c"])
	}
}

func TestDenseRanksNoTiesMatchesFractional(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		m.AddTerm(term(i), TermStats{DF: 100 - i, CTF: 1})
	}
	dense := m.DenseRanks(ByDF)
	frac := m.Ranks(ByDF)
	for t2, v := range dense {
		if frac[t2] != v {
			t.Errorf("rank(%s): dense %f != fractional %f without ties", t2, v, frac[t2])
		}
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Fractional ranks always sum to n(n+1)/2 regardless of ties.
	if err := quick.Check(func(seed uint32) bool {
		m := New()
		n := int(seed%20) + 1
		for i := 0; i < n; i++ {
			m.AddTerm(term(i), TermStats{DF: int(seed>>3)%5 + 1, CTF: int64(i%3 + 1)})
		}
		sum := 0.0
		for _, v := range m.Ranks(ByDF) {
			sum += v
		}
		want := float64(n*(n+1)) / 2
		return math.Abs(sum-want) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func term(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestNormalizeStopsAndStems(t *testing.T) {
	m := docModel("the running runs run")
	n := m.Normalize(analysis.Database())
	if n.Contains("the") {
		t.Error("stopword survived Normalize")
	}
	// running/runs/run all stem to "run"; stats merge.
	if n.DF("run") != 3 || n.CTF("run") != 3 {
		t.Errorf("run stats = df %d ctf %d, want 3, 3", n.DF("run"), n.CTF("run"))
	}
	if n.Docs() != m.Docs() {
		t.Error("Normalize lost doc count")
	}
}

func TestRestrict(t *testing.T) {
	a := docModel("x y z")
	b := docModel("y z w")
	r := a.Restrict(b)
	if r.Contains("x") || !r.Contains("y") || !r.Contains("z") {
		t.Errorf("Restrict vocabulary wrong: %v", r.Vocabulary())
	}
	if r.TotalCTF() != 2 {
		t.Errorf("Restrict totalCTF = %d, want 2", r.TotalCTF())
	}
}

func TestPrune(t *testing.T) {
	m := docModel("a b c", "a b", "a")
	// df: a=3, b=2, c=1.
	p := m.Prune(2)
	if p.Contains("c") {
		t.Error("df=1 term survived Prune(2)")
	}
	if !p.Contains("a") || !p.Contains("b") {
		t.Error("frequent terms pruned")
	}
	if p.Docs() != m.Docs() {
		t.Error("Prune changed doc count")
	}
	if p.TotalCTF() != m.TotalCTF()-m.CTF("c") {
		t.Errorf("pruned totalCTF = %d", p.TotalCTF())
	}
	// Original untouched.
	if !m.Contains("c") {
		t.Error("Prune mutated the receiver")
	}
	// Prune(1) is identity.
	if !m.Prune(1).Equal(m) {
		t.Error("Prune(1) not identity")
	}
	// Prune(huge) empties the vocabulary.
	if m.Prune(100).VocabSize() != 0 {
		t.Error("Prune(100) left terms")
	}
}

func TestFromTokenizedDocs(t *testing.T) {
	m := FromTokenizedDocs([]string{"The cat", "the dog"}, analysis.Raw())
	if m.DF("the") != 2 || m.Docs() != 2 {
		t.Errorf("FromTokenizedDocs stats wrong: %v", m)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	m := docModel("apple apple bear", "cat apple")
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Errorf("round trip mismatch: %v vs %v", m, got)
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lm.json")
	m := docModel("x y", "x")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Error("Save/Load mismatch")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReadRejectsNegative(t *testing.T) {
	r := strings.NewReader(`{"docs":1,"terms":{"x":[-1,2]}}`)
	if _, err := Read(r); err == nil {
		t.Error("expected error for negative df")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestDumpTSV(t *testing.T) {
	m := docModel("b a a")
	var buf bytes.Buffer
	if err := m.DumpTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a\t1\t2") || !strings.Contains(out, "b\t1\t1") {
		t.Errorf("unexpected TSV output:\n%s", out)
	}
	if !strings.HasPrefix(out, "# docs=1") {
		t.Errorf("missing header: %q", out)
	}
	// Sorted order: a before b.
	if strings.Index(out, "\na\t") > strings.Index(out, "\nb\t") {
		t.Error("TSV not sorted")
	}
}

func TestEqual(t *testing.T) {
	a := docModel("x y")
	b := docModel("x y")
	if !a.Equal(b) {
		t.Error("identical models not Equal")
	}
	b.AddDocument([]string{"z"})
	if a.Equal(b) {
		t.Error("different models Equal")
	}
}

func TestSortedStatsOrdered(t *testing.T) {
	m := docModel("c b a")
	st := m.sortedStats()
	if len(st) != 3 || st[0].Term != "a" || st[2].Term != "c" {
		t.Errorf("sortedStats = %v", st)
	}
}

func TestMergePreservesTotals(t *testing.T) {
	// Property: after merging, totalCTF equals the sum of per-term CTFs.
	if err := quick.Check(func(na, nb uint8) bool {
		a, b := New(), New()
		for i := 0; i < int(na%10)+1; i++ {
			a.AddDocument([]string{term(i), term(i + 1)})
		}
		for i := 0; i < int(nb%10)+1; i++ {
			b.AddDocument([]string{term(i + 5)})
		}
		a.Merge(b)
		var sum int64
		a.Range(func(_ string, st TermStats) bool { sum += st.CTF; return true })
		return sum == a.TotalCTF()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddDocument(b *testing.B) {
	tokens := strings.Fields(strings.Repeat("alpha beta gamma delta epsilon ", 40))
	b.ReportAllocs()
	m := New()
	for i := 0; i < b.N; i++ {
		m.AddDocument(tokens)
	}
}

func BenchmarkRanks(b *testing.B) {
	m := New()
	for i := 0; i < 5000; i++ {
		m.AddTerm(term(i), TermStats{DF: i%97 + 1, CTF: int64(i%31 + 1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ranks(ByDF)
	}
}
