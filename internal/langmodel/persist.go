package langmodel

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// modelJSON is the on-disk representation: a STARTS-like export with the
// document count and one [df, ctf] pair per term.
type modelJSON struct {
	Docs  int                 `json:"docs"`
	Terms map[string][2]int64 `json:"terms"`
}

// WriteTo serializes the model as JSON. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	dto := modelJSON{Docs: m.docs, Terms: make(map[string][2]int64, m.VocabSize())}
	m.Range(func(t string, st TermStats) bool {
		dto.Terms[t] = [2]int64{int64(st.DF), st.CTF}
		return true
	})
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	if err := enc.Encode(dto); err != nil {
		return cw.n, fmt.Errorf("langmodel: encode: %w", err)
	}
	return cw.n, nil
}

// Read parses a model previously written by WriteTo.
func Read(r io.Reader) (*Model, error) {
	var dto modelJSON
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("langmodel: decode: %w", err)
	}
	m := New()
	m.docs = dto.Docs
	// Insert in sorted term order: JSON map iteration is randomized, and
	// models read from disk must behave identically across process runs.
	terms := make([]string, 0, len(dto.Terms))
	for t := range dto.Terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		pair := dto.Terms[t]
		if pair[0] < 0 || pair[1] < 0 {
			return nil, fmt.Errorf("langmodel: negative frequency for term %q", t)
		}
		m.bump(t, int(pair[0]), pair[1])
		m.totalCTF += pair[1]
	}
	return m, nil
}

// Save writes the model to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("langmodel: save: %w", err)
	}
	if _, err := m.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("langmodel: save: %w", err)
	}
	return nil
}

// Load reads a model from a file written by Save.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("langmodel: load: %w", err)
	}
	//lint:ignore errsink file opened for reading; close cannot lose data
	defer f.Close()
	return Read(f)
}

// DumpTSV writes "term df ctf" lines in sorted term order — a human- and
// diff-friendly export used by cmd/qbsample.
func (m *Model) DumpTSV(w io.Writer) error {
	terms := m.Vocabulary()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# docs=%d terms=%d total_ctf=%d\n", m.docs, m.VocabSize(), m.totalCTF)
	for _, t := range terms {
		st, _ := m.lookup(t)
		fmt.Fprintf(bw, "%s\t%d\t%d\n", t, st.DF, st.CTF)
	}
	return bw.Flush()
}

// Equal reports whether two models have identical statistics (used by
// round-trip tests).
func (m *Model) Equal(other *Model) bool {
	if m.docs != other.docs || m.VocabSize() != other.VocabSize() {
		return false
	}
	equal := true
	m.Range(func(t string, st TermStats) bool {
		if ost, ok := other.lookup(t); !ok || ost != st {
			equal = false
		}
		return equal
	})
	return equal
}

// sortedTerms is a test helper ensuring deterministic ordering when needed.
func (m *Model) sortedStats() []struct {
	Term string
	TermStats
} {
	out := make([]struct {
		Term string
		TermStats
	}, 0, m.VocabSize())
	m.Range(func(t string, st TermStats) bool {
		out = append(out, struct {
			Term string
			TermStats
		}{t, st})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	return out
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
