package langmodel

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/analysis"
)

// docTokens fabricates deterministic pseudo-documents with a Zipf-ish mix
// of head and tail terms.
func docTokens(doc int) []string {
	var toks []string
	for i := 0; i < 30; i++ {
		toks = append(toks, fmt.Sprintf("head%02d", i%7))
		toks = append(toks, fmt.Sprintf("mid%03d", (doc*31+i)%97))
		if i%5 == 0 {
			toks = append(toks, fmt.Sprintf("tail-%d-%d", doc, i))
		}
	}
	return toks
}

func TestSnapshotMatchesClone(t *testing.T) {
	live := New()
	var snaps, clones []*Model
	for doc := 0; doc < 120; doc++ {
		live.AddDocument(docTokens(doc))
		if doc%10 == 9 {
			clones = append(clones, live.Clone())
			snaps = append(snaps, live.Snapshot())
		}
	}
	if len(snaps) != 12 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	// Later mutations must not leak into any snapshot; each snapshot must
	// equal the deep clone taken at the same instant.
	for i, snap := range snaps {
		clone := clones[i]
		if !snap.Equal(clone) {
			t.Fatalf("snapshot %d diverged from clone", i)
		}
		if snap.Docs() != clone.Docs() || snap.TotalCTF() != clone.TotalCTF() ||
			snap.VocabSize() != clone.VocabSize() {
			t.Fatalf("snapshot %d counters diverged", i)
		}
		// first-seen order preserved through the chain
		for j := 0; j < snap.VocabSize(); j++ {
			if snap.TermAt(j) != clone.TermAt(j) {
				t.Fatalf("snapshot %d order diverged at %d", i, j)
			}
		}
	}
}

func TestSnapshotChainFlattens(t *testing.T) {
	live := New()
	for doc := 0; doc < 300; doc++ {
		live.AddDocument(docTokens(doc))
		if doc%10 == 9 {
			live.Snapshot()
		}
	}
	// 30 snapshots with maxSnapshotDepth=8 must keep every chain bounded.
	for n := live; n != nil; n = n.base {
		if n.depth > maxSnapshotDepth {
			t.Fatalf("chain depth %d exceeds bound %d", n.depth, maxSnapshotDepth)
		}
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	live := New()
	live.AddDocument([]string{"a", "b", "a"})
	snap := live.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a frozen snapshot did not panic")
		}
	}()
	snap.AddDocument([]string{"c"})
}

func TestSnapshotOfSnapshotIsSame(t *testing.T) {
	live := New()
	live.AddDocument([]string{"a", "b"})
	snap := live.Snapshot()
	if snap.Snapshot() != snap {
		t.Fatal("snapshot of a frozen model should be itself")
	}
}

func TestSnapshotCloneIsMutable(t *testing.T) {
	live := New()
	live.AddDocument([]string{"a", "b", "a"})
	snap := live.Snapshot()
	live.AddDocument([]string{"c"})

	c := snap.Clone()
	c.AddDocument([]string{"d", "a"})
	if snap.Contains("d") || snap.Contains("c") {
		t.Fatal("clone mutation leaked into snapshot")
	}
	if c.DF("a") != 2 || c.CTF("a") != 3 {
		t.Fatalf("clone stats wrong: df=%d ctf=%d", c.DF("a"), c.CTF("a"))
	}
}

func TestSnapshotSerializationAndRanks(t *testing.T) {
	live := New()
	for doc := 0; doc < 40; doc++ {
		live.AddDocument(docTokens(doc))
		if doc%7 == 6 {
			live.Snapshot()
		}
	}
	snap := live.Snapshot() // chained model
	flat := snap.Clone()

	var a, b bytes.Buffer
	if _, err := snap.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := flat.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chained and flat serialization differ")
	}

	ra := snap.Ranks(ByDF)
	rb := flat.Ranks(ByDF)
	if len(ra) != len(rb) {
		t.Fatalf("rank sizes differ: %d vs %d", len(ra), len(rb))
	}
	for k, v := range ra {
		if rb[k] != v {
			t.Fatalf("rank of %q differs: %f vs %f", k, v, rb[k])
		}
	}
	tops := snap.TopTerms(ByCTF, 5)
	topf := flat.TopTerms(ByCTF, 5)
	for i := range tops {
		if tops[i] != topf[i] {
			t.Fatalf("top terms differ at %d: %s vs %s", i, tops[i], topf[i])
		}
	}
}

func TestNormalizeCached(t *testing.T) {
	live := New()
	live.AddDocument([]string{"running", "the", "runs", "cat"})
	an := analysis.Database()

	n1 := live.Normalize(an)
	n2 := live.Normalize(an)
	if n1 != n2 {
		t.Error("unchanged model not served from cache")
	}

	live.AddDocument([]string{"dog"})
	n3 := live.Normalize(an)
	if n3 == n1 {
		t.Error("stale cache returned after mutation")
	}
	if !n3.Contains("dog") {
		t.Error("recomputed view missing new term")
	}

	// A different analyzer must not hit the first analyzer's cache.
	n4 := live.Normalize(analysis.Raw())
	if n4 == n3 {
		t.Error("cache ignored analyzer identity")
	}
	if !n4.Contains("the") {
		t.Error("raw view should keep stopwords")
	}
	if n3.Contains("the") {
		t.Error("database view should drop stopwords")
	}
}

func TestNormalizeEquivalentOnChain(t *testing.T) {
	live := New()
	for doc := 0; doc < 25; doc++ {
		live.AddDocument(docTokens(doc))
		if doc%6 == 5 {
			live.Snapshot()
		}
	}
	an := analysis.Database()
	got := live.Normalize(an)
	want := live.Clone().Normalize(an)
	if !got.Equal(want) {
		t.Fatal("normalize over chain differs from normalize over flat clone")
	}
}

func TestAddDocumentSinglePassDeterminism(t *testing.T) {
	// Equivalence with the documented semantics: df +1 per distinct term,
	// ctf per occurrence, first-seen order.
	m := New()
	m.AddDocument([]string{"b", "a", "b", "c", "a", "b"})
	if m.DF("b") != 1 || m.CTF("b") != 3 {
		t.Fatalf("b: df=%d ctf=%d", m.DF("b"), m.CTF("b"))
	}
	if m.TermAt(0) != "b" || m.TermAt(1) != "a" || m.TermAt(2) != "c" {
		t.Fatal("first-seen order broken")
	}
	m.AddDocument([]string{"a", "d"})
	if m.DF("a") != 2 || m.CTF("a") != 3 || m.Docs() != 2 || m.TotalCTF() != 8 {
		t.Fatalf("counters wrong: %v", m)
	}
	if m.TermAt(3) != "d" {
		t.Fatal("new term not appended in order")
	}
}
