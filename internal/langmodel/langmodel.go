// Package langmodel implements the language models at the heart of the
// paper: for each index term, the number of documents containing it
// (document frequency, df) and its total number of occurrences (collection
// term frequency, ctf), plus the corpus-level counts database selection
// algorithms need (§2.1, §4.1).
//
// The same type serves as the *actual* language model (built from a full
// database index), the *learned* language model (built incrementally from
// sampled documents), and the *union of samples* used for query expansion
// (§8).
package langmodel

import (
	"fmt"
	"sort"
)

// TermStats carries the per-term frequency information of a language model.
type TermStats struct {
	// DF is document frequency: the number of documents containing the term.
	DF int
	// CTF is collection term frequency: total occurrences of the term.
	CTF int64
}

// AvgTF is ctf/df, the average within-document frequency (§5.2, §7).
func (t TermStats) AvgTF() float64 {
	if t.DF == 0 {
		return 0
	}
	return float64(t.CTF) / float64(t.DF)
}

// Model is a language model: a vocabulary with frequency statistics. The
// zero value is not usable; call New.
type Model struct {
	terms    map[string]TermStats
	order    []string // terms in first-seen order; see TermAt
	docs     int
	totalCTF int64
}

// New returns an empty language model.
func New() *Model {
	return &Model{terms: make(map[string]TermStats)}
}

// AddDocument folds one document's tokens into the model: df increases by
// one for each distinct term, ctf by each occurrence. This is the update
// step 4 of the sampling algorithm (§3).
func (m *Model) AddDocument(tokens []string) {
	counts := make(map[string]int, len(tokens))
	for _, t := range tokens {
		counts[t]++
	}
	// Iterate the token slice, not the map, so insertion order (and with
	// it every downstream random draw) is deterministic.
	done := make(map[string]bool, len(counts))
	for _, t := range tokens {
		if done[t] {
			continue
		}
		done[t] = true
		m.bump(t, 1, int64(counts[t]))
	}
	m.totalCTF += int64(len(tokens))
	m.docs++
}

// bump merges (df, ctf) deltas for one term, tracking first-seen order.
func (m *Model) bump(term string, df int, ctf int64) {
	st, ok := m.terms[term]
	if !ok {
		m.order = append(m.order, term)
	}
	st.DF += df
	st.CTF += ctf
	m.terms[term] = st
}

// AddTerm merges raw statistics for one term without counting a document.
// Used when ingesting cooperative (STARTS) exports.
func (m *Model) AddTerm(term string, st TermStats) {
	m.bump(term, st.DF, st.CTF)
	m.totalCTF += st.CTF
}

// SetDocs records the number of documents the model describes (used when a
// model is ingested from a cooperative export rather than built from text).
func (m *Model) SetDocs(n int) { m.docs = n }

// Docs returns the number of documents folded into the model.
func (m *Model) Docs() int { return m.docs }

// TotalCTF returns the total number of term occurrences in the model.
func (m *Model) TotalCTF() int64 { return m.totalCTF }

// VocabSize returns the number of distinct terms.
func (m *Model) VocabSize() int { return len(m.terms) }

// Stats returns the frequency statistics for a term, with ok reporting
// whether the term is in the vocabulary.
func (m *Model) Stats(term string) (TermStats, bool) {
	st, ok := m.terms[term]
	return st, ok
}

// DF returns the document frequency of term (0 if absent).
func (m *Model) DF(term string) int { return m.terms[term].DF }

// CTF returns the collection term frequency of term (0 if absent).
func (m *Model) CTF(term string) int64 { return m.terms[term].CTF }

// Contains reports whether the term is in the vocabulary.
func (m *Model) Contains(term string) bool {
	_, ok := m.terms[term]
	return ok
}

// TermAt returns the i-th term in first-seen order, 0 <= i < VocabSize().
// It gives selectors O(1) uniform random access to the vocabulary without
// sorting it on every draw.
func (m *Model) TermAt(i int) string { return m.order[i] }

// Vocabulary returns the terms in sorted order (deterministic for tests and
// reports).
func (m *Model) Vocabulary() []string {
	out := make([]string, 0, len(m.terms))
	for t := range m.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Range calls fn for every term in first-seen order until fn returns
// false.
func (m *Model) Range(fn func(term string, st TermStats) bool) {
	for _, t := range m.order {
		if !fn(t, m.terms[t]) {
			return
		}
	}
}

// Clone returns a deep copy.
func (m *Model) Clone() *Model {
	c := &Model{
		terms:    make(map[string]TermStats, len(m.terms)),
		order:    append([]string(nil), m.order...),
		docs:     m.docs,
		totalCTF: m.totalCTF,
	}
	for t, st := range m.terms {
		c.terms[t] = st
	}
	return c
}

// Merge folds other into m (vocabulary union, summed statistics, summed
// document counts). The union of per-database samples that §8 uses for
// query expansion is built this way.
func (m *Model) Merge(other *Model) {
	for _, t := range other.order {
		st := other.terms[t]
		m.bump(t, st.DF, st.CTF)
	}
	m.docs += other.docs
	m.totalCTF += other.totalCTF
}

// String summarizes the model for logs.
func (m *Model) String() string {
	return fmt.Sprintf("langmodel(%d terms, %d docs, %d occurrences)",
		len(m.terms), m.docs, m.totalCTF)
}
