// Package langmodel implements the language models at the heart of the
// paper: for each index term, the number of documents containing it
// (document frequency, df) and its total number of occurrences (collection
// term frequency, ctf), plus the corpus-level counts database selection
// algorithms need (§2.1, §4.1).
//
// The same type serves as the *actual* language model (built from a full
// database index), the *learned* language model (built incrementally from
// sampled documents), and the *union of samples* used for query expansion
// (§8).
//
// A Model is either *live* (mutable, built by AddDocument/AddTerm/Merge)
// or *frozen* (an immutable snapshot taken with Snapshot). Snapshots are
// copy-on-write: internally a model may be a small overlay of recent
// changes on top of a chain of frozen base layers, so taking a snapshot
// costs O(changes since the last snapshot), not O(vocabulary). All
// accessors resolve through the chain transparently; mutating a frozen
// model panics.
package langmodel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// TermStats carries the per-term frequency information of a language model.
type TermStats struct {
	// DF is document frequency: the number of documents containing the term.
	DF int
	// CTF is collection term frequency: total occurrences of the term.
	CTF int64
}

// AvgTF is ctf/df, the average within-document frequency (§5.2, §7).
func (t TermStats) AvgTF() float64 {
	if t.DF == 0 {
		return 0
	}
	return float64(t.CTF) / float64(t.DF)
}

// maxSnapshotDepth bounds the copy-on-write layer chain: a snapshot whose
// chain would exceed this depth is materialized flat instead, so term
// lookups stay O(maxSnapshotDepth) in the worst case while snapshots
// remain O(delta) in the common case.
const maxSnapshotDepth = 8

// Model is a language model: a vocabulary with frequency statistics. The
// zero value is not usable; call New.
type Model struct {
	// terms holds the stats written since the last snapshot cut. For a
	// flat model (base == nil) it holds the whole vocabulary; otherwise a
	// term missing here resolves through the base chain.
	terms map[string]TermStats
	// base is the frozen layer beneath this model's overlay (nil for flat
	// models). Base layers are immutable and may be shared by several
	// snapshots and the live model.
	base *Model
	// depth is the number of base layers beneath this one.
	depth int
	// frozen marks an immutable snapshot; mutating it panics.
	frozen   bool
	order    []string // terms in first-seen order; see TermAt
	docs     int
	totalCTF int64

	// version counts mutations, invalidating the normalize cache.
	version uint64
	// Normalize memoization (see normalize.go). Guarded by normMu so
	// read-only sharing of a model across goroutines stays race-free.
	normMu      sync.Mutex
	normVal     *Model
	normAn      analysis.Analyzer
	normVersion uint64
	normValid   bool
}

// New returns an empty language model.
func New() *Model {
	return &Model{terms: make(map[string]TermStats)}
}

// lookup resolves a term's stats through the copy-on-write chain.
func (m *Model) lookup(term string) (TermStats, bool) {
	for n := m; n != nil; n = n.base {
		if st, ok := n.terms[term]; ok {
			return st, true
		}
	}
	return TermStats{}, false
}

// AddDocument folds one document's tokens into the model: df increases by
// one for each distinct term, ctf by each occurrence. This is the update
// step 4 of the sampling algorithm (§3). A single pass over the tokens
// with one scratch map does both counts; insertion order (and with it
// every downstream random draw) stays deterministic because new terms are
// appended the moment they are first seen.
func (m *Model) AddDocument(tokens []string) {
	m.mutable()
	counts := make(map[string]int, len(tokens))
	distinct := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if counts[t] == 0 {
			distinct = append(distinct, t)
		}
		counts[t]++
	}
	for _, t := range distinct {
		st, ok := m.lookup(t)
		n := counts[t]
		if !ok {
			// Own the vocabulary: tokens from analysis.AppendTokens may
			// alias the source document, and the model outlives it.
			t = strings.Clone(t)
			m.order = append(m.order, t)
		}
		st.DF++
		st.CTF += int64(n)
		m.terms[t] = st
	}
	m.totalCTF += int64(len(tokens))
	m.docs++
	m.version++
}

// mutable panics when the model is a frozen snapshot.
func (m *Model) mutable() {
	if m.frozen {
		panic("langmodel: mutating a frozen snapshot")
	}
}

// bump merges (df, ctf) deltas for one term, tracking first-seen order.
func (m *Model) bump(term string, df int, ctf int64) {
	m.mutable()
	st, ok := m.lookup(term)
	if !ok {
		// See AddDocument: new terms are cloned so the model never pins a
		// caller's source text via an aliased token.
		term = strings.Clone(term)
		m.order = append(m.order, term)
	}
	st.DF += df
	st.CTF += ctf
	m.terms[term] = st
	m.version++
}

// AddTerm merges raw statistics for one term without counting a document.
// Used when ingesting cooperative (STARTS) exports.
func (m *Model) AddTerm(term string, st TermStats) {
	m.bump(term, st.DF, st.CTF)
	m.totalCTF += st.CTF
}

// SetDocs records the number of documents the model describes (used when a
// model is ingested from a cooperative export rather than built from text).
func (m *Model) SetDocs(n int) {
	m.mutable()
	m.docs = n
	m.version++
}

// Docs returns the number of documents folded into the model.
func (m *Model) Docs() int { return m.docs }

// TotalCTF returns the total number of term occurrences in the model.
func (m *Model) TotalCTF() int64 { return m.totalCTF }

// VocabSize returns the number of distinct terms.
func (m *Model) VocabSize() int { return len(m.order) }

// Stats returns the frequency statistics for a term, with ok reporting
// whether the term is in the vocabulary.
func (m *Model) Stats(term string) (TermStats, bool) {
	return m.lookup(term)
}

// DF returns the document frequency of term (0 if absent).
func (m *Model) DF(term string) int {
	st, _ := m.lookup(term)
	return st.DF
}

// CTF returns the collection term frequency of term (0 if absent).
func (m *Model) CTF(term string) int64 {
	st, _ := m.lookup(term)
	return st.CTF
}

// Contains reports whether the term is in the vocabulary.
func (m *Model) Contains(term string) bool {
	_, ok := m.lookup(term)
	return ok
}

// TermAt returns the i-th term in first-seen order, 0 <= i < VocabSize().
// It gives selectors O(1) uniform random access to the vocabulary without
// sorting it on every draw.
func (m *Model) TermAt(i int) string { return m.order[i] }

// Vocabulary returns the terms in sorted order (deterministic for tests and
// reports).
func (m *Model) Vocabulary() []string {
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// Range calls fn for every term in first-seen order until fn returns
// false.
func (m *Model) Range(fn func(term string, st TermStats) bool) {
	for _, t := range m.order {
		st, _ := m.lookup(t)
		if !fn(t, st) {
			return
		}
	}
}

// Snapshot returns an immutable view of the model's current state. Unlike
// Clone it does not copy the vocabulary: the live model's overlay map is
// frozen in place as a new base layer and the live model continues with a
// fresh, empty overlay, so the cost is O(terms changed since the last
// snapshot). The sampler takes one of these every SnapshotEvery documents
// (§4.4's 50-document metric grid), which used to deep-copy the entire
// vocabulary each time.
func (m *Model) Snapshot() *Model {
	if m.frozen {
		return m // already immutable
	}
	fr := &Model{
		terms:    m.terms,
		base:     m.base,
		depth:    m.depth,
		frozen:   true,
		order:    m.order[:len(m.order):len(m.order)],
		docs:     m.docs,
		totalCTF: m.totalCTF,
	}
	if fr.depth >= maxSnapshotDepth {
		fr = fr.flatten()
		fr.frozen = true
	}
	m.base = fr
	m.depth = fr.depth + 1
	m.terms = make(map[string]TermStats)
	return fr
}

// flatten materializes the chain into a single flat layer. The result is
// live (not frozen) unless the caller marks it otherwise.
func (m *Model) flatten() *Model {
	c := &Model{
		terms:    make(map[string]TermStats, len(m.order)),
		order:    append([]string(nil), m.order...),
		docs:     m.docs,
		totalCTF: m.totalCTF,
	}
	for _, t := range c.order {
		st, _ := m.lookup(t)
		c.terms[t] = st
	}
	return c
}

// Clone returns a deep, flat, mutable copy.
func (m *Model) Clone() *Model {
	return m.flatten()
}

// Merge folds other into m (vocabulary union, summed statistics, summed
// document counts). The union of per-database samples that §8 uses for
// query expansion is built this way.
func (m *Model) Merge(other *Model) {
	other.Range(func(t string, st TermStats) bool {
		m.bump(t, st.DF, st.CTF)
		return true
	})
	m.docs += other.docs
	m.totalCTF += other.totalCTF
}

// String summarizes the model for logs.
func (m *Model) String() string {
	return fmt.Sprintf("langmodel(%d terms, %d docs, %d occurrences)",
		len(m.order), m.docs, m.totalCTF)
}
