package langmodel

import "encoding/binary"

// Fingerprint returns a 64-bit content hash of the model: the corpus-level
// counts plus every (term, df, ctf) triple. Per-term hashes are combined
// by XOR, so the fingerprint is independent of insertion order — a model
// built by sampling and the same model read back from disk (which inserts
// in sorted order) fingerprint identically.
//
// The snapshot store uses it to detect that persisted models moved on
// without the compiled snapshot (a crash between a model write and the
// snapshot write): a mismatch forces a full recompile instead of serving
// stale statistics. It is an integrity check against accidents, not an
// adversary-proof digest.
func (m *Model) Fingerprint() uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	var buf [8]byte
	mix := func(h uint64, v uint64) uint64 {
		binary.LittleEndian.PutUint64(buf[:], v)
		for _, b := range buf {
			h ^= uint64(b)
			h *= prime64
		}
		return h
	}
	hashString := func(s string) uint64 {
		h := uint64(offset64)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		return h
	}
	h := uint64(offset64)
	h = mix(h, uint64(m.docs))
	h = mix(h, uint64(m.totalCTF))
	h = mix(h, uint64(m.VocabSize()))
	var terms uint64
	m.Range(func(t string, st TermStats) bool {
		th := hashString(t)
		th = mix(th, uint64(st.DF))
		th = mix(th, uint64(st.CTF))
		terms ^= th
		return true
	})
	return h ^ terms
}
