package langmodel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary model format. A selection service indexes thousands of databases
// (§1: "scale efficiently to millions of databases"), so stored models
// should be compact and fast to load. The layout is:
//
//	magic   "QBLM1"
//	uvarint docs
//	uvarint number of terms
//	per term, in sorted term order:
//	  uvarint len(term), term bytes, uvarint df, uvarint ctf
//
// Terms are delta-friendly (sorted) and the whole file is deterministic
// for a given model. Typical models are 3–5× smaller than the JSON form.

var binaryMagic = []byte("QBLM1")

// maxBinaryTerms bounds decoding allocations against corrupt headers.
const maxBinaryTerms = 1 << 28

// WriteBinary serializes the model in the compact binary format.
func (m *Model) WriteBinary(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(binaryMagic); err != nil {
		return cw.n, fmt.Errorf("langmodel: write magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(m.docs)); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(uint64(m.VocabSize())); err != nil {
		return cw.n, err
	}
	terms := m.Vocabulary()
	for _, t := range terms {
		st, _ := m.lookup(t)
		if err := writeUvarint(uint64(len(t))); err != nil {
			return cw.n, err
		}
		if _, err := bw.WriteString(t); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(st.DF)); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(st.CTF)); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, fmt.Errorf("langmodel: flush: %w", err)
	}
	return cw.n, nil
}

// ReadBinary parses a model written by WriteBinary.
func ReadBinary(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("langmodel: read magic: %w", err)
	}
	if string(magic) != string(binaryMagic) {
		return nil, fmt.Errorf("langmodel: bad magic %q", magic)
	}
	docs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("langmodel: docs: %w", err)
	}
	nterms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("langmodel: term count: %w", err)
	}
	if nterms > maxBinaryTerms {
		return nil, fmt.Errorf("langmodel: implausible term count %d", nterms)
	}
	m := New()
	m.docs = int(docs)
	var nameBuf []byte
	for i := uint64(0); i < nterms; i++ {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("langmodel: term %d length: %w", i, err)
		}
		if l > 1<<20 {
			return nil, fmt.Errorf("langmodel: implausible term length %d", l)
		}
		if uint64(cap(nameBuf)) < l {
			nameBuf = make([]byte, l)
		}
		nameBuf = nameBuf[:l]
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("langmodel: term %d bytes: %w", i, err)
		}
		df, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("langmodel: term %d df: %w", i, err)
		}
		ctf, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("langmodel: term %d ctf: %w", i, err)
		}
		term := string(nameBuf)
		if m.Contains(term) {
			return nil, fmt.Errorf("langmodel: duplicate term %q", term)
		}
		m.bump(term, int(df), int64(ctf))
		m.totalCTF += int64(ctf)
	}
	return m, nil
}
