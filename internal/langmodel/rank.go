package langmodel

import "sort"

// RankMetric selects the frequency statistic used to order terms.
type RankMetric int

const (
	// ByDF orders by document frequency (the paper's primary ranking, §4.3.3).
	ByDF RankMetric = iota
	// ByCTF orders by collection term frequency.
	ByCTF
	// ByAvgTF orders by average term frequency ctf/df (§5.2, Table 4).
	ByAvgTF
)

func (r RankMetric) String() string {
	switch r {
	case ByDF:
		return "df"
	case ByCTF:
		return "ctf"
	case ByAvgTF:
		return "avg-tf"
	}
	return "unknown"
}

// value returns the metric value for a term's stats.
func (r RankMetric) value(st TermStats) float64 {
	switch r {
	case ByDF:
		return float64(st.DF)
	case ByCTF:
		return float64(st.CTF)
	case ByAvgTF:
		return st.AvgTF()
	}
	return 0
}

// TopTerms returns the n highest-ranked terms under the metric, most
// frequent first. Ties break alphabetically for determinism. This is the §7
// database-summary primitive.
func (m *Model) TopTerms(metric RankMetric, n int) []string {
	terms := m.Vocabulary()
	values := make(map[string]float64, len(terms))
	for _, t := range terms {
		st, _ := m.lookup(t)
		values[t] = metric.value(st)
	}
	sort.SliceStable(terms, func(i, j int) bool {
		vi, vj := values[terms[i]], values[terms[j]]
		if vi != vj {
			return vi > vj
		}
		return terms[i] < terms[j]
	})
	if n > len(terms) {
		n = len(terms)
	}
	return terms[:n]
}

// Ranks returns the fractional (tie-averaged) rank of every term under the
// metric: the most frequent term has rank 1, and terms with equal metric
// values share the average of the ranks they would occupy. Fractional ranks
// are what rank-correlation statistics require when ties are massive, as
// they are for df-ranked vocabularies (half the vocabulary has df == 1).
func (m *Model) Ranks(metric RankMetric) map[string]float64 {
	return m.ranks(metric, false)
}

// DenseRanks returns dense ranks: terms with equal metric values share one
// rank value, and the next distinct value takes the next integer
// (1, 2, 2, 3...). This is the paper's rank convention — "multiple terms
// can occupy each rank, as is usually the case in language models" (§6) —
// used by its Spearman formula and by rdiff.
func (m *Model) DenseRanks(metric RankMetric) map[string]float64 {
	return m.ranks(metric, true)
}

func (m *Model) ranks(metric RankMetric, dense bool) map[string]float64 {
	type tv struct {
		term string
		v    float64
	}
	items := make([]tv, 0, len(m.order))
	for _, t := range m.order {
		st, _ := m.lookup(t)
		items = append(items, tv{t, metric.value(st)})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].term < items[j].term
	})
	ranks := make(map[string]float64, len(items))
	denseRank := 0
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].v == items[i].v {
			j++
		}
		denseRank++
		// items[i:j] tie: they share one rank value.
		v := float64(i+j+1) / 2 // fractional: mean of positions i+1 .. j
		if dense {
			v = float64(denseRank)
		}
		for k := i; k < j; k++ {
			ranks[items[k].term] = v
		}
		i = j
	}
	return ranks
}
