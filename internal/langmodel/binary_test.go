package langmodel

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	m := docModel("apple apple bear", "cat apple", "döner über") // non-ascii too
	var buf bytes.Buffer
	if _, err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinaryEmptyModel(t *testing.T) {
	m := New()
	var buf bytes.Buffer
	if _, err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VocabSize() != 0 || got.Docs() != 0 {
		t.Errorf("empty model round trip: %v", got)
	}
}

func TestBinaryDeterministic(t *testing.T) {
	m := docModel("zeta alpha mid", "alpha beta")
	var a, b bytes.Buffer
	if _, err := m.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("binary encoding not deterministic")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	m := New()
	for i := 0; i < 2000; i++ {
		m.AddTerm(term(i)+"suffix", TermStats{DF: i%50 + 1, CTF: int64(i%200 + 1)})
	}
	var bin, js bytes.Buffer
	if _, err := m.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(&js); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Errorf("binary %d bytes not smaller than JSON %d bytes", bin.Len(), js.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"QBLM",              // truncated magic
		"XXXXX",             // wrong magic
		"QBLM1",             // no body
		"QBLM1\x01",         // truncated term count
		"QBLM1\x01\x01\xff", // truncated term
	}
	for _, c := range cases {
		if _, err := ReadBinary(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

func TestBinaryRejectsDuplicateTerms(t *testing.T) {
	// Handcraft a payload with the same term twice.
	var buf bytes.Buffer
	buf.WriteString("QBLM1")
	buf.WriteByte(1) // docs
	buf.WriteByte(2) // two terms
	for i := 0; i < 2; i++ {
		buf.WriteByte(3) // len
		buf.WriteString("abc")
		buf.WriteByte(1) // df
		buf.WriteByte(1) // ctf
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("duplicate term accepted")
	}
}

func TestBinaryQuickRoundTrip(t *testing.T) {
	if err := quick.Check(func(words [6]uint16, dfs [6]uint8) bool {
		m := New()
		for i := range words {
			m.AddTerm(term(int(words[i])), TermStats{DF: int(dfs[i]) + 1, CTF: int64(dfs[i]) + 2})
		}
		var buf bytes.Buffer
		if _, err := m.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && got.Equal(m)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func FuzzReadBinary(f *testing.F) {
	m := docModel("seed words here", "more seed text")
	var buf bytes.Buffer
	if _, err := m.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("QBLM1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var sum int64
		got.Range(func(_ string, st TermStats) bool {
			sum += st.CTF
			return true
		})
		if sum != got.TotalCTF() {
			t.Fatal("decoded model violates ctf invariant")
		}
	})
}

func BenchmarkWriteBinary(b *testing.B) {
	m := New()
	for i := 0; i < 10000; i++ {
		m.AddTerm(term(i)+"x", TermStats{DF: i%100 + 1, CTF: int64(i%500 + 1)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := m.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	m := New()
	for i := 0; i < 10000; i++ {
		m.AddTerm(term(i)+"x", TermStats{DF: i%100 + 1, CTF: int64(i%500 + 1)})
	}
	var buf bytes.Buffer
	if _, err := m.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
