package langmodel

import "repro/internal/analysis"

// Normalize returns a new model whose terms have been passed through the
// analyzer: stopped terms are dropped and stemmed variants merged. This is
// the comparison protocol of §4.1 — learned models are built raw, and
// stemming/stopping is applied only when comparing against a database's
// (stemmed, stopped) actual model.
//
// Merging variants sums df, which can overcount the true stem df when one
// document contains several variants of the same stem; the true value is
// unrecoverable from term-level statistics alone. The bias is small and
// identical across experiment arms, so comparisons remain valid.
func (m *Model) Normalize(an analysis.Analyzer) *Model {
	out := New()
	out.docs = m.docs
	for _, t := range m.order {
		nt, ok := an.Term(t)
		if !ok {
			continue
		}
		st := m.terms[t]
		out.bump(nt, st.DF, st.CTF)
		out.totalCTF += st.CTF
	}
	return out
}

// Restrict returns a copy of m containing only terms present in other's
// vocabulary. Controlled comparisons in the paper consider "only ... words
// that appeared in both language models" (§4.1).
func (m *Model) Restrict(other *Model) *Model {
	out := New()
	out.docs = m.docs
	for _, t := range m.order {
		if other.Contains(t) {
			st := m.terms[t]
			out.bump(t, st.DF, st.CTF)
			out.totalCTF += st.CTF
		}
	}
	return out
}

// Prune returns a copy of m without terms whose document frequency is
// below minDF. About half of a text database's vocabulary occurs exactly
// once (§4.3.1); a selection service indexing "millions of databases" (§1)
// can shed that tail with almost no effect on selection accuracy — the
// ext ablation BenchmarkAblationPruning quantifies the trade.
// Document counts are preserved; totals shrink by the pruned mass.
func (m *Model) Prune(minDF int) *Model {
	out := New()
	out.docs = m.docs
	for _, t := range m.order {
		st := m.terms[t]
		if st.DF < minDF {
			continue
		}
		out.bump(t, st.DF, st.CTF)
		out.totalCTF += st.CTF
	}
	return out
}

// FromTokenizedDocs builds a model by running the analyzer over each
// document text in docs.
func FromTokenizedDocs(texts []string, an analysis.Analyzer) *Model {
	m := New()
	for _, text := range texts {
		m.AddDocument(an.Tokens(text))
	}
	return m
}
