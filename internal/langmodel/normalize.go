package langmodel

import "repro/internal/analysis"

// Normalize returns a new model whose terms have been passed through the
// analyzer: stopped terms are dropped and stemmed variants merged. This is
// the comparison protocol of §4.1 — learned models are built raw, and
// stemming/stopping is applied only when comparing against a database's
// (stemmed, stopped) actual model.
//
// The result is memoized per (analyzer, model version): normalizing an
// unchanged model with the same analyzer again returns the cached view
// instead of rebuilding it. Every per-snapshot metric and every oracle
// stop condition normalizes before comparing, so the cache removes a full
// vocabulary rebuild from those hot paths. The cached view is shared —
// callers must treat the returned model as read-only, which every caller
// in this repository already does.
//
// Merging variants sums df, which can overcount the true stem df when one
// document contains several variants of the same stem; the true value is
// unrecoverable from term-level statistics alone. The bias is small and
// identical across experiment arms, so comparisons remain valid.
func (m *Model) Normalize(an analysis.Analyzer) *Model {
	m.normMu.Lock()
	if m.normValid && m.normAn == an && m.normVersion == m.version {
		out := m.normVal
		m.normMu.Unlock()
		return out
	}
	version := m.version
	m.normMu.Unlock()

	out := New()
	out.docs = m.docs
	for _, t := range m.order {
		nt, ok := an.Term(t)
		if !ok {
			continue
		}
		st, _ := m.lookup(t)
		out.bump(nt, st.DF, st.CTF)
		out.totalCTF += st.CTF
	}

	m.normMu.Lock()
	m.normVal, m.normAn, m.normVersion, m.normValid = out, an, version, true
	m.normMu.Unlock()
	return out
}

// Restrict returns a copy of m containing only terms present in other's
// vocabulary. Controlled comparisons in the paper consider "only ... words
// that appeared in both language models" (§4.1).
func (m *Model) Restrict(other *Model) *Model {
	out := New()
	out.docs = m.docs
	for _, t := range m.order {
		if other.Contains(t) {
			st, _ := m.lookup(t)
			out.bump(t, st.DF, st.CTF)
			out.totalCTF += st.CTF
		}
	}
	return out
}

// Prune returns a copy of m without terms whose document frequency is
// below minDF. About half of a text database's vocabulary occurs exactly
// once (§4.3.1); a selection service indexing "millions of databases" (§1)
// can shed that tail with almost no effect on selection accuracy — the
// ext ablation BenchmarkAblationPruning quantifies the trade.
// Document counts are preserved; totals shrink by the pruned mass.
func (m *Model) Prune(minDF int) *Model {
	out := New()
	out.docs = m.docs
	for _, t := range m.order {
		st, _ := m.lookup(t)
		if st.DF < minDF {
			continue
		}
		out.bump(t, st.DF, st.CTF)
		out.totalCTF += st.CTF
	}
	return out
}

// FromTokenizedDocs builds a model by running the analyzer over each
// document text in docs.
func FromTokenizedDocs(texts []string, an analysis.Analyzer) *Model {
	m := New()
	for _, text := range texts {
		m.AddDocument(an.Tokens(text))
	}
	return m
}
