package langmodel

import (
	"strings"
	"testing"
)

// FuzzRead hardens the persistence decoder against malformed or hostile
// inputs: it must either return an error or a structurally sound model,
// never panic.
func FuzzRead(f *testing.F) {
	seeds := []string{
		`{"docs":1,"terms":{"x":[1,2]}}`,
		`{"docs":0,"terms":{}}`,
		`{"docs":-5,"terms":{"":[0,0]}}`,
		`{"docs":1,"terms":{"x":[-1,2]}}`,
		`not json`,
		`{"docs":1e99}`,
		`{"terms":{"a":[1,1],"b":[2,2],"c":[3,3]}}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		// A successfully decoded model must satisfy its invariants.
		var sum int64
		m.Range(func(term string, st TermStats) bool {
			if st.DF < 0 || st.CTF < 0 {
				t.Fatalf("negative stats survived decode: %q %+v", term, st)
			}
			sum += st.CTF
			return true
		})
		if sum != m.TotalCTF() {
			t.Fatalf("totalCTF %d != per-term sum %d", m.TotalCTF(), sum)
		}
		if m.VocabSize() != len(m.Vocabulary()) {
			t.Fatal("vocab size inconsistent")
		}
	})
}
