package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Exposition: one registry, two wire formats. WriteJSON emits the
// Snapshot as JSON (map keys sorted by encoding/json — golden-testable);
// WritePrometheus emits the Prometheus text exposition format (version
// 0.0.4), grouping samples by metric family and iterating families and
// label sets in sorted order.

// WriteJSON writes the registry's snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// splitName separates a metric name into its base and literal label set:
// `x_total{db="a"}` → ("x_total", `db="a"`). A name without braces has an
// empty label set.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// family groups every metric of one kind sharing a base name.
type family struct {
	base    string
	kind    string // "counter", "gauge", "histogram"
	entries []familyEntry
}

type familyEntry struct {
	labels string
	value  int64             // counter/gauge
	hist   HistogramSnapshot // histogram
}

// families buckets a snapshot into sorted metric families.
func families(snap Snapshot) []family {
	byBase := map[string]*family{}
	add := func(name, kind string, e familyEntry) {
		base, labels := splitName(name)
		f := byBase[base]
		if f == nil {
			f = &family{base: base, kind: kind}
			byBase[base] = f
		}
		e.labels = labels
		f.entries = append(f.entries, e)
	}
	for name, v := range snap.Counters {
		add(name, "counter", familyEntry{value: v})
	}
	for name, v := range snap.Gauges {
		add(name, "gauge", familyEntry{value: v})
	}
	for name, h := range snap.Histograms {
		add(name, "histogram", familyEntry{hist: h})
	}
	out := make([]family, 0, len(byBase))
	for _, f := range byBase {
		sort.Slice(f.entries, func(i, j int) bool { return f.entries[i].labels < f.entries[j].labels })
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// joinLabels merges a base label set with one extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatBound renders a bucket bound the way Prometheus expects in `le`.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range families(r.Snapshot()) {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.base, f.kind); err != nil {
			return err
		}
		for _, e := range f.entries {
			switch f.kind {
			case "histogram":
				cum := int64(0)
				for i, bound := range e.hist.Bounds {
					cum = e.hist.Cumulative[i]
					le := joinLabels(e.labels, `le="`+formatBound(bound)+`"`)
					if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.base, le, cum); err != nil {
						return err
					}
				}
				le := joinLabels(e.labels, `le="+Inf"`)
				if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", f.base, le, e.hist.Count); err != nil {
					return err
				}
				suffix := ""
				if e.labels != "" {
					suffix = "{" + e.labels + "}"
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.base, suffix, e.hist.Sum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.base, suffix, e.hist.Count); err != nil {
					return err
				}
			default:
				name := f.base
				if e.labels != "" {
					name += "{" + e.labels + "}"
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", name, e.value); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ContentTypePrometheus is the content type of the text exposition format.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry at a /metrics endpoint with Accept
// negotiation: a client whose Accept header names application/json gets
// the JSON snapshot, everything else (Prometheus scrapers send text/plain
// or */*) gets the text exposition format. `?format=json` and
// `?format=prometheus` override the header.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", ContentTypePrometheus)
		r.WritePrometheus(w)
	})
}

// wantsJSON decides the response format for Handler.
func wantsJSON(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "json":
		return true
	case "prometheus", "text":
		return false
	}
	for _, part := range strings.Split(req.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mt == "application/json" {
			return true
		}
	}
	return false
}

// VarsHandler serves the registry as always-JSON, the /debug/vars
// (expvar) convention.
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
}
