package telemetry

import "testing"

func TestWindowQuantileExact(t *testing.T) {
	w := NewWindow(100)
	if got := w.Quantile(0.99); got != 0 {
		t.Errorf("empty window quantile = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i))
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}} {
		if got := w.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d, want 100", w.Count())
	}
}

func TestWindowForgets(t *testing.T) {
	w := NewWindow(16)
	for i := 0; i < 16; i++ {
		w.Observe(1000) // a slow episode fills the window
	}
	if got := w.Quantile(0.99); got != 1000 {
		t.Fatalf("poisoned window p99 = %v, want 1000", got)
	}
	for i := 0; i < 64; i++ {
		w.Observe(1) // recovery traffic pushes the episode out
	}
	if got := w.Quantile(0.99); got != 1 {
		t.Errorf("recovered window p99 = %v, want 1 (Histogram would still be poisoned)", got)
	}
	if w.Count() != 16 {
		t.Errorf("Count = %d, want the window size", w.Count())
	}
}

func TestWindowCacheRefreshesDuringFill(t *testing.T) {
	// Quantile between observations must track the growing window even
	// before a full recalc stride has passed.
	w := NewWindow(64)
	w.Observe(5)
	if got := w.Quantile(0.99); got != 5 {
		t.Fatalf("1-observation p99 = %v, want 5", got)
	}
	w.Observe(7)
	if got := w.Quantile(1.0); got != 7 {
		t.Errorf("max after growth = %v, want 7 (stale cache)", got)
	}
}

func TestWindowNilAndNaN(t *testing.T) {
	var w *Window
	w.Observe(1) // no panic
	if w.Quantile(0.5) != 0 || w.Count() != 0 {
		t.Error("nil window must report zero")
	}
	real := NewWindow(16)
	real.Observe(nan())
	if real.Count() != 0 {
		t.Error("NaN observation was recorded")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
