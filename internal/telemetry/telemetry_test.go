package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("inflight")
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(3)
	r.Histogram("c").Observe(0.5)
	r.SetClock(nil)
	sp := r.StartSpan("d")
	sp.End()
	r.Timer("e")()
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote prometheus output: %q", buf.String())
	}
}

func TestCountersAreConcurrencySafe(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//lint:ignore baregoroutine bounded test fan-out joined via wg below
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("n_total").Inc()
				r.Histogram("h_seconds").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n_total").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h_seconds").Snapshot().Count; got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0,1]: every quantile interpolates
	// inside the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if p50 := h.Quantile(0.5); p50 <= 0 || p50 > 1 {
		t.Fatalf("p50 = %v, want within (0,1]", p50)
	}
	// Push 100 more into (1,2]: the median moves into bucket 2's range.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if p50 := h.Quantile(0.5); p50 < 0.5 || p50 > 2 {
		t.Fatalf("p50 after shift = %v, want in [0.5,2]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 1 || p99 > 2 {
		t.Fatalf("p99 = %v, want in (1,2]", p99)
	}
	// Overflow clamps to the top finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile = %v, want clamp to 1", got)
	}
}

func TestSpanUsesInjectedClock(t *testing.T) {
	r := NewRegistry()
	clk := NewManualClock(time.Unix(1000, 0))
	r.SetClock(clk.Now)
	sp := r.StartSpan("op_seconds").WithTrace("req-000001")
	clk.Advance(250 * time.Millisecond)
	if d := sp.End(); d != 250*time.Millisecond {
		t.Fatalf("span duration = %v, want 250ms", d)
	}
	if sp.Trace() != "req-000001" {
		t.Fatalf("trace = %q", sp.Trace())
	}
	// Second End must not double-observe.
	sp.End()
	snap := r.Histogram("op_seconds").Snapshot()
	if snap.Count != 1 {
		t.Fatalf("observations = %d, want 1", snap.Count)
	}
	if snap.Sum != 0.25 {
		t.Fatalf("sum = %v, want 0.25", snap.Sum)
	}
}

func TestSnapshotJSONIsDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		clk := NewManualClock(time.Unix(0, 0))
		r.SetClock(clk.Now)
		// Insertion order differs run to run only via map iteration;
		// registering in two different orders must not matter.
		r.Counter(`b_total{db="x"}`).Add(2)
		r.Counter("a_total").Inc()
		r.Gauge("g").Set(-4)
		h := r.HistogramBuckets("h_seconds", []float64{0.1, 1})
		h.Observe(0.05)
		h.Observe(0.5)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(a), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["a_total"] != 1 || snap.Counters[`b_total{db="x"}`] != 2 {
		t.Fatalf("counters wrong: %+v", snap.Counters)
	}
	if snap.Histograms["h_seconds"].Count != 2 {
		t.Fatalf("histogram count wrong: %+v", snap.Histograms["h_seconds"])
	}
}

func TestTraceIDsAreSequential(t *testing.T) {
	ids := NewTraceIDs("req")
	if a := ids.Next(); a != "req-000001" {
		t.Fatalf("first id = %q", a)
	}
	if b := ids.Next(); b != "req-000002" {
		t.Fatalf("second id = %q", b)
	}
}

func TestNewLoggerKeyValueOutput(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo, false)
	lg.Info("sample start", TraceKey, "req-000007", "db", "wsj88")
	line := buf.String()
	for _, want := range []string{"msg=\"sample start\"", "trace=req-000007", "db=wsj88"} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "time=") {
		t.Fatalf("log line %q contains a timestamp despite includeTime=false", line)
	}
	lg.Debug("below level")
	if strings.Contains(buf.String(), "below level") {
		t.Fatal("debug line emitted at info level")
	}
}
