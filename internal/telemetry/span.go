package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span measures one timed operation against the registry's clock. Start
// one with StartSpan, finish it with End; the elapsed time lands in the
// histogram named by the span. Spans are cheap value-carriers, not a
// distributed-tracing system — the trace ID is for log correlation.
type Span struct {
	reg   *Registry
	name  string
	trace string
	start time.Time
	done  atomic.Bool
}

// StartSpan begins a span whose duration will be observed into the
// histogram named name when End is called. On a nil registry the span is
// inert.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{reg: r, name: name, start: r.now()}
}

// WithTrace attaches a trace ID for log correlation and returns the span.
func (s *Span) WithTrace(id string) *Span {
	if s != nil {
		s.trace = id
	}
	return s
}

// Trace returns the span's trace ID ("" when unset).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// End observes the span's elapsed time (per the registry clock) into its
// histogram and returns the duration. Multiple Ends are idempotent: only
// the first observes.
func (s *Span) End() time.Duration {
	if s == nil || s.reg == nil {
		return 0
	}
	d := s.reg.now().Sub(s.start)
	if s.done.CompareAndSwap(false, true) {
		s.reg.Histogram(s.name).Observe(d.Seconds())
	}
	return d
}

// Timer returns a stop function observing the elapsed time into the named
// histogram — the one-line defer idiom:
//
//	defer reg.Timer("service_select_seconds")()
func (r *Registry) Timer(name string) func() time.Duration {
	sp := r.StartSpan(name)
	return sp.End
}

// ManualClock is a settable test clock: plug Now into Registry.SetClock
// and advance it explicitly to make every span duration deterministic.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a clock at the given instant.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the clock's current instant.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TraceIDs hands out sequential trace IDs ("req-000001", …). Sequential
// IDs are deliberately boring: they are deterministic (golden tests can
// assert them), collision-free within a process, and trivially greppable
// in logs. Safe for concurrent use.
type TraceIDs struct {
	prefix string
	n      atomic.Uint64
}

// NewTraceIDs returns a generator whose IDs start with prefix.
func NewTraceIDs(prefix string) *TraceIDs {
	return &TraceIDs{prefix: prefix}
}

// Next returns the next ID.
func (t *TraceIDs) Next() string {
	return fmt.Sprintf("%s-%06d", t.prefix, t.n.Add(1))
}
