package telemetry

import (
	"math"
	"sync"
)

// DefaultLatencyBuckets are the upper bounds (in seconds) used when a
// histogram is created without explicit buckets: powers of two from 64µs
// to ~8.4s. Anything slower lands in the implicit +Inf bucket. Bounded
// bucket counts keep a histogram's memory constant no matter how many
// observations it absorbs.
var DefaultLatencyBuckets = func() []float64 {
	bounds := make([]float64, 18)
	b := 64e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Histogram is a fixed-bucket histogram with quantile estimation. Bucket
// bounds are upper bounds in increasing order; an implicit +Inf bucket
// catches the overflow. Observations take one short mutex hold.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is +Inf
	sum    float64
	n      int64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value (for latency histograms, seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram: totals,
// estimated quantiles, and the per-bucket cumulative counts Prometheus
// expects.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Bounds are the bucket upper bounds; Cumulative[i] counts
	// observations <= Bounds[i]. Count includes the +Inf overflow.
	Bounds     []float64 `json:"bounds,omitempty"`
	Cumulative []int64   `json:"cumulative,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	sum, n := h.sum, h.n
	h.mu.Unlock()

	snap := HistogramSnapshot{Count: n, Sum: sum, Bounds: h.bounds}
	snap.Cumulative = make([]int64, len(h.bounds))
	var cum int64
	for i := range h.bounds {
		cum += counts[i]
		snap.Cumulative[i] = cum
	}
	snap.P50 = quantile(h.bounds, counts, n, 0.50)
	snap.P95 = quantile(h.bounds, counts, n, 0.95)
	snap.P99 = quantile(h.bounds, counts, n, 0.99)
	return snap
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the bucket holding the target rank — the
// same estimate Prometheus's histogram_quantile computes server-side.
// Values in the +Inf bucket clamp to the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	counts := make([]int64, len(h.counts))
	copy(counts, h.counts)
	n := h.n
	h.mu.Unlock()
	return quantile(h.bounds, counts, n, q)
}

func quantile(bounds []float64, counts []int64, n int64, q float64) float64 {
	if n == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(n)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: no finite upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (bounds[i]-lo)*frac
	}
	return bounds[len(bounds)-1]
}
