package telemetry

import (
	"math"
	"sort"
	"sync"
)

// Window is a sliding window over the most recent observations with exact
// quantiles — the admission-control companion to Histogram. A Histogram
// never forgets: after an overload episode its p99 stays poisoned for the
// process lifetime, which would leave a latency-driven shedding gate stuck
// open long after the queue drained. A Window sees only the last size
// observations, so the signal recovers as fast as traffic does.
//
// Quantiles are exact over the window (the buffer is sorted on demand),
// and the sorted view is cached between observations: with the default
// recalculation stride the amortized cost per Quantile call during a
// steady observation stream is a few dozen nanoseconds. All methods are
// safe for concurrent use.
type Window struct {
	mu     sync.Mutex
	buf    []float64 // ring buffer of the last len(buf) observations
	filled int       // number of valid entries in buf (<= len(buf))
	next   int       // ring write position
	dirty  int       // observations since the sorted cache was rebuilt
	sorted []float64 // cached ascending copy of the valid entries
}

// windowRecalcStride bounds cache staleness: a cached sorted view is
// reused for at most this many new observations before Quantile re-sorts.
const windowRecalcStride = 32

// NewWindow returns a window over the last size observations (minimum 16).
func NewWindow(size int) *Window {
	if size < 16 {
		size = 16
	}
	return &Window{buf: make([]float64, size)}
}

// Observe records one value. NaN is ignored, like Histogram.Observe.
func (w *Window) Observe(v float64) {
	if w == nil || math.IsNaN(v) {
		return
	}
	w.mu.Lock()
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.filled < len(w.buf) {
		w.filled++
	}
	w.dirty++
	w.mu.Unlock()
}

// Count returns how many observations the window currently holds (at most
// its size).
func (w *Window) Count() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.filled
}

// Quantile returns the exact q-quantile (0 < q <= 1, nearest-rank) of the
// windowed observations, 0 when the window is empty. The sorted view is
// cached and refreshed at most every windowRecalcStride observations, so
// a hot admission path can call this per request without re-sorting per
// request; the value may lag the newest few observations by design.
func (w *Window) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.filled == 0 {
		return 0
	}
	if w.sorted == nil || w.dirty >= windowRecalcStride || len(w.sorted) != w.filled {
		w.sorted = append(w.sorted[:0], w.buf[:w.filled]...)
		sort.Float64s(w.sorted)
		w.dirty = 0
	}
	rank := int(math.Ceil(q*float64(len(w.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(w.sorted) {
		rank = len(w.sorted) - 1
	}
	return w.sorted[rank]
}
