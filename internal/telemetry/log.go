package telemetry

import (
	"io"
	"log/slog"
)

// Structured logging. The repository logs key=value lines via log/slog's
// TextHandler — machine-parseable, greppable, and stable enough to assert
// on in tests. Correlation happens through the "trace" attribute: the
// HTTP layer mints a trace ID per request (TraceIDs), hands it down
// through SampleOptions, and the netsearch/STARTS wire layers carry it on
// every frame, so one grep strings together an entire sampling run across
// processes.

// TraceKey is the canonical log attribute for request trace IDs.
const TraceKey = "trace"

// NewLogger returns a key=value (slog.TextHandler) logger writing to w at
// the given level. Timestamps are dropped when includeTime is false so
// log output can be golden-tested.
func NewLogger(w io.Writer, level slog.Level, includeTime bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if !includeTime {
		opts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		}
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// NopLogger returns a logger that discards everything — the default for
// instrumented packages when no logger is injected, so call sites never
// nil-check.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
