// Package telemetry is the runtime instrumentation layer: what the
// *running* system is doing, as opposed to the paper's offline evaluation
// measures in internal/metrics (ctf ratio, Spearman, rdiff). A selection
// service that samples databases it does not control lives or dies on
// per-probe cost accounting — how many probe queries, retries and redials
// a sampling run spent — so those numbers are first-class outputs here,
// not log noise.
//
// The package is dependency-free (stdlib only) and concurrency-safe:
// counters and gauges are single atomic words, histograms take a short
// mutex per observation. A nil *Registry is a valid no-op sink — every
// accessor on it returns a shared inert instrument — so instrumented code
// never needs nil checks and uninstrumented paths pay one predictable
// branch.
//
// Determinism contract: the wall clock enters only through the registry's
// injectable clock (SetClock), so packages under the repolint `wallclock`
// rule may record spans and latencies without ever calling time.Now
// themselves, and tests that pin the clock get byte-identical snapshots.
// Snapshot and the exposition writers iterate metrics in sorted name
// order, which makes /metrics output golden-testable.
//
// Metric names follow the Prometheus convention: snake_case base name,
// unit suffix (_total for counters, _seconds for latency histograms), and
// an optional literal label set in curly braces:
//
//	netsearch_dials_total
//	netsearch_op_seconds{op="search"}
//	service_samples_total{db="wsj88"}
//
// The label set is part of the metric's identity (the registry treats the
// whole string as the key) but the exposition writers understand the
// base{labels} split, so Prometheus sees properly-labelled families.
// Cardinality rule: labels may only take values from small closed sets
// (operation names, status classes, registered database names) — never
// from unbounded inputs like query text or document ids.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (in-flight requests, pool
// occupancy). Unlike a Counter it can go down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the value by n (use a negative n to decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds a process's metrics. The zero value is not usable;
// create one with NewRegistry. A nil *Registry is a valid no-op sink.
type Registry struct {
	clock atomic.Pointer[func() time.Time]

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// discard instruments returned by accessors on a nil registry: real
// objects, so callers can Inc/Observe unconditionally, but never exposed
// anywhere.
var (
	discardCounter Counter
	discardGauge   Gauge
	discardHist    = newHistogram(DefaultLatencyBuckets)
)

// NewRegistry returns an empty registry reading the real wall clock.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	now := time.Now
	r.clock.Store(&now)
	return r
}

// SetClock replaces the registry's time source. Spans, timers and latency
// observations all read this clock, so a test clock (see ManualClock)
// makes every duration deterministic. A nil fn restores time.Now.
func (r *Registry) SetClock(fn func() time.Time) {
	if r == nil {
		return
	}
	if fn == nil {
		fn = time.Now
	}
	r.clock.Store(&fn)
}

// now reads the registry's clock; the zero time on a nil registry.
func (r *Registry) now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return (*r.clock.Load())()
}

// Counter returns the named counter, creating it on first use. Safe for
// concurrent use; on a nil registry it returns a shared discard counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &discardCounter
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &discardGauge
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with DefaultLatencyBuckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the named histogram, creating it with the
// given bucket upper bounds on first use (nil means
// DefaultLatencyBuckets). Buckets are fixed at creation; later calls
// return the existing histogram regardless of the bounds argument.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return discardHist
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			bounds = DefaultLatencyBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics, with all maps
// keyed by full metric name. encoding/json marshals Go maps in sorted key
// order, so a marshalled Snapshot is deterministic and golden-testable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// CounterSum sums every counter whose full name (label syntax included)
// contains substr — the tool for totalling one metric across label values
// or prefixed tiers, e.g. CounterSum(`rank_coalesced_total{scope="flight"}`)
// over a snapshot that may carry the service_ or cluster_ spelling.
func (s Snapshot) CounterSum(substr string) int64 {
	var total int64
	for name, v := range s.Counters { // summation is order-independent
		if strings.Contains(name, substr) {
			total += v
		}
	}
	return total
}

// names returns the sorted metric names of one kind — the iteration order
// for every exposition writer.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
