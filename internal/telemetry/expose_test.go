package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// golden registry used by the exposition tests: two labelled counters in
// one family, a plain counter, a gauge, and a small labelled histogram.
func goldenRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	clk := NewManualClock(time.Unix(0, 0))
	r.SetClock(clk.Now)
	r.Counter(`service_samples_total{db="b"}`).Add(3)
	r.Counter(`service_samples_total{db="a"}`).Add(1)
	r.Counter("netsearch_dials_total").Add(2)
	r.Gauge("service_inflight_samples").Set(1)
	h := r.HistogramBuckets(`op_seconds{op="search"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // +Inf bucket
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(t).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE netsearch_dials_total counter
netsearch_dials_total 2
# TYPE op_seconds histogram
op_seconds_bucket{op="search",le="0.1"} 2
op_seconds_bucket{op="search",le="1"} 3
op_seconds_bucket{op="search",le="+Inf"} 4
op_seconds_sum{op="search"} 5.6
op_seconds_count{op="search"} 4
# TYPE service_inflight_samples gauge
service_inflight_samples 1
# TYPE service_samples_total counter
service_samples_total{db="a"} 1
service_samples_total{db="b"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusIsDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := goldenRegistry(t).WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("prometheus output not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestHandlerAcceptNegotiation(t *testing.T) {
	h := Handler(goldenRegistry(t))

	// Prometheus scrape: text/plain preference gets the text format.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != ContentTypePrometheus {
		t.Fatalf("content type = %q, want prometheus text", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE netsearch_dials_total counter") {
		t.Fatalf("text body missing TYPE line:\n%s", rec.Body.String())
	}

	// JSON client.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want application/json", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON body does not parse: %v", err)
	}
	if snap.Counters["netsearch_dials_total"] != 2 {
		t.Fatalf("JSON counters wrong: %+v", snap.Counters)
	}

	// ?format= overrides the header both ways.
	req = httptest.NewRequest("GET", "/metrics?format=json", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("format=json content type = %q", ct)
	}
	req = httptest.NewRequest("GET", "/metrics?format=prometheus", nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != ContentTypePrometheus {
		t.Fatalf("format=prometheus content type = %q", ct)
	}

	// Non-GET is rejected.
	req = httptest.NewRequest("POST", "/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestVarsHandlerAlwaysJSON(t *testing.T) {
	h := VarsHandler(goldenRegistry(t))
	req := httptest.NewRequest("GET", "/debug/vars", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want application/json", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("vars body does not parse: %v", err)
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{"plain_total", "plain_total", ""},
		{`x_total{db="a"}`, "x_total", `db="a"`},
		{`x{a="1",b="2"}`, "x", `a="1",b="2"`},
		{"odd{unclosed", "odd{unclosed", ""},
	}
	for _, c := range cases {
		base, labels := splitName(c.in)
		if base != c.base || labels != c.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)", c.in, base, labels, c.base, c.labels)
		}
	}
}
