package sizeest

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/langmodel"
)

func TestCaptureRecaptureExact(t *testing.T) {
	// Classic worked example: n1=100, n2=100, overlap 25
	// Chapman: 101*101/26 - 1 = 391.3...
	s1 := make([]int, 100)
	s2 := make([]int, 100)
	for i := range s1 {
		s1[i] = i // 0..99
	}
	for i := range s2 {
		s2[i] = i + 75 // 75..174, overlap 25
	}
	got, err := CaptureRecapture(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want := 101.0*101.0/26.0 - 1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("estimate = %f, want %f", got, want)
	}
}

func TestCaptureRecaptureDisjoint(t *testing.T) {
	got, err := CaptureRecapture([]int{1, 2}, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Zero overlap: Chapman yields (3*3/1)-1 = 8, finite.
	if got != 8 {
		t.Errorf("disjoint estimate = %f, want 8", got)
	}
}

func TestCaptureRecaptureIdentical(t *testing.T) {
	s := []int{1, 2, 3, 4, 5}
	got, err := CaptureRecapture(s, s)
	if err != nil {
		t.Fatal(err)
	}
	// Full overlap: (6*6/6)-1 = 5 — recovers the true size exactly.
	if got != 5 {
		t.Errorf("identical-samples estimate = %f, want 5", got)
	}
}

func TestCaptureRecaptureEmpty(t *testing.T) {
	if _, err := CaptureRecapture(nil, []int{1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := CaptureRecapture([]int{1}, nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestCaptureRecaptureDeduplicates(t *testing.T) {
	// Duplicate ids within one sample must not inflate n.
	a, err := CaptureRecapture([]int{1, 1, 1, 2}, []int{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CaptureRecapture([]int{1, 2}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("duplicates changed the estimate: %f vs %f", a, b)
	}
}

func TestCaptureRecapturePositive(t *testing.T) {
	if err := quick.Check(func(raw1, raw2 [8]uint8) bool {
		s1 := make([]int, 8)
		s2 := make([]int, 8)
		for i := 0; i < 8; i++ {
			s1[i] = int(raw1[i] % 16)
			s2[i] = int(raw2[i] % 16)
		}
		est, err := CaptureRecapture(s1, s2)
		return err == nil && est > 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// buildDB creates a synthetic database for estimator accuracy tests.
func buildDB(t testing.TB, docs int) (*index.Index, *langmodel.Model) {
	t.Helper()
	p := corpus.Profile{
		Name: "sizetest", Docs: docs, SharedVocabSize: 1500, SharedProb: 0.5,
		Topics: []corpus.TopicSpec{
			{Name: "a", VocabSize: 5000, Weight: 1},
			{Name: "b", VocabSize: 5000, Weight: 1},
		},
		DocLenMu: 4.4, DocLenSigma: 0.5, MinDocLen: 15,
		ZipfS: 1.35, ZipfV: 2, MorphProb: 0.1, Seed: 77,
	}
	ix := index.Build(p.MustGenerate(), analysis.Database(), index.InQuery)
	return ix, ix.LanguageModel()
}

func TestCaptureRecaptureSampleAccuracy(t *testing.T) {
	const truth = 1200
	ix, actual := buildDB(t, truth)
	est, err := CaptureRecaptureSample(ix, actual, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := RelativeError(est, truth); relErr > 0.6 {
		t.Errorf("capture-recapture estimate %f for %d docs (rel err %.2f)", est, truth, relErr)
	}
}

func TestSampleResampleAccuracy(t *testing.T) {
	const truth = 1200
	ix, actual := buildDB(t, truth)
	cfg := core.DefaultConfig(actual, 200, 9)
	cfg.SnapshotEvery = 0
	res, err := core.Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Probe with the learned model normalized to the db's conventions so
	// probe terms match the db's query analyzer.
	learned := res.Learned.Normalize(ix.Analyzer())
	est, err := SampleResample(ix, learned, 20, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Sample-resample systematically underestimates: sampled documents are
	// retrieved *because* they contain query terms, so df_learned/n
	// overestimates term probabilities (Si & Callan report the same bias).
	// Accept a generous band; capture-recapture is the precise estimator.
	if relErr := RelativeError(est, truth); relErr > 0.75 {
		t.Errorf("sample-resample estimate %f for %d docs (rel err %.2f)", est, truth, relErr)
	}
}

func TestSampleResampleValidation(t *testing.T) {
	ix, _ := buildDB(t, 50)
	if _, err := SampleResample(ix, langmodel.New(), 5, 1); err == nil {
		t.Error("empty learned model accepted")
	}
}

func TestSampleResampleDefaultProbes(t *testing.T) {
	ix, actual := buildDB(t, 300)
	cfg := core.DefaultConfig(actual, 100, 3)
	cfg.SnapshotEvery = 0
	res, err := core.Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	learned := res.Learned.Normalize(ix.Analyzer())
	if _, err := SampleResample(ix, learned, 0, 7); err != nil {
		t.Errorf("default probes failed: %v", err)
	}
}

// errCounter fails hit counting.
type errCounter struct{}

func (errCounter) TotalHits(string) (int, error) {
	return 0, errTest
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "hit counter down" }

func TestSampleResamplePropagatesError(t *testing.T) {
	m := langmodel.New()
	m.AddDocument([]string{"apple", "banana", "cherry"})
	if _, err := SampleResample(errCounter{}, m, 3, 1); err == nil {
		t.Error("hit-counter error swallowed")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError(110,100) = %f", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError(90,100) = %f", got)
	}
	if got := RelativeError(5, 0); got != 0 {
		t.Errorf("RelativeError with zero actual = %f", got)
	}
}

func TestEstimatorsDeterministic(t *testing.T) {
	ix, actual := buildDB(t, 400)
	a, err := CaptureRecaptureSample(ix, actual, 80, 21)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CaptureRecaptureSample(ix, actual, 80, 21)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("capture-recapture nondeterministic: %f vs %f", a, b)
	}
}
