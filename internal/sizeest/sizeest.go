// Package sizeest estimates the size (document count) of a text database
// from query-based samples. The paper flags this as the piece of
// information that "appears difficult to acquire by sampling" (§3) and
// leaves it open; this package implements the two estimators the follow-on
// literature settled on:
//
//   - Capture–recapture (Lincoln–Petersen with Chapman correction, as in
//     Liu, Yu & Meng): run two independent sampling passes and infer the
//     population size from the overlap of captured document ids.
//   - Sample–resample (Si & Callan, SIGIR 2003): estimate a term's
//     occurrence probability from the sample, ask the database how many
//     documents actually match the term (the hit count every real search
//     service reports), and divide.
//
// Both need nothing beyond the ordinary search interface — the same
// minimal-cooperation premise as the sampler itself.
package sizeest

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/langmodel"
	"repro/internal/randx"
)

// HitCounter is the additional capability sample–resample needs: the
// total number of documents matching a query, a figure real search
// engines display with their results. internal/index implements it, and
// internal/netsearch forwards it over the wire.
type HitCounter interface {
	TotalHits(query string) (int, error)
}

// CaptureRecapture estimates population size from two samples of captured
// document ids using the Chapman-corrected Lincoln–Petersen estimator:
//
//	N̂ = (n1+1)(n2+1)/(m+1) − 1
//
// where m is the overlap. The samples must be drawn independently (use
// different sampling seeds). Returns an error when either sample is empty.
// A zero overlap yields a (biased-low) finite estimate rather than
// infinity — one reason Chapman's correction is standard.
func CaptureRecapture(sample1, sample2 []int) (float64, error) {
	if len(sample1) == 0 || len(sample2) == 0 {
		return 0, errors.New("sizeest: capture-recapture needs two non-empty samples")
	}
	in1 := make(map[int]struct{}, len(sample1))
	for _, id := range sample1 {
		in1[id] = struct{}{}
	}
	m := 0
	seen2 := make(map[int]struct{}, len(sample2))
	for _, id := range sample2 {
		if _, dup := seen2[id]; dup {
			continue
		}
		seen2[id] = struct{}{}
		if _, ok := in1[id]; ok {
			m++
		}
	}
	n1 := float64(len(in1))
	n2 := float64(len(seen2))
	return (n1+1)*(n2+1)/(float64(m)+1) - 1, nil
}

// CaptureRecaptureSample runs two independent query-based sampling passes
// of docsEach documents against db and applies CaptureRecapture. The two
// passes use seeds derived from seed; initial terms come from initial.
func CaptureRecaptureSample(db core.Database, initial *langmodel.Model, docsEach int, seed uint64) (float64, error) {
	ids := make([][]int, 2)
	for pass := 0; pass < 2; pass++ {
		cfg := core.DefaultConfig(initial, docsEach, seed+uint64(pass)*0x9e3779b9+1)
		cfg.SnapshotEvery = 0
		res, err := core.Sample(db, cfg)
		if err != nil {
			return 0, fmt.Errorf("sizeest: pass %d: %w", pass, err)
		}
		ids[pass] = res.DocIDs
	}
	return CaptureRecapture(ids[0], ids[1])
}

// SampleResample estimates database size from a learned model and the
// database's reported hit counts. For each of probes randomly chosen
// learned terms t:
//
//	N̂_t = hits(t) / p̂(t),  p̂(t) = df_learned(t) / docs_learned
//
// and the estimate is the median of the N̂_t (hit counts for rare terms
// are noisy; the median is robust). The learned model must have been
// built by sampling db (same vocabulary conventions as db's queries).
func SampleResample(db HitCounter, learned *langmodel.Model, probes int, seed uint64) (float64, error) {
	if learned.Docs() == 0 || learned.VocabSize() == 0 {
		return 0, errors.New("sizeest: learned model is empty")
	}
	if probes <= 0 {
		probes = 10
	}
	rng := randx.New(seed)
	used := make(map[string]bool)
	var estimates []float64
	attempts := 0
	for len(estimates) < probes && attempts < probes*20 {
		attempts++
		t := learned.TermAt(rng.Intn(learned.VocabSize()))
		if used[t] || !core.Eligible(t, used) {
			continue
		}
		used[t] = true
		hits, err := db.TotalHits(t)
		if err != nil {
			return 0, fmt.Errorf("sizeest: hit count for %q: %w", t, err)
		}
		df := learned.DF(t)
		if hits == 0 || df == 0 {
			continue // term vanished under the db's analyzer; skip
		}
		p := float64(df) / float64(learned.Docs())
		estimates = append(estimates, float64(hits)/p)
	}
	if len(estimates) == 0 {
		return 0, errors.New("sizeest: no usable probe terms")
	}
	sort.Float64s(estimates)
	mid := len(estimates) / 2
	if len(estimates)%2 == 1 {
		return estimates[mid], nil
	}
	return (estimates[mid-1] + estimates[mid]) / 2, nil
}

// RelativeError reports |estimate − actual| / actual, the figure the size
// estimation literature tabulates.
func RelativeError(estimate float64, actual int) float64 {
	if actual == 0 {
		return 0
	}
	diff := estimate - float64(actual)
	if diff < 0 {
		diff = -diff
	}
	return diff / float64(actual)
}
