package netsearch

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
)

func startServer(t *testing.T, texts ...string) (*Server, *Client) {
	t.Helper()
	docs := make([]corpus.Document, len(texts))
	for i, txt := range texts {
		docs[i] = corpus.Document{ID: i, Text: txt}
	}
	ix := index.Build(docs, analysis.Raw(), index.InQuery)
	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestSearchAndFetchOverTCP(t *testing.T) {
	_, c := startServer(t, "apple pie recipe", "banana bread", "apple tart")
	ids, err := c.Search("apple", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("got %d ids, want 2", len(ids))
	}
	doc, err := c.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc.Text, "apple") {
		t.Errorf("fetched wrong doc: %+v", doc)
	}
}

func TestFailedQueryOverTCP(t *testing.T) {
	_, c := startServer(t, "alpha beta")
	ids, err := c.Search("zzz", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("unknown term returned %v", ids)
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	_, c := startServer(t, "alpha")
	if _, err := c.Fetch(99); err == nil {
		t.Error("out-of-range fetch did not error")
	}
}

func TestUnknownOpRejected(t *testing.T) {
	srv, _ := startServer(t, "alpha")
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"explode"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "unknown op") {
		t.Errorf("response = %q", line)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, "apple one", "apple two", "apple three")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				ids, err := c.Search("apple", 3)
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Fetch(ids[j%len(ids)]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSamplingOverTCPMatchesLocal(t *testing.T) {
	// The whole point of the substrate: query-based sampling against a
	// remote database yields exactly what local sampling yields.
	profile := corpus.Profile{
		Name: "net", Docs: 150, SharedVocabSize: 500, SharedProb: 0.5,
		Topics:   []corpus.TopicSpec{{Name: "t", VocabSize: 2000, Weight: 1}},
		DocLenMu: 3.8, DocLenSigma: 0.4, MinDocLen: 10,
		ZipfS: 1.35, ZipfV: 2, Seed: 4,
	}
	docs := profile.MustGenerate()
	ix := index.Build(docs, analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()

	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cfg := core.DefaultConfig(actual, 50, 77)
	local, err := core.Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := core.Sample(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !local.Learned.Equal(remote.Learned) {
		t.Error("remote sampling diverged from local sampling")
	}
	if local.Queries != remote.Queries {
		t.Errorf("query counts differ: %d vs %d", local.Queries, remote.Queries)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, "alpha")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
}

func TestClientAfterServerClose(t *testing.T) {
	srv, c := startServer(t, "alpha")
	srv.Close()
	if _, err := c.Search("alpha", 1); err == nil {
		t.Error("search after server close should fail")
	}
}

func TestTotalHitsOverTCP(t *testing.T) {
	_, c := startServer(t, "apple pie", "apple tart", "banana")
	n, err := c.TotalHits("apple")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("TotalHits(apple) = %d, want 2", n)
	}
	n, err = c.TotalHits("zzz")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("TotalHits(zzz) = %d, want 0", n)
	}
}

// plainDB implements core.Database without hit counting.
type plainDB struct{}

func (plainDB) Search(string, int) ([]int, error)  { return nil, nil }
func (plainDB) Fetch(int) (corpus.Document, error) { return corpus.Document{}, nil }

func TestTotalHitsUnsupported(t *testing.T) {
	srv, err := Serve(plainDB{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.TotalHits("x"); err == nil {
		t.Error("count against a non-counting database should fail")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("expected dial error")
	}
}
