package netsearch

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// fakeShard is a servable that implements the cluster capability
// interfaces (DBRanker, Registrar) on top of a trivial registry.
type fakeShard struct {
	registered map[string]string
	ranked     []RankedDB
	rankErr    error
}

func (f *fakeShard) Search(query string, n int) ([]int, error) {
	return nil, errors.New("not a document database")
}

func (f *fakeShard) Fetch(id int) (corpus.Document, error) {
	return corpus.Document{}, errors.New("not a document database")
}

func (f *fakeShard) RankDBs(query, alg string, k int) ([]RankedDB, error) {
	if f.rankErr != nil {
		return nil, f.rankErr
	}
	out := f.ranked
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out, nil
}

func (f *fakeShard) RegisterDB(name, addr string) error {
	if _, dup := f.registered[name]; dup {
		return fmt.Errorf("database %q already registered", name)
	}
	f.registered[name] = addr
	return nil
}

func (f *fakeShard) UnregisterDB(name string) error {
	if _, ok := f.registered[name]; !ok {
		return fmt.Errorf("unknown database %q", name)
	}
	delete(f.registered, name)
	return nil
}

func startShardServer(t *testing.T, shard *fakeShard) *Client {
	t.Helper()
	srv, err := Serve(shard, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRankOpOverTCP(t *testing.T) {
	shard := &fakeShard{
		registered: map[string]string{},
		ranked: []RankedDB{
			{Name: "db-a", Score: 0.9},
			{Name: "db-b", Score: 0.4},
			{Name: "db-c", Score: 0.1},
		},
	}
	c := startShardServer(t, shard)
	got, err := c.RankDBs("apple pie", "cori", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, shard.ranked[:2]) {
		t.Errorf("ranked = %+v, want %+v", got, shard.ranked[:2])
	}
}

func TestRankOpServerError(t *testing.T) {
	shard := &fakeShard{registered: map[string]string{}, rankErr: errors.New("invalid argument: bogus alg")}
	c := startShardServer(t, shard)
	if _, err := c.RankDBs("q", "bogus", 5, ""); err == nil || !strings.Contains(err.Error(), "invalid argument") {
		t.Errorf("rank error = %v, want the server-reported message", err)
	}
}

func TestRankOpUnsupported(t *testing.T) {
	// A plain document database does not implement DBRanker; the server
	// must answer with a clean error, not a dropped connection.
	_, c := startServer(t, "apple pie")
	if _, err := c.RankDBs("apple", "cori", 5, ""); err == nil || !strings.Contains(err.Error(), "rank unsupported") {
		t.Errorf("rank on non-ranker = %v", err)
	}
}

func TestRegisterUnregisterOpsOverTCP(t *testing.T) {
	shard := &fakeShard{registered: map[string]string{}}
	c := startShardServer(t, shard)
	if err := c.RegisterDB("db-x", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterDB("db-x", "127.0.0.1:1"); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate register error = %v", err)
	}
	if err := c.UnregisterDB("db-x"); err != nil {
		t.Fatal(err)
	}
	if err := c.UnregisterDB("db-x"); err == nil || !strings.Contains(err.Error(), "unknown database") {
		t.Errorf("double unregister error = %v", err)
	}
}
