package netsearch

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faulty"
	"repro/internal/index"
	"repro/internal/telemetry"
)

// TestChaosTelemetryGoldenFaultCounters pins the exact telemetry a
// fault-injected sampling run produces. The whole pipeline is seeded —
// the corpus (Seed 4), the sampler (seed 77), the fault stream (Seed 11,
// 20% write faults), the backoff jitter (Seed 2) — so the retry/redial/
// fault counters are not merely "nonzero": they replay to the same values
// on every platform. A change here means the client's failure handling
// changed, which is exactly what this test exists to surface.
func TestChaosTelemetryGoldenFaultCounters(t *testing.T) {
	profile := corpus.Profile{
		Name: "chaos", Docs: 150, SharedVocabSize: 500, SharedProb: 0.5,
		Topics:   []corpus.TopicSpec{{Name: "t", VocabSize: 2000, Weight: 1}},
		DocLenMu: 3.8, DocLenSigma: 0.4, MinDocLen: 10,
		ZipfS: 1.35, ZipfV: 2, Seed: 4,
	}
	ix := index.Build(profile.MustGenerate(), analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()

	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := telemetry.NewRegistry()
	client, err := DialWith(srv.Addr(), Options{
		Timeout:  2 * time.Second,
		Retry:    fastRetry(8),
		DialFunc: faulty.Dialer(faulty.ConnOptions{Seed: 11, WriteRate: 0.2}),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := core.Sample(client, core.DefaultConfig(actual, 50, 77)); err != nil {
		t.Fatalf("sampling through injected faults failed: %v", err)
	}

	stats := client.Stats()
	snap := reg.Snapshot()

	// The registry's counters must agree exactly with the client's own
	// bookkeeping — the two are maintained at the same call sites, and a
	// divergence means an instrumentation path was missed.
	mirror := map[string]int{
		"netsearch_faults_total":  stats.Faults,
		"netsearch_redials_total": stats.Redials,
		"netsearch_retries_total": stats.Retries,
	}
	for name, want := range mirror {
		if got := snap.Counters[name]; got != int64(want) {
			t.Errorf("%s = %d, telemetry disagrees with ClientStats %d", name, got, want)
		}
	}

	// Golden values for this seed set. Regenerate by logging the snapshot
	// if the sampler's query schedule or the retry policy changes.
	golden := map[string]int64{
		"netsearch_faults_total":          30,
		"netsearch_retries_total":         30,
		"netsearch_redials_total":         30,
		"netsearch_conns_discarded_total": 30,
		"netsearch_backoff_sleeps_total":  30,
		"netsearch_dials_total":           31, // initial dial + one per redial
		"netsearch_dial_errors_total":     0,
		"netsearch_op_failures_total":     0, // every op succeeded within 8 attempts
	}
	for name, want := range golden {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// Latency histograms saw every operation and every backoff sleep.
	if ops := snap.Histograms[`netsearch_op_seconds{op="search"}`]; ops.Count == 0 {
		t.Error("no search op latency recorded")
	}
	if sleeps := snap.Histograms["netsearch_backoff_seconds"]; sleeps.Count != golden["netsearch_backoff_sleeps_total"] {
		t.Errorf("backoff histogram count = %d, want %d", sleeps.Count, golden["netsearch_backoff_sleeps_total"])
	}
}
