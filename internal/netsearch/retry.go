package netsearch

import (
	"time"

	"repro/internal/randx"
)

// Defaults for RetryPolicy. Three attempts with a 50ms base delay ride out
// a server restart or a dropped connection without stalling an interactive
// caller for more than a few hundred milliseconds.
const (
	DefaultAttempts  = 3
	DefaultBaseDelay = 50 * time.Millisecond
	DefaultMaxDelay  = 2 * time.Second
)

// RetryPolicy governs how a Client retries an operation after a transport
// error: capped exponential backoff with deterministic jitter. The jitter
// stream is drawn from internal/randx, so two clients built with the same
// seed sleep the exact same schedule — retry timing is as reproducible as
// everything else in this repository.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation, including the
	// first. Zero means DefaultAttempts; 1 disables retrying.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles with
	// every further retry. Zero means DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means DefaultMaxDelay.
	MaxDelay time.Duration
	// Seed seeds the jitter stream. Zero means 1.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Delay returns the backoff before retry number retry (0-based): the
// capped exponential BaseDelay<<retry scaled into [1/2, 1) by a jitter
// factor drawn from rng. Jitter keeps a fleet of clients that broke on the
// same server event from redialing it in lockstep.
func (p RetryPolicy) Delay(retry int, rng *randx.Source) time.Duration {
	p = p.withDefaults()
	d := p.MaxDelay
	if retry < 32 {
		if exp := p.BaseDelay << uint(retry); exp > 0 && exp < p.MaxDelay {
			d = exp
		}
	}
	return d/2 + time.Duration(rng.Float64()*float64(d/2))
}
