package netsearch

// Chaos suite: drives the client's fault tolerance end to end through
// deterministic fault injection (internal/faulty) — injected transport
// faults, truncated frames, server restarts, unresponsive peers. Run with
// `make chaos`; everything here is seeded, so failures replay exactly.

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faulty"
	"repro/internal/index"
	"repro/internal/randx"
)

// fastRetry is an aggressive test policy: generous attempts, millisecond
// backoff so a suite run stays quick.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		Attempts:  attempts,
		BaseDelay: time.Millisecond,
		MaxDelay:  8 * time.Millisecond,
		Seed:      2,
	}
}

// reServe rebinds a server to a previously used address, retrying briefly
// in case the OS has not released the port yet.
func reServe(t *testing.T, db core.Database, addr string) *Server {
	t.Helper()
	var lastErr error
	for i := 0; i < 100; i++ {
		srv, err := Serve(db, addr)
		if err == nil {
			return srv
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("could not rebind %s: %v", addr, lastErr)
	return nil
}

func TestChaosBackoffDelaySequenceIsDeterministic(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}
	seq := func() []time.Duration {
		rng := randx.New(42)
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = p.Delay(i, rng)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different delay at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Envelope: delay i is the capped exponential scaled into [1/2, 1).
	for i, d := range a {
		base := 10 * time.Millisecond << uint(i)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d < base/2 || d >= base {
			t.Errorf("retry %d: delay %v outside [%v, %v)", i, d, base/2, base)
		}
	}
	// Distinct seeds give distinct jitter.
	other := p.Delay(0, randx.New(43))
	if other == a[0] {
		t.Errorf("seeds 42 and 43 produced identical jitter %v", a[0])
	}
}

func TestChaosBackoffGolden(t *testing.T) {
	// The exact schedule is part of the reproducibility contract: a retry
	// storm replays bit-identically from its seed on any platform.
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}
	rng := randx.New(42)
	want := []time.Duration{ // nanoseconds; regenerate by logging got
		8707824,  // retry 0: 10ms base, jitter into [5ms, 10ms)
		11599103, // retry 1: 20ms
		25572022, // retry 2: 40ms
		53767628, // retry 3: 80ms (capped)
		41521206, // retry 4: 80ms
		74729123, // retry 5: 80ms
	}
	got := make([]time.Duration, 6)
	for i := range got {
		got[i] = p.Delay(i, rng)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("retry %d: delay %v, want %v", i, got[i], want[i])
		}
	}
}

func TestChaosSamplingSurvivesInjectedWriteFaults(t *testing.T) {
	// The headline property: query-based sampling through a transport
	// that corrupts 20% of writes yields the exact same learned model as
	// sampling the database locally — retries are invisible to the
	// sampler, so determinism survives the faults.
	profile := corpus.Profile{
		Name: "chaos", Docs: 150, SharedVocabSize: 500, SharedProb: 0.5,
		Topics:   []corpus.TopicSpec{{Name: "t", VocabSize: 2000, Weight: 1}},
		DocLenMu: 3.8, DocLenSigma: 0.4, MinDocLen: 10,
		ZipfS: 1.35, ZipfV: 2, Seed: 4,
	}
	ix := index.Build(profile.MustGenerate(), analysis.Database(), index.InQuery)
	actual := ix.LanguageModel()

	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := DialWith(srv.Addr(), Options{
		Timeout:  2 * time.Second,
		Retry:    fastRetry(8),
		DialFunc: faulty.Dialer(faulty.ConnOptions{Seed: 11, WriteRate: 0.2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cfg := core.DefaultConfig(actual, 50, 77)
	local, err := core.Sample(ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := core.Sample(client, cfg)
	if err != nil {
		t.Fatalf("sampling through injected faults failed: %v", err)
	}
	if !local.Learned.Equal(remote.Learned) {
		t.Error("fault-injected sampling diverged from local sampling")
	}
	stats := client.Stats()
	if stats.Faults == 0 || stats.Redials == 0 {
		t.Errorf("fault injection did not bite: %+v (test is vacuous)", stats)
	}
}

func TestChaosServerRestartRedial(t *testing.T) {
	ix := index.Build([]corpus.Document{
		{ID: 0, Text: "apple pie recipe"},
		{ID: 1, Text: "apple tart"},
		{ID: 2, Text: "banana bread"},
	}, analysis.Raw(), index.InQuery)
	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client, err := DialWith(addr, Options{Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	before, err := client.Search("apple", 10)
	if err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if _, err := client.Search("apple", 10); err == nil {
		t.Fatal("search against a stopped server succeeded")
	}
	if !client.Broken() {
		t.Error("client not marked broken after retries were exhausted")
	}

	srv2 := reServe(t, ix, addr)
	defer srv2.Close()
	after, err := client.Search("apple", 10)
	if err != nil {
		t.Fatalf("search after server restart: %v", err)
	}
	if len(after) != len(before) {
		t.Errorf("post-restart search returned %v, want %v", after, before)
	}
	if client.Broken() {
		t.Error("client still marked broken after successful redial")
	}
	if client.Stats().Redials == 0 {
		t.Error("no redial recorded")
	}
}

func TestChaosTruncatedFrameDoesNotDesync(t *testing.T) {
	// Regression for the protocol-desync bug: a half-written frame used
	// to leave the connection misaligned for every subsequent request.
	// Now any transport error marks the connection broken and the next
	// operation runs on a fresh one — and keeps answering correctly.
	ix := index.Build([]corpus.Document{
		{ID: 0, Text: "apple pie recipe"},
		{ID: 1, Text: "apple tart"},
		{ID: 2, Text: "banana bread"},
	}, analysis.Raw(), index.InQuery)
	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Only the first connection is cursed: its second write delivers half
	// a frame and drops. Redials get clean connections.
	var mu sync.Mutex
	conns := 0
	dial := func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		conns++
		first := conns == 1
		mu.Unlock()
		if first {
			return faulty.WrapConn(conn, faulty.ConnOptions{FailWriteCall: 2}), nil
		}
		return conn, nil
	}

	// Attempts: 1 — no retry, so the injected fault surfaces and we can
	// observe the broken flag doing its job on the *next* call.
	client, err := DialWith(srv.Addr(), Options{Retry: RetryPolicy{Attempts: 1}, DialFunc: dial})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	want, err := client.Search("apple", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search("banana", 10); !errors.Is(err, faulty.ErrInjected) {
		t.Fatalf("truncated write surfaced as %v, want ErrInjected", err)
	}
	if !client.Broken() {
		t.Fatal("half-written frame did not mark the connection broken")
	}
	got, err := client.Search("apple", 10)
	if err != nil {
		t.Fatalf("search after truncated frame: %v", err)
	}
	if len(got) != len(want) || (len(got) > 0 && got[0] != want[0]) {
		t.Errorf("desync: post-fault search returned %v, want %v", got, want)
	}
}

func TestChaosDeadlineOnUnresponsivePeer(t *testing.T) {
	// A peer that accepts but never answers used to hang the client
	// forever; with a per-operation deadline it fails within bounds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn) // swallow requests, never reply
		}
	}()

	client, err := DialWith(ln.Addr().String(), Options{
		Timeout: 25 * time.Millisecond,
		Retry:   RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Search("apple", 1)
	if err == nil {
		t.Fatal("search against an unresponsive peer succeeded")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error does not report retry exhaustion: %v", err)
	}
}

func TestChaosRemoteErrorsAreNotRetried(t *testing.T) {
	// Server-reported errors leave the transport healthy: no retry, no
	// backoff sleep, no broken flag.
	ix := index.Build([]corpus.Document{{ID: 0, Text: "alpha"}}, analysis.Raw(), index.InQuery)
	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sleeps := 0
	client, err := DialWith(srv.Addr(), Options{
		Retry:     fastRetry(5),
		SleepFunc: func(time.Duration) { sleeps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Fetch(99); err == nil {
		t.Fatal("out-of-range fetch succeeded")
	}
	if sleeps != 0 {
		t.Errorf("application error triggered %d backoff sleeps", sleeps)
	}
	if client.Broken() {
		t.Error("application error marked the connection broken")
	}
	if _, err := client.Search("alpha", 1); err != nil {
		t.Errorf("connection unusable after application error: %v", err)
	}
}

func TestChaosClosedClientStaysClosed(t *testing.T) {
	ix := index.Build([]corpus.Document{{ID: 0, Text: "alpha"}}, analysis.Raw(), index.InQuery)
	srv, err := Serve(ix, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialWith(srv.Addr(), Options{Retry: fastRetry(5)})
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Search("alpha", 1); err == nil {
		t.Error("closed client served a request (it must not redial)")
	}
	if client.Stats().Redials != 0 {
		t.Error("closed client redialed")
	}
}
