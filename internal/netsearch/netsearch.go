// Package netsearch exposes any core.Database over TCP and provides a
// client that is itself a core.Database. It demonstrates the paper's
// minimal-criterion premise end to end: the selection service can sample a
// database it does not control, across a process and network boundary,
// using nothing but the ordinary "run query / fetch document" interface
// (§3). No language-model export, no shared indexing conventions.
//
// The wire protocol is line-delimited JSON: one request object per line,
// one response object per line, over a single TCP connection. Requests:
//
//	{"op":"search","query":"apple","n":4}
//	{"op":"fetch","id":17}
//	{"op":"count","query":"apple"}      (optional; total matching docs)
//
// Responses carry either a result or an error string:
//
//	{"ids":[3,9,17,2]}
//	{"doc":{"ID":17,"Title":"...","Text":"..."}}
//	{"error":"no document with id 99"}
//
// The client side is fault tolerant: every operation can carry a deadline,
// any encode/decode failure marks the connection broken (a half-written
// frame must never be reused — the next response would be misaligned with
// the next request), and broken connections are transparently redialed
// with capped exponential backoff. All three operations are idempotent
// reads, which is what makes retrying them safe.
package netsearch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/randx"
	"repro/internal/telemetry"
)

// request is one wire request. Trace carries the caller's trace ID on
// every frame, so a server-side log line can be correlated with the HTTP
// request (or sampling run) that caused it. The cluster ops reuse N as
// the rank cutoff k and carry the database name/addr for registration.
type request struct {
	Op      string   `json:"op"`
	Query   string   `json:"query,omitempty"`
	Queries []string `json:"queries,omitempty"`
	N       int      `json:"n,omitempty"`
	ID      int      `json:"id,omitempty"`
	Alg     string   `json:"alg,omitempty"`
	Name    string   `json:"name,omitempty"`
	Addr    string   `json:"addr,omitempty"`
	Trace   string   `json:"trace,omitempty"`
}

// response is one wire response.
type response struct {
	IDs    []int            `json:"ids,omitempty"`
	Doc    *corpus.Document `json:"doc,omitempty"`
	Count  *int             `json:"count,omitempty"`
	Ranked []RankedDB       `json:"ranked,omitempty"`
	Batch  []RankedBatch    `json:"batch,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// RankedDB is one database in a selection ranking carried over the wire —
// the unit a cluster front tier scatters for and gathers.
type RankedDB struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// RankedBatch is one query's outcome inside a batched ranking — the wire
// twin of service.BatchItem. Items fail independently: Error carries a
// per-query problem (no index terms, say) while the neighbors still rank.
type RankedBatch struct {
	Ranked []RankedDB `json:"ranked,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// DBRanker matches servables that can rank their registered databases for
// a query — a selection service shard (see internal/cluster). The server
// forwards "rank" requests to it when available.
type DBRanker interface {
	RankDBs(query, alg string, k int) ([]RankedDB, error)
}

// BatchDBRanker matches servables that rank a whole batch of queries in
// one call, amortizing snapshot acquisition and scratch reuse (the
// high-QPS path, DESIGN.md §14). The server prefers it for "rankbatch"
// requests and falls back to per-query DBRanker when only that is
// implemented, so old shards keep working behind a new front.
type BatchDBRanker interface {
	RankDBsBatch(queries []string, alg string, k int) ([]RankedBatch, error)
}

// Registrar matches servables whose database registry can be administered
// remotely; the server forwards "register"/"unregister" requests to it.
// The cluster front tier uses this to place databases on their owning
// shard replicas.
type Registrar interface {
	RegisterDB(name, addr string) error
	UnregisterDB(name string) error
}

// hitCounter matches databases that report total hit counts (see
// sizeest.HitCounter); the server forwards "count" requests to it when
// available.
type hitCounter interface {
	TotalHits(query string) (int, error)
}

// Server serves a core.Database over TCP.
type Server struct {
	db core.Database
	ln net.Listener

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	logger  *slog.Logger
	metrics *telemetry.Registry
}

// Serve starts a server on addr (use "127.0.0.1:0" to pick a free port)
// and accepts connections until Close.
func Serve(db core.Database, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsearch: listen: %w", err)
	}
	s := &Server{db: db, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	//lint:ignore baregoroutine accept loop lives for the server, not a bounded fan-out; Close joins it via wg
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address, e.g. "127.0.0.1:43671".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetLogger installs a structured logger; every request is logged at
// debug level with its op and the trace ID carried on the frame. nil
// disables logging (the default).
func (s *Server) SetLogger(lg *slog.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = lg
}

// SetMetrics installs a telemetry registry; the server counts requests
// per op under netsearch_server_requests_total{op="…"} and errors under
// netsearch_server_errors_total. nil (the default) disables counting.
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = reg
}

// observers returns the current logger and registry under the lock.
func (s *Server) observers() (*slog.Logger, *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logger, s.metrics
}

// Close stops accepting connections, closes existing ones, and waits for
// handler goroutines to finish. The live connections are snapshotted
// under the lock but closed outside it: closing is network I/O, and the
// handlers' exit paths take the same lock — holding it across their
// teardown would serialize shutdown behind the slowest peer.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//lint:ignore maporder shutdown close order over live peers is not observable output
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		//lint:ignore baregoroutine one handler per live connection is the server's lifecycle, not pool fan-out; Close joins via wg
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		//lint:ignore errsink teardown of a connection the handler already gave up on; the peer sees the disconnect either way
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage; drop the connection
		}
		resp := s.dispatch(req)
		if lg, reg := s.observers(); lg != nil || reg != nil {
			reg.Counter(`netsearch_server_requests_total{op="` + promSafe(req.Op) + `"}`).Inc()
			if resp.Error != "" {
				reg.Counter("netsearch_server_errors_total").Inc()
			}
			if lg != nil {
				lg.Debug("netsearch request",
					"op", req.Op, telemetry.TraceKey, req.Trace, "err", resp.Error)
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// promSafe clamps an op string from the wire to the small closed set of
// known operations, so a hostile peer cannot mint unbounded metric-label
// cardinality.
func promSafe(op string) string {
	switch op {
	case "search", "fetch", "count", "rank", "rankbatch", "register", "unregister":
		return op
	}
	return "other"
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "search":
		ids, err := s.db.Search(req.Query, req.N)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{IDs: ids}
	case "fetch":
		doc, err := s.db.Fetch(req.ID)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Doc: &doc}
	case "count":
		hc, ok := s.db.(hitCounter)
		if !ok {
			return response{Error: "count unsupported by this database"}
		}
		n, err := hc.TotalHits(req.Query)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Count: &n}
	case "rank":
		dr, ok := s.db.(DBRanker)
		if !ok {
			return response{Error: "rank unsupported by this database"}
		}
		ranked, err := dr.RankDBs(req.Query, req.Alg, req.N)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Ranked: ranked}
	case "rankbatch":
		if br, ok := s.db.(BatchDBRanker); ok {
			batch, err := br.RankDBsBatch(req.Queries, req.Alg, req.N)
			if err != nil {
				return response{Error: err.Error()}
			}
			return response{Batch: batch}
		}
		dr, ok := s.db.(DBRanker)
		if !ok {
			return response{Error: "rankbatch unsupported by this database"}
		}
		batch := make([]RankedBatch, len(req.Queries))
		for i, q := range req.Queries {
			ranked, err := dr.RankDBs(q, req.Alg, req.N)
			if err != nil {
				batch[i].Error = err.Error()
				continue
			}
			batch[i].Ranked = ranked
		}
		return response{Batch: batch}
	case "register":
		rg, ok := s.db.(Registrar)
		if !ok {
			return response{Error: "register unsupported by this database"}
		}
		if err := rg.RegisterDB(req.Name, req.Addr); err != nil {
			return response{Error: err.Error()}
		}
		return response{}
	case "unregister":
		rg, ok := s.db.(Registrar)
		if !ok {
			return response{Error: "unregister unsupported by this database"}
		}
		if err := rg.UnregisterDB(req.Name); err != nil {
			return response{Error: err.Error()}
		}
		return response{}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Options configure a Client's fault tolerance. The zero value means no
// deadlines and the default retry policy.
type Options struct {
	// Timeout bounds each operation's time on the wire (send + receive).
	// An expired deadline is a transport error: the connection is marked
	// broken and the operation is retried on a fresh one. Zero means no
	// deadline.
	Timeout time.Duration
	// Retry governs redial-with-backoff after transport errors.
	Retry RetryPolicy
	// DialFunc replaces the plain TCP dial — the hook the fault-injection
	// harness (internal/faulty) uses to wrap connections. nil means
	// net.Dial("tcp", addr).
	DialFunc func(addr string) (net.Conn, error)
	// SleepFunc replaces time.Sleep between retry attempts so tests can
	// count backoffs instead of waiting them out. nil means time.Sleep.
	SleepFunc func(time.Duration)
	// Metrics receives the client's runtime counters and per-op latency
	// histograms (see DESIGN.md §9 for the inventory). nil disables
	// instrumentation at the cost of one branch per event.
	Metrics *telemetry.Registry
	// Logger receives a debug line per retry/redial, tagged with the
	// client's trace ID. nil disables logging.
	Logger *slog.Logger
}

// ClientStats counts a client's brushes with the network.
type ClientStats struct {
	// Faults is the number of transport errors observed.
	Faults int
	// Redials is the number of successful reconnections.
	Redials int
	// Retries is the number of extra attempts spent (a single operation
	// that succeeded on its third try contributes two).
	Retries int
}

// Client is a core.Database backed by a remote netsearch server. It is
// safe for concurrent use; requests on one connection are serialized.
// Transport failures are retried per its Options; server-reported errors
// (an unknown document id, say) are returned as-is, because the connection
// is still healthy and a retry would return the same answer.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
	broken bool
	closed bool
	rng    *randx.Source // jitter stream; guarded by mu
	stats  ClientStats
	trace  string // trace ID stamped on every wire frame; guarded by mu
}

// Dial connects to a netsearch server with default Options.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, Options{})
}

// DialWith connects to a netsearch server. The initial dial is a single
// eager attempt so misconfiguration fails fast; once connected, transport
// errors are retried per opts.Retry.
func DialWith(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr: addr,
		opts: opts,
		rng:  randx.New(opts.Retry.withDefaults().Seed),
	}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.attach(conn)
	return c, nil
}

// dial opens a new connection to the server.
func (c *Client) dial() (net.Conn, error) {
	dialFn := c.opts.DialFunc
	if dialFn == nil {
		dialFn = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dialFn(c.addr)
	if err != nil {
		c.opts.Metrics.Counter("netsearch_dial_errors_total").Inc()
		return nil, fmt.Errorf("netsearch: dial %s: %w", c.addr, err)
	}
	c.opts.Metrics.Counter("netsearch_dials_total").Inc()
	return conn, nil
}

// SetTrace stamps every subsequent wire frame with the given trace ID,
// correlating server-side logs with the request (or sampling run) the
// operation belongs to. The empty string clears it.
func (c *Client) SetTrace(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = id
}

// attach adopts conn as the client's transport. Caller holds mu (or is the
// constructor).
func (c *Client) attach(conn net.Conn) {
	c.conn = conn
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	c.enc = json.NewEncoder(conn)
	c.broken = false
}

// Close terminates the connection. A closed client stays closed: it will
// not redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	//lint:ignore lockheld c.mu owns the connection: Close is terminal, nothing can be waiting on the lock for progress, and closing outside it would race a concurrent roundTrip's reads
	return c.conn.Close()
}

// Broken reports whether the last operation exhausted its retries and left
// the client without a usable connection. The next operation redials; a
// registry that caches clients (service.connect) can also check this and
// replace the client outright.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Stats returns a snapshot of the client's fault counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Client) sleep(d time.Duration) {
	c.opts.Metrics.Counter("netsearch_backoff_sleeps_total").Inc()
	c.opts.Metrics.Histogram("netsearch_backoff_seconds").Observe(d.Seconds())
	if c.opts.SleepFunc != nil {
		c.opts.SleepFunc(d)
		return
	}
	time.Sleep(d)
}

// remoteError marks a server-reported application error: the frame was
// decoded in full, the transport is intact, and retrying would only repeat
// the same answer.
type remoteError struct{ msg string }

func (e remoteError) Error() string { return e.msg }

func (c *Client) roundTrip(req request) (response, error) {
	// Per-op latency covers the whole operation as the caller sees it:
	// lock wait, retries, backoff sleeps and redials included.
	sp := c.opts.Metrics.StartSpan(`netsearch_op_seconds{op="` + req.Op + `"}`)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return response{}, fmt.Errorf("netsearch: %s %s: client is closed", req.Op, c.addr)
	}
	// A per-request trace (the cluster scatter path, where one client
	// serves many concurrent queries) wins over the client-wide one.
	if req.Trace == "" {
		req.Trace = c.trace
	}
	policy := c.opts.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			c.opts.Metrics.Counter("netsearch_retries_total").Inc()
			if c.opts.Logger != nil {
				c.opts.Logger.Debug("netsearch retry",
					"op", req.Op, "attempt", attempt+1, "addr", c.addr,
					telemetry.TraceKey, c.trace, "err", fmt.Sprint(lastErr))
			}
			//lint:ignore lockheld c.mu is the wire-serialization mechanism (one frame exchange at a time per client); backoff sleeping under it is the design — waiters are exactly the ops that must not interleave
			c.sleep(policy.Delay(attempt-1, c.rng))
		}
		if c.broken || c.conn == nil {
			conn, err := c.dial()
			if err != nil {
				lastErr = err
				continue
			}
			if c.conn != nil {
				//lint:ignore lockheld c.mu owns the connection being replaced; a concurrent op must not touch it mid-swap
				c.conn.Close()
			}
			c.attach(conn)
			c.stats.Redials++
			c.opts.Metrics.Counter("netsearch_redials_total").Inc()
		}
		//lint:ignore lockheld c.mu serializes whole request/response exchanges — the frame protocol has no interleaving, so the I/O happens under the lock by design (DESIGN.md §8)
		resp, err := c.do(req)
		if err == nil {
			return resp, nil
		}
		var rerr remoteError
		if errors.As(err, &rerr) {
			return response{}, errors.New(rerr.msg)
		}
		// Transport error: the frame may be half-written or half-read, so
		// responses on this connection can no longer be matched to
		// requests. Never reuse it.
		c.stats.Faults++
		c.opts.Metrics.Counter("netsearch_faults_total").Inc()
		c.broken = true
		//lint:ignore lockheld c.mu owns the poisoned connection; it must be dead before the lock is released or a waiter could reuse the desynced frame stream
		c.conn.Close()
		c.opts.Metrics.Counter("netsearch_conns_discarded_total").Inc()
		lastErr = err
	}
	c.opts.Metrics.Counter("netsearch_op_failures_total").Inc()
	return response{}, fmt.Errorf("netsearch: %s %s failed after %d attempts: %w",
		req.Op, c.addr, policy.Attempts, lastErr)
}

// do performs one request/response exchange on the current connection.
// Caller holds mu.
func (c *Client) do(req request) (response, error) {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		//lint:ignore errsink clearing the deadline is best effort — if the conn is broken the next exchange fails loudly anyway
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("netsearch: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("netsearch: receive: %w", err)
	}
	if resp.Error != "" {
		return response{}, remoteError{resp.Error}
	}
	return resp, nil
}

// Search implements core.Database.
func (c *Client) Search(query string, n int) ([]int, error) {
	resp, err := c.roundTrip(request{Op: "search", Query: query, N: n})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Fetch implements core.Database.
func (c *Client) Fetch(id int) (corpus.Document, error) {
	resp, err := c.roundTrip(request{Op: "fetch", ID: id})
	if err != nil {
		return corpus.Document{}, err
	}
	if resp.Doc == nil {
		return corpus.Document{}, errors.New("netsearch: fetch returned no document")
	}
	return *resp.Doc, nil
}

// RankDBs asks a selection-service shard (a servable implementing
// DBRanker) for its partial database ranking — the cluster scatter
// operation. It is a pure read: retrying after a transport fault is as
// safe as search/fetch/count. trace stamps this one request's wire frame
// (one client serves many concurrent scatter queries, so the client-wide
// SetTrace is the wrong scope); "" falls back to the client trace.
// Server-side errors come back verbatim.
func (c *Client) RankDBs(query, alg string, k int, trace string) ([]RankedDB, error) {
	resp, err := c.roundTrip(request{Op: "rank", Query: query, Alg: alg, N: k, Trace: trace})
	if err != nil {
		return nil, err
	}
	return resp.Ranked, nil
}

// RankDBsBatch scatters a whole batch of queries to the shard in one wire
// frame, returning one RankedBatch per query in input order. Like RankDBs
// it is a pure read (safe to retry) and takes a per-request trace. A
// whole-batch failure (unknown algorithm, cold shard) comes back as an
// error; per-query problems ride in each item's Error.
func (c *Client) RankDBsBatch(queries []string, alg string, k int, trace string) ([]RankedBatch, error) {
	resp, err := c.roundTrip(request{Op: "rankbatch", Queries: queries, Alg: alg, N: k, Trace: trace})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(queries) {
		return nil, fmt.Errorf("netsearch: rankbatch returned %d items for %d queries",
			len(resp.Batch), len(queries))
	}
	return resp.Batch, nil
}

// RegisterDB registers a database on a remote shard (a servable
// implementing Registrar). Registration converges: replaying it yields a
// server-reported "already registered" error and leaves the registry in
// the same state, so transport-level retries cannot corrupt placement.
func (c *Client) RegisterDB(name, addr string) error {
	_, err := c.roundTrip(request{Op: "register", Name: name, Addr: addr})
	return err
}

// UnregisterDB removes a database from a remote shard's registry; like
// RegisterDB it converges under replay (a second delivery reports an
// unknown database and changes nothing).
func (c *Client) UnregisterDB(name string) error {
	_, err := c.roundTrip(request{Op: "unregister", Name: name})
	return err
}

// TotalHits asks the remote database for its total hit count for the
// query. Servers whose database does not support counting return an
// error. Together with Search and Fetch this makes the Client usable by
// the sizeest estimators.
func (c *Client) TotalHits(query string) (int, error) {
	resp, err := c.roundTrip(request{Op: "count", Query: query})
	if err != nil {
		return 0, err
	}
	if resp.Count == nil {
		return 0, errors.New("netsearch: count returned no value")
	}
	return *resp.Count, nil
}

var _ core.Database = (*Client)(nil)
