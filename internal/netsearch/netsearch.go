// Package netsearch exposes any core.Database over TCP and provides a
// client that is itself a core.Database. It demonstrates the paper's
// minimal-criterion premise end to end: the selection service can sample a
// database it does not control, across a process and network boundary,
// using nothing but the ordinary "run query / fetch document" interface
// (§3). No language-model export, no shared indexing conventions.
//
// The wire protocol is line-delimited JSON: one request object per line,
// one response object per line, over a single TCP connection. Requests:
//
//	{"op":"search","query":"apple","n":4}
//	{"op":"fetch","id":17}
//	{"op":"count","query":"apple"}      (optional; total matching docs)
//
// Responses carry either a result or an error string:
//
//	{"ids":[3,9,17,2]}
//	{"doc":{"ID":17,"Title":"...","Text":"..."}}
//	{"error":"no document with id 99"}
//
// The client side is fault tolerant: every operation can carry a deadline,
// any encode/decode failure marks the connection broken (a half-written
// frame must never be reused — the next response would be misaligned with
// the next request), and broken connections are transparently redialed
// with capped exponential backoff. All three operations are idempotent
// reads, which is what makes retrying them safe.
package netsearch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/randx"
	"repro/internal/telemetry"
)

// request is one wire request. Trace carries the caller's trace ID on
// every frame, so a server-side log line can be correlated with the HTTP
// request (or sampling run) that caused it. The cluster ops reuse N as
// the rank cutoff k and carry the database name/addr for registration.
type request struct {
	Op      string   `json:"op"`
	Query   string   `json:"query,omitempty"`
	Queries []string `json:"queries,omitempty"`
	N       int      `json:"n,omitempty"`
	ID      int      `json:"id,omitempty"`
	Alg     string   `json:"alg,omitempty"`
	Name    string   `json:"name,omitempty"`
	Addr    string   `json:"addr,omitempty"`
	Trace   string   `json:"trace,omitempty"`
}

// response is one wire response. Most ops answer with exactly one; the
// "rankstream" op answers with a frame sequence — one Item frame per query
// as its ranking completes, terminated by an EOS frame (or an Error frame
// for a whole-batch refusal). A stream with no terminal frame means the
// connection died mid-flight.
type response struct {
	IDs    []int            `json:"ids,omitempty"`
	Doc    *corpus.Document `json:"doc,omitempty"`
	Count  *int             `json:"count,omitempty"`
	Ranked []RankedDB       `json:"ranked,omitempty"`
	Batch  []RankedBatch    `json:"batch,omitempty"`
	Item   *streamItemFrame `json:"item,omitempty"`
	EOS    bool             `json:"eos,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// streamItemFrame is one query's result inside a rankstream response
// sequence. Index is the query's position in the request, so a fused
// gather can stream shard results out of arrival order.
type streamItemFrame struct {
	Index  int        `json:"index"`
	Ranked []RankedDB `json:"ranked,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// RankedDB is one database in a selection ranking carried over the wire —
// the unit a cluster front tier scatters for and gathers.
type RankedDB struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// RankedBatch is one query's outcome inside a batched ranking — the wire
// twin of service.BatchItem. Items fail independently: Error carries a
// per-query problem (no index terms, say) while the neighbors still rank.
type RankedBatch struct {
	Ranked []RankedDB `json:"ranked,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// DBRanker matches servables that can rank their registered databases for
// a query — a selection service shard (see internal/cluster). The server
// forwards "rank" requests to it when available.
type DBRanker interface {
	RankDBs(query, alg string, k int) ([]RankedDB, error)
}

// BatchDBRanker matches servables that rank a whole batch of queries in
// one call, amortizing snapshot acquisition and scratch reuse (the
// high-QPS path, DESIGN.md §14). The server prefers it for "rankbatch"
// requests and falls back to per-query DBRanker when only that is
// implemented, so old shards keep working behind a new front.
type BatchDBRanker interface {
	RankDBsBatch(queries []string, alg string, k int) ([]RankedBatch, error)
}

// StreamBatchRanker matches servables that can rank a batch query by
// query, emitting each item the moment it completes — the wire's streaming
// tier (DESIGN.md §15). The server prefers it for "rankstream" requests
// and degrades to BatchDBRanker (buffer, then emit) and DBRanker (rank one
// by one) when only those are implemented, so any shard vintage can sit
// behind a streaming front.
type StreamBatchRanker interface {
	RankDBsStream(queries []string, alg string, k int, emit func(i int, item RankedBatch) error) error
}

// Registrar matches servables whose database registry can be administered
// remotely; the server forwards "register"/"unregister" requests to it.
// The cluster front tier uses this to place databases on their owning
// shard replicas.
type Registrar interface {
	RegisterDB(name, addr string) error
	UnregisterDB(name string) error
}

// hitCounter matches databases that report total hit counts (see
// sizeest.HitCounter); the server forwards "count" requests to it when
// available.
type hitCounter interface {
	TotalHits(query string) (int, error)
}

// Server serves a core.Database over TCP.
type Server struct {
	db core.Database
	ln net.Listener

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	logger  *slog.Logger
	metrics *telemetry.Registry
}

// Serve starts a server on addr (use "127.0.0.1:0" to pick a free port)
// and accepts connections until Close.
func Serve(db core.Database, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsearch: listen: %w", err)
	}
	s := &Server{db: db, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	//lint:ignore baregoroutine accept loop lives for the server, not a bounded fan-out; Close joins it via wg
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address, e.g. "127.0.0.1:43671".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetLogger installs a structured logger; every request is logged at
// debug level with its op and the trace ID carried on the frame. nil
// disables logging (the default).
func (s *Server) SetLogger(lg *slog.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = lg
}

// SetMetrics installs a telemetry registry; the server counts requests
// per op under netsearch_server_requests_total{op="…"} and errors under
// netsearch_server_errors_total. nil (the default) disables counting.
func (s *Server) SetMetrics(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = reg
}

// observers returns the current logger and registry under the lock.
func (s *Server) observers() (*slog.Logger, *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logger, s.metrics
}

// Close stops accepting connections, closes existing ones, and waits for
// handler goroutines to finish. The live connections are snapshotted
// under the lock but closed outside it: closing is network I/O, and the
// handlers' exit paths take the same lock — holding it across their
// teardown would serialize shutdown behind the slowest peer.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		//lint:ignore maporder shutdown close order over live peers is not observable output
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		//lint:ignore baregoroutine one handler per live connection is the server's lifecycle, not pool fan-out; Close joins via wg
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		//lint:ignore errsink teardown of a connection the handler already gave up on; the peer sees the disconnect either way
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage; drop the connection
		}
		if req.Op == "rankstream" {
			// Multi-frame response: streamRank owns the encoder until its
			// terminal frame, preserving the one-request/one-exchange shape
			// the connection's framing depends on.
			lg, reg := s.observers()
			reg.Counter(`netsearch_server_requests_total{op="rankstream"}`).Inc()
			if lg != nil {
				lg.Debug("netsearch request",
					"op", req.Op, telemetry.TraceKey, req.Trace)
			}
			if err := s.streamRank(req, enc, reg); err != nil {
				return // encode failed; the frame stream is desynced
			}
			continue
		}
		resp := s.dispatch(req)
		if lg, reg := s.observers(); lg != nil || reg != nil {
			reg.Counter(`netsearch_server_requests_total{op="` + promSafe(req.Op) + `"}`).Inc()
			if resp.Error != "" {
				reg.Counter("netsearch_server_errors_total").Inc()
			}
			if lg != nil {
				lg.Debug("netsearch request",
					"op", req.Op, telemetry.TraceKey, req.Trace, "err", resp.Error)
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// promSafe clamps an op string from the wire to the small closed set of
// known operations, so a hostile peer cannot mint unbounded metric-label
// cardinality.
func promSafe(op string) string {
	switch op {
	case "search", "fetch", "count", "rank", "rankbatch", "rankstream", "register", "unregister":
		return op
	}
	return "other"
}

// streamRank serves one "rankstream" request as a frame sequence on enc.
// It prefers a StreamBatchRanker servable (true per-item streaming) and
// degrades to BatchDBRanker or DBRanker so legacy shards still answer. A
// returned error is always an encode failure: the caller must drop the
// connection, because a half-written frame sequence cannot be resumed.
// Whole-batch ranker errors become a terminal Error frame instead.
func (s *Server) streamRank(req request, enc *json.Encoder, reg *telemetry.Registry) error {
	emit := func(i int, item RankedBatch) error {
		return enc.Encode(response{Item: &streamItemFrame{
			Index: i, Ranked: item.Ranked, Error: item.Error,
		}})
	}
	var err error
	switch db := s.db.(type) {
	case StreamBatchRanker:
		err = db.RankDBsStream(req.Queries, req.Alg, req.N, emit)
	case BatchDBRanker:
		var batch []RankedBatch
		batch, err = db.RankDBsBatch(req.Queries, req.Alg, req.N)
		for i := 0; err == nil && i < len(batch); i++ {
			err = emit(i, batch[i])
		}
	case DBRanker:
		for i, q := range req.Queries {
			item := RankedBatch{}
			if ranked, rerr := db.RankDBs(q, req.Alg, req.N); rerr != nil {
				item.Error = rerr.Error()
			} else {
				item.Ranked = ranked
			}
			if err = emit(i, item); err != nil {
				return err
			}
		}
	default:
		err = errors.New("rankstream unsupported by this database")
	}
	if err != nil {
		reg.Counter("netsearch_server_errors_total").Inc()
		// If err was itself an encode failure this Encode fails too and the
		// caller drops the connection — exactly right either way.
		return enc.Encode(response{Error: err.Error()})
	}
	return enc.Encode(response{EOS: true})
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "search":
		ids, err := s.db.Search(req.Query, req.N)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{IDs: ids}
	case "fetch":
		doc, err := s.db.Fetch(req.ID)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Doc: &doc}
	case "count":
		hc, ok := s.db.(hitCounter)
		if !ok {
			return response{Error: "count unsupported by this database"}
		}
		n, err := hc.TotalHits(req.Query)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Count: &n}
	case "rank":
		dr, ok := s.db.(DBRanker)
		if !ok {
			return response{Error: "rank unsupported by this database"}
		}
		ranked, err := dr.RankDBs(req.Query, req.Alg, req.N)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Ranked: ranked}
	case "rankbatch":
		if br, ok := s.db.(BatchDBRanker); ok {
			batch, err := br.RankDBsBatch(req.Queries, req.Alg, req.N)
			if err != nil {
				return response{Error: err.Error()}
			}
			return response{Batch: batch}
		}
		dr, ok := s.db.(DBRanker)
		if !ok {
			return response{Error: "rankbatch unsupported by this database"}
		}
		batch := make([]RankedBatch, len(req.Queries))
		for i, q := range req.Queries {
			ranked, err := dr.RankDBs(q, req.Alg, req.N)
			if err != nil {
				batch[i].Error = err.Error()
				continue
			}
			batch[i].Ranked = ranked
		}
		return response{Batch: batch}
	case "register":
		rg, ok := s.db.(Registrar)
		if !ok {
			return response{Error: "register unsupported by this database"}
		}
		if err := rg.RegisterDB(req.Name, req.Addr); err != nil {
			return response{Error: err.Error()}
		}
		return response{}
	case "unregister":
		rg, ok := s.db.(Registrar)
		if !ok {
			return response{Error: "unregister unsupported by this database"}
		}
		if err := rg.UnregisterDB(req.Name); err != nil {
			return response{Error: err.Error()}
		}
		return response{}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Options configure a Client's fault tolerance. The zero value means no
// deadlines and the default retry policy.
type Options struct {
	// Timeout bounds each operation's time on the wire (send + receive).
	// An expired deadline is a transport error: the connection is marked
	// broken and the operation is retried on a fresh one. Zero means no
	// deadline.
	Timeout time.Duration
	// Retry governs redial-with-backoff after transport errors.
	Retry RetryPolicy
	// DialFunc replaces the plain TCP dial — the hook the fault-injection
	// harness (internal/faulty) uses to wrap connections. nil means
	// net.Dial("tcp", addr).
	DialFunc func(addr string) (net.Conn, error)
	// SleepFunc replaces time.Sleep between retry attempts so tests can
	// count backoffs instead of waiting them out. nil means time.Sleep.
	SleepFunc func(time.Duration)
	// Metrics receives the client's runtime counters and per-op latency
	// histograms (see DESIGN.md §9 for the inventory). nil disables
	// instrumentation at the cost of one branch per event.
	Metrics *telemetry.Registry
	// Logger receives a debug line per retry/redial, tagged with the
	// client's trace ID. nil disables logging.
	Logger *slog.Logger
}

// ClientStats counts a client's brushes with the network.
type ClientStats struct {
	// Faults is the number of transport errors observed.
	Faults int
	// Redials is the number of successful reconnections.
	Redials int
	// Retries is the number of extra attempts spent (a single operation
	// that succeeded on its third try contributes two).
	Retries int
}

// Client is a core.Database backed by a remote netsearch server. It is
// safe for concurrent use; requests on one connection are serialized.
// Transport failures are retried per its Options; server-reported errors
// (an unknown document id, say) are returned as-is, because the connection
// is still healthy and a retry would return the same answer.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder
	broken bool
	closed bool
	rng    *randx.Source // jitter stream; guarded by mu
	stats  ClientStats
	trace  string // trace ID stamped on every wire frame; guarded by mu
}

// Dial connects to a netsearch server with default Options.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, Options{})
}

// DialWith connects to a netsearch server. The initial dial is a single
// eager attempt so misconfiguration fails fast; once connected, transport
// errors are retried per opts.Retry.
func DialWith(addr string, opts Options) (*Client, error) {
	c := &Client{
		addr: addr,
		opts: opts,
		rng:  randx.New(opts.Retry.withDefaults().Seed),
	}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.attach(conn)
	return c, nil
}

// dial opens a new connection to the server.
func (c *Client) dial() (net.Conn, error) {
	dialFn := c.opts.DialFunc
	if dialFn == nil {
		dialFn = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dialFn(c.addr)
	if err != nil {
		c.opts.Metrics.Counter("netsearch_dial_errors_total").Inc()
		return nil, fmt.Errorf("netsearch: dial %s: %w", c.addr, err)
	}
	c.opts.Metrics.Counter("netsearch_dials_total").Inc()
	return conn, nil
}

// SetTrace stamps every subsequent wire frame with the given trace ID,
// correlating server-side logs with the request (or sampling run) the
// operation belongs to. The empty string clears it.
func (c *Client) SetTrace(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = id
}

// attach adopts conn as the client's transport. Caller holds mu (or is the
// constructor).
func (c *Client) attach(conn net.Conn) {
	c.conn = conn
	c.dec = json.NewDecoder(bufio.NewReader(conn))
	c.enc = json.NewEncoder(conn)
	c.broken = false
}

// Close terminates the connection. A closed client stays closed: it will
// not redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	//lint:ignore lockheld c.mu owns the connection: Close is terminal, nothing can be waiting on the lock for progress, and closing outside it would race a concurrent roundTrip's reads
	return c.conn.Close()
}

// Broken reports whether the last operation exhausted its retries and left
// the client without a usable connection. The next operation redials; a
// registry that caches clients (service.connect) can also check this and
// replace the client outright.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Stats returns a snapshot of the client's fault counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Client) sleep(d time.Duration) {
	c.opts.Metrics.Counter("netsearch_backoff_sleeps_total").Inc()
	c.opts.Metrics.Histogram("netsearch_backoff_seconds").Observe(d.Seconds())
	if c.opts.SleepFunc != nil {
		c.opts.SleepFunc(d)
		return
	}
	time.Sleep(d)
}

// remoteError marks a server-reported application error: the frame was
// decoded in full, the transport is intact, and retrying would only repeat
// the same answer.
type remoteError struct{ msg string }

func (e remoteError) Error() string { return e.msg }

// ErrStreamCanceled marks a rank stream the caller tore down mid-flight
// (its emit callback refused a frame — typically because the HTTP client
// disconnected). The abandoned connection is discarded, but the failure is
// the caller's decision: it is never retried and a gather tier must not
// count it against the shard's health.
var ErrStreamCanceled = errors.New("netsearch: stream canceled by caller")

// emitError wraps an error returned by a stream consumer's emit callback,
// so the retry loop can tell "the caller gave up" (never retry, surface
// the caller's error) from "the wire failed" (redial and retry).
type emitError struct{ err error }

func (e emitError) Error() string { return e.err.Error() }
func (e emitError) Unwrap() error { return e.err }

func (c *Client) roundTrip(req request) (response, error) {
	// Per-op latency covers the whole operation as the caller sees it:
	// lock wait, retries, backoff sleeps and redials included.
	sp := c.opts.Metrics.StartSpan(`netsearch_op_seconds{op="` + req.Op + `"}`)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return response{}, fmt.Errorf("netsearch: %s %s: client is closed", req.Op, c.addr)
	}
	// A per-request trace (the cluster scatter path, where one client
	// serves many concurrent queries) wins over the client-wide one.
	if req.Trace == "" {
		req.Trace = c.trace
	}
	//lint:ignore lockheld c.mu is the wire-serialization mechanism (one frame exchange at a time per client); the whole retry loop — backoff sleeps, redials, exchanges — runs under it by design so frames never interleave (DESIGN.md §8)
	return c.retryLoop(req, func() (response, error) { return c.do(req) })
}

// retryLoop drives one operation through the redial-with-backoff policy.
// Caller holds c.mu, has checked closed, and has stamped the trace;
// exchange performs one full frame exchange (or stream) on the current
// connection.
func (c *Client) retryLoop(req request, exchange func() (response, error)) (response, error) {
	policy := c.opts.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			c.opts.Metrics.Counter("netsearch_retries_total").Inc()
			if c.opts.Logger != nil {
				c.opts.Logger.Debug("netsearch retry",
					"op", req.Op, "attempt", attempt+1, "addr", c.addr,
					telemetry.TraceKey, c.trace, "err", fmt.Sprint(lastErr))
			}
			c.sleep(policy.Delay(attempt-1, c.rng))
		}
		if c.broken || c.conn == nil {
			conn, err := c.dial()
			if err != nil {
				lastErr = err
				continue
			}
			if c.conn != nil {
				c.conn.Close()
			}
			c.attach(conn)
			c.stats.Redials++
			c.opts.Metrics.Counter("netsearch_redials_total").Inc()
		}
		resp, err := exchange()
		if err == nil {
			return resp, nil
		}
		var rerr remoteError
		if errors.As(err, &rerr) {
			return response{}, errors.New(rerr.msg)
		}
		// Transport error or abandoned stream: the frame sequence may be
		// half-written or half-read, so responses on this connection can no
		// longer be matched to requests. Never reuse it.
		c.broken = true
		c.conn.Close()
		c.opts.Metrics.Counter("netsearch_conns_discarded_total").Inc()
		var eerr emitError
		if errors.As(err, &eerr) {
			// The caller aborted the stream. Its error (usually wrapping
			// ErrStreamCanceled or a context cancellation) surfaces as-is —
			// retrying would re-rank for a consumer that already left, and
			// counting a fault would smear the caller's choice onto the
			// network's record.
			return response{}, fmt.Errorf("netsearch: %s %s: %w", req.Op, c.addr, eerr.err)
		}
		c.stats.Faults++
		c.opts.Metrics.Counter("netsearch_faults_total").Inc()
		lastErr = err
	}
	c.opts.Metrics.Counter("netsearch_op_failures_total").Inc()
	return response{}, fmt.Errorf("netsearch: %s %s failed after %d attempts: %w",
		req.Op, c.addr, policy.Attempts, lastErr)
}

// do performs one request/response exchange on the current connection.
// Caller holds mu.
func (c *Client) do(req request) (response, error) {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		//lint:ignore errsink clearing the deadline is best effort — if the conn is broken the next exchange fails loudly anyway
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("netsearch: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("netsearch: receive: %w", err)
	}
	if resp.Error != "" {
		return response{}, remoteError{resp.Error}
	}
	return resp, nil
}

// doStream performs one "rankstream" exchange: send the request, then
// decode Item frames into emit until the terminal EOS or Error frame.
// Caller holds mu for the whole stream — the frame sequence is one
// exchange, and interleaving another op's frames into it would desync the
// connection. An emit failure comes back wrapped in emitError so the retry
// loop knows the caller (not the wire) gave up.
func (c *Client) doStream(req request, emit func(i int, item RankedBatch) error) error {
	if c.opts.Timeout > 0 {
		// One deadline bounds the whole stream, like any other op.
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		//lint:ignore errsink clearing the deadline is best effort — if the conn is broken the next exchange fails loudly anyway
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		return fmt.Errorf("netsearch: send: %w", err)
	}
	for {
		var resp response
		if err := c.dec.Decode(&resp); err != nil {
			return fmt.Errorf("netsearch: receive: %w", err)
		}
		switch {
		case resp.Error != "":
			return remoteError{resp.Error}
		case resp.EOS:
			return nil
		case resp.Item != nil:
			if err := emit(resp.Item.Index, RankedBatch{
				Ranked: resp.Item.Ranked, Error: resp.Item.Error,
			}); err != nil {
				return emitError{err}
			}
		default:
			// A frame that is neither item, error, nor EOS means the peer
			// and we disagree about the protocol: treat it like a transport
			// fault so the connection is discarded.
			return errors.New("netsearch: rankstream frame with no item, error, or eos")
		}
	}
}

// RankDBsStream scatters a batch to the shard and emits each query's item
// the moment its frame arrives, instead of waiting for the whole batch —
// the streaming twin of RankDBsBatch. Items arrive tagged with their query
// index. Like the other ops it is a pure read and retries transport faults
// by replaying the whole stream on a fresh connection: emit can therefore
// see an index more than once, with bit-identical contents (ranking is
// deterministic), and consumers keep the first delivery. An error returned
// by emit cancels the stream: the connection is discarded (frames for a
// consumer that left would desync it), no retry happens, and the error is
// returned wrapped — cancellation conventionally wraps ErrStreamCanceled.
func (c *Client) RankDBsStream(queries []string, alg string, k int, trace string, emit func(i int, item RankedBatch) error) error {
	req := request{Op: "rankstream", Queries: queries, Alg: alg, N: k, Trace: trace}
	sp := c.opts.Metrics.StartSpan(`netsearch_op_seconds{op="rankstream"}`)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("netsearch: rankstream %s: client is closed", c.addr)
	}
	if req.Trace == "" {
		req.Trace = c.trace
	}
	//lint:ignore lockheld c.mu serializes whole exchanges; the stream (and any transport retry of it) holds the lock end to end or another op's frames would interleave into the item sequence
	_, err := c.retryLoop(req, func() (response, error) {
		return response{}, c.doStream(req, emit)
	})
	return err
}

// Search implements core.Database.
func (c *Client) Search(query string, n int) ([]int, error) {
	resp, err := c.roundTrip(request{Op: "search", Query: query, N: n})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Fetch implements core.Database.
func (c *Client) Fetch(id int) (corpus.Document, error) {
	resp, err := c.roundTrip(request{Op: "fetch", ID: id})
	if err != nil {
		return corpus.Document{}, err
	}
	if resp.Doc == nil {
		return corpus.Document{}, errors.New("netsearch: fetch returned no document")
	}
	return *resp.Doc, nil
}

// RankDBs asks a selection-service shard (a servable implementing
// DBRanker) for its partial database ranking — the cluster scatter
// operation. It is a pure read: retrying after a transport fault is as
// safe as search/fetch/count. trace stamps this one request's wire frame
// (one client serves many concurrent scatter queries, so the client-wide
// SetTrace is the wrong scope); "" falls back to the client trace.
// Server-side errors come back verbatim.
func (c *Client) RankDBs(query, alg string, k int, trace string) ([]RankedDB, error) {
	resp, err := c.roundTrip(request{Op: "rank", Query: query, Alg: alg, N: k, Trace: trace})
	if err != nil {
		return nil, err
	}
	return resp.Ranked, nil
}

// RankDBsBatch scatters a whole batch of queries to the shard in one wire
// frame, returning one RankedBatch per query in input order. Like RankDBs
// it is a pure read (safe to retry) and takes a per-request trace. A
// whole-batch failure (unknown algorithm, cold shard) comes back as an
// error; per-query problems ride in each item's Error.
func (c *Client) RankDBsBatch(queries []string, alg string, k int, trace string) ([]RankedBatch, error) {
	resp, err := c.roundTrip(request{Op: "rankbatch", Queries: queries, Alg: alg, N: k, Trace: trace})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(queries) {
		return nil, fmt.Errorf("netsearch: rankbatch returned %d items for %d queries",
			len(resp.Batch), len(queries))
	}
	return resp.Batch, nil
}

// RegisterDB registers a database on a remote shard (a servable
// implementing Registrar). Registration converges: replaying it yields a
// server-reported "already registered" error and leaves the registry in
// the same state, so transport-level retries cannot corrupt placement.
func (c *Client) RegisterDB(name, addr string) error {
	_, err := c.roundTrip(request{Op: "register", Name: name, Addr: addr})
	return err
}

// UnregisterDB removes a database from a remote shard's registry; like
// RegisterDB it converges under replay (a second delivery reports an
// unknown database and changes nothing).
func (c *Client) UnregisterDB(name string) error {
	_, err := c.roundTrip(request{Op: "unregister", Name: name})
	return err
}

// TotalHits asks the remote database for its total hit count for the
// query. Servers whose database does not support counting return an
// error. Together with Search and Fetch this makes the Client usable by
// the sizeest estimators.
func (c *Client) TotalHits(query string) (int, error) {
	resp, err := c.roundTrip(request{Op: "count", Query: query})
	if err != nil {
		return 0, err
	}
	if resp.Count == nil {
		return 0, errors.New("netsearch: count returned no value")
	}
	return *resp.Count, nil
}

var _ core.Database = (*Client)(nil)
