// Package netsearch exposes any core.Database over TCP and provides a
// client that is itself a core.Database. It demonstrates the paper's
// minimal-criterion premise end to end: the selection service can sample a
// database it does not control, across a process and network boundary,
// using nothing but the ordinary "run query / fetch document" interface
// (§3). No language-model export, no shared indexing conventions.
//
// The wire protocol is line-delimited JSON: one request object per line,
// one response object per line, over a single TCP connection. Requests:
//
//	{"op":"search","query":"apple","n":4}
//	{"op":"fetch","id":17}
//	{"op":"count","query":"apple"}      (optional; total matching docs)
//
// Responses carry either a result or an error string:
//
//	{"ids":[3,9,17,2]}
//	{"doc":{"ID":17,"Title":"...","Text":"..."}}
//	{"error":"no document with id 99"}
package netsearch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
)

// request is one wire request.
type request struct {
	Op    string `json:"op"`
	Query string `json:"query,omitempty"`
	N     int    `json:"n,omitempty"`
	ID    int    `json:"id,omitempty"`
}

// response is one wire response.
type response struct {
	IDs   []int            `json:"ids,omitempty"`
	Doc   *corpus.Document `json:"doc,omitempty"`
	Count *int             `json:"count,omitempty"`
	Error string           `json:"error,omitempty"`
}

// hitCounter matches databases that report total hit counts (see
// sizeest.HitCounter); the server forwards "count" requests to it when
// available.
type hitCounter interface {
	TotalHits(query string) (int, error)
}

// Server serves a core.Database over TCP.
type Server struct {
	db core.Database
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts a server on addr (use "127.0.0.1:0" to pick a free port)
// and accepts connections until Close.
func Serve(db core.Database, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsearch: listen: %w", err)
	}
	s := &Server{db: db, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	//lint:ignore baregoroutine accept loop lives for the server, not a bounded fan-out; Close joins it via wg
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address, e.g. "127.0.0.1:43671".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections, closes existing ones, and waits for
// handler goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		//lint:ignore baregoroutine one handler per live connection is the server's lifecycle, not pool fan-out; Close joins via wg
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage; drop the connection
		}
		if err := enc.Encode(s.dispatch(req)); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "search":
		ids, err := s.db.Search(req.Query, req.N)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{IDs: ids}
	case "fetch":
		doc, err := s.db.Fetch(req.ID)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Doc: &doc}
	case "count":
		hc, ok := s.db.(hitCounter)
		if !ok {
			return response{Error: "count unsupported by this database"}
		}
		n, err := hc.TotalHits(req.Query)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Count: &n}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a core.Database backed by a remote netsearch server. It is
// safe for concurrent use; requests on one connection are serialized.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a netsearch server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsearch: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("netsearch: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("netsearch: receive: %w", err)
	}
	if resp.Error != "" {
		return response{}, errors.New(resp.Error)
	}
	return resp, nil
}

// Search implements core.Database.
func (c *Client) Search(query string, n int) ([]int, error) {
	resp, err := c.roundTrip(request{Op: "search", Query: query, N: n})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Fetch implements core.Database.
func (c *Client) Fetch(id int) (corpus.Document, error) {
	resp, err := c.roundTrip(request{Op: "fetch", ID: id})
	if err != nil {
		return corpus.Document{}, err
	}
	if resp.Doc == nil {
		return corpus.Document{}, errors.New("netsearch: fetch returned no document")
	}
	return *resp.Doc, nil
}

// TotalHits asks the remote database for its total hit count for the
// query. Servers whose database does not support counting return an
// error. Together with Search and Fetch this makes the Client usable by
// the sizeest estimators.
func (c *Client) TotalHits(query string) (int, error) {
	resp, err := c.roundTrip(request{Op: "count", Query: query})
	if err != nil {
		return 0, err
	}
	if resp.Count == nil {
		return 0, errors.New("netsearch: count returned no value")
	}
	return *resp.Count, nil
}

var _ core.Database = (*Client)(nil)
