package netsearch

// Tests for the "rankstream" wire op (DESIGN.md §15): streamed items over
// real TCP for all three server vintages (StreamBatchRanker, BatchDBRanker,
// DBRanker), in-order delivery with per-item errors, caller aborts that
// discard the connection without fault accounting or retries, and the
// connection surviving for the next operation.

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// streamShard implements StreamBatchRanker natively on top of fakeShard.
type streamShard struct {
	fakeShard
	perItemErr map[int]string // index -> streamed item error
}

func (s *streamShard) RankDBsStream(queries []string, alg string, k int, emit func(i int, item RankedBatch) error) error {
	for i := range queries {
		if msg, ok := s.perItemErr[i]; ok {
			if err := emit(i, RankedBatch{Error: msg}); err != nil {
				return err
			}
			continue
		}
		ranked, err := s.RankDBs(queries[i], alg, k)
		if err != nil {
			return err
		}
		if err := emit(i, RankedBatch{Ranked: ranked}); err != nil {
			return err
		}
	}
	return nil
}

// batchShard implements only the buffered BatchDBRanker.
type batchShard struct{ fakeShard }

func (s *batchShard) RankDBsBatch(queries []string, alg string, k int) ([]RankedBatch, error) {
	out := make([]RankedBatch, len(queries))
	for i, q := range queries {
		ranked, err := s.RankDBs(q, alg, k)
		if err != nil {
			return nil, err
		}
		out[i].Ranked = ranked
	}
	return out, nil
}

func collectRankStream(t *testing.T, c *Client, queries []string, k int) []RankedBatch {
	t.Helper()
	var items []RankedBatch
	err := c.RankDBsStream(queries, "cori", k, "", func(i int, item RankedBatch) error {
		if i != len(items) {
			return fmt.Errorf("item %d arrived out of order (want %d)", i, len(items))
		}
		items = append(items, item)
		return nil
	})
	if err != nil {
		t.Fatalf("RankDBsStream: %v", err)
	}
	return items
}

// TestRankStreamOverTCP exercises every server vintage: a native streamer
// (with a per-item error), a buffered batch ranker, and a one-query-at-a-
// time legacy ranker — all must deliver the same items, in order.
func TestRankStreamOverTCP(t *testing.T) {
	ranked := []RankedDB{{Name: "db-a", Score: 0.9}, {Name: "db-b", Score: 0.4}}
	servables := map[string]core.Database{
		"stream": &streamShard{
			fakeShard:  fakeShard{ranked: ranked},
			perItemErr: map[int]string{1: "no index terms"},
		},
		"batch":  &batchShard{fakeShard{ranked: ranked}},
		"legacy": &fakeShard{ranked: ranked},
	}
	for vintage, sh := range servables {
		t.Run(vintage, func(t *testing.T) {
			srv, err := Serve(sh, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })

			queries := []string{"apple", "the and of", "plum"}
			items := collectRankStream(t, c, queries, 2)
			if len(items) != len(queries) {
				t.Fatalf("got %d items for %d queries", len(items), len(queries))
			}
			for i, it := range items {
				if vintage == "stream" && i == 1 {
					if it.Error != "no index terms" || it.Ranked != nil {
						t.Errorf("item 1 = %+v, want the shard's streamed error", it)
					}
					continue
				}
				if it.Error != "" || !reflect.DeepEqual(it.Ranked, ranked) {
					t.Errorf("item %d = %+v, want %+v", i, it, ranked)
				}
			}
			// The connection survives the stream: the next op reuses it.
			if _, err := c.RankDBs("apple", "cori", 2, ""); err != nil {
				t.Fatalf("rank after stream: %v", err)
			}
		})
	}
}

// TestRankStreamServerError: a whole-batch refusal (the shard's batch
// ranker errors before any item) surfaces as a remote error, not a dropped
// connection. A legacy per-query shard instead degrades the same failure
// to per-item errors — both contracts are pinned here.
func TestRankStreamServerError(t *testing.T) {
	sh := &batchShard{fakeShard{rankErr: errors.New("invalid argument: bogus alg")}}
	srv, err := Serve(sh, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	err = c.RankDBsStream([]string{"q"}, "bogus", 5, "", func(int, RankedBatch) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "invalid argument") {
		t.Errorf("stream error = %v, want the server-reported message", err)
	}

	// Legacy vintage: the per-query fallback reports the same failure in
	// each item's Error, and the stream itself completes.
	legacy := startShardServer(t, &fakeShard{rankErr: errors.New("invalid argument: bogus alg")})
	items := collectRankStream(t, legacy, []string{"a", "b"}, 5)
	for i, it := range items {
		if !strings.Contains(it.Error, "invalid argument") {
			t.Errorf("legacy item %d = %+v, want the per-item error", i, it)
		}
	}
}

// TestRankStreamCallerAbort: an emit error mid-stream surfaces as-is,
// costs no fault or retry (the caller chose to leave), discards the
// now-desynchronized connection, and the client redials for the next op.
func TestRankStreamCallerAbort(t *testing.T) {
	sh := &streamShard{fakeShard: fakeShard{ranked: []RankedDB{{Name: "db-a", Score: 0.9}}}}
	srv, err := Serve(sh, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	reg := telemetry.NewRegistry()
	c, err := DialWith(srv.Addr(), Options{
		Metrics: reg,
		Retry:   RetryPolicy{Attempts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	abort := fmt.Errorf("%w: consumer gone", ErrStreamCanceled)
	emits := 0
	err = c.RankDBsStream([]string{"a", "b", "c"}, "cori", 2, "", func(int, RankedBatch) error {
		emits++
		return abort
	})
	if !errors.Is(err, ErrStreamCanceled) {
		t.Fatalf("aborted stream error = %v, want ErrStreamCanceled", err)
	}
	if emits != 1 {
		t.Fatalf("emit ran %d times after aborting, want 1 (no retry replay)", emits)
	}
	if got := c.Stats().Faults; got != 0 {
		t.Errorf("caller abort counted %d transport faults, want 0", got)
	}
	if got := reg.Counter("netsearch_conns_discarded_total").Value(); got != 1 {
		t.Errorf("conns discarded = %d, want 1 (the desynced stream connection)", got)
	}
	// The abandoned connection was discarded; the next op redials cleanly.
	got, err := c.RankDBs("apple", "cori", 1, "")
	if err != nil {
		t.Fatalf("rank after aborted stream: %v", err)
	}
	if len(got) != 1 || got[0].Name != "db-a" {
		t.Errorf("post-abort rank = %+v", got)
	}
}
