// Package loadgen is the reproducible load-generation harness for the
// selection-serving surface (DESIGN.md §14): it replays a seeded Zipf
// query workload against a running selectd (single process or cluster
// front) over real HTTP, in closed- or open-loop mode, and reports
// client-side QPS and exact latency quantiles in a JSON report the
// benchdiff gate can diff run-over-run.
//
// The workload is a pure function of (Seed, Requests, Batch, Terms,
// Vocab): request g's queries are drawn from randx fork g+1, so two runs
// with the same config issue byte-identical query streams regardless of
// worker count or scheduling — the property that makes a load report
// comparable across commits.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/randx"
	"repro/internal/telemetry"
)

// Config parameterizes one load run.
type Config struct {
	// Target is the base URL of the serving surface under test, e.g.
	// "http://127.0.0.1:8080".
	Target string `json:"target"`
	// Mode is "closed" (each worker issues its next request as soon as
	// the previous one completes — the default) or "open" (requests are
	// launched on a fixed schedule of Rate per second, backpressure or
	// not, which is what exposes queueing collapse).
	Mode string `json:"mode,omitempty"`
	// Workers is the closed-loop concurrency (and the open-loop launcher
	// pool). Default 4.
	Workers int `json:"workers,omitempty"`
	// Requests is the number of timed HTTP requests. Default 64.
	Requests int `json:"requests"`
	// Rate is the open-loop launch schedule in requests/second (ignored
	// in closed mode). Default 100.
	Rate float64 `json:"rate,omitempty"`
	// Batch > 1 sends each request as POST /rank/batch carrying Batch
	// queries; Batch <= 1 sends single GET /rank requests.
	Batch int `json:"batch,omitempty"`
	// Stream sends each batch as POST /rank/batch?stream=1 and reads the
	// NDJSON frames, recording time-to-first-result per request. Requires
	// Batch > 1.
	Stream bool `json:"stream,omitempty"`
	// DupRate in (0,1] makes each query a draw from a 16-query hot pool
	// with this probability instead of a fresh Zipf draw — the workload
	// that exercises within-batch and cross-caller coalescing. 0 (the
	// default) leaves the classic workload byte-identical to before the
	// knob existed. The pool is seeded from fork 0 of the workload stream,
	// which the per-request forks (g+1) never touch, so a dup-rate run is
	// as replayable as any other.
	DupRate float64 `json:"dup_rate,omitempty"`
	// Alg and K are passed through to the rank API.
	Alg string `json:"alg,omitempty"`
	K   int    `json:"k,omitempty"`
	// Terms is the number of query terms per query. Default 3.
	Terms int `json:"terms,omitempty"`
	// ZipfS is the Zipf skew (> 1; default 1.2): queries draw their terms
	// from Vocab with rank-frequency skew, like real query logs.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Seed fixes the workload. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Vocab is the term universe queries draw from.
	Vocab []string `json:"-"`
	// Label names the run in the report's metric keys
	// (loadgen/<label>/qps). Default "run".
	Label string `json:"label,omitempty"`
	// Timeout bounds each HTTP request. Default 30s.
	Timeout time.Duration `json:"-"`
	// OnProgress, when set, is called once per completed request with the
	// number of requests finished so far — the hook the chaos harness
	// uses to inject a fault mid-run.
	OnProgress func(done int) `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 64
	}
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Terms <= 0 {
		c.Terms = 3
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Alg == "" {
		c.Alg = "cori"
	}
	if c.Label == "" {
		c.Label = "run"
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Metric is one named scalar in a report, in the shape the benchdiff
// gate ingests: direction-aware, so a QPS drop and a p99 rise are both
// regressions.
type Metric struct {
	Value          float64 `json:"value"`
	Unit           string  `json:"unit,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
}

// Report is one load run's outcome.
type Report struct {
	Label          string  `json:"label"`
	Config         Config  `json:"config"`
	Requests       int     `json:"requests"`
	Queries        int     `json:"queries"`
	Shed           int     `json:"shed,omitempty"`   // 429 responses
	Errors         int     `json:"errors,omitempty"` // transport + non-2xx (except 429)
	FirstError     string  `json:"first_error,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	QPS            float64 `json:"qps"`
	P50us          float64 `json:"p50_us"`
	P95us          float64 `json:"p95_us"`
	P99us          float64 `json:"p99_us"`
	// TTFR percentiles (time to first streamed result) are populated in
	// stream mode only; for a buffered batch first byte ≈ last byte, so the
	// whole-request latency above already is the TTFR.
	TTFRP50us float64 `json:"ttfr_p50_us,omitempty"`
	TTFRP95us float64 `json:"ttfr_p95_us,omitempty"`
	TTFRP99us float64 `json:"ttfr_p99_us,omitempty"`
	// CoalescedBatch/CoalescedFlight total the target's
	// rank_coalesced_total{scope=batch|flight} counters after the run
	// (whichever tier prefix the target exposes), 0 when the target has no
	// metrics endpoint.
	CoalescedBatch  int64 `json:"coalesced_batch,omitempty"`
	CoalescedFlight int64 `json:"coalesced_flight,omitempty"`
	// Metrics carries the headline numbers keyed for the benchdiff gate:
	// loadgen/<label>/qps and loadgen/<label>/p99_us.
	Metrics map[string]Metric `json:"metrics"`
	// Server is the target's /metrics?format=json snapshot taken after
	// the run (null when the target does not expose one).
	Server json.RawMessage `json:"server,omitempty"`
}

// hotPoolSize is the size of the shared hot query pool DupRate draws
// from: small enough that duplicates collide constantly, large enough
// that the pool is not one query.
const hotPoolSize = 16

// queriesFor builds request g's queries — a pure function of the config,
// so the workload replays identically run over run. With DupRate set,
// each position is (with that probability) a draw from the shared hot
// pool instead — duplicates then appear both within a batch and across
// concurrent requests, which is what the coalescing tiers feed on.
func (c Config) queriesFor(g int) []string {
	src := randx.New(c.Seed).Fork(uint64(g) + 1)
	zipf := randx.NewZipf(src, c.ZipfS, 1, uint64(len(c.Vocab)-1))
	var hot []string
	if c.DupRate > 0 {
		hot = c.hotQueries()
	}
	n := c.Batch
	if n <= 1 {
		n = 1
	}
	queries := make([]string, n)
	var sb strings.Builder
	for i := range queries {
		if hot != nil && src.Float64() < c.DupRate {
			queries[i] = hot[src.Intn(len(hot))]
			continue
		}
		sb.Reset()
		for t := 0; t < c.Terms; t++ {
			if t > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(c.Vocab[zipf.Uint64()])
		}
		queries[i] = sb.String()
	}
	return queries
}

// hotQueries builds the DupRate hot pool — a pure function of the config,
// drawn from fork 0, which the per-request streams (forks g+1) never use.
func (c Config) hotQueries() []string {
	src := randx.New(c.Seed).Fork(0)
	zipf := randx.NewZipf(src, c.ZipfS, 1, uint64(len(c.Vocab)-1))
	pool := make([]string, hotPoolSize)
	var sb strings.Builder
	for i := range pool {
		sb.Reset()
		for t := 0; t < c.Terms; t++ {
			if t > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(c.Vocab[zipf.Uint64()])
		}
		pool[i] = sb.String()
	}
	return pool
}

// Run executes the workload and returns its report. A shed response
// (429) is the admission contract working as designed and is counted
// separately from Errors; any other non-2xx or transport failure counts
// as an error and fails the run's caller (cmd/loadgen exits nonzero).
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Target == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if len(cfg.Vocab) == 0 {
		return nil, fmt.Errorf("loadgen: empty vocabulary")
	}
	if cfg.Stream && cfg.Batch <= 1 {
		return nil, fmt.Errorf("loadgen: stream mode requires batch > 1")
	}
	client := &http.Client{Timeout: cfg.Timeout}

	// One untimed warmup request dials connections and compiles the
	// target's snapshots, so the timed window prices steady state.
	if _, _, err := issue(client, cfg, cfg.queriesFor(0)); err != nil {
		return nil, fmt.Errorf("loadgen: warmup: %w", err)
	}

	latencies := make([]float64, cfg.Requests) // seconds; index = request
	ttfrs := make([]float64, cfg.Requests)     // seconds; stream mode only
	status := make([]int, cfg.Requests)
	errs := make([]error, cfg.Requests)
	var done atomic.Int64

	// Requests are distributed to workers round-robin by index; each
	// index's outcome lands in its own slot, so no locking. parallel.Map
	// bounds the fan-out (no bare goroutines) and propagates panics.
	workers := make([]int, cfg.Workers)
	for i := range workers {
		workers[i] = i
	}
	start := time.Now()
	_, runErr := parallel.Map(cfg.Workers, workers, func(_ int, w int) (struct{}, error) {
		for g := w; g < cfg.Requests; g += cfg.Workers {
			if cfg.Mode == "open" {
				// Launch request g at its scheduled instant, late or not —
				// the open-loop property that shows queueing collapse.
				at := start.Add(time.Duration(float64(g) / cfg.Rate * float64(time.Second)))
				if d := time.Until(at); d > 0 {
					time.Sleep(d)
				}
			}
			t0 := time.Now()
			code, ttfr, err := issue(client, cfg, cfg.queriesFor(g))
			latencies[g] = time.Since(t0).Seconds()
			ttfrs[g] = ttfr
			status[g] = code
			errs[g] = err
			if cfg.OnProgress != nil {
				cfg.OnProgress(int(done.Add(1)))
			} else {
				done.Add(1)
			}
		}
		return struct{}{}, nil
	})
	elapsed := time.Since(start).Seconds()
	if runErr != nil {
		return nil, runErr
	}

	rep := &Report{
		Label:          cfg.Label,
		Config:         cfg,
		Requests:       cfg.Requests,
		ElapsedSeconds: elapsed,
	}
	perReq := cfg.Batch
	if perReq <= 1 {
		perReq = 1
	}
	ok := make([]float64, 0, cfg.Requests)
	okTTFR := make([]float64, 0, cfg.Requests)
	for g := 0; g < cfg.Requests; g++ {
		switch {
		case errs[g] != nil:
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = errs[g].Error()
			}
		case status[g] == http.StatusTooManyRequests:
			rep.Shed++
		case status[g] >= 300:
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = fmt.Sprintf("request %d: HTTP %d", g, status[g])
			}
		default:
			rep.Queries += perReq
			ok = append(ok, latencies[g])
			okTTFR = append(okTTFR, ttfrs[g])
		}
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Queries) / elapsed
	}
	sort.Float64s(ok)
	rep.P50us = quantileUS(ok, 0.50)
	rep.P95us = quantileUS(ok, 0.95)
	rep.P99us = quantileUS(ok, 0.99)
	rep.Metrics = map[string]Metric{
		"loadgen/" + cfg.Label + "/qps":    {Value: rep.QPS, Unit: "qps", HigherIsBetter: true},
		"loadgen/" + cfg.Label + "/p99_us": {Value: rep.P99us, Unit: "us"},
	}
	if cfg.Stream {
		sort.Float64s(okTTFR)
		rep.TTFRP50us = quantileUS(okTTFR, 0.50)
		rep.TTFRP95us = quantileUS(okTTFR, 0.95)
		rep.TTFRP99us = quantileUS(okTTFR, 0.99)
		rep.Metrics["loadgen/"+cfg.Label+"/ttfr_us"] = Metric{Value: rep.TTFRP99us, Unit: "us"}
	}
	rep.Server = scrape(client, cfg.Target)
	if rep.Server != nil {
		var snap telemetry.Snapshot
		if json.Unmarshal(rep.Server, &snap) == nil {
			rep.CoalescedBatch = snap.CounterSum(`rank_coalesced_total{scope="batch"}`)
			rep.CoalescedFlight = snap.CounterSum(`rank_coalesced_total{scope="flight"}`)
		}
	}
	return rep, nil
}

// issue sends one request — a single GET /rank, a POST /rank/batch, or a
// streamed batch — and fully drains the response so connections are
// reused. The status code is the outcome; only transport failures (and,
// in stream mode, protocol violations) are errors here. The second return
// is the time to first streamed result in seconds, 0 outside stream mode.
func issue(client *http.Client, cfg Config, queries []string) (int, float64, error) {
	if cfg.Stream && cfg.Batch > 1 {
		return issueStream(client, cfg, queries)
	}
	var resp *http.Response
	var err error
	if cfg.Batch > 1 {
		payload, merr := json.Marshal(map[string]any{
			"queries": queries, "alg": cfg.Alg, "k": cfg.K,
		})
		if merr != nil {
			return 0, 0, merr
		}
		resp, err = client.Post(cfg.Target+"/rank/batch", "application/json", bytes.NewReader(payload))
	} else {
		resp, err = client.Get(cfg.Target + "/rank?q=" + url.QueryEscape(queries[0]) +
			"&alg=" + url.QueryEscape(cfg.Alg) + "&k=" + fmt.Sprint(cfg.K))
	}
	if err != nil {
		return 0, 0, err
	}
	//lint:ignore errsink body close after a full drain is best effort; a broken connection fails the next request loudly
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err != nil {
		return 0, 0, err
	}
	return resp.StatusCode, 0, nil
}

// issueStream sends one POST /rank/batch?stream=1 and validates the NDJSON
// frame protocol as it reads: the clock for TTFR starts at the POST and
// stops at the first frame; the stream must end with a done frame whose
// results count matches the item frames seen, which must match the batch.
func issueStream(client *http.Client, cfg Config, queries []string) (int, float64, error) {
	payload, err := json.Marshal(map[string]any{
		"queries": queries, "alg": cfg.Alg, "k": cfg.K,
	})
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	resp, err := client.Post(cfg.Target+"/rank/batch?stream=1", "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, 0, err
	}
	//lint:ignore errsink body close after a full drain is best effort; a broken connection fails the next request loudly
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Pre-stream refusal (shed, bad request): a plain JSON body,
		// drained best-effort so the connection can be reused.
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ttfr float64
	items, doneSeen := 0, false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if ttfr == 0 {
			ttfr = time.Since(t0).Seconds()
		}
		var frame struct {
			Done    bool `json:"done"`
			Results int  `json:"results"`
		}
		if err := json.Unmarshal(line, &frame); err != nil {
			return resp.StatusCode, 0, fmt.Errorf("loadgen: bad stream frame %q: %w", line, err)
		}
		switch {
		case frame.Done:
			doneSeen = true
			if frame.Results != items {
				return resp.StatusCode, 0, fmt.Errorf(
					"loadgen: stream done frame reports %d results, saw %d items", frame.Results, items)
			}
		case doneSeen:
			return resp.StatusCode, 0, fmt.Errorf("loadgen: stream frame after done frame")
		default:
			items++
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	if !doneSeen {
		return resp.StatusCode, 0, fmt.Errorf("loadgen: stream ended without done frame")
	}
	if items != len(queries) {
		return resp.StatusCode, 0, fmt.Errorf("loadgen: stream delivered %d items for %d queries", items, len(queries))
	}
	return resp.StatusCode, ttfr, nil
}

// scrape grabs the target's JSON metrics snapshot, best effort.
func scrape(client *http.Client, target string) json.RawMessage {
	resp, err := client.Get(target + "/metrics?format=json")
	if err != nil {
		return nil
	}
	//lint:ignore errsink the snapshot is best effort; a close error cannot change it
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil || !json.Valid(raw) {
		return nil
	}
	return raw
}

// quantileUS is the exact nearest-rank quantile of a sorted sample, in
// microseconds — the same estimator telemetry.Window uses, so client- and
// server-side percentiles are comparable.
func quantileUS(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank] * 1e6
}
