package loadgen

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/admission"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/langmodel"
	"repro/internal/randx"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// SpawnConfig parameterizes a self-contained loopback deployment — the
// piece that makes a load run reproducible in CI without any external
// service: synthetic models are generated from a seed, persisted to a
// scratch store, and served warm (no sampling) by a real selectd stack.
type SpawnConfig struct {
	// Shards > 0 serves a sharded cluster (Shards single-replica slots
	// behind a front tier); 0 serves a single-process service.
	Shards int
	// DBs is the synthetic federation size. Default 50.
	DBs int
	// Seed fixes the synthetic model set. Default 0xbe7c (the bench pool).
	Seed uint64
	// Admission configures load shedding on the serving surface; the zero
	// value leaves it off.
	Admission admission.Config
}

// Deployment is a running spawned stack.
type Deployment struct {
	// URL is the serving surface's base URL.
	URL string
	// Vocab is the word pool the synthetic models draw from — the term
	// universe load queries should use.
	Vocab []string
	close []func() error
}

// Close tears the deployment down (HTTP server, shards, scratch store).
func (d *Deployment) Close() {
	for i := len(d.close) - 1; i >= 0; i-- {
		d.close[i]()
	}
}

// SyntheticModels builds n database models over a shared word pool, the
// shape of a production selection service's model set (the same idiom as
// the repo benchmarks: per-model document counts, vocabulary sizes, and
// document frequencies all drawn from one seeded stream).
func SyntheticModels(n int, seed uint64) ([]*langmodel.Model, []string) {
	const pool = 4000
	words := make([]string, pool)
	for i := range words {
		words[i] = fmt.Sprintf("w%04d", i)
	}
	src := randx.New(seed)
	models := make([]*langmodel.Model, n)
	for i := range models {
		m := langmodel.New()
		m.SetDocs(500 + src.Intn(5000))
		terms := 500 + src.Intn(1000)
		for _, j := range src.Perm(pool)[:terms] {
			df := 1 + src.Intn(400)
			m.AddTerm(words[j], langmodel.TermStats{DF: df, CTF: int64(df * (1 + src.Intn(4)))})
		}
		models[i] = m
	}
	return models, words
}

// Spawn starts a loopback deployment per cfg and returns it running.
// Models are persisted to a temp store and loaded via warm registration
// ("spawn.invalid:0" — never dialed, models come from the store), so
// startup costs no sampling.
func Spawn(cfg SpawnConfig) (*Deployment, error) {
	if cfg.DBs <= 0 {
		cfg.DBs = 50
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xbe7c
	}
	models, words := SyntheticModels(cfg.DBs, cfg.Seed)

	d := &Deployment{Vocab: words}
	dir, err := os.MkdirTemp("", "loadgen-spawn-*")
	if err != nil {
		return nil, err
	}
	d.close = append(d.close, func() error { return os.RemoveAll(dir) })
	st, err := store.Open(dir)
	if err != nil {
		d.Close()
		return nil, err
	}
	names := make([]string, cfg.DBs)
	for i, m := range models {
		names[i] = fmt.Sprintf("db-%03d", i)
		if err := st.Put(names[i], m); err != nil {
			d.Close()
			return nil, err
		}
	}

	var handler http.Handler
	if cfg.Shards > 0 {
		ring := cluster.NewRing(cfg.Shards, 0, 0)
		addrs := make([][]string, cfg.Shards)
		for s := 0; s < cfg.Shards; s++ {
			svc := service.New(analysis.Database(), st)
			d.close = append(d.close, svc.Close)
			srv, err := cluster.ServeShard(svc, "127.0.0.1:0")
			if err != nil {
				d.Close()
				return nil, err
			}
			d.close = append(d.close, srv.Close)
			addrs[s] = []string{srv.Addr()}
			for _, name := range names {
				if ring.Owner(name) != s {
					continue
				}
				if err := svc.Register(name, "spawn.invalid:0"); err != nil {
					d.Close()
					return nil, err
				}
			}
		}
		front, err := cluster.NewFront(addrs, cluster.Options{
			Metrics:   telemetry.NewRegistry(),
			Admission: cfg.Admission,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.close = append(d.close, front.Close)
		handler = front.Handler()
	} else {
		svc := service.New(analysis.Database(), st)
		d.close = append(d.close, svc.Close)
		svc.SetMetrics(telemetry.NewRegistry())
		svc.SetAdmission(cfg.Admission)
		for _, name := range names {
			if err := svc.Register(name, "spawn.invalid:0"); err != nil {
				d.Close()
				return nil, err
			}
		}
		handler = svc.Handler()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Close()
		return nil, err
	}
	httpSrv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	//lint:ignore baregoroutine,errsink the HTTP server lives for the deployment, not a bounded fan-out; Close shuts it down via the listener and Serve's exit error is that shutdown
	go httpSrv.Serve(ln)
	d.close = append(d.close, httpSrv.Close)
	d.URL = "http://" + ln.Addr().String()
	return d, nil
}
