package loadgen

// Chaos ride-along for the serving harness (run with `make chaos`,
// always under -race in CI): loadgen replays its seeded batch workload
// against a cluster front while a shard replica is killed mid-run. The
// front must absorb the kill — failover to the surviving replica, no
// failed queries surfacing to the client — and the client-side p99 must
// stay bounded (failover costs a redial, not a hang). The test lives in
// this package rather than internal/cluster because loadgen imports
// cluster; the scenario is the same fabric the cluster chaos suite
// exercises, driven through real HTTP under load.

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/netsearch"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func TestChaosLoadgenShardKillUnderLoad(t *testing.T) {
	const (
		nSlots, nReplicas = 2, 2
		nDBs              = 24
		requests          = 30
		batch             = 4
		killAt            = requests / 3
	)
	models, words := SyntheticModels(nDBs, 0xbe7c)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, nDBs)
	for i, m := range models {
		names[i] = fmt.Sprintf("db-%03d", i)
		if err := st.Put(names[i], m); err != nil {
			t.Fatal(err)
		}
	}

	// Two slots, two replicas each. Replicas of a slot register the same
	// databases warm from the shared store, so their models — and hence
	// their partial rankings — are byte-identical and failover is
	// invisible to the fused result.
	ring := cluster.NewRing(nSlots, 0, 0)
	servers := make([][]*netsearch.Server, nSlots)
	addrs := make([][]string, nSlots)
	for s := 0; s < nSlots; s++ {
		for r := 0; r < nReplicas; r++ {
			svc := service.New(analysis.Database(), st)
			t.Cleanup(func() { svc.Close() })
			srv, err := cluster.ServeShard(svc, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			servers[s] = append(servers[s], srv)
			addrs[s] = append(addrs[s], srv.Addr())
			for _, name := range names {
				if ring.Owner(name) != s {
					continue
				}
				if err := svc.Register(name, "chaos.invalid:0"); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	reg := telemetry.NewRegistry()
	front, err := cluster.NewFront(addrs, cluster.Options{
		Net: netsearch.Options{
			Retry:     netsearch.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: 1},
			SleepFunc: func(time.Duration) {},
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { front.Close() })
	web := httptest.NewServer(front.Handler())
	t.Cleanup(web.Close)

	// A third of the way through the run, the first replica of slot 0
	// goes away: its listener closes (redials refused) and its live
	// connections die under the queries in flight.
	var kill sync.Once
	rep, err := Run(Config{
		Target: web.URL, Vocab: words, Label: "chaos",
		Requests: requests, Workers: 4, Batch: batch, K: 5, Seed: 11,
		OnProgress: func(done int) {
			if done >= killAt {
				kill.Do(func() { servers[0][0].Close() })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Zero failed queries: every request that raced the kill must have
	// been answered by the surviving replica via failover.
	if rep.Errors != 0 {
		t.Fatalf("%d requests failed after shard kill (first: %s)", rep.Errors, rep.FirstError)
	}
	if rep.Shed != 0 {
		t.Errorf("%d requests shed with no admission control configured", rep.Shed)
	}
	if rep.Queries != requests*batch {
		t.Errorf("queries = %d, want %d", rep.Queries, requests*batch)
	}
	if snap := reg.Snapshot(); snap.Counters["cluster_failovers_total"] == 0 {
		t.Error("cluster_failovers_total = 0, want > 0 after killing a replica under load")
	}
	// Bounded tail: failover costs a redial, not a timeout. The bound is
	// generous for a loaded CI machine; a hang would blow far past it.
	if limit := 5 * time.Second; rep.P99us <= 0 || rep.P99us > float64(limit/time.Microsecond) {
		t.Errorf("p99 = %.0fus, want within (0, %s]", rep.P99us, limit)
	}
}
