package loadgen

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestWorkloadDeterministic: the query stream is a pure function of the
// config — two runs with the same seed replay byte-identical queries, so
// a load report is comparable across commits.
func TestWorkloadDeterministic(t *testing.T) {
	_, vocab := SyntheticModels(1, 0xbe7c)
	cfg := Config{Seed: 42, Terms: 3, Batch: 4, Vocab: vocab}.withDefaults()
	again := Config{Seed: 42, Terms: 3, Batch: 4, Vocab: vocab}.withDefaults()
	other := Config{Seed: 43, Terms: 3, Batch: 4, Vocab: vocab}.withDefaults()
	same, diff := 0, 0
	for g := 0; g < 32; g++ {
		a, b, c := cfg.queriesFor(g), again.queriesFor(g), other.queriesFor(g)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("request %d: same seed produced different queries:\n%v\n%v", g, a, b)
		}
		if reflect.DeepEqual(a, c) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Errorf("different seeds produced identical workloads (%d/%d same)", same, same+diff)
	}
}

func TestRunClosedLoopSingleProcess(t *testing.T) {
	d, err := Spawn(SpawnConfig{DBs: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	rep, err := Run(Config{
		Target: d.URL, Vocab: d.Vocab, Label: "single",
		Requests: 24, Workers: 4, K: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run had %d errors, first: %s", rep.Errors, rep.FirstError)
	}
	if rep.Queries != 24 || rep.QPS <= 0 || rep.P99us <= 0 || rep.P50us > rep.P99us {
		t.Errorf("report implausible: %+v", rep)
	}
	if _, ok := rep.Metrics["loadgen/single/qps"]; !ok {
		t.Error("missing loadgen/single/qps metric")
	}
	if m, ok := rep.Metrics["loadgen/single/p99_us"]; !ok || m.HigherIsBetter {
		t.Errorf("p99 metric wrong: %+v (present %v)", m, ok)
	}
	if rep.Server == nil || !json.Valid(rep.Server) {
		t.Error("missing server metrics snapshot")
	}
}

// TestDupRateDeterministicAndDefaultUnchanged: dup-rate draws come from
// dedicated RNG forks, so DupRate: 0 replays the exact default workload,
// and a positive rate deterministically repeats hot-pool queries.
func TestDupRateDeterministicAndDefaultUnchanged(t *testing.T) {
	_, vocab := SyntheticModels(1, 0xbe7c)
	base := Config{Seed: 42, Terms: 3, Batch: 8, Vocab: vocab}.withDefaults()
	zero := Config{Seed: 42, Terms: 3, Batch: 8, Vocab: vocab, DupRate: 0}.withDefaults()
	hot := Config{Seed: 42, Terms: 3, Batch: 8, Vocab: vocab, DupRate: 0.6}.withDefaults()
	hotAgain := Config{Seed: 42, Terms: 3, Batch: 8, Vocab: vocab, DupRate: 0.6}.withDefaults()

	pool := map[string]bool{}
	for _, q := range hot.hotQueries() {
		pool[q] = true
	}
	dups := 0
	for g := 0; g < 32; g++ {
		if !reflect.DeepEqual(base.queriesFor(g), zero.queriesFor(g)) {
			t.Fatalf("request %d: DupRate 0 perturbed the default workload", g)
		}
		a, b := hot.queriesFor(g), hotAgain.queriesFor(g)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("request %d: same dup-rate seed produced different queries", g)
		}
		for _, q := range a {
			if pool[q] {
				dups++
			}
		}
	}
	// 32 requests x 8 queries at 60% hot-pool rate: duplication must be
	// substantial, not incidental.
	if dups < 64 {
		t.Errorf("hot-pool queries appeared %d times across 256 draws, want >= 64", dups)
	}
}

// TestRunStreamAgainstCluster: a streamed run must validate every frame,
// record TTFR percentiles, report the ttfr_us benchdiff metric, and pull
// the coalesce counters from the server snapshot.
func TestRunStreamAgainstCluster(t *testing.T) {
	d, err := Spawn(SpawnConfig{Shards: 2, DBs: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	rep, err := Run(Config{
		Target: d.URL, Vocab: d.Vocab, Label: "stream",
		Requests: 12, Workers: 3, Batch: 6, K: 5, Seed: 7,
		Stream: true, DupRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run had %d errors, first: %s", rep.Errors, rep.FirstError)
	}
	if rep.Queries != 72 {
		t.Errorf("queries = %d, want 12 requests x 6 batch = 72", rep.Queries)
	}
	if rep.TTFRP50us <= 0 || rep.TTFRP50us > rep.TTFRP99us {
		t.Errorf("TTFR percentiles implausible: p50=%v p99=%v", rep.TTFRP50us, rep.TTFRP99us)
	}
	if rep.TTFRP99us > rep.P99us {
		t.Errorf("TTFR p99 %.0fus exceeds whole-request p99 %.0fus", rep.TTFRP99us, rep.P99us)
	}
	if _, ok := rep.Metrics["loadgen/stream/ttfr_us"]; !ok {
		t.Error("missing loadgen/stream/ttfr_us metric")
	}
	// At 50% dup-rate over 6-query batches, within-batch duplicates are
	// near-certain across 12 requests; the front counts them.
	if rep.CoalescedBatch == 0 {
		t.Error("no batch-scope coalescing recorded despite hot-pool duplicates")
	}
}

func TestRunStreamRequiresBatch(t *testing.T) {
	if _, err := Run(Config{Target: "http://127.0.0.1:1", Stream: true, Requests: 1}); err == nil {
		t.Error("stream mode without batch was accepted")
	}
}

func TestRunBatchAgainstCluster(t *testing.T) {
	d, err := Spawn(SpawnConfig{Shards: 2, DBs: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	rep, err := Run(Config{
		Target: d.URL, Vocab: d.Vocab, Label: "cluster",
		Mode: "open", Rate: 2000,
		Requests: 12, Workers: 3, Batch: 4, K: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run had %d errors, first: %s", rep.Errors, rep.FirstError)
	}
	if rep.Queries != 48 {
		t.Errorf("queries = %d, want 12 requests x 4 batch = 48", rep.Queries)
	}
}
