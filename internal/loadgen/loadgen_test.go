package loadgen

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestWorkloadDeterministic: the query stream is a pure function of the
// config — two runs with the same seed replay byte-identical queries, so
// a load report is comparable across commits.
func TestWorkloadDeterministic(t *testing.T) {
	_, vocab := SyntheticModels(1, 0xbe7c)
	cfg := Config{Seed: 42, Terms: 3, Batch: 4, Vocab: vocab}.withDefaults()
	again := Config{Seed: 42, Terms: 3, Batch: 4, Vocab: vocab}.withDefaults()
	other := Config{Seed: 43, Terms: 3, Batch: 4, Vocab: vocab}.withDefaults()
	same, diff := 0, 0
	for g := 0; g < 32; g++ {
		a, b, c := cfg.queriesFor(g), again.queriesFor(g), other.queriesFor(g)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("request %d: same seed produced different queries:\n%v\n%v", g, a, b)
		}
		if reflect.DeepEqual(a, c) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Errorf("different seeds produced identical workloads (%d/%d same)", same, same+diff)
	}
}

func TestRunClosedLoopSingleProcess(t *testing.T) {
	d, err := Spawn(SpawnConfig{DBs: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	rep, err := Run(Config{
		Target: d.URL, Vocab: d.Vocab, Label: "single",
		Requests: 24, Workers: 4, K: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run had %d errors, first: %s", rep.Errors, rep.FirstError)
	}
	if rep.Queries != 24 || rep.QPS <= 0 || rep.P99us <= 0 || rep.P50us > rep.P99us {
		t.Errorf("report implausible: %+v", rep)
	}
	if _, ok := rep.Metrics["loadgen/single/qps"]; !ok {
		t.Error("missing loadgen/single/qps metric")
	}
	if m, ok := rep.Metrics["loadgen/single/p99_us"]; !ok || m.HigherIsBetter {
		t.Errorf("p99 metric wrong: %+v (present %v)", m, ok)
	}
	if rep.Server == nil || !json.Valid(rep.Server) {
		t.Error("missing server metrics snapshot")
	}
}

func TestRunBatchAgainstCluster(t *testing.T) {
	d, err := Spawn(SpawnConfig{Shards: 2, DBs: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	rep, err := Run(Config{
		Target: d.URL, Vocab: d.Vocab, Label: "cluster",
		Mode: "open", Rate: 2000,
		Requests: 12, Workers: 3, Batch: 4, K: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run had %d errors, first: %s", rep.Errors, rep.FirstError)
	}
	if rep.Queries != 48 {
		t.Errorf("queries = %d, want 12 requests x 4 batch = 48", rep.Queries)
	}
}
