package lint

// Fixture tests for the CFG/dataflow analyzers, plus structural unit
// tests of the CFG builder and the fixpoint solvers themselves.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func TestAllocFree(t *testing.T) {
	runCase(t, AllocFree, "allocfree/bad", "repro/internal/hot")
	runCase(t, AllocFree, "allocfree/allowed", "repro/internal/hot")
	runCase(t, AllocFree, "allocfree/ignored", "repro/internal/hot")
}

func TestLockHeld(t *testing.T) {
	runCase(t, LockHeld, "lockheld/bad", "repro/internal/locks")
	runCase(t, LockHeld, "lockheld/allowed", "repro/internal/locks")
	runCase(t, LockHeld, "lockheld/ignored", "repro/internal/locks")
}

func TestAtomicRCU(t *testing.T) {
	runCase(t, AtomicRCU, "atomicrcu/bad", "repro/internal/rcu")
	runCase(t, AtomicRCU, "atomicrcu/allowed", "repro/internal/rcu")
	runCase(t, AtomicRCU, "atomicrcu/ignored", "repro/internal/rcu")
}

func TestErrSink(t *testing.T) {
	runCase(t, ErrSink, "errsink/bad", "repro/internal/sinks")
	runCase(t, ErrSink, "errsink/allowed", "repro/internal/sinks")
	runCase(t, ErrSink, "errsink/ignored", "repro/internal/sinks")
}

// cfgOf type-checks src (a complete file) and builds the CFG of the
// named function.
func cfgOf(t *testing.T, src, fn string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return BuildCFG(fd.Body, info)
		}
	}
	t.Fatalf("no function %q in source", fn)
	return nil
}

// reachable walks successor edges from the entry block.
func reachable(g *CFG) map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

func TestCFGBranchesJoinAtExit(t *testing.T) {
	g := cfgOf(t, `package p
func f(cond bool) int {
	if cond {
		return 1
	}
	return 2
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable through either branch")
	}
}

func TestCFGInfiniteLoopNeverReachesExit(t *testing.T) {
	g := cfgOf(t, `package p
func f() {
	for {
	}
}`, "f")
	if reachable(g)[g.Exit] {
		t.Fatal("exit should be unreachable past `for {}`")
	}
}

func TestCFGBreakEscapesLoop(t *testing.T) {
	g := cfgOf(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
	}
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("break should make exit reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := cfgOf(t, `package p
func f(m [][]int) int {
	total := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			total += v
		}
	}
	return total
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("labeled break should make exit reachable")
	}
}

func TestCFGPanicTerminatesBlock(t *testing.T) {
	g := cfgOf(t, `package p
func f(cond bool) int {
	if cond {
		panic("boom")
	}
	return 0
}`, "f")
	var panicBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlock = b
					}
				}
				return true
			})
		}
	}
	if panicBlock == nil {
		t.Fatal("no block holds the panic call")
	}
	if len(panicBlock.Succs) != 0 {
		t.Fatalf("panic block has %d successors, want 0", len(panicBlock.Succs))
	}
	if !reachable(g)[g.Exit] {
		t.Fatal("the non-panicking path should still reach exit")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	// Both the fallthrough chain and the default path must reach exit,
	// and the fixpoint below must converge over the case diamond.
	g := cfgOf(t, `package p
func f(n int) int {
	out := 0
	switch n {
	case 0:
		out = 1
		fallthrough
	case 1:
		out += 2
	default:
		out = 9
	}
	return out
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("switch paths should reach exit")
	}
}

// TestForwardReachingCount checks the forward solver on a loop: a
// saturating counter fact must converge (finite lattice) rather than
// iterate forever, and every reachable block must receive an IN fact.
func TestForwardReachingCount(t *testing.T) {
	g := cfgOf(t, `package p
func f(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}`, "f")
	const limit = 8
	in := Forward(g, 0,
		func() int { return 0 },
		func(b *Block, f int) int {
			if f >= limit {
				return limit
			}
			return f + 1
		},
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		},
		func(a, b int) bool { return a == b },
	)
	for b := range reachable(g) {
		if _, ok := in[b]; !ok {
			t.Fatalf("reachable block %d has no IN fact", b.Index)
		}
	}
	if exit, ok := in[g.Exit]; !ok || exit == 0 {
		t.Fatalf("exit fact = %d, %v; want saturated positive count", exit, ok)
	}
}

// TestBackwardLiveness checks the backward solver end to end with a tiny
// liveness problem: x is live at its assignment (read later), y is not.
func TestBackwardLiveness(t *testing.T) {
	src := `package p
func f(cond bool) int {
	x := 1
	y := 2
	_ = y
	if cond {
		return x
	}
	return 0
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "live.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	g := BuildCFG(fd.Body, info)

	type fact = map[types.Object]bool
	clone := func(f fact) fact {
		out := make(fact, len(f))
		for k := range f {
			out[k] = true
		}
		return out
	}
	transfer := func(b *Block, out fact) fact {
		live := clone(out)
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			// Kill definitions, then add uses.
			ast.Inspect(n, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								delete(live, obj)
							}
						}
					}
				}
				return true
			})
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						live[obj] = true
					}
				}
				return true
			})
		}
		return live
	}
	merge := func(a, b fact) fact {
		out := clone(a)
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b fact) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	out := Backward(g, fact{}, func() fact { return fact{} }, transfer, merge, equal)

	// Find the objects for x and y.
	var xObj, yObj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				switch id.Name {
				case "x":
					xObj = obj
				case "y":
					yObj = obj
				}
			}
		}
		return true
	})
	if xObj == nil || yObj == nil {
		t.Fatal("missing x or y object")
	}
	// After the entry block's transfer (its live-in), x must be live
	// somewhere: check the entry block's OUT — x is read on the cond
	// branch, so it must be live out of the block that assigns it.
	entryOut := out[g.Blocks[0]]
	if !entryOut[xObj] {
		t.Error("x should be live out of the entry block (read on a later path)")
	}
	if entryOut[yObj] {
		t.Error("y should be dead out of the entry block (only read within it)")
	}
}
