package lint

// Program is the whole-module view the interprocedural analyzers share: a
// lightweight call graph over every loaded package, resolved from syntax
// and go/types alone. Static calls (package functions, methods on
// concrete receivers) resolve exactly; calls through module-local
// interfaces resolve by class-hierarchy analysis (every concrete type in
// the loaded packages whose method set implements the interface is a
// possible callee); calls through function values and through interfaces
// defined outside the module fall back to documented name heuristics
// (mayBlock) or are reported at the call site (allocfree).
//
// Run builds one Program per invocation covering every package it was
// given, so linting ./... analyzes the real module-wide graph while
// fixture tests see a single-package world.

import (
	"go/ast"
	"go/types"
	"strings"
)

// A FuncInfo is one function or method declared in a loaded package.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Hotpath records a //lint:hotpath marker on the declaration: the
	// allocfree analyzer proves the function (and everything it calls)
	// free of heap allocations.
	Hotpath bool
}

// Program indexes every loaded package for interprocedural queries.
type Program struct {
	Packages []*Package

	funcs   map[*types.Func]*FuncInfo
	ordered []*FuncInfo // declaration order, for deterministic iteration
	// methodsByName supports CHA: every concrete method in the module,
	// keyed by name.
	methodsByName map[string][]*FuncInfo

	blockMemo map[*types.Func]bool
	hotReach  map[*FuncInfo]string
}

// NewProgram indexes pkgs. Packages that failed to type-check contribute
// whatever partial information they have.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Packages:      pkgs,
		funcs:         make(map[*types.Func]*FuncInfo),
		methodsByName: make(map[string][]*FuncInfo),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg, Hotpath: hasHotpathMarker(fd)}
				p.funcs[obj] = fi
				p.ordered = append(p.ordered, fi)
				if fd.Recv != nil {
					p.methodsByName[fd.Name.Name] = append(p.methodsByName[fd.Name.Name], fi)
				}
			}
		}
	}
	return p
}

// hasHotpathMarker reports whether the declaration's doc comment carries
// a //lint:hotpath line.
func hasHotpathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//lint:hotpath" {
			return true
		}
	}
	return false
}

// FuncOf returns the FuncInfo for a function object declared in a loaded
// package, or nil for external functions.
func (p *Program) FuncOf(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return p.funcs[obj]
}

// Funcs returns every declared function in deterministic order.
func (p *Program) Funcs() []*FuncInfo { return p.ordered }

// staticCallee resolves a call expression to the function object it
// invokes, when that is statically known: package functions, methods on
// concrete receivers, and qualified imports. Interface method calls
// return the interface's method object with iface=true; calls through
// function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, iface bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil, false
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return fn, true
			}
		}
		return fn, false
	}
	return nil, false
}

// implementers returns every module-declared concrete method that an
// interface method call could dispatch to: methods with the callee's
// name whose receiver type satisfies the interface.
func (p *Program) implementers(ifaceMethod *types.Func) []*FuncInfo {
	sig, ok := ifaceMethod.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncInfo
	for _, m := range p.methodsByName[ifaceMethod.Name()] {
		msig, ok := m.Obj.Type().(*types.Signature)
		if !ok || msig.Recv() == nil {
			continue
		}
		recv := msig.Recv().Type()
		// Methods on T satisfy interfaces through both T and *T.
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(derefType(recv)), iface) {
			out = append(out, m)
		}
	}
	return out
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// calleeName splits a function object into (package path, receiver type
// name, function name) for pattern tables. Receiver is "" for package
// functions; pointer receivers are stripped.
func calleeName(fn *types.Func) (pkg, recv, name string) {
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name = fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := derefType(sig.Recv().Type())
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		} else if _, ok := t.(*types.Interface); ok {
			recv = "interface"
		}
	}
	return pkg, recv, name
}

// blockingExternal reports whether a call to an external (non-module)
// function can block: file and network I/O, sleeps, stream
// encoders/decoders writing to connections, and synchronization waits.
// The table is a deny-list — unknown external calls are assumed
// non-blocking, which keeps lockheld quiet about pure computation; the
// entries cover every blocking primitive the module touches.
func blockingExternal(fn *types.Func) bool {
	pkg, recv, name := calleeName(fn)
	switch pkg {
	case "os":
		if recv == "File" {
			switch name {
			case "Read", "ReadAt", "ReadFrom", "Write", "WriteAt", "WriteString", "Sync", "Close", "Truncate":
				return true
			}
			return false
		}
		switch name {
		case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
			"ReadDir", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "MkdirTemp":
			return true
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "Accept", "Read", "Write", "Close":
			return true
		}
	case "time":
		return name == "Sleep"
	case "encoding/json":
		return (recv == "Encoder" && name == "Encode") || (recv == "Decoder" && name == "Decode")
	case "encoding/gob":
		return (recv == "Encoder" && name == "Encode") || (recv == "Decoder" && name == "Decode")
	case "bufio":
		switch name {
		case "Read", "ReadByte", "ReadBytes", "ReadString", "ReadRune",
			"Write", "WriteByte", "WriteString", "WriteRune", "Flush", "Scan":
			return true
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "ReadAtLeast", "WriteString":
			return true
		}
	case "sync":
		return name == "Wait" // WaitGroup.Wait, Cond.Wait
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head", "Do", "ListenAndServe", "Serve":
			return true
		}
	}
	// Interface methods declared outside the module (io.Reader, net.Conn,
	// io.Closer): CHA cannot see their implementers, so recognize the
	// universal blocking verbs by name.
	if recv == "interface" || (recv != "" && fn.Pkg() != nil && isExternalIfaceMethod(fn)) {
		switch name {
		case "Read", "Write", "Close", "Flush", "Sync", "Accept":
			return true
		}
	}
	return false
}

func isExternalIfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// MayBlock reports whether calling fn can block: it performs a blocking
// operation itself (channel send/receive, select without default, calls
// into the blockingExternal table) or transitively calls a module
// function that does. Calls through function values are assumed
// non-blocking (documented policy — the module passes only pure
// functions as values on lock-holding paths).
func (p *Program) MayBlock(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if p.blockMemo == nil {
		p.computeMayBlock()
	}
	if v, ok := p.blockMemo[fn]; ok {
		return v
	}
	return blockingExternal(fn)
}

// computeMayBlock runs the transitive propagation to fixpoint over every
// module function.
func (p *Program) computeMayBlock() {
	p.blockMemo = make(map[*types.Func]bool, len(p.ordered))
	// callers[f] = module functions that call f, for propagation.
	callers := make(map[*types.Func][]*types.Func)
	var work []*types.Func

	for _, fi := range p.ordered {
		local := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			if local {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				// A nested closure blocks only when called; its calls are
				// attributed where the closure runs, which we cannot track —
				// skip its body (documented limit).
				return false
			case *ast.GoStmt:
				// Spawning does not block the spawner; skip the call.
				return false
			case *ast.SendStmt:
				local = true
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					local = true
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) {
					local = true
				}
			case *ast.RangeStmt:
				if tv, ok := fi.Pkg.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						local = true
					}
				}
			case *ast.CallExpr:
				callee, iface := staticCallee(fi.Pkg.Info, n)
				if callee == nil {
					return true
				}
				if iface {
					impls := p.implementers(callee)
					for _, impl := range impls {
						callers[impl.Obj] = append(callers[impl.Obj], fi.Obj)
					}
					if len(impls) == 0 && blockingExternal(callee) {
						local = true
					}
					return true
				}
				if _, isModule := p.funcs[callee]; isModule {
					callers[callee] = append(callers[callee], fi.Obj)
				} else if blockingExternal(callee) {
					local = true
				}
			}
			return true
		})
		p.blockMemo[fi.Obj] = local
		if local {
			work = append(work, fi.Obj)
		}
	}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[fn] {
			if !p.blockMemo[caller] {
				p.blockMemo[caller] = true
				work = append(work, caller)
			}
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
