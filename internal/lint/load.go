package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, parsed, type-checked package ready for
// analysis.
type Package struct {
	// PkgPath is the import path ("repro/internal/langmodel").
	PkgPath string
	// Dir is the absolute directory holding the package's sources.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by filename so
	// analysis order is deterministic.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. Analysis proceeds
	// on partial information, but drivers surface these so a broken
	// tree cannot masquerade as a clean one.
	TypeErrors []error
}

// A Loader discovers, parses and type-checks the module's packages
// using only the standard library. Module-internal imports are
// resolved by recursively type-checking the imported package from
// source; standard-library imports go through go/importer's source
// importer. The Loader caches, so shared dependencies are checked
// once.
type Loader struct {
	// Module is the module path from go.mod ("repro").
	Module string
	// Root is the absolute module root directory.
	Root string
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // local packages by import path
	loading map[string]bool     // local import-cycle guard
}

// NewLoader prepares a Loader for the module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from
	// GOROOT source. With cgo enabled, packages like net pull in
	// cgo-generated code it cannot see; the pure-Go fallbacks
	// type-check identically for our purposes.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Module:  mod,
		Root:    abs,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves patterns to packages. Supported patterns: "./..." (the
// whole module), "./dir/..." (a subtree), and "./dir" (one package).
// Directories named testdata or vendor, and those starting with "." or
// "_", are skipped, as are directories with no non-test Go files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./...":
			if err := l.walk(l.Root, dirSet); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, strings.TrimSuffix(pat, "/..."))
			if err := l.walk(base, dirSet); err != nil {
				return nil, err
			}
		default:
			dir := filepath.Join(l.Root, pat)
			ok, err := hasGoFiles(dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			dirSet[dir] = true
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walk adds every package directory under base to dirSet.
func (l *Loader) walk(base string, dirSet map[string]bool) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirSet[path] = true
		}
		return nil
	})
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if isSourceFile(dir, e) {
			return true, nil
		}
	}
	return false, nil
}

func isSourceFile(dir string, e os.DirEntry) bool {
	name := e.Name()
	if e.IsDir() || !strings.HasSuffix(name, ".go") ||
		strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
		return false
	}
	// Honor build constraints the way the real build does: packages with
	// per-platform file pairs (//go:build unix vs !unix) must load only
	// the host's half, or type-checking sees every symbol declared twice.
	ok, err := build.Default.MatchFile(dir, name)
	return err == nil && ok
}

// loadDir parses and type-checks the package in dir, memoized.
func (l *Loader) loadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.loadLocal(path, dir)
}

func (l *Loader) loadLocal(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(dir, e) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{PkgPath: path, Dir: dir, Fset: l.Fset, Files: files}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error;
	// errors are already collected via conf.Error.
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer so local packages resolve through
// the Loader and everything else through the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module)))
		pkg, err := l.loadLocal(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
