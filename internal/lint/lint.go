// Package lint is a small, dependency-free static-analysis framework
// that enforces this repository's determinism and concurrency
// invariants. It exists because the properties that make the paper's
// experiments reproducible — every random draw seeded through
// internal/randx, no wall-clock reads on golden-output paths, no map
// iteration order leaking into results, all fan-out through the
// internal/parallel pool — are invisible to the compiler and too easy
// to erode one innocuous diff at a time. PR 1 fixed exactly such a bug
// (map-order nondeterminism in internal/index silently perturbing
// selector draws); this package turns that class of review comment
// into a machine check.
//
// The framework is built only on the standard library's go/ast,
// go/parser, go/token and go/types packages, matching the module's
// zero-dependency go.mod. Analyzers implement a minimal interface (a
// name, a doc string, and a Run function over a type-checked package)
// and report position-accurate diagnostics. Findings can be suppressed
// at the offending line with an explanatory directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either at the end of the offending line or on the line
// immediately above it. The reason is mandatory; a directive without
// one is itself a diagnostic, and so is a directive that suppresses
// nothing (so stale suppressions cannot accumulate).
//
// The cmd/repolint driver loads packages, runs every registered
// analyzer, and exits non-zero on unsuppressed findings; `make lint`
// and CI run it over ./... on every change.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named invariant check. Run inspects a single
// type-checked package through the Pass and reports findings via
// Pass.Reportf; it returns an error only for internal failures
// (a finding is not an error).
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant and why
	// the repository needs it.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed syntax trees of the package's non-test
	// Go files, in stable (sorted filename) order.
	Files []*ast.File
	// Pkg is the type-checked package. Its Path is the import path
	// analyzers use for location-scoped rules (e.g. "math/rand is
	// allowed only under internal/randx").
	Pkg *types.Package
	// Info holds type information for the package's syntax. It is
	// always non-nil, but entries may be missing for code that
	// failed to type-check; analyzers must tolerate nil lookups.
	Info *types.Info
	// Prog is the whole-run program view shared by every pass: the
	// lightweight call graph the interprocedural analyzers (allocfree,
	// lockheld) resolve module calls through. When repolint runs over
	// ./... it spans the entire module; fixture tests see just their
	// own package.
	Prog *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned at a file:line:column.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	// Suppressed marks findings covered by a //lint:ignore
	// directive; drivers report them only on request.
	Suppressed bool `json:"suppressed,omitempty"`
	// SuppressReason is the justification given in the directive.
	SuppressReason string `json:"suppressReason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns all
// diagnostics — including suppressed ones, marked as such — sorted by
// position. Malformed or unused //lint:ignore directives are reported
// as diagnostics of the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := NewProgram(pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		ignores, malformed := collectIgnores(pkg.Fset, pkg.Files)
		all = append(all, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				if ig := ignores.match(d.Analyzer, d.Pos); ig != nil {
					d.Suppressed = true
					d.SuppressReason = ig.reason
					ig.used = true
				}
				all = append(all, d)
			}
		}
		all = append(all, ignores.unused(analyzers)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// Unsuppressed filters diags down to the findings a driver should fail
// on.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// All returns the default analyzer set enforced by cmd/repolint, in
// stable order: the five per-statement invariant checks from PR 2,
// then the four CFG/dataflow analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		DirectRand,
		WallClock,
		MapOrder,
		BareGoroutine,
		MutexByValue,
		AllocFree,
		LockHeld,
		AtomicRCU,
		ErrSink,
	}
}

// ByName resolves an analyzer from the default set.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
