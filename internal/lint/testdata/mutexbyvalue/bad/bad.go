// Locks passed by value: each call synchronizes against a private copy.
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the mutex with the struct.
func ByValue(g guarded) int { // want `parameter passes .*guarded by value \(contains sync.Mutex\)`
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Get's value receiver copies the mutex on every call.
func (g guarded) Get() int { // want `receiver passes .*guarded by value \(contains sync.Mutex\)`
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// WaitAll copies a WaitGroup; Wait observes the copy's counter.
func WaitAll(wg sync.WaitGroup) { // want `parameter passes sync.WaitGroup by value`
	wg.Wait()
}
