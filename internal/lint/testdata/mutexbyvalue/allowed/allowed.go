// The pointer forms share one lock; nothing to flag.
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// ByPointer shares the caller's lock.
func ByPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Get shares the receiver's lock.
func (g *guarded) Get() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Locker takes the interface, which wraps a pointer.
func Locker(l sync.Locker) {
	l.Lock()
	defer l.Unlock()
}
