// Wall-clock reads inside a golden-output package (the test loads this
// as repro/internal/metrics): real time would leak into results.
package metrics

import "time"

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `time.Now in golden-output package`
}

// Elapsed measures real elapsed time.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in golden-output package`
}

// Fixed is fine: a constant instant, no clock read.
func Fixed() time.Time {
	return time.Unix(0, 0)
}
