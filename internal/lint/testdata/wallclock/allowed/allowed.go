// The same calls are fine in cmd/ (the test loads this as
// repro/cmd/bench): timing for humans is not golden output.
package bench

import "time"

// Timed reports how long fn took.
func Timed(fn func()) time.Duration {
	t0 := time.Now()
	fn()
	return time.Since(t0)
}
