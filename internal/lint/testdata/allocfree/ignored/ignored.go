// A justified suppression: the one allocation the hot path's contract
// permits, carried with its reason.
package hot

// Snapshot returns a fresh copy — the single allocation allowed.
//
//lint:hotpath
func Snapshot(src []int) []int {
	//lint:ignore allocfree the returned copy is the call's output; the caller owns it and len(src) bounds it
	out := make([]int, len(src))
	copy(out, src)
	return out
}
