// Allocation sites inside //lint:hotpath functions: direct sites, sites
// in an unmarked module callee (reported with the hot root), and calls
// that cannot be proven.
package hot

import "fmt"

// Score is the marked entry point of the hot path.
//
//lint:hotpath
func Score(dst []float64, q []string) []float64 {
	tmp := make([]float64, len(q)) // want `make allocates`
	for i := range q {
		tmp[i] = float64(len(q[i]))
	}
	label := "q:" + q[0] // want `string concatenation allocates`
	fmt.Println(label)   // want `fmt.Println allocates`
	extra := []float64{1} // want `slice literal allocates`
	dst = append(dst, extra...)
	return helper(dst, tmp)
}

// helper is unmarked but reachable from Score, so its sites count.
func helper(dst, tmp []float64) []float64 {
	more := []float64{2, 3} // want `slice literal allocates`
	dst = append(dst, more...)
	_ = tmp
	return dst
}

// Convert copies on the hot path.
//
//lint:hotpath
func Convert(b []byte) string {
	return string(b) // want `conversion copies its operand`
}

// Spawn launches work from the hot path.
//
//lint:hotpath
func Spawn() {
	go background() // want `go statement spawns a goroutine`
}

func background() {}

// Retain returns a capturing closure, which must live on the heap.
//
//lint:hotpath
func Retain(n int) func() int {
	return func() int { return n } // want `escaping closure captures variables`
}

// Scorer has no implementation in this package, so calls through it
// cannot be proven.
type Scorer interface{ ScoreOne(q string) float64 }

// Apply dispatches through an unprovable interface.
//
//lint:hotpath
func Apply(s Scorer, q string) float64 {
	return s.ScoreOne(q) // want `interface call Scorer.ScoreOne has no module implementers`
}
