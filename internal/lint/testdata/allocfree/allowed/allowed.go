// The idioms the zero-alloc serving path is built from: appends into
// caller-provided or pooled storage, comparisons against converted
// bytes (the compiler elides the copy), non-escaping closures, and
// trusted stdlib calls.
package hot

import "sync"

var bufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 64); return &b },
}

// Tokens appends into caller storage and a pooled scratch only.
//
//lint:hotpath
func Tokens(dst []string, text string) []string {
	buf := bufPool.Get().(*[]byte)
	*buf = (*buf)[:0]
	*buf = append(*buf, text...)
	if string(*buf) == text { // compared, not materialized: no allocation
		dst = append(dst, text)
	}
	bufPool.Put(buf)
	return dst
}

// Accumulate writes through a view of a parameter and uses a local,
// non-escaping closure.
//
//lint:hotpath
func Accumulate(scores []float64, ids []int32) float64 {
	view := scores
	total := 0.0
	addOne := func(i int32) {
		if int(i) < len(view) {
			view[i]++
			total++
		}
	}
	for _, id := range ids {
		addOne(id)
	}
	return total
}

// Nested append chains stay rooted in the parameter.
//
//lint:hotpath
func Extend(dst []int32, a, b int32) []int32 {
	return append(append(dst, a), b)
}
