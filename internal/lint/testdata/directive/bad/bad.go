// Directive hygiene: a suppression without a reason is malformed, and
// one that suppresses nothing is stale. Both are diagnostics (expected
// lines are asserted programmatically in lint_test.go, since these
// lines already carry //lint: comments).
package dirs

// missingReason has a directive with no justification.
func missingReason(fn func()) {
	//lint:ignore baregoroutine
	go fn()
}

// stale suppresses an analyzer that finds nothing here.
func stale() {
	//lint:ignore baregoroutine there is no goroutine on the next line
	_ = 0
}
