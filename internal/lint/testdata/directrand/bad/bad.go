// A sampler reaching for math/rand directly: draws would come from an
// unseeded (clock-seeded) global stream and the experiment would stop
// being reproducible.
package sampler

import "math/rand" // want `import of math/rand outside internal/randx`

// Pick draws an unreproducible index.
func Pick(n int) int {
	return rand.Intn(n)
}
