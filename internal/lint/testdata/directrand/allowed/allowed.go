// The randx package itself (synthetic import path repro/internal/randx
// in the test) may import math/rand — e.g. to wrap it behind a seeded
// Source.
package randx

import "math/rand"

// Wrap adapts a seeded stdlib source.
func Wrap(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
