// A justified suppression: the directive names the analyzer and gives
// a reason, so the finding is recorded but not reported.
package legacy

//lint:ignore directrand compatibility shim for pre-randx callers, draws never reach experiment output
import "math/rand"

// Shuffle is retained for a deprecated caller.
func Shuffle(n int, swap func(i, j int)) {
	rand.Shuffle(n, swap)
}
