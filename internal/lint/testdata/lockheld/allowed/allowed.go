// The disciplined forms: deferred release, release on every branch,
// blocking work moved outside the critical section, and panic paths
// (which never reach a return, so a held lock there is not a leak).
package locks

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// Deferred is the canonical shape.
func (s *S) Deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// BothPaths releases explicitly on each branch.
func (s *S) BothPaths(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 0
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// SnapshotThenSend does the blocking send after the critical section.
func (s *S) SnapshotThenSend() {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	s.ch <- n
}

// PanicPath never reaches a return while holding: the panic terminates
// the block, so only the unlocking path flows to the exit.
func (s *S) PanicPath() {
	s.mu.Lock()
	if s.n < 0 {
		panic("negative count")
	}
	s.mu.Unlock()
}
