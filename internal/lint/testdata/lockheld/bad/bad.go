// Lock-discipline violations: a lock leaked on one path, blocking
// operations (I/O, channels, transitively-blocking module calls) while
// a mutex is held.
package locks

import (
	"os"
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	f  *os.File
	ch chan int
	n  int
}

// LeakOnBranch releases on the early-return path only.
func (s *S) LeakOnBranch(cond bool) int {
	s.mu.Lock() // want `s.mu is acquired here but not released on every path to return`
	if cond {
		s.mu.Unlock()
		return 0
	}
	return s.n
}

// WriteHeld performs file I/O under the lock.
func (s *S) WriteHeld(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Write(p) // want `call to Write \(may block\) while holding s.mu`
}

// SendHeld performs a channel send under the lock.
func (s *S) SendHeld(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s.mu`
	s.mu.Unlock()
}

// SleepHeld blocks transitively: helper sleeps, and the call graph
// knows it.
func (s *S) SleepHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	helper() // want `call to helper \(may block\) while holding s.mu`
}

func helper() { time.Sleep(time.Millisecond) }
