// A justified suppression: the mutex IS the wire-serialization
// mechanism (the netsearch client pattern), so I/O under it is the
// design, not an accident.
package locks

import (
	"net"
	"sync"
)

type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// RoundTrip serializes whole request/response exchanges on one
// connection.
func (c *Client) RoundTrip(req []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore lockheld c.mu is the wire-serialization mechanism: one exchange owns the connection end to end
	_, err := c.conn.Write(req)
	return err
}
