// A raw goroutine outside internal/parallel: unbounded, unordered
// fan-out the pool was built to prevent.
package svc

// SpawnAll fires one goroutine per task with no cap and no ordering.
func SpawnAll(tasks []func()) {
	for _, task := range tasks {
		go task() // want `raw go statement outside internal/parallel`
	}
}
