// The pool package itself (loaded as repro/internal/parallel) is the
// one place goroutines are spawned.
package parallel

// pump feeds work indexes to workers.
func pump(n int, next chan<- int) {
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
}
