// A justified suppression: a server's accept loop is a lifecycle
// goroutine, not fan-out.
package svc

// Serve runs accept until the listener closes.
func Serve(accept func()) {
	//lint:ignore baregoroutine accept loop lives for the server, joined on Close; not pool fan-out
	go accept()
}
