// The collect-then-sort idiom: appending map keys is clean when the
// slice is sorted in the same function before use.
package orders

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys is the canonical deterministic form.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DumpSorted iterates an already-sorted key slice; the map itself is
// only indexed, never ranged, inside the output loop.
func DumpSorted(w io.Writer, m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}
