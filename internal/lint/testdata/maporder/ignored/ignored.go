// A justified suppression: debug output whose order genuinely does not
// matter.
package orders

import (
	"fmt"
	"io"
)

// DebugDump streams entries for eyeballing; nothing downstream parses
// or diffs it.
func DebugDump(w io.Writer, m map[string]int) {
	for k := range m {
		//lint:ignore maporder throwaway debug stream, no golden output depends on its order
		fmt.Fprintln(w, k)
	}
}
