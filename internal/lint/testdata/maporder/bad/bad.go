// Map iteration feeding ordered output with no sort: both the append
// and the writer stream depend on Go's randomized map order.
package orders

import (
	"fmt"
	"io"
)

// Keys returns map keys in random order — the PR 1 index bug class.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over map`
	}
	return out
}

// Dump streams entries in random order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `write to output inside range over map`
	}
}
