//go:build repolint_fixture_other

// The excluded half of the pair. It redeclares Value — if the loader
// ever stopped honoring //go:build, type-checking would see the symbol
// twice and the test would fail loudly. Its //lint:ignore directive must
// not be reported as stale: an excluded file's directives do not exist.
package loadmod

// Value would collide with portable.go's if both files loaded.
func Value() int {
	//lint:ignore baregoroutine this directive lives in an excluded file and must never count as stale
	go func() {}()
	return 2
}
