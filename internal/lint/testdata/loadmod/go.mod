module loadmod

go 1.22
