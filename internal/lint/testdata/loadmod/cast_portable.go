//go:build !(amd64 || arm64 || 386 || arm || riscv64 || wasm || loong64 || ppc64le || mips64le || mipsle)

// The portable half of the per-arch pair; see cast_le.go.
package loadmod

// Cast is the byte-order-independent fallback.
func Cast() string { return "portable" }
