//go:build amd64 || arm64 || 386 || arm || riscv64 || wasm || loong64 || ppc64le || mips64le || mipsle

// The little-endian half of a real per-arch pair, mirroring
// internal/selection's snapcast files. Exactly one of cast_le.go and
// cast_portable.go loads on any host; both declare Cast.
package loadmod

// Cast is the little-endian fast path.
func Cast() string { return "le" }
