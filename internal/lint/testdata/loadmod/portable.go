// The half of the build-tag pair that loads on every host: the
// repolint_fixture_other tag is never set.
package loadmod

// Value is the portable implementation.
func Value() int { return 1 }
