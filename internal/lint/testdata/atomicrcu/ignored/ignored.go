// A justified suppression: plain initialization before the variable is
// published to any other goroutine.
package rcu

import "sync/atomic"

var ready uint32

// MarkReady publishes readiness.
func MarkReady() { atomic.StoreUint32(&ready, 1) }

// ResetForTest runs while the process is single-threaded.
func ResetForTest() {
	//lint:ignore atomicrcu single-threaded test setup; no other goroutine exists yet
	ready = 0
}
