// The safe shapes: typed atomics (no plain accessors exist), a package
// variable that is atomic at every access, and ordinary variables that
// never cross the atomic line.
package rcu

import "sync/atomic"

type State struct {
	epoch atomic.Uint64
	snap  atomic.Pointer[State]
	plain int
}

// Bump uses the typed atomics and an untracked plain field.
func (s *State) Bump() {
	s.epoch.Add(1)
	s.plain++
}

// Publish swaps the RCU pointer.
func (s *State) Publish(next *State) {
	s.snap.Store(next)
}

var requests uint64

// Record and Total agree: every access to requests is atomic.
func Record()       { atomic.AddUint64(&requests, 1) }
func Total() uint64 { return atomic.LoadUint64(&requests) }
