// Mixed atomic and plain access to the same variable: the data race the
// typed atomics make impossible by construction.
package rcu

import "sync/atomic"

type Counter struct {
	hits uint64
	gen  uint64 // never touched atomically; plain access is fine
}

// Inc crosses the atomic line for hits.
func (c *Counter) Inc() {
	atomic.AddUint64(&c.hits, 1)
}

// Snapshot reads it plainly — racing with Inc.
func (c *Counter) Snapshot() uint64 {
	return c.hits // want `hits is accessed with sync/atomic elsewhere`
}

// Reset writes it plainly — also racing.
func (c *Counter) Reset() {
	c.hits = 0 // want `hits is accessed with sync/atomic elsewhere`
	c.gen++
}
