// Errors dropped where nobody is watching: goroutine bodies and defers.
package sinks

import "os"

// Spawn drops errors four different ways.
func Spawn(f *os.File) {
	go func() {
		f.Close() // want `goroutine discards the error result of Close`
	}()
	go func() {
		_ = f.Sync() // want `goroutine discards an error with _`
	}()
	go func() {
		n, _ := f.Write(nil) // want `goroutine discards an error with _`
		println(n)
	}()
	defer f.Close() // want `deferred call discards the error result of Close`
}

// DeadAssign writes an error that no path ever reads before it is
// overwritten.
func DeadAssign(f *os.File) {
	go func() {
		err := f.Sync() // want `goroutine assigns an error to err but no path reads it`
		err = f.Close()
		if err != nil {
			println("close failed")
		}
	}()
}
