// Errors that reach a sink: a channel, a captured slot, a log.
package sinks

import "os"

// Spawn routes every background error somewhere visible.
func Spawn(f *os.File, errs chan error) {
	go func() {
		if err := f.Sync(); err != nil {
			errs <- err
		}
	}()
	go func() {
		errs <- f.Close()
	}()
	defer func() {
		if err := f.Close(); err != nil {
			println("close:", err.Error())
		}
	}()
}

// Collect writes into a variable captured from the enclosing function:
// its lifetime outlives the goroutine, so the write is the sink.
func Collect(f *os.File, wait func()) error {
	var firstErr error
	go func() {
		firstErr = f.Sync()
	}()
	wait()
	return firstErr
}
