// Justified suppressions: best-effort teardown whose error has no
// consumer.
package sinks

import "os"

// Cleanup tears down at process exit.
func Cleanup(f *os.File) {
	//lint:ignore errsink process-exit cleanup; the error has no consumer
	defer f.Close()
	go func() {
		//lint:ignore errsink best-effort flush on shutdown; the file is abandoned either way
		f.Sync()
	}()
}
