package lint

import (
	"go/ast"
	"go/types"
)

// syncLockTypes are the sync types whose zero-value identity matters:
// copying one forks its internal state, so a copy silently stops
// synchronizing with the original.
var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Pool":      true,
	"Map":       true,
}

// MutexByValue is a copylocks-lite: it flags function parameters and
// receivers that take a sync lock type — or a struct (transitively)
// containing one — by value. go vet's copylocks catches call sites;
// this catches the declaration itself, where the fix belongs.
var MutexByValue = &Analyzer{
	Name: "mutexbyvalue",
	Doc: "flag parameters and receivers that pass sync.Mutex (or a type " +
		"containing one) by value; the copy synchronizes nothing",
	Run: runMutexByValue,
}

func runMutexByValue(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Recv != nil {
					checkLockFields(pass, node.Recv.List, "receiver")
				}
			case *ast.FuncType:
				if node.Params != nil {
					checkLockFields(pass, node.Params.List, "parameter")
				}
			}
			return true
		})
	}
	return nil
}

func checkLockFields(pass *Pass, fields []*ast.Field, kind string) {
	for _, field := range fields {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if name := lockTypeIn(tv.Type, make(map[types.Type]bool)); name != "" {
			pass.Reportf(field.Pos(),
				"%s passes %s by value (contains sync.%s); use a pointer — the copy synchronizes nothing",
				kind, tv.Type.String(), name)
		}
	}
}

// lockTypeIn returns the name of the sync lock type contained by value
// in t (directly, via struct fields, or via array elements), or "".
func lockTypeIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		if obj := tt.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return obj.Name()
		}
		return lockTypeIn(tt.Underlying(), seen)
	case *types.Alias:
		return lockTypeIn(types.Unalias(tt), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if name := lockTypeIn(tt.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockTypeIn(tt.Elem(), seen)
	}
	return ""
}
