package lint

// errsink guards the module's silent-failure surface: error values
// produced where no caller is watching — inside goroutine bodies and in
// deferred calls — must reach a sink (a return, a channel, a shared
// slot, telemetry, a log) or carry an explicit, justified suppression.
// PR 3's fault-tolerance work made background goroutines routine
// (accept loops, connection handlers, samplers), and an error dropped in
// one of them is a fault the chaos suites cannot see.
//
// Three shapes are reported:
//
//   - a call statement inside a go/defer closure whose error result is
//     discarded entirely (`conn.Close()` as a bare statement)
//   - an error assigned to `_` inside such a closure, or a deferred
//     direct call (`defer f.Close()`) discarding an error result —
//     intentional discards stay visible because they need a
//     //lint:ignore with a reason
//   - an error assigned to a variable declared inside the closure that
//     is dead at the assignment — no path reads it before redefinition
//     or scope exit (backward liveness over the CFG)
//
// Variables captured from the enclosing function are exempt from the
// liveness rule (their lifetime outlives the closure; writes to them are
// how worker pools report results).

import (
	"go/ast"
	"go/types"
)

var ErrSink = &Analyzer{
	Name: "errsink",
	Doc: "Errors produced inside goroutine bodies and defers must reach a sink " +
		"(return, channel, shared slot, telemetry) — a dropped error in background " +
		"work is invisible to callers and tests alike. Intentional discards need " +
		"//lint:ignore with the reason.",
	Run: runErrSink,
}

func runErrSink(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkErrSinkBody(pass, lit, "goroutine")
				} else {
					checkDiscardedCall(pass, n.Call, "goroutine call")
				}
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkErrSinkBody(pass, lit, "deferred closure")
				} else {
					checkDiscardedCall(pass, n.Call, "deferred call")
				}
			}
			return true
		})
	}
	return nil
}

// checkDiscardedCall reports a go/defer of a plain call that returns an
// error nobody can see.
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, context string) {
	if name, ok := returnsError(pass.Info, call); ok {
		pass.Reportf(call.Pos(), "%s discards the error result of %s", context, name)
	}
}

// returnsError reports whether the call's results include an error, and
// names the callee for the diagnostic.
func returnsError(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return "", false
	}
	name := calleeLabel(info, call)
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return name, true
			}
		}
	default:
		if isErrorType(t) {
			return name, true
		}
	}
	return "", false
}

func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the call"
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkErrSinkBody analyzes one go/defer closure body.
func checkErrSinkBody(pass *Pass, lit *ast.FuncLit, context string) {
	info := pass.Info

	// Error-typed variables declared inside this closure. Captured
	// variables are excluded: assignments to them are visible outside.
	localErr := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && isErrorType(v.Type()) {
			localErr[v] = true
		}
		return true
	})

	g := BuildCFG(lit.Body, info)
	live := Backward(g, errFact{}, func() errFact { return errFact{} },
		func(b *Block, out errFact) errFact {
			fact := out.clone()
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				fact = errLivenessNode(info, b.Nodes[i], localErr, fact, nil)
			}
			return fact
		},
		mergeErr, equalErr)

	// Reporting sweep: walk each block backward from its live-out fact.
	for _, b := range g.Blocks {
		fact := live[b]
		if fact == nil {
			fact = errFact{}
		}
		fact = fact.clone()
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			fact = errLivenessNode(info, b.Nodes[i], localErr, fact, func(id *ast.Ident, obj types.Object) {
				pass.Reportf(id.Pos(),
					"%s assigns an error to %s but no path reads it before it goes out of scope or is overwritten",
					context, id.Name)
			})
		}
	}

	// Wholly discarded errors: bare call statements and blanks.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit // nested closures get their own go/defer scan if spawned
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := returnsError(info, call); ok {
					pass.Reportf(call.Pos(), "%s discards the error result of %s", context, name)
				}
			}
		case *ast.AssignStmt:
			reportBlankErrDiscards(pass, info, n, context)
		}
		return true
	})
}

// reportBlankErrDiscards flags `_ = f()` / `v, _ := f()` where the
// discarded component is an error.
func reportBlankErrDiscards(pass *Pass, info *types.Info, as *ast.AssignStmt, context string) {
	blankAt := func(i int) (*ast.Ident, bool) {
		id, ok := as.Lhs[i].(*ast.Ident)
		return id, ok && id.Name == "_"
	}
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// v, _ := f(): component types come from the call's tuple.
		tv, ok := info.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		for i := 0; i < len(as.Lhs) && i < tuple.Len(); i++ {
			if id, blank := blankAt(i); blank && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(id.Pos(), "%s discards an error with _", context)
			}
		}
		return
	}
	for i := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		if id, blank := blankAt(i); blank && isErrorType(info.TypeOf(as.Rhs[i])) {
			pass.Reportf(id.Pos(), "%s discards an error with _", context)
		}
	}
}

type errFact map[types.Object]bool

func (f errFact) clone() errFact {
	out := make(errFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func mergeErr(a, b errFact) errFact {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

func equalErr(a, b errFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// errLivenessNode applies one node backward: kill definitions, then add
// uses. onDeadDef fires for assignments whose target error variable is
// not live after the node.
func errLivenessNode(info *types.Info, node ast.Node, tracked map[types.Object]bool, live errFact, onDeadDef func(*ast.Ident, types.Object)) errFact {
	// Definitions in this node: LHS idents of assignments.
	var defs []*ast.Ident
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && tracked[obj] {
					defs = append(defs, id)
				}
			}
		}
		return true
	})
	defObjs := make(map[types.Object]*ast.Ident, len(defs))
	for _, id := range defs {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		defObjs[obj] = id
	}

	// Uses: every other read of a tracked variable in the node.
	uses := make(map[types.Object]bool)
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Reads inside nested closures count as uses (the closure may
			// run later, but the value flows into it).
			// fallthrough to walk it
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !tracked[obj] {
			return true
		}
		if defID, isDef := defObjs[obj]; isDef && defID == id {
			return true // the definition itself is not a use
		}
		uses[obj] = true
		return true
	})

	// Dead-definition check happens against liveness *after* the node,
	// which for same-node def+use (err := f(); used in same if-init) must
	// include the node's own uses that read the new value. An assignment
	// `err = g(err)` uses the old value — order within one node is
	// approximated by counting any same-node use as keeping the def live,
	// which cannot produce false positives.
	if onDeadDef != nil {
		for obj, id := range defObjs {
			if !live[obj] && !uses[obj] {
				onDeadDef(id, obj)
			}
		}
	}
	for obj := range defObjs {
		delete(live, obj)
	}
	for obj := range uses {
		live[obj] = true
	}
	return live
}
