package lint

// atomicrcu enforces the RCU access discipline from DESIGN.md §10: once
// any code touches a variable through the sync/atomic package functions
// (atomic.AddUint64(&x), atomic.LoadPointer(&p), ...), every access to
// that variable must be atomic. A single plain read of an
// atomically-written counter is a data race the race detector only
// catches if a test happens to interleave it; the type checker knows
// statically which variables have crossed the atomic line.
//
// Fields of the typed atomics (atomic.Uint64, atomic.Pointer[T]) are
// immune by construction — the type exposes no plain accessors — so the
// analyzer concerns itself with the classic footgun: an ordinary uint64
// or unsafe.Pointer field mixed between atomic.* calls and direct
// loads/stores. The check is per-package (the variables in question are
// unexported in this module; an exported mixed-access field would be
// flagged in its own package where the atomic call lives). Accesses
// through pointer aliases (p := &s.n; *p = 1) are a documented blind
// spot.

import (
	"go/ast"
	"go/types"
	"sort"
)

var AtomicRCU = &Analyzer{
	Name: "atomicrcu",
	Doc: "A variable accessed through sync/atomic functions anywhere in the package " +
		"must be accessed atomically everywhere: plain reads or writes of it race with " +
		"the atomic ones and void the RCU publication guarantees the serving path " +
		"relies on.",
	Run: runAtomicRCU,
}

func runAtomicRCU(pass *Pass) error {
	// Pass 1: every variable whose address is passed to a sync/atomic
	// function, and the syntax nodes making up those sanctioned accesses.
	atomicVars := make(map[types.Object]ast.Node) // var -> first atomic access (for the message)
	sanctioned := make(map[ast.Node]bool)         // ident/selector nodes inside atomic call args
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, _ := staticCallee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on atomic.Uint64 etc. are safe by type
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				obj := addressedVar(pass.Info, un.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicVars[obj]; !seen {
					atomicVars[obj] = un
				}
				ast.Inspect(un.X, func(m ast.Node) bool {
					sanctioned[m] = true
					return true
				})
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: any other syntactic access to those variables.
	type finding struct {
		node ast.Node
		obj  types.Object
	}
	var findings []finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sanctioned[n] {
				return true
			}
			var obj types.Object
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n.Sel] {
					return true
				}
				obj = pass.Info.Uses[n.Sel]
			case *ast.Ident:
				obj = pass.Info.Uses[n]
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if _, isAtomic := atomicVars[obj]; isAtomic {
				findings = append(findings, finding{node: n, obj: obj})
				return false // don't double-report sel.Sel under the selector
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].node.Pos() < findings[j].node.Pos() })
	reported := make(map[ast.Node]bool)
	for _, f := range findings {
		if reported[f.node] {
			continue
		}
		reported[f.node] = true
		pass.Reportf(f.node.Pos(),
			"%s is accessed with sync/atomic elsewhere in this package; plain access races with the atomic ones (use atomic.Load/Store or the typed atomics)",
			f.obj.Name())
	}
	return nil
}

// addressedVar resolves &expr's operand to the variable object it names:
// a plain identifier or the final field of a selector chain.
func addressedVar(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		// &arr[i]: per-element atomics have no stable per-object identity;
		// fall back to the array/slice variable itself so mixed plain
		// element access in the same package is still caught.
		return addressedVar(info, e.X)
	}
	return nil
}
