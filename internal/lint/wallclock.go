package lint

import (
	"go/ast"
	"go/types"
)

// wallClockRestricted lists the package subtrees whose output is
// golden: experiment tables, metric passes, the sampling core and the
// language-model layer all produce byte-identical results for a given
// seed, and a wall-clock read anywhere on those paths would leak
// real time into them (or tempt someone to seed from it). Timing for
// human consumption belongs in cmd/ and in benchmarks, which stay
// unrestricted.
var wallClockRestricted = []string{
	"repro/internal/experiments",
	"repro/internal/metrics",
	"repro/internal/core",
	"repro/internal/langmodel",
}

// wallClockForbidden names the time-package functions that read the
// wall clock or measure elapsed real time.
var wallClockForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallClock forbids time.Now/time.Since/time.Until inside the
// golden-output packages.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now, time.Since, time.Until) in " +
		"golden-output packages (internal/experiments, internal/metrics, " +
		"internal/core, internal/langmodel); timing belongs in cmd/ and benchmarks",
	Run: runWallClock,
}

func runWallClock(pass *Pass) error {
	restricted := false
	for _, root := range wallClockRestricted {
		if pkgWithin(pass.Pkg.Path(), root) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockForbidden[sel.Sel.Name] {
				return true
			}
			if obj := pass.Info.Uses[sel.Sel]; obj != nil {
				if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
					pass.Reportf(sel.Pos(),
						"time.%s in golden-output package %s: results must not depend on the wall clock",
						sel.Sel.Name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
