package lint

// Generic worklist fixpoint solvers over the CFGs built by cfg.go.
// Analyses supply a transfer function (what one block does to a fact), a
// merge (join at control-flow confluences), and an equality test (fixpoint
// detection); the solver owns iteration order and termination. Facts must
// form a finite-height lattice under merge — every analyzer here uses
// finite sets keyed by syntactic objects, so termination is structural.

// Forward solves a forward dataflow problem: facts flow from a block to
// its successors. entry is the fact at function entry; bottom produces
// the identity fact for merge (the empty set for may-analyses). The
// returned map holds the IN fact of every reachable block; analyzers
// re-apply their transfer node-by-node over a block when they need
// per-statement facts for reporting.
func Forward[F any](g *CFG, entry F, bottom func() F,
	transfer func(*Block, F) F, merge func(F, F) F, equal func(F, F) bool) map[*Block]F {

	in := make(map[*Block]F, len(g.Blocks))
	seen := make(map[*Block]bool, len(g.Blocks))
	if len(g.Blocks) == 0 {
		return in
	}
	in[g.Blocks[0]] = entry
	seen[g.Blocks[0]] = true

	work := []*Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := transfer(b, in[b])
		for _, s := range b.Succs {
			next := out
			if seen[s] {
				next = merge(in[s], out)
				if equal(next, in[s]) {
					continue
				}
			}
			in[s] = next
			seen[s] = true
			work = append(work, s)
		}
	}
	return in
}

// Backward solves a backward dataflow problem: facts flow from a block to
// its predecessors (classically: liveness). exit is the fact at the
// synthetic Exit block and at blocks with no successors (panic
// terminators). The returned map holds the OUT fact of every block.
func Backward[F any](g *CFG, exit F, bottom func() F,
	transfer func(*Block, F) F, merge func(F, F) F, equal func(F, F) bool) map[*Block]F {

	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	out := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		out[b] = bottom()
	}
	out[g.Exit] = exit
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 && b != g.Exit {
			out[b] = exit // panic paths: nothing is needed after them
		}
	}

	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make(map[*Block]bool, len(g.Blocks))
	for _, b := range work {
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false

		liveIn := transfer(b, out[b])
		for _, p := range preds[b] {
			merged := merge(out[p], liveIn)
			if equal(merged, out[p]) {
				continue
			}
			out[p] = merged
			if !inWork[p] {
				inWork[p] = true
				work = append(work, p)
			}
		}
	}
	return out
}
