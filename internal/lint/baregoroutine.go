package lint

import "go/ast"

// parallelPath is the one package allowed to spawn raw goroutines: the
// bounded, order-preserving worker pool every experiment and service
// fan-out goes through. Routing all concurrency through it keeps
// result order deterministic (the pool reassembles outputs by index)
// and keeps the goroutine count bounded under production load.
const parallelPath = "repro/internal/parallel"

// BareGoroutine forbids `go` statements outside internal/parallel.
// Network accept loops and similar per-connection lifecycles that
// genuinely cannot go through the pool carry a //lint:ignore with the
// justification.
var BareGoroutine = &Analyzer{
	Name: "baregoroutine",
	Doc: "forbid raw go statements outside internal/parallel; fan-out " +
		"must go through the ordered worker pool so results stay " +
		"deterministic and concurrency stays bounded",
	Run: runBareGoroutine,
}

func runBareGoroutine(pass *Pass) error {
	if pkgWithin(pass.Pkg.Path(), parallelPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement outside internal/parallel: use parallel.Map/parallel.Group so fan-out stays ordered and bounded")
			}
			return true
		})
	}
	return nil
}
