package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full syntax is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and the directive covers findings from the named analyzers on the
// directive's own line (trailing comment) or on the line immediately
// below it (comment on its own line).
const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string
	reason    string
	pos       token.Position // of the comment itself
	used      bool
}

func (ig *ignoreDirective) covers(analyzer string, line int) bool {
	if line != ig.pos.Line && line != ig.pos.Line+1 {
		return false
	}
	for _, a := range ig.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// ignoreSet indexes a package's directives by filename.
type ignoreSet map[string][]*ignoreDirective

// match returns the directive suppressing a finding from analyzer at
// pos, or nil.
func (s ignoreSet) match(analyzer string, pos token.Position) *ignoreDirective {
	for _, ig := range s[pos.Filename] {
		if ig.covers(analyzer, pos.Line) {
			return ig
		}
	}
	return nil
}

// unused reports directives that suppressed nothing, restricted to
// analyzers that actually ran (a directive for a disabled analyzer is
// not a finding).
func (s ignoreSet) unused(ran []*Analyzer) []Diagnostic {
	active := make(map[string]bool, len(ran))
	for _, a := range ran {
		active[a.Name] = true
	}
	files := make([]string, 0, len(s))
	for f := range s {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []Diagnostic
	for _, f := range files {
		for _, ig := range s[f] {
			if ig.used {
				continue
			}
			relevant := false
			for _, a := range ig.analyzers {
				if active[a] {
					relevant = true
					break
				}
			}
			if relevant {
				out = append(out, Diagnostic{
					Analyzer: "lint",
					Pos:      ig.pos,
					Message:  "lint:ignore directive suppresses nothing; remove it",
				})
			}
		}
	}
	return out
}

// collectIgnores parses every //lint:ignore directive in the package's
// files. Malformed directives (no analyzer, or no reason) are returned
// as diagnostics so suppressions always carry a justification.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				set[pos.Filename] = append(set[pos.Filename], &ignoreDirective{
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
					pos:       pos,
				})
			}
		}
	}
	return set, malformed
}
