package lint

// SARIF 2.1.0 export, built with encoding/json only. SARIF is the
// interchange format code-scanning UIs ingest (GitHub code scanning,
// VS Code SARIF viewers); emitting it from repolint turns the
// determinism/concurrency findings into annotations on the PR diff
// instead of a CI log line. Suppressed findings are included with an
// inSource suppression carrying the //lint:ignore justification, so the
// ignore ledger is auditable from the same artifact.

import (
	"path/filepath"
	"strings"
)

// SARIFLog is the top-level SARIF 2.1.0 document.
type SARIFLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one tool invocation.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool identifies the producing tool.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver describes repolint and its rule set.
type SARIFDriver struct {
	Name  string      `json:"name"`
	Rules []SARIFRule `json:"rules"`
}

// SARIFRule is one analyzer, in rule-index order.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
	FullDescription  SARIFMessage `json:"fullDescription"`
}

// SARIFMessage is SARIF's text wrapper.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFResult is one finding.
type SARIFResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      SARIFMessage       `json:"message"`
	Locations    []SARIFLocation    `json:"locations"`
	Suppressions []SARIFSuppression `json:"suppressions,omitempty"`
}

// SARIFLocation wraps the physical location of a finding.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysical `json:"physicalLocation"`
}

// SARIFPhysical is a file/region pair.
type SARIFPhysical struct {
	ArtifactLocation SARIFArtifact `json:"artifactLocation"`
	Region           SARIFRegion   `json:"region"`
}

// SARIFArtifact names the file, relative to the repository root.
type SARIFArtifact struct {
	URI string `json:"uri"`
}

// SARIFRegion is the position within the file.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFSuppression records an in-source //lint:ignore with its reason.
type SARIFSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// ToSARIF converts diagnostics (suppressed ones included — they carry
// suppressions entries) to a SARIF 2.1.0 log. root, when non-empty,
// relativizes file paths; URIs always use forward slashes. The
// pseudo-analyzer "lint" (malformed/stale directives) gets a synthetic
// rule appended after the registered analyzers.
func ToSARIF(diags []Diagnostic, analyzers []*Analyzer, root string) *SARIFLog {
	rules := make([]SARIFRule, 0, len(analyzers)+1)
	index := make(map[string]int, len(analyzers)+1)
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, SARIFRule{
			ID:               a.Name,
			ShortDescription: SARIFMessage{Text: a.Name},
			FullDescription:  SARIFMessage{Text: a.Doc},
		})
	}

	results := make([]SARIFResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Analyzer]
		if !ok {
			idx = len(rules)
			index[d.Analyzer] = idx
			rules = append(rules, SARIFRule{
				ID:               d.Analyzer,
				ShortDescription: SARIFMessage{Text: d.Analyzer},
				FullDescription:  SARIFMessage{Text: "repolint directive hygiene (malformed or stale //lint:ignore)"},
			})
		}
		res := SARIFResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   SARIFMessage{Text: d.Message},
			Locations: []SARIFLocation{{
				PhysicalLocation: SARIFPhysical{
					ArtifactLocation: SARIFArtifact{URI: sarifURI(d.Pos.Filename, root)},
					Region:           SARIFRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		if d.Suppressed {
			res.Suppressions = []SARIFSuppression{{
				Kind:          "inSource",
				Justification: d.SuppressReason,
			}}
		}
		results = append(results, res)
	}

	return &SARIFLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []SARIFRun{{
			Tool:    SARIFTool{Driver: SARIFDriver{Name: "repolint", Rules: rules}},
			Results: results,
		}},
	}
}

func sarifURI(filename, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			filename = rel
		}
	}
	return filepath.ToSlash(filename)
}
