package lint

import (
	"strconv"
	"strings"
)

// randxPath is the one package allowed to touch math/rand: the
// repository's seedable randomness layer. Everything else must draw
// through it so experiments stay bit-reproducible (math/rand's global
// source is seeded from the clock, and rand.Shuffle et al. change
// streams between Go releases).
const randxPath = "repro/internal/randx"

// DirectRand forbids importing math/rand or math/rand/v2 outside
// internal/randx.
var DirectRand = &Analyzer{
	Name: "directrand",
	Doc: "forbid math/rand imports outside internal/randx; all randomness " +
		"must flow through seeded randx.Source streams so experiment output " +
		"is bit-reproducible",
	Run: runDirectRand,
}

func runDirectRand(pass *Pass) error {
	if pkgWithin(pass.Pkg.Path(), randxPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s outside internal/randx: use a seeded randx.Source so draws are reproducible",
					path)
			}
		}
	}
	return nil
}

// pkgWithin reports whether pkg is root or a package under it.
func pkgWithin(pkg, root string) bool {
	return pkg == root || strings.HasPrefix(pkg, root+"/")
}
