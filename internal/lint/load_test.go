package lint

// Tests for the //go:build-aware loader against the testdata/loadmod
// mini-module: a never-satisfied tag, a real LE/portable per-arch pair,
// and the stale-directive rule's interaction with excluded files.

import (
	"path/filepath"
	"testing"
)

func loadmodPackages(t *testing.T) []*Package {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", "loadmod"))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.Module != "loadmod" {
		t.Fatalf("module path = %q, want loadmod", loader.Module)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs
}

// TestLoaderHonorsBuildTags: the module holds four files — portable.go
// (always included), gated.go (tag never set), and the cast_le/
// cast_portable per-arch pair. Exactly two must load on any host; the
// excluded files each redeclare a symbol from an included one, so a
// loader that ignored //go:build would fail type-checking.
func TestLoaderHonorsBuildTags(t *testing.T) {
	pkg := loadmodPackages(t)[0]
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors (did an excluded file load?): %v", pkg.TypeErrors)
	}
	if len(pkg.Files) != 2 {
		names := make([]string, 0, len(pkg.Files))
		for _, f := range pkg.Files {
			names = append(names, filepath.Base(pkg.Fset.Position(f.Pos()).Filename))
		}
		t.Fatalf("loaded %d files %v, want exactly 2 (portable.go + one Cast half)", len(pkg.Files), names)
	}
	for _, f := range pkg.Files {
		if filepath.Base(pkg.Fset.Position(f.Pos()).Filename) == "gated.go" {
			t.Fatal("gated.go loaded despite its never-set build tag")
		}
	}
}

// TestExcludedFileDirectivesNotStale: gated.go carries a //lint:ignore
// that suppresses nothing in the loaded package. Because the file is
// excluded by its build tag, the directive must not be reported as
// stale — it does not exist as far as analysis is concerned. The
// violation next to it (a raw go statement) must not be reported
// either.
func TestExcludedFileDirectivesNotStale(t *testing.T) {
	pkgs := loadmodPackages(t)
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("unexpected diagnostic from excluded-file content: %s", d)
	}
}
