package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for … range m` over a map whose body feeds ordered
// output — appending to a slice, or writing through an io.Writer-style
// call — without the keys being sorted afterwards in the same
// function. Go randomizes map iteration order on purpose, so any such
// loop perturbs golden output run to run. This is the exact bug class
// PR 1 fixed in internal/index, where unsorted vocabulary iteration
// silently reordered selector draws.
//
// The collect-then-sort idiom is recognized and allowed: a loop that
// appends map keys (or values) to a slice is clean when that slice is
// later passed to a sort.* or slices.Sort* call in the same function.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that appends to a slice or writes output " +
		"without sorting; map order is randomized and would perturb " +
		"golden results (the PR 1 internal/index bug class)",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		// All function bodies in the file, so each range statement
		// can be matched to its innermost enclosing function — the
		// scope in which a later sort call makes the loop clean.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapExpr(pass, rs.X) {
				return true
			}
			scope := enclosingBody(bodies, rs)
			for _, sink := range findOrderSinks(pass, rs.Body) {
				if sink.obj != nil && sortedInScope(pass, scope, sink.obj) {
					continue // collect-then-sort idiom
				}
				if sink.obj != nil {
					pass.Reportf(sink.pos,
						"append to %q inside range over map: iteration order is randomized; sort the keys first (or sort %q before use)",
						sink.obj.Name(), sink.obj.Name())
				} else {
					pass.Reportf(sink.pos,
						"write to output inside range over map: iteration order is randomized; iterate sorted keys instead")
				}
			}
			return true
		})
	}
	return nil
}

func isMapExpr(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderSink is one order-sensitive effect inside a map-range body:
// either an append to a slice (obj identifies the slice) or a write to
// an output stream (obj nil).
type orderSink struct {
	pos token.Pos
	obj types.Object
}

// findOrderSinks walks a map-range body for appends and writer calls.
func findOrderSinks(pass *Pass, body *ast.BlockStmt) []orderSink {
	var sinks []orderSink
	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(stmt.Lhs) {
					continue
				}
				if id, ok := stmt.Lhs[i].(*ast.Ident); ok {
					sinks = append(sinks, orderSink{pos: stmt.Pos(), obj: objectOf(pass, id)})
				}
			}
		case *ast.CallExpr:
			if isOutputWrite(pass, stmt) {
				sinks = append(sinks, orderSink{pos: stmt.Pos()})
			}
		}
		return true
	})
	return sinks
}

func objectOf(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := objectOf(pass, id).(*types.Builtin)
	return isBuiltin
}

// isOutputWrite recognizes fmt.Fprint* calls and Write/WriteString/
// WriteByte/WriteRune method calls — the idioms that stream bytes to
// an io.Writer or builder.
func isOutputWrite(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		return true
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Method call (not a package selector like pkg.Write).
		if _, ok := pass.Info.Selections[sel]; ok {
			return true
		}
	}
	return false
}

// sortedInScope reports whether obj is passed to a sort.* or
// slices.Sort* call anywhere in body.
func sortedInScope(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && !(pkg == "slices" && strings.HasPrefix(fn.Name(), "Sort")) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && objectOf(pass, id) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// enclosingBody returns the innermost function body containing n.
func enclosingBody(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}
