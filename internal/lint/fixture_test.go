package lint

// Fixture harness: each analyzer has testdata/<analyzer>/<case>
// directories holding one small package per case. Lines that should be
// flagged carry a trailing comment of the form
//
//	// want `regexp`
//
// and the harness fails if any unsuppressed diagnostic has no matching
// want, or any want goes unmatched — so disabling an analyzer makes
// its fixtures fail. Expectations that cannot be written inline (the
// framework's own malformed/unused-directive diagnostics, whose lines
// already hold a //lint: comment) are passed programmatically as
// wantAt values.

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantAt is one expected diagnostic: a line and a regexp the message
// must match.
type wantAt struct {
	line int
	re   string
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// loadFixture parses and type-checks one fixture directory as a
// package with the given synthetic import path (the analyzers'
// location-scoped rules key off it).
func loadFixture(t *testing.T, dir, pkgpath string) *Package {
	t.Helper()
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	pkg := &Package{PkgPath: pkgpath, Dir: dir, Fset: fset, Files: files}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkgpath, fset, files, pkg.Info)
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, terr)
	}
	return pkg
}

// collectWants extracts the inline want expectations from a fixture.
func collectWants(pkg *Package) []wantAt {
	var wants []wantAt
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := wantRE.FindStringSubmatch(c.Text); m != nil {
					wants = append(wants, wantAt{
						line: pkg.Fset.Position(c.Pos()).Line,
						re:   m[1],
					})
				}
			}
		}
	}
	return wants
}

// runCase loads a fixture, runs one analyzer through the full pipeline
// (including //lint:ignore handling), and checks findings against
// wants.
func runCase(t *testing.T, a *Analyzer, fixture, pkgpath string, extra ...wantAt) {
	t.Helper()
	pkg := loadFixture(t, filepath.Join("testdata", fixture), pkgpath)
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	findings := Unsuppressed(diags)
	wants := append(collectWants(pkg), extra...)

	matched := make([]bool, len(wants))
finding:
	for _, d := range findings {
		for i, w := range wants {
			if !matched[i] && w.line == d.Pos.Line && regexp.MustCompile(w.re).MatchString(d.Message) {
				matched[i] = true
				continue finding
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s line %d matching %q", fixture, w.line, w.re)
		}
	}
}
