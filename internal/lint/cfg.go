package lint

// Intraprocedural control-flow graphs over go/ast function bodies: the
// substrate the flow-sensitive analyzers (lockheld, errsink) run on. The
// per-statement AST walks of the original five analyzers cannot answer
// questions like "is this mutex released on every path?" or "does this
// error reach a sink before it is overwritten?" — those are properties of
// paths, not statements. BuildCFG lowers a body to basic blocks with
// explicit successor edges; dataflow.go provides the forward/backward
// fixpoint solvers that run over them.
//
// The construction is deliberately modest: blocks hold the original
// ast.Node statements in execution order (condition and range expressions
// are attached to the loop-head blocks that evaluate them), and control
// constructs are lowered structurally — if/else, for/range, switch and
// type switch with fallthrough, select (one successor per communication
// clause), labeled break/continue, and goto. A return edges to the
// synthetic Exit block; a call that provably never returns (the builtin
// panic, os.Exit, runtime.Goexit) terminates its block with no
// successors, so panic paths are not reported as "lock never released" —
// the runtime unwinds them through the deferred calls.

import (
	"go/ast"
	"go/types"
)

// Block is one basic block: a maximal sequence of statements with a
// single entry point and explicit successors.
type Block struct {
	// Index is the block's position in CFG.Blocks (construction order;
	// entry is 0). It gives analyses a stable iteration order.
	Index int
	// Nodes are the statements (and loop-head expressions) the block
	// executes, in order.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next. Empty for the
	// Exit block and for blocks terminated by a never-returning call.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block, entry first. Unreachable blocks (code
	// after return, empty loop-afters) may appear; they simply receive no
	// dataflow facts.
	Blocks []*Block
	// Exit is the synthetic normal-return block: every return statement
	// and the body's fall-off edge lead here. It holds no nodes.
	Exit *Block
}

// BuildCFG lowers a function body to basic blocks. info may be nil; it is
// used only to recognize never-returning calls (panic, os.Exit).
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{info: info}
	b.graph = &CFG{}
	entry := b.newBlock()
	b.graph.Exit = b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	// Fall off the end of the body: an implicit return.
	b.jump(b.graph.Exit)
	b.resolveGotos()
	return b.graph
}

type loopFrame struct {
	label          string
	brk, cont      *Block
	isLoop         bool // break+continue valid (for/range); switch/select: break only
	nextCaseOfCase map[ast.Stmt]*Block
}

type cfgBuilder struct {
	info  *types.Info
	graph *CFG
	cur   *Block // nil when the current path has terminated
	loops []loopFrame

	labels      map[string]*Block   // label -> target block (for goto)
	gotoPatches map[string][]*Block // unresolved forward gotos
	// fallthroughTarget is the next case clause's block while lowering a
	// switch case body.
	fallthroughTarget *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// jump adds an edge cur->to and terminates the current path.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
	b.cur = nil
}

// edge adds cur->to without terminating cur.
func (b *cfgBuilder) edge(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
}

// start begins a new block, linking from the current one when alive.
func (b *cfgBuilder) start(blk *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
	b.cur = blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the name of the enclosing
// LabeledStmt when s is its direct statement (so labeled break/continue
// resolve).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	if b.cur == nil {
		// Unreachable code still gets blocks so its nodes exist for
		// position-based reporting, but nothing flows into them.
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.start(target)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = target
		for _, from := range b.gotoPatches[s.Label.Name] {
			from.Succs = append(from.Succs, target)
		}
		delete(b.gotoPatches, s.Label.Name)
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		thenB := b.newBlock()
		after := b.newBlock()
		b.edge(thenB)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(elseB)
			cond := b.cur
			b.cur = elseB
			b.stmt(s.Else, "")
			b.jump(after)
			b.cur = cond
		} else {
			b.edge(after)
		}
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.jump(after)
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.Succs = append(post.Succs, head)
		}
		b.start(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(after)
		}
		b.edge(body)
		b.cur = body
		b.pushLoop(loopFrame{label: label, brk: after, cont: post, isLoop: true})
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(post)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.start(head)
		// The RangeStmt node itself carries X and the key/value
		// assignment; analyses see it in the head block.
		b.add(s)
		b.edge(after)
		b.edge(body)
		b.cur = body
		b.pushLoop(loopFrame{label: label, brk: after, cont: head, isLoop: true})
		b.stmtList(s.Body.List)
		b.popLoop()
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		// The SelectStmt node sits in the dispatching block so blocking
		// analyses can see whether a default clause exists.
		b.add(s)
		after := b.newBlock()
		dispatch := b.cur
		terminated := true
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			clB := b.newBlock()
			if dispatch != nil {
				dispatch.Succs = append(dispatch.Succs, clB)
			}
			b.cur = clB
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.pushLoop(loopFrame{label: label, brk: after})
			b.stmtList(comm.Body)
			b.popLoop()
			if b.cur != nil {
				terminated = false
			}
			b.jump(after)
		}
		if len(s.Body.List) == 0 {
			terminated = false
			if dispatch != nil {
				dispatch.Succs = append(dispatch.Succs, after)
			}
		}
		_ = terminated
		b.cur = after

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.graph.Exit)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.neverReturns(call) {
			b.cur = nil // panic/os.Exit: path ends, not via Exit
		}

	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt,
		// EmptyStmt: straight-line nodes.
		b.add(s)
	}
}

// caseClauses lowers the shared switch/type-switch body shape, including
// fallthrough edges.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, _ *Block) {
	after := b.newBlock()
	dispatch := b.cur
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
		if dispatch != nil {
			dispatch.Succs = append(dispatch.Succs, blocks[i])
		}
	}
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		var next *Block
		if i+1 < len(clauses) {
			next = blocks[i+1]
		}
		b.pushLoop(loopFrame{label: label, brk: after})
		b.fallthroughTarget = next
		b.stmtList(cc.Body)
		b.fallthroughTarget = nil
		b.popLoop()
		b.jump(after)
	}
	if !hasDefault && dispatch != nil {
		dispatch.Succs = append(dispatch.Succs, after)
	}
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if name == "" || fr.label == name {
				b.jump(fr.brk)
				return
			}
		}
		b.cur = nil
	case "continue":
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if fr.isLoop && (name == "" || fr.label == name) {
				b.jump(fr.cont)
				return
			}
		}
		b.cur = nil
	case "goto":
		if target, ok := b.labels[name]; ok {
			b.jump(target)
			return
		}
		if b.gotoPatches == nil {
			b.gotoPatches = make(map[string][]*Block)
		}
		if b.cur != nil {
			b.gotoPatches[name] = append(b.gotoPatches[name], b.cur)
		}
		b.cur = nil
	case "fallthrough":
		if b.fallthroughTarget != nil {
			b.jump(b.fallthroughTarget)
			return
		}
		b.cur = nil
	}
}

func (b *cfgBuilder) pushLoop(fr loopFrame) { b.loops = append(b.loops, fr) }
func (b *cfgBuilder) popLoop()              { b.loops = b.loops[:len(b.loops)-1] }

func (b *cfgBuilder) resolveGotos() {
	// Gotos to labels that never appear (broken code) are left without
	// edges; type-checking already reported the error.
	b.gotoPatches = nil
}

// neverReturns recognizes calls that terminate the goroutine: the builtin
// panic, os.Exit, log.Fatal*, runtime.Goexit.
func (b *cfgBuilder) neverReturns(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" || b.info == nil {
			return false
		}
		_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
		return isBuiltin
	case *ast.SelectorExpr:
		if b.info == nil {
			return false
		}
		fn, ok := b.info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
		}
	}
	return false
}
