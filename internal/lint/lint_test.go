package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// Analyzer fixtures: each case is a violation, an allowed/idiomatic
// form, or a justified suppression. The want expectations live inline
// in the fixtures, so a disabled or broken analyzer fails its case.

func TestDirectRand(t *testing.T) {
	runCase(t, DirectRand, "directrand/bad", "repro/internal/sampler")
	runCase(t, DirectRand, "directrand/allowed", "repro/internal/randx")
	runCase(t, DirectRand, "directrand/ignored", "repro/internal/legacy")
}

func TestWallClock(t *testing.T) {
	runCase(t, WallClock, "wallclock/bad", "repro/internal/metrics")
	runCase(t, WallClock, "wallclock/allowed", "repro/cmd/bench")
}

func TestMapOrder(t *testing.T) {
	runCase(t, MapOrder, "maporder/bad", "repro/internal/orders")
	runCase(t, MapOrder, "maporder/sorted", "repro/internal/orders")
	runCase(t, MapOrder, "maporder/ignored", "repro/internal/orders")
}

func TestBareGoroutine(t *testing.T) {
	runCase(t, BareGoroutine, "baregoroutine/bad", "repro/internal/svc")
	runCase(t, BareGoroutine, "baregoroutine/allowed", "repro/internal/parallel")
	runCase(t, BareGoroutine, "baregoroutine/ignored", "repro/internal/svc")
}

func TestMutexByValue(t *testing.T) {
	runCase(t, MutexByValue, "mutexbyvalue/bad", "repro/internal/locks")
	runCase(t, MutexByValue, "mutexbyvalue/allowed", "repro/internal/locks")
}

// TestDirectiveHygiene checks the framework's own diagnostics: a
// reason-less directive is malformed (and suppresses nothing, so the
// goroutine under it is still reported), and a directive that matches
// no finding is flagged as stale.
func TestDirectiveHygiene(t *testing.T) {
	runCase(t, BareGoroutine, "directive/bad", "repro/internal/dirs",
		wantAt{line: 9, re: `malformed lint:ignore directive`},
		wantAt{line: 10, re: `raw go statement outside internal/parallel`},
		wantAt{line: 15, re: `suppresses nothing`},
	)
}

// TestSuppressionRecorded checks that suppressed findings stay visible
// to drivers (for -show-ignored) with their justification attached.
func TestSuppressionRecorded(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "baregoroutine", "ignored"), "repro/internal/svc")
	diags, err := Run([]*Package{pkg}, []*Analyzer{BareGoroutine})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(Unsuppressed(diags)) != 0 {
		t.Fatalf("want no unsuppressed findings, got %v", Unsuppressed(diags))
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 recorded (suppressed) finding, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if !d.Suppressed || !strings.Contains(d.SuppressReason, "accept loop") {
		t.Fatalf("suppression not recorded with reason: %+v", d)
	}
}

// TestLoaderLocalPackage exercises the module-aware loader on a real
// package with only stdlib imports.
func TestLoaderLocalPackage(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.Module != "repro" {
		t.Fatalf("module path = %q, want repro", loader.Module)
	}
	pkgs, err := loader.Load("./internal/randx")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "repro/internal/randx" {
		t.Fatalf("loaded %v, want repro/internal/randx", pkgs)
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := Unsuppressed(diags); len(got) != 0 {
		t.Fatalf("internal/randx should be clean, got %v", got)
	}
}

// TestLoaderResolvesLocalImports loads a package that imports other
// module packages, forcing the recursive local resolver.
func TestLoaderResolvesLocalImports(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./internal/summarize")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs[0].TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName(nosuch) should fail")
	}
}
