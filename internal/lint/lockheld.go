package lint

// lockheld enforces the two lock disciplines the serving path depends
// on: a mutex acquired on some path through a function must be released
// (or deferred-released) on every path that reaches a return, and no
// blocking operation — file or network I/O, sleeps, channel operations,
// any module function that transitively performs one — may run while a
// mutex is held. The second rule is what keeps compileMu and the service
// registry lock cheap: PR 5's RCU design promises that writers never
// stall readers behind I/O, and one `store.Put` slipped under a lock
// breaks that promise for every concurrent query.
//
// The analysis is a forward dataflow over the CFG. The fact is the set
// of held locks (identified by the access path of the mutex expression:
// "s.mu", "e.runMu"; RLock and Lock of an RWMutex are tracked as
// distinct locks), merged by union at confluences — so "held on some
// path" is enough to flag a blocking call, and a lock still held at the
// exit block without a pending deferred unlock is flagged at its
// acquisition. Deferred unlocks keep the lock in the fact (blocking
// calls after `defer mu.Unlock()` still run under the lock) but satisfy
// the release-on-all-paths obligation. Panic paths terminate blocks
// without reaching exit, so a deliberate `panic` under a deferred
// unlock is not a false positive.
//
// Known imprecision, by construction: the fact is path-insensitive, so
// conditionally acquired locks ("if ok { mu.Lock() }") appear held on
// the merged path; goroutine and closure bodies are analyzed where they
// are declared only for deferred unlocks; calls through function values
// are assumed non-blocking. Violations that are the design (netsearch's
// client mutex IS the wire-serialization mechanism) carry
// //lint:ignore directives with the rationale.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "A mutex acquired on some control-flow path must be released on all paths " +
		"reaching a return, and no blocking operation (file/network I/O, sleeps, channel " +
		"sends/receives, selects without default, or module calls that transitively block) " +
		"may execute while any mutex is held.",
	Run: runLockHeld,
}

// lockState is the per-lock fact.
type lockState struct {
	deferred bool      // a defer will release it at return
	pos      token.Pos // earliest acquisition site (for exit diagnostics)
	display  string    // source-ish spelling, "s.mu"
	read     bool      // RLock rather than Lock
}

type lockFact map[string]lockState

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func mergeLocks(a, b lockFact) lockFact {
	out := a.clone()
	for k, bv := range b {
		av, ok := out[k]
		if !ok {
			out[k] = bv
			continue
		}
		// Held on both paths: the obligation survives unless both paths
		// deferred the release; keep the earliest acquisition.
		av.deferred = av.deferred && bv.deferred
		if bv.pos < av.pos {
			av.pos = bv.pos
		}
		out[k] = av
	}
	return out
}

func equalLocks(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.deferred != bv.deferred || av.pos != bv.pos {
			return false
		}
	}
	return true
}

func runLockHeld(pass *Pass) error {
	if pass.Prog == nil {
		return fmt.Errorf("lockheld requires program information")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockHeld(pass, fd)
			// Goroutine and deferred closures get their own independent
			// check: locks they acquire must follow the discipline inside
			// the closure (the enclosing function's facts do not flow in,
			// matching how the runtime actually executes them).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						checkLockHeldBody(pass, lit.Body)
					}
				case *ast.DeferStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						checkLockHeldBody(pass, lit.Body)
					}
				}
				return true
			})
			continue
		}
	}
	return nil
}

func checkLockHeld(pass *Pass, fd *ast.FuncDecl) {
	checkLockHeldBody(pass, fd.Body)
}

func checkLockHeldBody(pass *Pass, body *ast.BlockStmt) {
	g := BuildCFG(body, pass.Info)
	transfer := func(b *Block, in lockFact) lockFact {
		fact := in.clone()
		for _, n := range b.Nodes {
			fact = lockTransferNode(pass, n, fact, false)
		}
		return fact
	}
	ins := Forward(g, lockFact{}, func() lockFact { return lockFact{} },
		transfer, mergeLocks, equalLocks)

	// Reporting sweep: re-apply the transfer with diagnostics enabled.
	for _, b := range g.Blocks {
		in, reachable := ins[b]
		if !reachable {
			continue
		}
		fact := in.clone()
		for _, n := range b.Nodes {
			fact = lockTransferNode(pass, n, fact, true)
		}
	}
	// Exit obligation: anything still held without a deferred release.
	// Run() sorts diagnostics by position, so key order only needs to be
	// deterministic, not meaningful.
	if exitFact, ok := ins[g.Exit]; ok {
		keys := make([]string, 0, len(exitFact))
		for k := range exitFact {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			st := exitFact[k]
			if !st.deferred {
				pass.Reportf(st.pos, "%s is acquired here but not released on every path to return", st.display)
			}
		}
	}
}

// lockTransferNode applies one CFG node's lock events to the fact.
// When report is true, blocking operations under a held lock are
// diagnosed.
func lockTransferNode(pass *Pass, node ast.Node, fact lockFact, report bool) lockFact {
	heldNames := func() string {
		best := lockState{pos: token.Pos(1 << 30)}
		for _, st := range fact {
			if st.pos < best.pos {
				best = st
			}
		}
		return best.display
	}
	blockHere := func(pos token.Pos, what string) {
		if report && len(fact) > 0 {
			pass.Reportf(pos, "%s while holding %s", what, heldNames())
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // runs elsewhere (goroutine) or only when called
		case *ast.DeferStmt:
			// A deferred unlock discharges the release obligation; the
			// deferred call itself runs at return, not here.
			for key, st := range deferredUnlocks(pass, n) {
				if cur, ok := fact[key]; ok {
					cur.deferred = true
					fact[key] = cur
				} else {
					_ = st
				}
			}
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				blockHere(n.Pos(), "select without default")
			}
			return false // clause bodies live in their own blocks
		case *ast.RangeStmt:
			if isChanType(pass, n.X) {
				blockHere(n.Pos(), "range over channel")
			}
			ast.Inspect(n.X, walk)
			return false // body lives in its own blocks
		case *ast.SendStmt:
			blockHere(n.Arrow, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blockHere(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if key, st, op, ok := lockOp(pass, n); ok {
				switch op {
				case "Lock", "RLock":
					if _, already := fact[key]; !already {
						fact[key] = st
					}
				case "Unlock", "RUnlock":
					delete(fact, key)
				}
				return true // still scan arguments (rare, e.g. mu.Lock() has none)
			}
			callee, iface := staticCallee(pass.Info, n)
			if callee != nil {
				blocking := false
				if iface {
					impls := pass.Prog.implementers(callee)
					for _, impl := range impls {
						if pass.Prog.MayBlock(impl.Obj) {
							blocking = true
						}
					}
					if len(impls) == 0 {
						blocking = blockingExternal(callee)
					}
				} else {
					blocking = pass.Prog.MayBlock(callee)
				}
				if blocking {
					blockHere(n.Pos(), fmt.Sprintf("call to %s (may block)", callee.Name()))
				}
			}
		}
		return true
	}
	ast.Inspect(node, walk)
	return fact
}

// lockOp recognizes m.Lock()/Unlock()/RLock()/RUnlock() where the method
// belongs to sync.Mutex or sync.RWMutex (including embedded promotion)
// and returns the canonical lock key plus initial state.
func lockOp(pass *Pass, call *ast.CallExpr) (key string, st lockState, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", lockState{}, "", false
	}
	fn, _ := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockState{}, "", false
	}
	pkg, recv, name := calleeName(fn)
	_ = pkg
	if recv != "Mutex" && recv != "RWMutex" {
		return "", lockState{}, "", false
	}
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", lockState{}, "", false
	}
	path, display, okPath := lockPathOf(pass, sel.X)
	if !okPath {
		return "", lockState{}, "", false
	}
	read := name == "RLock" || name == "RUnlock"
	if read {
		path += "/R"
		display += " (read lock)"
	}
	return path, lockState{pos: call.Pos(), display: display, read: read}, name, true
}

// lockPathOf canonicalizes the mutex expression to an access path rooted
// at a named object: "s.mu" -> "<obj s>.mu". Locks reached through
// indexing or calls are not tracked (no stable identity).
func lockPathOf(pass *Pass, expr ast.Expr) (key, display string, ok bool) {
	var fields []string
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			if obj == nil {
				obj = pass.Info.Defs[e]
			}
			if obj == nil {
				return "", "", false
			}
			key = fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
			display = e.Name
			for i := len(fields) - 1; i >= 0; i-- {
				key += "." + fields[i]
				display += "." + fields[i]
			}
			return key, display, true
		case *ast.SelectorExpr:
			fields = append(fields, e.Sel.Name)
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return "", "", false
		}
	}
}

// deferredUnlocks extracts the lock keys a defer statement will release:
// `defer mu.Unlock()` directly, or unlock calls inside a deferred
// closure.
func deferredUnlocks(pass *Pass, d *ast.DeferStmt) map[string]lockState {
	out := make(map[string]lockState)
	record := func(call *ast.CallExpr) {
		if key, st, op, ok := lockOp(pass, call); ok && (op == "Unlock" || op == "RUnlock") {
			out[key] = st
		}
	}
	record(d.Call)
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
	}
	return out
}

func isChanType(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
