package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestToSARIFSyntheticRule: a diagnostic from the "lint" pseudo-analyzer
// (directive hygiene) is not in All(), so ToSARIF must append a
// synthetic rule for it and point ruleIndex at it.
func TestToSARIFSyntheticRule(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "lint",
		Message:  "lint:ignore directive suppresses nothing; remove it",
		Pos:      token.Position{Filename: "/repo/a.go", Line: 3, Column: 2},
	}}
	doc := ToSARIF(diags, All(), "/repo")
	rules := doc.Runs[0].Results[0].RuleIndex
	got := doc.Runs[0].Tool.Driver.Rules
	if rules != len(All()) {
		t.Errorf("ruleIndex = %d, want %d (appended after registered analyzers)", rules, len(All()))
	}
	if got[rules].ID != "lint" {
		t.Errorf("synthetic rule ID = %q, want lint", got[rules].ID)
	}
	if uri := doc.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "a.go" {
		t.Errorf("uri = %q, want a.go", uri)
	}
}

// TestToSARIFPathOutsideRoot: a filename that does not live under root
// keeps its absolute path (slash form) rather than a ../ escape.
func TestToSARIFPathOutsideRoot(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "maporder",
		Message:  "x",
		Pos:      token.Position{Filename: "/elsewhere/b.go", Line: 1, Column: 1},
	}}
	doc := ToSARIF(diags, All(), "/repo")
	uri := doc.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if strings.HasPrefix(uri, "..") {
		t.Errorf("uri = %q escaped the root with ..", uri)
	}
	if uri != "/elsewhere/b.go" {
		t.Errorf("uri = %q, want the absolute path kept as-is", uri)
	}
}

// TestToSARIFOmitsEmptySuppressions: an unsuppressed finding must not
// serialize a "suppressions" key at all — SARIF consumers treat an
// empty array as "suppression reviewed and rejected".
func TestToSARIFOmitsEmptySuppressions(t *testing.T) {
	diags := []Diagnostic{{
		Analyzer: "maporder",
		Message:  "x",
		Pos:      token.Position{Filename: "a.go", Line: 1, Column: 1},
	}}
	raw, err := json.Marshal(ToSARIF(diags, All(), ""))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "suppressions") {
		t.Errorf("unsuppressed finding serialized a suppressions key: %s", raw)
	}
}
