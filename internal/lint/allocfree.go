package lint

// allocfree proves that functions marked //lint:hotpath — and everything
// they transitively call inside the module — perform no heap allocations.
// PR 5 made the query-serving path (Compiled.ScoreInto/RankInto,
// analysis.AppendTokens, index.SearchScored, the rank-cache probe)
// allocation-free by construction, and the benchmarks assert 0 allocs/op;
// but a benchmark only guards the paths it exercises, and an innocuous
// fmt.Sprintf or un-presized append three calls deep reintroduces GC
// pressure invisibly. This analyzer walks the call graph from every
// marked function and reports each allocation site it can reach.
//
// What counts as an allocation site (the deny side):
//
//   - &T{}, slice and map composite literals, make, new
//   - string<->[]byte / []rune conversions and rune->string conversions
//     (except string(b) used directly as an operand of == or != — the
//     compiler compares without materializing the string)
//   - string concatenation (+ on strings)
//   - append whose destination does not chase back to a parameter,
//     method receiver, or sync.Pool-derived local (appends into
//     caller-provided or pooled storage are amortized by the caller;
//     anything else grows a fresh heap slice)
//   - closures that capture variables and escape (passed as arguments,
//     returned, deferred, stored) — non-escaping closures assigned to
//     locals stay on the stack and are fine, and their bodies are
//     scanned as part of the enclosing function
//   - go statements (a goroutine is an allocation, and hot paths must
//     not spawn)
//   - calls into a deny-list of allocating stdlib helpers (fmt.*,
//     sort.Slice/SliceStable — they box their arguments — strings and
//     strconv formatters, errors.New)
//   - calls through function-typed parameters and through interfaces
//     with no module implementers: they cannot be proven
//
// Other external calls are trusted (math, slices.SortFunc, pool
// Get/Put with pointer-shaped values — pointer-shaped interface boxing
// is allocation-free). Map writes and non-call interface boxing are
// documented blind spots; the deny-list covers the offenders that have
// actually appeared in review.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "Functions marked //lint:hotpath (the zero-allocation query-serving path: " +
		"compiled scoring, tokenization, scored search, the rank-cache probe) must not " +
		"allocate, directly or through any module function they call. Composite literals, " +
		"conversions that copy, un-presized appends, escaping closures, fmt, and " +
		"goroutine spawns are reported with the hot root that reaches them.",
	Run: runAllocFree,
}

func runAllocFree(pass *Pass) error {
	if pass.Prog == nil {
		return fmt.Errorf("allocfree requires program information")
	}
	reach := pass.Prog.hotReachable()
	for _, fi := range pass.Prog.Funcs() {
		if fi.Pkg.Types != pass.Pkg {
			continue
		}
		root, ok := reach[fi]
		if !ok {
			continue
		}
		for _, site := range allocSites(pass.Prog, fi) {
			suffix := ""
			if root != fi.Obj.Name() {
				suffix = fmt.Sprintf(" (in %s, reached from //lint:hotpath %s)", fi.Obj.Name(), root)
			}
			pass.Reportf(site.pos, "hot path must not allocate: %s%s", site.what, suffix)
		}
	}
	return nil
}

// hotReachable returns every module function reachable from a
// //lint:hotpath marker, mapped to the root's name for diagnostics.
// Interface calls follow every module implementer (CHA).
func (p *Program) hotReachable() map[*FuncInfo]string {
	if p.hotReach != nil {
		return p.hotReach
	}
	p.hotReach = make(map[*FuncInfo]string)
	var visit func(fi *FuncInfo, root string)
	visit = func(fi *FuncInfo, root string) {
		if _, seen := p.hotReach[fi]; seen {
			return
		}
		p.hotReach[fi] = root
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, iface := staticCallee(fi.Pkg.Info, call)
			if callee == nil {
				return true
			}
			if iface {
				for _, impl := range p.implementers(callee) {
					visit(impl, root)
				}
				return true
			}
			if target := p.funcs[callee]; target != nil {
				visit(target, root)
			}
			return true
		})
	}
	for _, fi := range p.ordered {
		if fi.Hotpath {
			visit(fi, fi.Obj.Name())
		}
	}
	return p.hotReach
}

type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites scans one function body (including nested closures — their
// code runs on behalf of this function) for allocation sites.
func allocSites(p *Program, fi *FuncInfo) []allocSite {
	info := fi.Pkg.Info
	paramLike := paramLikeObjects(fi)
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	// Composite literals under & are reported once, at the &.
	addressed := make(map[*ast.CompositeLit]bool)
	// Closures in non-escaping positions (assigned to plain locals,
	// immediately invoked) are exempt from the capture rule.
	safeLit := make(map[*ast.FuncLit]bool)
	// string([]byte) conversions compared directly against a string do
	// not allocate: the compiler elides the copy for `string(b) == s`.
	cmpElided := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
					safeLit[lit] = true // bound to a variable; allocates only if that variable escapes, which the call-argument rule catches at the use
				}
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				safeLit[lit] = true // immediately invoked
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if call, ok := ast.Unparen(operand).(*ast.CallExpr); ok {
						if tv, ok := info.Types[call.Fun]; ok && tv.IsType() &&
							isStringType(tv.Type) && len(call.Args) == 1 &&
							byteOrRuneSlice(info.TypeOf(call.Args[0])) {
							cmpElided[call] = true
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					addressed[lit] = true
					add(n.Pos(), "&%s{} composite literal escapes to the heap", typeLabel(info, lit))
				}
			}
		case *ast.CompositeLit:
			if addressed[n] {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal allocates")
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			}
		case *ast.GoStmt:
			add(n.Pos(), "go statement spawns a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.FuncLit:
			if !safeLit[n] && len(capturedVars(info, n)) > 0 {
				add(n.Pos(), "escaping closure captures variables on the heap")
			}
		case *ast.CallExpr:
			classifyCall(p, fi, n, paramLike, cmpElided, add)
		}
		return true
	})
	return sites
}

func classifyCall(p *Program, fi *FuncInfo, call *ast.CallExpr, paramLike map[types.Object]bool, cmpElided map[*ast.CallExpr]bool, add func(token.Pos, string, ...any)) {
	info := fi.Pkg.Info
	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		if conversionCopies(dst, src) && !cmpElided[call] {
			add(call.Pos(), "%s conversion copies its operand", conversionLabel(dst, src))
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !rootedInParamLike(info, call.Args[0], paramLike) {
					add(call.Pos(), "append destination is not caller-provided or pooled storage; growth allocates")
				}
			}
			return
		}
	}
	callee, iface := staticCallee(info, call)
	if callee == nil {
		// A call through a function value. Locally-bound closures were
		// scanned above; function-typed parameters are unknowable.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, isVar := info.Uses[id].(*types.Var); isVar && isParamOf(fi, v) {
				add(call.Pos(), "call through function-typed parameter %s cannot be proven allocation-free", id.Name)
			}
		}
		return
	}
	if iface {
		if len(p.implementers(callee)) == 0 {
			add(call.Pos(), "interface call %s.%s has no module implementers and cannot be proven allocation-free",
				calleeRecvLabel(callee), callee.Name())
		}
		return // module implementers are scanned by hotReachable
	}
	if _, isModule := p.funcs[callee]; isModule {
		return // its own sites are reported in its own package
	}
	pkg, recv, name := calleeName(callee)
	switch pkg {
	case "fmt":
		add(call.Pos(), "fmt.%s allocates (formats into fresh storage and boxes arguments)", name)
	case "sort":
		if name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable" {
			add(call.Pos(), "sort.%s boxes its argument in an interface; use slices.SortFunc", name)
		}
	case "strings":
		switch name {
		case "ToLower", "ToUpper", "Join", "Split", "Fields", "Repeat", "Map", "Replace", "ReplaceAll", "Title", "Clone":
			add(call.Pos(), "strings.%s allocates a new string", name)
		}
	case "strconv":
		switch name {
		case "Itoa", "Quote", "FormatInt", "FormatUint", "FormatFloat", "FormatBool":
			add(call.Pos(), "strconv.%s allocates a new string", name)
		}
	case "errors":
		if name == "New" {
			add(call.Pos(), "errors.New allocates")
		}
	}
	_ = recv
}

// calleeRecvLabel names an interface method's receiver type for
// diagnostics.
func calleeRecvLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := derefType(sig.Recv().Type()).(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return "interface"
}

func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	if t := info.TypeOf(lit); t != nil {
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}
	return "T"
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// conversionCopies reports whether a conversion allocates: string <->
// []byte/[]rune in either direction, and rune -> string.
func conversionCopies(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	dstStr, srcStr := isStringType(dst), isStringType(src)
	if dstStr && byteOrRuneSlice(src) {
		return true
	}
	if srcStr && byteOrRuneSlice(dst) {
		return true
	}
	if dstStr && !srcStr {
		if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return true // rune/int -> string
		}
	}
	return false
}

func byteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func conversionLabel(dst, src types.Type) string {
	return fmt.Sprintf("%s(%s)", types.TypeString(dst, nil), types.TypeString(src, nil))
}

// paramLikeObjects seeds the set of variables whose backing storage the
// caller (or a pool) owns: parameters, receivers, named results, and
// locals derived from sync.Pool Get calls — then propagates through
// simple local assignments (v := p, v = p.field) so appends into views of
// caller storage stay allowed.
func paramLikeObjects(fi *FuncInfo) map[types.Object]bool {
	info := fi.Pkg.Info
	out := make(map[types.Object]bool)
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addField(fi.Decl.Recv)
	addField(fi.Decl.Type.Params)
	addField(fi.Decl.Type.Results)

	// Two passes so chains (scr := pool.Get(...); hits := scr.hits)
	// settle; deeper chains are rare enough not to matter.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				rhs := ast.Unparen(as.Rhs[i])
				if isPoolGet(info, rhs) || rootedInParamLike(info, rhs, out) {
					if obj := info.Defs[id]; obj != nil {
						out[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// isPoolGet matches expr shapes rooted in a (*sync.Pool).Get call:
// pool.Get(), pool.Get().(*T).
func isPoolGet(info *types.Info, expr ast.Expr) bool {
	if ta, ok := expr.(*ast.TypeAssertExpr); ok {
		expr = ta.X
	}
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, _ := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync" && fn.Name() == "Get"
}

// rootedInParamLike chases an expression to its root identifier through
// selectors, indexing, slicing, derefs, and nested appends.
func rootedInParamLike(info *types.Info, expr ast.Expr, paramLike map[types.Object]bool) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && paramLike[obj]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.CallExpr:
			// append(append(dst, ...), ...): chase the inner destination.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
					expr = e.Args[0]
					continue
				}
			}
			return false
		default:
			return false
		}
	}
}

// capturedVars lists variables a closure references that are declared in
// an enclosing function scope (not its own parameters or locals, not
// package level).
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Declared outside the literal but not at package scope.
		if v.Pos() != token.NoPos && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) &&
			v.Parent() != nil && v.Parent().Parent() != types.Universe {
			if !isPackageLevel(v) {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isParamOf reports whether v is one of fi's declared parameters.
func isParamOf(fi *FuncInfo, v *types.Var) bool {
	if fi.Decl.Type.Params == nil {
		return false
	}
	for _, f := range fi.Decl.Type.Params.List {
		for _, name := range f.Names {
			if fi.Pkg.Info.Defs[name] == v {
				return true
			}
		}
	}
	return false
}
