package analysis

import (
	"strings"
	"testing"
	"unicode"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// driven further with `go test -fuzz=FuzzTokenize ./internal/analysis`.

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "hello world", "don't", "80% of 1,000", "ÜBER straße",
		"'''", "a-b-c", strings.Repeat("x", 10000), "日本語 text",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if unicode.IsUpper(r) {
					t.Fatalf("upper-case rune in token %q", tok)
				}
				if unicode.IsSpace(r) {
					t.Fatalf("whitespace in token %q", tok)
				}
			}
			if strings.HasPrefix(tok, "'") || strings.HasSuffix(tok, "'") {
				t.Fatalf("token %q not apostrophe-trimmed", tok)
			}
		}
	})
}

func FuzzPorter(f *testing.F) {
	for _, seed := range []string{
		"", "a", "running", "flies", "generalization", "sky",
		"bbbbbb", "aeiou", "yyyyy", "controlled",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Porter operates on lower-case ascii words; normalize the input
		// the way the tokenizer would.
		var b strings.Builder
		for _, r := range strings.ToLower(s) {
			if r >= 'a' && r <= 'z' {
				b.WriteRune(r)
			}
		}
		w := b.String()
		got := Porter(w)
		if len(got) > len(w) {
			t.Fatalf("Porter(%q) = %q grew the word", w, got)
		}
		if got != Porter(w) {
			t.Fatalf("Porter(%q) nondeterministic", w)
		}
		if len(w) <= 2 && got != w {
			t.Fatalf("Porter(%q) changed a short word to %q", w, got)
		}
	})
}
