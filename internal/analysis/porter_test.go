package analysis

import (
	"strings"
	"testing"
	"testing/quick"
)

// Vectors from Porter's published description and the canonical
// voc/output test pairs distributed with the algorithm.
var porterVectors = []struct{ in, want string }{
	{"caresses", "caress"},
	{"ponies", "poni"},
	{"ties", "ti"},
	{"caress", "caress"},
	{"cats", "cat"},
	{"feed", "feed"},
	{"agreed", "agre"},
	{"plastered", "plaster"},
	{"bled", "bled"},
	{"motoring", "motor"},
	{"sing", "sing"},
	{"conflated", "conflat"},
	{"troubled", "troubl"},
	{"sized", "size"},
	{"hopping", "hop"},
	{"tanned", "tan"},
	{"falling", "fall"},
	{"hissing", "hiss"},
	{"fizzed", "fizz"},
	{"failing", "fail"},
	{"filing", "file"},
	{"happy", "happi"},
	{"sky", "sky"},
	{"relational", "relat"},
	{"conditional", "condit"},
	{"rational", "ration"},
	{"valenci", "valenc"},
	{"hesitanci", "hesit"},
	{"digitizer", "digit"},
	{"conformabli", "conform"},
	{"radicalli", "radic"},
	{"differentli", "differ"},
	{"vileli", "vile"},
	{"analogousli", "analog"},
	{"vietnamization", "vietnam"},
	{"predication", "predic"},
	{"operator", "oper"},
	{"feudalism", "feudal"},
	{"decisiveness", "decis"},
	{"hopefulness", "hope"},
	{"callousness", "callous"},
	{"formaliti", "formal"},
	{"sensitiviti", "sensit"},
	{"sensibiliti", "sensibl"},
	{"triplicate", "triplic"},
	{"formative", "form"},
	{"formalize", "formal"},
	{"electriciti", "electr"},
	{"electrical", "electr"},
	{"hopeful", "hope"},
	{"goodness", "good"},
	{"revival", "reviv"},
	{"allowance", "allow"},
	{"inference", "infer"},
	{"airliner", "airlin"},
	{"gyroscopic", "gyroscop"},
	{"adjustable", "adjust"},
	{"defensible", "defens"},
	{"irritant", "irrit"},
	{"replacement", "replac"},
	{"adjustment", "adjust"},
	{"dependent", "depend"},
	{"adoption", "adopt"},
	{"homologou", "homolog"},
	{"communism", "commun"},
	{"activate", "activ"},
	{"angulariti", "angular"},
	{"homologous", "homolog"},
	{"effective", "effect"},
	{"bowdlerize", "bowdler"},
	{"probate", "probat"},
	{"rate", "rate"},
	{"cease", "ceas"},
	{"controll", "control"},
	{"roll", "roll"},
	// General words.
	{"computer", "comput"},
	{"computers", "comput"},
	{"computation", "comput"},
	{"computing", "comput"},
	{"databases", "databas"},
	{"retrieval", "retriev"},
	{"sampling", "sampl"},
	{"selection", "select"},
	{"stemming", "stem"},
	{"documents", "document"},
	{"queries", "queri"},
	// Short words unchanged.
	{"a", "a"},
	{"is", "is"},
	{"be", "be"},
	{"", ""},
}

func TestPorterVectors(t *testing.T) {
	for _, v := range porterVectors {
		if got := Porter(v.in); got != v.want {
			t.Errorf("Porter(%q) = %q, want %q", v.in, got, v.want)
		}
	}
}

func TestPorterNeverGrows(t *testing.T) {
	// The stem plus restored 'e' can never exceed the input length.
	if err := quick.Check(func(s string) bool {
		w := strings.ToLower(s)
		// restrict to ascii letters to model tokenizer output
		var b strings.Builder
		for _, r := range w {
			if r >= 'a' && r <= 'z' {
				b.WriteRune(r)
			}
		}
		w = b.String()
		return len(Porter(w)) <= len(w)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPorterDeterministic(t *testing.T) {
	words := []string{"generalization", "running", "flies", "agreement", "xyzzies"}
	for _, w := range words {
		if Porter(w) != Porter(w) {
			t.Fatalf("Porter(%q) not deterministic", w)
		}
	}
}

func TestPorterMergesInflections(t *testing.T) {
	// The property the experiments rely on: morphological variants of a
	// stem map to the same index term.
	groups := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"sample", "samples", "sampled"},
		{"index", "indexes", "indexing"},
	}
	for _, g := range groups {
		want := Porter(g[0])
		for _, w := range g[1:] {
			if got := Porter(w); got != want {
				t.Errorf("Porter(%q) = %q, want %q (same stem as %q)", w, got, want, g[0])
			}
		}
	}
}

func BenchmarkPorter(b *testing.B) {
	words := []string{"generalization", "running", "flies", "agreement", "computational", "relational"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Porter(words[i%len(words)])
	}
}
