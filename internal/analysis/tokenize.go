// Package analysis provides the text-processing substrate used by both the
// databases (to build their own indexes) and the selection service (to build
// learned language models from sampled documents): tokenization, case
// folding, a 418-entry stopword list matching the size of InQuery's default
// list, and the Porter (1980) stemming algorithm.
//
// Databases and the selection service are configured with independent
// Analyzer pipelines. That asymmetry is central to the paper: cooperative
// protocols founder on incompatible per-database indexing conventions, while
// query-based sampling lets the selection service normalize sampled text
// however it likes (§2.2, §3).
package analysis

import (
	"sync"
	"unicode"
	"unicode/utf8"
)

// Tokenize splits text into lower-cased tokens. A token is a maximal run of
// letters, digits, or internal apostrophes; all other characters separate
// tokens. The rules mirror the simple word tokenizers of 1990s IR engines:
// "U.S." becomes "u", "s"; "don't" stays one token; "80%" yields "80".
//
// Leading and trailing apostrophes never survive: an apostrophe is only
// committed to a token when a letter or digit follows it within the same
// token, so trimming happens during the scan rather than as a post-pass
// over each built string.
func Tokenize(text string) []string {
	return AppendTokens(nil, text)
}

// tokenBufPool holds the scratch buffers AppendTokens folds mixed-case and
// non-ASCII tokens into, so the query-serving hot path never allocates one
// per call.
var tokenBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 64); return &b },
}

// AppendTokens tokenizes text exactly like Tokenize and appends the tokens
// to dst, returning the extended slice. It is the allocation-free form of
// Tokenize for hot paths: tokens that are already lower-case ASCII are
// sliced directly from text (no copy), tokens that need case folding or
// UTF-8 lowering are built in a pooled scratch buffer, and dst's capacity
// is reused across calls. With a recycled dst and lower-case ASCII input
// the function performs zero heap allocations.
//
// Aliasing: because sliced tokens share text's backing array, retaining a
// token keeps the entire source string reachable. Callers that store
// tokens beyond the current request — map keys in a model or index built
// from large documents — must copy them (strings.Clone) at the retention
// site; transient uses (scoring a query, counting) need not.
//
//lint:hotpath
func AppendTokens(dst []string, text string) []string {
	const noToken = -1
	start := noToken // byte index where the current token began in text
	lastLD := 0      // byte index just past the token's last letter/digit
	pending := 0     // apostrophes seen since the last letter/digit

	// Scratch-buffer ("folded") mode is entered the first time a token
	// needs rewriting (an upper-case ASCII letter or any non-ASCII rune).
	var buf *[]byte
	folded := false

	flush := func() {
		if start != noToken {
			if folded {
				if len(*buf) > 0 {
					//lint:ignore allocfree only tokens that needed case folding or UTF-8 lowering pay this copy; lower-case ASCII tokens slice text directly, which is the zero-alloc contract
					dst = append(dst, string(*buf))
				}
			} else if lastLD > start {
				dst = append(dst, text[start:lastLD])
			}
		}
		start, pending, folded = noToken, 0, false
	}
	// enterFolded switches the in-progress token to the scratch buffer,
	// seeding it with the committed (already lower-case) prefix.
	enterFolded := func(i int) {
		if buf == nil {
			buf = tokenBufPool.Get().(*[]byte)
		}
		*buf = (*buf)[:0]
		if start != noToken && lastLD > start {
			*buf = append(*buf, text[start:lastLD]...)
		}
		if start == noToken {
			start = i
		}
		folded = true
	}
	// commitPending writes the apostrophes that turned out to be interior.
	commitPending := func() {
		for ; pending > 0; pending-- {
			*buf = append(*buf, '\'')
		}
	}

	for i := 0; i < len(text); {
		b := text[i]
		switch {
		case b >= 'a' && b <= 'z' || b >= '0' && b <= '9':
			if folded {
				commitPending()
				*buf = append(*buf, b)
			} else {
				if start == noToken {
					start = i
				}
				// In slice mode pending apostrophes are already part of
				// text[start:i], so extending lastLD past them commits
				// them; zero the counter so a later switch to folded mode
				// does not append them a second time.
				pending = 0
			}
			lastLD = i + 1
			i++
		case b >= 'A' && b <= 'Z':
			if !folded {
				enterFolded(i)
			}
			commitPending()
			*buf = append(*buf, b+'a'-'A')
			lastLD = i + 1
			i++
		case b == '\'':
			if start != noToken {
				pending++
			}
			i++
		case b < utf8.RuneSelf:
			flush()
			i++
		default:
			r, size := utf8.DecodeRuneInString(text[i:])
			if unicode.IsLetter(r) || unicode.IsDigit(r) {
				if !folded {
					enterFolded(i)
				}
				commitPending()
				*buf = utf8.AppendRune(*buf, unicode.ToLower(r))
				lastLD = i + size
			} else {
				flush()
			}
			i += size
		}
	}
	flush()
	if buf != nil {
		tokenBufPool.Put(buf)
	}
	return dst
}

// IsNumber reports whether the token consists entirely of digits (with an
// optional single decimal point or leading sign removed by tokenization,
// only digit runs survive). The sampler's query-term eligibility rule (§4.4)
// rejects numbers.
func IsNumber(tok string) bool {
	if tok == "" {
		return false
	}
	for _, r := range tok {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}
