// Package analysis provides the text-processing substrate used by both the
// databases (to build their own indexes) and the selection service (to build
// learned language models from sampled documents): tokenization, case
// folding, a 418-entry stopword list matching the size of InQuery's default
// list, and the Porter (1980) stemming algorithm.
//
// Databases and the selection service are configured with independent
// Analyzer pipelines. That asymmetry is central to the paper: cooperative
// protocols founder on incompatible per-database indexing conventions, while
// query-based sampling lets the selection service normalize sampled text
// however it likes (§2.2, §3).
package analysis

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lower-cased tokens. A token is a maximal run of
// letters, digits, or internal apostrophes; all other characters separate
// tokens. The rules mirror the simple word tokenizers of 1990s IR engines:
// "U.S." becomes "u", "s"; "don't" stays one token; "80%" yields "80".
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, strings.Trim(b.String(), "'"))
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			if b.Len() > 0 {
				b.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	// Trimming may have produced empty tokens (e.g. a bare apostrophe).
	out := tokens[:0]
	for _, t := range tokens {
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// IsNumber reports whether the token consists entirely of digits (with an
// optional single decimal point or leading sign removed by tokenization,
// only digit runs survive). The sampler's query-term eligibility rule (§4.4)
// rejects numbers.
func IsNumber(tok string) bool {
	if tok == "" {
		return false
	}
	for _, r := range tok {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}
