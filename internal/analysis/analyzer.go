package analysis

// Analyzer is a configurable text-processing pipeline: tokenize, optionally
// drop stopwords, optionally stem. Each database indexes with its own
// Analyzer; the selection service chooses its own, independent one for
// learned language models. See the package comment for why the asymmetry
// matters.
type Analyzer struct {
	// Stoplist, when non-nil, removes its words after tokenization.
	Stoplist *Stoplist
	// Stem applies the Porter stemmer to each surviving token.
	Stem bool
	// MinLength drops tokens shorter than this many bytes (0 keeps all).
	MinLength int
	// DropNumbers removes all-digit tokens.
	DropNumbers bool
}

// Raw is the pipeline the selection service applies to sampled documents:
// no stopping, no stemming — learned language models keep every term, and
// normalization happens only at comparison time, exactly as in §4.1.
func Raw() Analyzer {
	return Analyzer{}
}

// Database is the pipeline the experiment databases use for their own
// indexes: InQuery's default stoplist plus Porter stemming (§4.1).
func Database() Analyzer {
	return Analyzer{Stoplist: InqueryStoplist(), Stem: true}
}

// Tokens runs the pipeline over text and returns the index terms.
func (a Analyzer) Tokens(text string) []string {
	return a.AppendTokens(nil, text)
}

// AppendTokens runs the pipeline over text and appends the surviving index
// terms to dst, returning the extended slice. It is the allocation-free
// form of Tokens for hot paths: recycling dst across calls reuses its
// capacity, and the underlying tokenizer slices lower-case ASCII tokens
// straight out of text. Sliced tokens alias text's backing array (see
// AppendTokens in tokenize.go), so callers that retain tokens past the
// call must strings.Clone them; langmodel.Model already does this when
// interning new vocabulary.
func (a Analyzer) AppendTokens(dst []string, text string) []string {
	base := len(dst)
	dst = AppendTokens(dst, text)
	// Filter in place over the freshly appended window: the write index
	// never passes the read index, so the aliasing is safe.
	out := dst[:base]
	for _, t := range dst[base:] {
		if a.MinLength > 0 && len(t) < a.MinLength {
			continue
		}
		if a.DropNumbers && IsNumber(t) {
			continue
		}
		if a.Stoplist.Contains(t) {
			continue
		}
		if a.Stem {
			t = Porter(t)
		}
		out = append(out, t)
	}
	return out
}

// Term runs the pipeline over a single token (already lower-case) and
// reports whether it survives; the transformed term is returned. Used when
// normalizing a learned vocabulary against a database's conventions.
func (a Analyzer) Term(tok string) (string, bool) {
	if tok == "" {
		return "", false
	}
	if a.MinLength > 0 && len(tok) < a.MinLength {
		return "", false
	}
	if a.DropNumbers && IsNumber(tok) {
		return "", false
	}
	if a.Stoplist.Contains(tok) {
		return "", false
	}
	if a.Stem {
		tok = Porter(tok)
	}
	return tok, true
}
