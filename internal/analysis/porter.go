package analysis

// Porter implements the classic Porter stemming algorithm
// (M.F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980).
// The paper's actual language models are stemmed database indexes (§4.1),
// so learned vocabularies are stemmed before comparison; this is the exact
// published algorithm, not a variant.
//
// The input must already be lower-cased (Tokenize guarantees this). Words of
// length <= 2 are returned unchanged, per the original definition.
func Porter(word string) string {
	if len(word) <= 2 {
		return word
	}
	//lint:ignore allocfree the stemmer's working copy; only database-side analyzers stem (the selection serving pipeline is Raw), and stemming rewrites the token in place thereafter
	w := stemWord{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	//lint:ignore allocfree the stemmed token is new vocabulary by contract; callers retain it past the call, so it cannot alias the scratch
	return string(w.b)
}

type stemWord struct {
	b []byte
}

// isCons reports whether b[i] is a consonant in Porter's sense: a letter
// other than a, e, i, o, u, and other than y preceded by a consonant.
func (w *stemWord) isCons(i int) bool {
	switch w.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !w.isCons(i - 1)
	}
	return true
}

// measure returns m, the number of VC sequences in [C](VC)^m[V] over the
// first k bytes of the word.
func (w *stemWord) measure(k int) int {
	n := 0
	i := 0
	for i < k && w.isCons(i) {
		i++
	}
	for {
		for i < k && !w.isCons(i) {
			i++
		}
		if i >= k {
			return n
		}
		n++
		for i < k && w.isCons(i) {
			i++
		}
		if i >= k {
			return n
		}
	}
}

// hasVowel reports whether the first k bytes contain a vowel.
func (w *stemWord) hasVowel(k int) bool {
	for i := 0; i < k; i++ {
		if !w.isCons(i) {
			return true
		}
	}
	return false
}

// doubleCons reports whether the word (of length k) ends in a double
// consonant (*d).
func (w *stemWord) doubleCons(k int) bool {
	if k < 2 {
		return false
	}
	return w.b[k-1] == w.b[k-2] && w.isCons(k-1)
}

// cvc reports whether the last three letters of the k-prefix are
// consonant-vowel-consonant where the final consonant is not w, x, or y
// (*o). Used to decide when to restore a trailing e.
func (w *stemWord) cvc(k int) bool {
	if k < 3 {
		return false
	}
	if !w.isCons(k-1) || w.isCons(k-2) || !w.isCons(k-3) {
		return false
	}
	switch w.b[k-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func (w *stemWord) hasSuffix(s string) bool {
	n := len(w.b)
	return n >= len(s) && string(w.b[n-len(s):]) == s
}

// stemLen returns the length of the stem if suffix s were removed.
func (w *stemWord) stemLen(s string) int {
	return len(w.b) - len(s)
}

// replace removes suffix s and appends r.
func (w *stemWord) replace(s, r string) {
	w.b = append(w.b[:len(w.b)-len(s)], r...)
}

func (w *stemWord) step1a() {
	switch {
	case w.hasSuffix("sses"):
		w.replace("sses", "ss")
	case w.hasSuffix("ies"):
		w.replace("ies", "i")
	case w.hasSuffix("ss"):
		// unchanged
	case w.hasSuffix("s"):
		w.replace("s", "")
	}
}

func (w *stemWord) step1b() {
	if w.hasSuffix("eed") {
		if w.measure(w.stemLen("eed")) > 0 {
			w.replace("eed", "ee")
		}
		return
	}
	stripped := false
	if w.hasSuffix("ed") && w.hasVowel(w.stemLen("ed")) {
		w.replace("ed", "")
		stripped = true
	} else if w.hasSuffix("ing") && w.hasVowel(w.stemLen("ing")) {
		w.replace("ing", "")
		stripped = true
	}
	if !stripped {
		return
	}
	switch {
	case w.hasSuffix("at"):
		w.replace("at", "ate")
	case w.hasSuffix("bl"):
		w.replace("bl", "ble")
	case w.hasSuffix("iz"):
		w.replace("iz", "ize")
	case w.doubleCons(len(w.b)):
		switch w.b[len(w.b)-1] {
		case 'l', 's', 'z':
			// keep the double consonant
		default:
			w.b = w.b[:len(w.b)-1]
		}
	case w.measure(len(w.b)) == 1 && w.cvc(len(w.b)):
		w.b = append(w.b, 'e')
	}
}

func (w *stemWord) step1c() {
	if w.hasSuffix("y") && w.hasVowel(w.stemLen("y")) {
		w.b[len(w.b)-1] = 'i'
	}
}

// step2 rules, tried in order; condition is m(stem) > 0.
var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"},
	{"tional", "tion"},
	{"enci", "ence"},
	{"anci", "ance"},
	{"izer", "ize"},
	{"abli", "able"},
	{"alli", "al"},
	{"entli", "ent"},
	{"eli", "e"},
	{"ousli", "ous"},
	{"ization", "ize"},
	{"ation", "ate"},
	{"ator", "ate"},
	{"alism", "al"},
	{"iveness", "ive"},
	{"fulness", "ful"},
	{"ousness", "ous"},
	{"aliti", "al"},
	{"iviti", "ive"},
	{"biliti", "ble"},
}

func (w *stemWord) step2() {
	for _, r := range step2Rules {
		if w.hasSuffix(r.suf) {
			if w.measure(w.stemLen(r.suf)) > 0 {
				w.replace(r.suf, r.rep)
			}
			return
		}
	}
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"},
	{"ative", ""},
	{"alize", "al"},
	{"iciti", "ic"},
	{"ical", "ic"},
	{"ful", ""},
	{"ness", ""},
}

func (w *stemWord) step3() {
	for _, r := range step3Rules {
		if w.hasSuffix(r.suf) {
			if w.measure(w.stemLen(r.suf)) > 0 {
				w.replace(r.suf, r.rep)
			}
			return
		}
	}
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (w *stemWord) step4() {
	for _, suf := range step4Suffixes {
		if !w.hasSuffix(suf) {
			continue
		}
		k := w.stemLen(suf)
		if w.measure(k) <= 1 {
			return
		}
		if suf == "ion" && k > 0 && w.b[k-1] != 's' && w.b[k-1] != 't' {
			return
		}
		w.replace(suf, "")
		return
	}
}

func (w *stemWord) step5a() {
	if !w.hasSuffix("e") {
		return
	}
	k := w.stemLen("e")
	m := w.measure(k)
	if m > 1 || (m == 1 && !w.cvc(k)) {
		w.replace("e", "")
	}
}

func (w *stemWord) step5b() {
	k := len(w.b)
	if w.measure(k) > 1 && w.doubleCons(k) && w.b[k-1] == 'l' {
		w.b = w.b[:k-1]
	}
}
