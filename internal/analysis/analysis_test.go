package analysis

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't stop", []string{"don't", "stop"}},
		{"U.S. policy", []string{"u", "s", "policy"}},
		{"80% of 1,000 docs", []string{"80", "of", "1", "000", "docs"}},
		{"", nil},
		{"   \t\n ", nil},
		{"'quoted'", []string{"quoted"}},
		{"foo--bar", []string{"foo", "bar"}},
		{"Wall Street Journal (1988)", []string{"wall", "street", "journal", "1988"}},
		{"e-mail", []string{"e", "mail"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestTokenizeApostrophes pins the apostrophe rules at every position a
// quote can occupy. Trimming is folded into the scan loop (an apostrophe
// is committed only when a letter or digit follows it inside the token),
// so none of these cases depend on a post-pass over the built string.
func TestTokenizeApostrophes(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"don't", []string{"don't"}},
		{"'rock", []string{"rock"}},
		{"rock'", []string{"rock"}},
		{"''rock", []string{"rock"}},
		{"rock''", []string{"rock"}},
		{"''rock''", []string{"rock"}},
		{"rock''roll", []string{"rock''roll"}},
		{"'", nil},
		{"'''", nil},
		{"' ' '", nil},
		{"a'", []string{"a"}},
		{"'a", []string{"a"}},
		{"o''", []string{"o"}},
		{"can't've", []string{"can't've"}},
		{"'tis the season", []string{"tis", "the", "season"}},
		{"DON'T", []string{"don't"}},
		{"O'Brien's", []string{"o'brien's"}},
		{"'80s music", []string{"80s", "music"}},
		{"x'' y''z", []string{"x", "y''z"}},
		{"naïve' 'café", []string{"naïve", "café"}},
		// Apostrophes committed in slice mode must not be re-emitted when
		// a later rune switches the token to folded mode (regression:
		// "don'tX" once tokenized as "don't'x").
		{"don'tX", []string{"don'tx"}},
		{"0'aB", []string{"0'ab"}},
		{"don'té", []string{"don'té"}},
		{"a''bC", []string{"a''bc"}},
		{"don'tX'Y", []string{"don'tx'y"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAppendTokensReusesDst(t *testing.T) {
	dst := make([]string, 0, 16)
	got := AppendTokens(dst, "alpha beta")
	got = AppendTokens(got, "Gamma")
	want := []string{"alpha", "beta", "gamma"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendTokens accumulated %v, want %v", got, want)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("AppendTokens reallocated despite sufficient capacity")
	}
}

// TestAppendTokensZeroAlloc is the zero-allocation contract of the serving
// path: lower-case ASCII text tokenized into a recycled slice must not
// touch the heap — tokens are sliced from the input, not copied.
func TestAppendTokensZeroAlloc(t *testing.T) {
	text := "apple pie with baked apple slices don't stop 80 of 1 000 docs"
	dst := make([]string, 0, 32)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendTokens(dst[:0], text)
	})
	if allocs != 0 {
		t.Errorf("AppendTokens on lower-case ASCII allocated %.1f times per run, want 0", allocs)
	}
	if len(dst) != 13 {
		t.Fatalf("tokenized %d tokens, want 13: %v", len(dst), dst)
	}
}

// TestAppendTokensMatchesTokenize cross-checks the byte-level scanner
// against representative inputs covering the fold-mode transitions (ASCII
// upper case, UTF-8, invalid UTF-8, apostrophes at mode switches).
func TestAppendTokensMatchesTokenize(t *testing.T) {
	inputs := []string{
		"", "plain lower text", "MiXeD CaSe", "ÜBER straße", "日本語 text",
		"a'B c'D", "x\x80y", "Don't O'Brien's 'tis ROCK'' ''ROLL",
		"café Naïve ÉCOLE", "a2B3c4 A'9'z", strings.Repeat("Word' ", 50),
		// Slice-mode-committed apostrophes followed by a fold transition.
		"don'tX 0'aB don'té a''bC don'tX'Y x'yZ'w",
	}
	for _, in := range inputs {
		var ref []string
		// Reference: the original rune-loop semantics, reconstructed.
		var b strings.Builder
		flush := func() {
			if tok := strings.Trim(b.String(), "'"); tok != "" {
				ref = append(ref, tok)
			}
			b.Reset()
		}
		for _, r := range in {
			switch {
			case unicode.IsLetter(r) || unicode.IsDigit(r):
				b.WriteRune(unicode.ToLower(r))
			case r == '\'':
				if b.Len() > 0 {
					b.WriteRune(r)
				}
			default:
				flush()
			}
		}
		flush()
		if got := Tokenize(in); !reflect.DeepEqual(got, ref) {
			t.Errorf("Tokenize(%q) = %v, reference loop gives %v", in, got, ref)
		}
	}
}

func TestAnalyzerAppendTokens(t *testing.T) {
	a := Database()
	dst := []string{"seed"}
	got := a.AppendTokens(dst, "The running dogs")
	want := []string{"seed", "run", "dog"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AppendTokens = %v, want %v", got, want)
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MiXeD CaSe TOKENS") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lower-cased", tok)
		}
	}
}

func TestTokenizeNoEmptyTokens(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsNumber(t *testing.T) {
	cases := map[string]bool{
		"123":   true,
		"0":     true,
		"12a":   false,
		"abc":   false,
		"":      false,
		"1988":  true,
		"don't": false,
	}
	for in, want := range cases {
		if got := IsNumber(in); got != want {
			t.Errorf("IsNumber(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestInqueryStoplistSize(t *testing.T) {
	// The paper's databases used InQuery's default 418-word stoplist (§4.1).
	s := InqueryStoplist()
	if s.Len() != 418 {
		t.Fatalf("stoplist has %d words, want 418", s.Len())
	}
}

func TestStoplistContains(t *testing.T) {
	s := InqueryStoplist()
	for _, w := range []string{"the", "and", "a", "of", "is", "was", "which"} {
		if !s.Contains(w) {
			t.Errorf("expected stopword %q missing", w)
		}
	}
	for _, w := range []string{"apple", "database", "query", "microsoft"} {
		if s.Contains(w) {
			t.Errorf("content word %q wrongly in stoplist", w)
		}
	}
}

func TestStoplistNilSafe(t *testing.T) {
	var s *Stoplist
	if s.Contains("the") {
		t.Error("nil stoplist should contain nothing")
	}
	if s.Len() != 0 {
		t.Error("nil stoplist should have length 0")
	}
}

func TestStoplistWordsRoundTrip(t *testing.T) {
	s := NewStoplist([]string{"x", "y", "z"})
	got := s.Words()
	if len(got) != 3 {
		t.Fatalf("Words() returned %d entries, want 3", len(got))
	}
	for _, w := range got {
		if !s.Contains(w) {
			t.Errorf("Words() returned %q not in list", w)
		}
	}
}

func TestAnalyzerRaw(t *testing.T) {
	a := Raw()
	got := a.Tokens("The running dogs ran quickly")
	want := []string{"the", "running", "dogs", "ran", "quickly"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Raw().Tokens = %v, want %v", got, want)
	}
}

func TestAnalyzerDatabase(t *testing.T) {
	a := Database()
	got := a.Tokens("The running dogs ran quickly")
	// "the" stopped; rest stemmed.
	want := []string{"run", "dog", "ran", "quickli"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Database().Tokens = %v, want %v", got, want)
	}
}

func TestAnalyzerMinLengthAndNumbers(t *testing.T) {
	a := Analyzer{MinLength: 3, DropNumbers: true}
	got := a.Tokens("a an the 42 1988 cat dogs")
	want := []string{"the", "cat", "dogs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestAnalyzerTerm(t *testing.T) {
	a := Database()
	if _, ok := a.Term("the"); ok {
		t.Error("stopword survived Term")
	}
	if got, ok := a.Term("running"); !ok || got != "run" {
		t.Errorf("Term(running) = %q, %v", got, ok)
	}
	if _, ok := a.Term(""); ok {
		t.Error("empty token survived Term")
	}
}

func TestAnalyzerTermMatchesTokens(t *testing.T) {
	// Term must agree with Tokens on single-word input.
	a := Database()
	words := []string{"the", "running", "databases", "microsoft", "42", "a"}
	for _, w := range words {
		viaTokens := a.Tokens(w)
		term, ok := a.Term(w)
		if ok != (len(viaTokens) == 1) {
			t.Errorf("Term(%q) ok=%v but Tokens gave %v", w, ok, viaTokens)
			continue
		}
		if ok && term != viaTokens[0] {
			t.Errorf("Term(%q)=%q, Tokens gave %q", w, term, viaTokens[0])
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("The quick brown fox jumps over the lazy dog. ", 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkAnalyzerDatabase(b *testing.B) {
	a := Database()
	text := strings.Repeat("Information retrieval systems index documents using inverted files. ", 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Tokens(text)
	}
}
