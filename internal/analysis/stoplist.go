package analysis

import (
	"sort"
	"strings"
)

// Stoplist is a set of words excluded from indexing. The zero value is an
// empty (pass-everything) list.
type Stoplist struct {
	words map[string]bool
}

// NewStoplist builds a Stoplist from the given words (already lower-case).
func NewStoplist(words []string) *Stoplist {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return &Stoplist{words: m}
}

// Contains reports whether tok is a stopword.
func (s *Stoplist) Contains(tok string) bool {
	if s == nil || s.words == nil {
		return false
	}
	return s.words[tok]
}

// Len returns the number of distinct stopwords.
func (s *Stoplist) Len() int {
	if s == nil {
		return 0
	}
	return len(s.words)
}

// Words returns the stopwords in sorted order, so anything serialized
// from a stoplist (e.g. persisted index headers) is byte-stable.
func (s *Stoplist) Words() []string {
	out := make([]string, 0, s.Len())
	for w := range s.words {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// InqueryStoplist returns the default stoplist used by every database in the
// experiments. The paper's databases used InQuery's default list of 418
// "very frequent and/or closed-class words" (§4.1); this list reproduces its
// size and coverage (articles, prepositions, pronouns, auxiliaries,
// conjunctions, and very frequent adverbs/quantifiers).
func InqueryStoplist() *Stoplist {
	return NewStoplist(inqueryWords())
}

func inqueryWords() []string {
	return strings.Fields(inqueryStopwords)
}

// 418 words, whitespace-separated. Verified by TestInqueryStoplistSize.
const inqueryStopwords = `
a about above according across after afterwards again against albeit all
almost alone along already also although always am among amongst an and
another any anybody anyhow anyone anything anyway anywhere apart are around
as at av be became because become becomes becoming been before beforehand
behind being below beside besides between beyond both but by can cannot
canst certain cf choose contrariwise cos could cu day do does doesn doing
dost doth double down dual during each either else elsewhere enough et etc
even ever every everybody everyone everything everywhere except excepted
excepting exception exclude excluding exclusive far farther farthest few ff
first for formerly forth forward from front further furthermore furthest
get go had halves hardly has hast hath have he hence henceforth her here
hereabouts hereafter hereby herein hereto hereupon hers herself him himself
hindmost his hither hitherto how however howsoever i ie if in inasmuch inc
include included including indeed indoors inside insomuch instead into
inward inwards is it its itself just kind kg km last latter latterly less
lest let like little ltd many may maybe me meantime meanwhile might
moreover most mostly more mr mrs ms much must my myself namely need neither
never nevertheless next no nobody none nonetheless noone nope nor not
nothing notwithstanding now nowadays nowhere of off often ok on once one
only onto or other others otherwise ought our ours ourselves out outside
over own per perhaps plenty provide quite rather really round said sake
same sang save saw see seeing seem seemed seeming seems seen seldom
selves sent several shalt she should shown sideways since slept slew slung
slunk smote so some somebody somehow someone something sometime sometimes
somewhat somewhere spake spat spoke spoken sprang sprung stave staves still
such supposing than that the thee their them themselves then thence
thenceforth there thereabout thereabouts thereafter thereby therefore
therein thereof thereon thereto thereupon these they this those thou though
thrice through throughout thru thus thy thyself till to together too
toward towards ugh unable under underneath unless unlike until up upon
upward upwards us use used using very via vs want was we week well were
what whatever whatsoever when whence whenever whensoever where whereabouts
whereafter whereas whereat whereby wherefore wherefrom wherein whereinto
whereof whereon wheresoever whereto whereunto whereupon wherever wherewith
whether whew which whichever whichsoever while whilst whither who whoa
whoever whole whom whomever whomsoever whose whosoever why will wilt with
within without worse worst would wow ye yet year yippee you your yours
yourself yourselves
`
