package selection

import (
	"fmt"
	"sort"
)

// Result merging: after selection picks databases and each is searched,
// their per-database result lists must be fused into one ranking. Scores
// from different engines are not directly comparable, so the standard
// CORI-style merge weights each document's score by its database's
// selection score — documents from well-matched databases rise.

// DocScore is one document in a per-database result list.
type DocScore struct {
	// Doc is the database-local document id.
	Doc int
	// Score is the database's own retrieval score for the document.
	Score float64
}

// MergedHit is one row of a fused result list.
type MergedHit struct {
	// DB indexes the database the hit came from (position in the
	// per-database slice handed to MergeWeighted).
	DB int
	// Doc is the database-local document id.
	Doc int
	// Score is the fused score.
	Score float64
}

// MergeWeighted fuses per-database result lists into a single top-k
// ranking, scaling each document's score by its database's selection
// score: fused = docScore · (1 + dbScore) / 2 normalized by the maximum
// database score, the heuristic used by CORI-based federated systems.
// When every selection score is nonpositive (some estimators emit
// negative log-space goodness), the scores are min-max shifted into
// [0, 1] before weighting, so relative database quality still steers the
// merge instead of silently collapsing every weight to 1; all-equal
// scores mean no preference and weight 1 everywhere. Ties break by
// (DB, Doc) for determinism. dbScores must be parallel to results — a
// mismatch is a programmer error and is reported, never swallowed as an
// empty ranking. k <= 0 returns everything.
func MergeWeighted(results [][]DocScore, dbScores []float64, k int) ([]MergedHit, error) {
	return MergeWeightedInto(nil, results, dbScores, k)
}

// MergeWeightedInto is MergeWeighted appending into dst (grown as needed):
// the batch-serving form. A front tier fusing a whole batch of queries
// calls it once per query with the same recycled buffer, so the merge
// allocates per batch instead of per query. The returned slice aliases
// dst's storage; callers that retain results across iterations must copy.
func MergeWeightedInto(dst []MergedHit, results [][]DocScore, dbScores []float64, k int) ([]MergedHit, error) {
	if len(results) != len(dbScores) {
		return nil, fmt.Errorf("selection: MergeWeighted: %d result lists but %d database scores", len(results), len(dbScores))
	}
	merged := dst[:0]
	maxDB, minDB := 0.0, 0.0
	for i, s := range dbScores {
		if i == 0 || s > maxDB {
			maxDB = s
		}
		if i == 0 || s < minDB {
			minDB = s
		}
	}
	for db, list := range results {
		w := 1.0
		switch {
		case maxDB > 0:
			w = (1 + dbScores[db]/maxDB) / 2
		case maxDB > minDB:
			// All scores nonpositive: shift into [0, 1] by range so the
			// best database still gets weight 1 and the worst 1/2.
			w = (1 + (dbScores[db]-minDB)/(maxDB-minDB)) / 2
		}
		for _, h := range list {
			merged = append(merged, MergedHit{DB: db, Doc: h.Doc, Score: h.Score * w})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		if merged[i].DB != merged[j].DB {
			return merged[i].DB < merged[j].DB
		}
		return merged[i].Doc < merged[j].Doc
	})
	if k > 0 && k < len(merged) {
		merged = merged[:k]
	}
	return merged, nil
}

// MergeRoundRobin fuses result lists by interleaving them in rank order —
// the score-free baseline merge. Lists are visited in database order;
// exhausted lists are skipped. k <= 0 returns everything.
func MergeRoundRobin(results [][]DocScore, k int) []MergedHit {
	var merged []MergedHit
	total := 0
	for _, list := range results {
		total += len(list)
	}
	for pos := 0; len(merged) < total; pos++ {
		for db, list := range results {
			if pos < len(list) {
				merged = append(merged, MergedHit{DB: db, Doc: list[pos].Doc, Score: list[pos].Score})
			}
		}
	}
	if k > 0 && k < len(merged) {
		merged = merged[:k]
	}
	return merged
}
