package selection

import "sort"

// Result merging: after selection picks databases and each is searched,
// their per-database result lists must be fused into one ranking. Scores
// from different engines are not directly comparable, so the standard
// CORI-style merge weights each document's score by its database's
// selection score — documents from well-matched databases rise.

// DocScore is one document in a per-database result list.
type DocScore struct {
	// Doc is the database-local document id.
	Doc int
	// Score is the database's own retrieval score for the document.
	Score float64
}

// MergedHit is one row of a fused result list.
type MergedHit struct {
	// DB indexes the database the hit came from (position in the
	// per-database slice handed to MergeWeighted).
	DB int
	// Doc is the database-local document id.
	Doc int
	// Score is the fused score.
	Score float64
}

// MergeWeighted fuses per-database result lists into a single top-k
// ranking, scaling each document's score by its database's selection
// score: fused = docScore · (1 + dbScore) / 2 normalized by the maximum
// database score, the heuristic used by CORI-based federated systems.
// Ties break by (DB, Doc) for determinism. dbScores must be parallel to
// results; k <= 0 returns everything.
func MergeWeighted(results [][]DocScore, dbScores []float64, k int) []MergedHit {
	if len(results) != len(dbScores) {
		return nil
	}
	maxDB := 0.0
	for _, s := range dbScores {
		if s > maxDB {
			maxDB = s
		}
	}
	var merged []MergedHit
	for db, list := range results {
		w := 1.0
		if maxDB > 0 {
			w = (1 + dbScores[db]/maxDB) / 2
		}
		for _, h := range list {
			merged = append(merged, MergedHit{DB: db, Doc: h.Doc, Score: h.Score * w})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Score != merged[j].Score {
			return merged[i].Score > merged[j].Score
		}
		if merged[i].DB != merged[j].DB {
			return merged[i].DB < merged[j].DB
		}
		return merged[i].Doc < merged[j].Doc
	})
	if k > 0 && k < len(merged) {
		merged = merged[:k]
	}
	return merged
}

// MergeRoundRobin fuses result lists by interleaving them in rank order —
// the score-free baseline merge. Lists are visited in database order;
// exhausted lists are skipped. k <= 0 returns everything.
func MergeRoundRobin(results [][]DocScore, k int) []MergedHit {
	var merged []MergedHit
	total := 0
	for _, list := range results {
		total += len(list)
	}
	for pos := 0; len(merged) < total; pos++ {
		for db, list := range results {
			if pos < len(list) {
				merged = append(merged, MergedHit{DB: db, Doc: list[pos].Doc, Score: list[pos].Score})
			}
		}
	}
	if k > 0 && k < len(merged) {
		merged = merged[:k]
	}
	return merged
}
