//go:build !(amd64 || arm64 || 386 || arm || riscv64 || wasm || loong64 || ppc64le || mips64le || mipsle)

package selection

// Big-endian (or unknown-endianness) fallback: no zero-copy views; the
// decoder reads every section into freshly allocated, byte-swapped slices.

func castFloat64(b []byte) []float64 { return nil }

func castInt32(b []byte) []int32 { return nil }
