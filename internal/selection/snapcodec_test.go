package selection

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/langmodel"
	"repro/internal/randx"
)

// goldenModels is the tiny fixed federation behind the golden-bytes test:
// two databases, overlapping vocabulary, deterministic insertion order.
func goldenModels() []*langmodel.Model {
	a := langmodel.New()
	a.SetDocs(10)
	a.AddTerm("apple", langmodel.TermStats{DF: 4, CTF: 9})
	a.AddTerm("stock", langmodel.TermStats{DF: 2, CTF: 3})
	b := langmodel.New()
	b.SetDocs(5)
	b.AddTerm("stock", langmodel.TermStats{DF: 5, CTF: 12})
	b.AddTerm("bond", langmodel.TermStats{DF: 1, CTF: 1})
	return []*langmodel.Model{a, b}
}

func goldenSnapshot() *Snapshot {
	return &Snapshot{
		Epoch:        42,
		Names:        []string{"alpha", "beta"},
		Fingerprints: []uint64{0x0123456789abcdef, 0xfedcba9876543210},
		Compiled:     Compile(goldenModels()),
	}
}

// assertCompiledEqual demands field-for-field, bit-for-bit equality —
// decoding must reproduce the exact arrays that were encoded, including
// term-id assignment (the dictionary section preserves id order).
func assertCompiledEqual(t *testing.T, got, want *Compiled) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("n = %d, want %d", got.n, want.n)
	}
	if math.Float64bits(got.avgCW) != math.Float64bits(want.avgCW) {
		t.Fatalf("avgCW = %v, want %v", got.avgCW, want.avgCW)
	}
	f64 := func(name string, g, w []float64) {
		if len(g) != len(w) {
			t.Fatalf("%s: %d values, want %d", name, len(g), len(w))
		}
		for i := range w {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				t.Fatalf("%s[%d] = %v, want %v", name, i, g[i], w[i])
			}
		}
	}
	i32 := func(name string, g, w []int32) {
		if len(g) != len(w) {
			t.Fatalf("%s: %d values, want %d", name, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, g[i], w[i])
			}
		}
	}
	f64("docs", got.docs, want.docs)
	f64("cw", got.cw, want.cw)
	f64("idf", got.idf, want.idf)
	f64("postDF", got.postDF, want.postDF)
	i32("postStart", got.postStart, want.postStart)
	i32("postDB", got.postDB, want.postDB)
	if len(got.terms) != len(want.terms) {
		t.Fatalf("%d terms, want %d", len(got.terms), len(want.terms))
	}
	for i, term := range want.terms {
		if got.terms[i] != term {
			t.Fatalf("term %d = %q, want %q", i, got.terms[i], term)
		}
		if id, ok := got.ID(term); !ok || id != int32(i) {
			t.Fatalf("ID(%q) = %d,%v, want %d", term, id, ok, i)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := randx.New(0x5eed)
	for trial := 0; trial < 20; trial++ {
		models := randomModels(src, 1+src.Intn(25), 50)
		names := make([]string, len(models))
		fps := make([]uint64, len(models))
		for i := range names {
			names[i] = fmt.Sprintf("db%02d", i)
			fps[i] = src.Uint64()
		}
		in := &Snapshot{Epoch: src.Uint64(), Names: names, Fingerprints: fps, Compiled: Compile(models)}
		if trial%3 == 0 {
			in.Fingerprints = nil // the section is optional
		}
		data, err := EncodeSnapshot(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.Epoch != in.Epoch {
			t.Fatalf("epoch %d, want %d", out.Epoch, in.Epoch)
		}
		if len(out.Names) != len(in.Names) {
			t.Fatalf("%d names, want %d", len(out.Names), len(in.Names))
		}
		for i := range in.Names {
			if out.Names[i] != in.Names[i] {
				t.Fatalf("name %d = %q, want %q", i, out.Names[i], in.Names[i])
			}
		}
		if in.Fingerprints == nil {
			if out.Fingerprints != nil {
				t.Fatal("fingerprints materialized from nothing")
			}
		} else {
			for i := range in.Fingerprints {
				if out.Fingerprints[i] != in.Fingerprints[i] {
					t.Fatalf("fingerprint %d mismatch", i)
				}
			}
		}
		assertCompiledEqual(t, out.Compiled, in.Compiled)

		// Decoded snapshots must score, not just compare: the ids map is
		// rebuilt from the dictionary section.
		query := []string{"t000", "t013", "unknown-term"}
		scores := make([]float64, len(models))
		ids := out.Compiled.AppendIDs(nil, query)
		for _, alg := range compiledAlgorithms() {
			want := alg.Scores(query, models)
			if !out.Compiled.ScoreInto(alg, ids, scores) {
				t.Fatalf("ScoreInto rejected %s", alg.Name())
			}
			for i := range want {
				if math.Float64bits(scores[i]) != math.Float64bits(want[i]) {
					t.Fatalf("trial %d %s: db %d decoded score %v != map score %v",
						trial, alg.Name(), i, scores[i], want[i])
				}
			}
		}
	}
}

// TestSnapshotGoldenBytes pins the on-disk format: any codec change that
// alters the bytes of this fixed fixture is a format change and must bump
// SnapshotVersion (and update this golden) deliberately.
func TestSnapshotGoldenBytes(t *testing.T) {
	data, err := EncodeSnapshot(goldenSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	want, err := hex.DecodeString(strings.Join(strings.Fields(snapshotGoldenHex), ""))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("encoding changed (%d bytes, want %d):\n%s\nupdate snapshotGoldenHex only with a deliberate format bump",
			len(data), len(want), hex.Dump(data))
	}
	// And the golden decodes back to the golden.
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 42 || len(out.Names) != 2 || out.Names[0] != "alpha" {
		t.Fatalf("golden decoded to %+v", out)
	}
	assertCompiledEqual(t, out.Compiled, goldenSnapshot().Compiled)
}

// TestSnapshotDetectsCorruption flips every single byte of the golden
// encoding in turn: no corruption may survive both DecodeSnapshot and the
// (header- and table-only) InspectSnapshot undetected. Inspect tolerates
// payload damage by design, but must then report the section as bad.
func TestSnapshotDetectsCorruption(t *testing.T) {
	orig, err := EncodeSnapshot(goldenSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, len(orig))
	for i := range orig {
		copy(data, orig)
		data[i] ^= 0x40
		if _, err := DecodeSnapshot(data); err == nil {
			// Padding bytes are the only region no checksum covers... and
			// there are none outside section payloads' trailing alignment,
			// which the section CRC does cover. So: everything must fail.
			t.Fatalf("flip at byte %d went undetected by DecodeSnapshot", i)
		}
		info, err := InspectSnapshot(data)
		if err != nil {
			continue // header or table damage: Inspect refuses outright
		}
		ok := true
		for _, s := range info.Sections {
			ok = ok && s.OK
		}
		if ok {
			t.Fatalf("flip at byte %d: InspectSnapshot reports all sections clean", i)
		}
	}
}

func TestSnapshotTruncationAndGarbage(t *testing.T) {
	data, err := EncodeSnapshot(goldenSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 7, 8, snapHeaderSize - 1, snapHeaderSize, len(data) / 2, len(data) - 1} {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded", n)
		}
	}
	if _, err := DecodeSnapshot([]byte("QBSNAP1\x00 but then nonsense follows")); err == nil {
		t.Error("garbage after a valid magic decoded")
	}
	if _, err := DecodeSnapshot(bytes.Repeat([]byte{0}, len(data))); err == nil {
		t.Error("zero bytes decoded")
	}
}

func TestSnapshotEncodeRejectsMismatchedInputs(t *testing.T) {
	c := Compile(goldenModels())
	for _, s := range []*Snapshot{
		{Names: []string{"only-one"}, Compiled: c},
		{Names: []string{"a", "b"}, Fingerprints: []uint64{1}, Compiled: c},
		{Names: []string{"a", "b"}},
	} {
		if _, err := EncodeSnapshot(s); err == nil {
			t.Errorf("EncodeSnapshot accepted %+v", s)
		}
	}
}

// TestSnapshotZeroDBFederation: an empty federation still round-trips (a
// service can persist before anything is registered).
func TestSnapshotZeroDBFederation(t *testing.T) {
	in := &Snapshot{Epoch: 1, Names: nil, Compiled: Compile(nil)}
	data, err := EncodeSnapshot(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Compiled.NumDBs() != 0 || out.Compiled.VocabSize() != 0 {
		t.Fatalf("decoded %d dbs, %d terms", out.Compiled.NumDBs(), out.Compiled.VocabSize())
	}
}

// FuzzDecodeSnapshot hammers the decoder with mutated segments: whatever
// the bytes, it must return an error or a structurally sound snapshot —
// never panic, never an out-of-range posting that would crash a query.
func FuzzDecodeSnapshot(f *testing.F) {
	golden, err := EncodeSnapshot(goldenSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(golden)
	f.Add([]byte{})
	f.Add([]byte("QBSNAP1\x00"))
	empty, _ := EncodeSnapshot(&Snapshot{Compiled: Compile(nil)})
	f.Add(empty)
	for _, i := range []int{9, 13, 17, 25, 57, 65, 73, 90} {
		if i < len(golden) {
			mut := bytes.Clone(golden)
			mut[i] ^= 0xff
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		c := snap.Compiled
		if len(snap.Names) != c.NumDBs() {
			t.Fatalf("%d names for %d dbs", len(snap.Names), c.NumDBs())
		}
		// Exercise the decoded snapshot the way a query would.
		query := []string{"apple", "stock", "no-such-term"}
		if c.VocabSize() > 0 {
			query = append(query, c.TermAt(0))
		}
		scores := make([]float64, c.NumDBs())
		ids := c.AppendIDs(nil, query)
		for _, alg := range compiledAlgorithms() {
			c.ScoreInto(alg, ids, scores)
		}
	})
}

// snapshotGoldenHex is the full QBSNAP1 encoding of goldenSnapshot().
const snapshotGoldenHex = `
5142534e4150310001000000090000002a000000000000000200000003000000
0400000000000000000000000000294000000000000000008d802f5900000000
01000000abcd2e7b200100000000000015000000000000000200000065524987
38010000000000001000000000000000030000009ca466ee4801000000000000
1e0000000000000004000000c8816c9e68010000000000001000000000000000
05000000489f4e4f780100000000000010000000000000000600000081f5c112
880100000000000018000000000000000700000040f867d3a001000000000000
100000000000000008000000754d09d6b0010000000000001000000000000000
0900000099a9c11cc001000000000000200000000000000006a3360c00000000
000000000500000009000000616c70686162657461000000efcdab8967452301
1032547698badcfe00000000050000000a0000000e0000006170706c6573746f
636b626f6e640000000000000000244000000000000014400000000000002840
0000000000002a408d74ea8d7cb0ea3f3bfdd4d6a3ffc93f8d74ea8d7cb0ea3f
0000000001000000030000000400000000000000000000000100000001000000
000000000000104000000000000000400000000000001440000000000000f03f
`
