package selection

import (
	"reflect"
	"testing"
)

func TestMergeWeightedPrefersGoodDatabases(t *testing.T) {
	// Same raw document scores; database 1 has a higher selection score,
	// so its documents must outrank database 0's.
	results := [][]DocScore{
		{{Doc: 10, Score: 0.5}},
		{{Doc: 20, Score: 0.5}},
	}
	merged, err := MergeWeighted(results, []float64{0.4, 0.8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("merged %d hits", len(merged))
	}
	if merged[0].DB != 1 || merged[0].Doc != 20 {
		t.Errorf("best hit = %+v, want db 1 doc 20", merged[0])
	}
	if merged[0].Score <= merged[1].Score {
		t.Error("scores not descending")
	}
}

func TestMergeWeightedTopK(t *testing.T) {
	results := [][]DocScore{
		{{Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.8}},
		{{Doc: 3, Score: 0.7}},
	}
	merged, err := MergeWeighted(results, []float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Errorf("k=2 returned %d", len(merged))
	}
}

func TestMergeWeightedKLargerThanTotal(t *testing.T) {
	results := [][]DocScore{
		{{Doc: 1, Score: 0.9}},
		{{Doc: 3, Score: 0.7}},
	}
	merged, err := MergeWeighted(results, []float64{1, 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Errorf("k=50 over 2 hits returned %d", len(merged))
	}
}

func TestMergeWeightedEmptyInputs(t *testing.T) {
	if merged, err := MergeWeighted(nil, nil, 5); err != nil || len(merged) != 0 {
		t.Errorf("nil inputs: merged=%v err=%v", merged, err)
	}
	// Present-but-empty lists merge to nothing, without error.
	if merged, err := MergeWeighted([][]DocScore{{}, {}}, []float64{1, 2}, 0); err != nil || len(merged) != 0 {
		t.Errorf("empty lists: merged=%v err=%v", merged, err)
	}
}

func TestMergeWeightedDeterministicTies(t *testing.T) {
	results := [][]DocScore{
		{{Doc: 5, Score: 0.5}, {Doc: 3, Score: 0.5}},
		{{Doc: 1, Score: 0.5}},
	}
	a, errA := MergeWeighted(results, []float64{1, 1}, 0)
	b, errB := MergeWeighted(results, []float64{1, 1}, 0)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("tie ordering unstable")
	}
	// Ties: db 0 before db 1; doc 3 before doc 5.
	if a[0].DB != 0 || a[0].Doc != 3 {
		t.Errorf("tie order: %+v", a)
	}
}

func TestMergeWeightedMismatchedInputs(t *testing.T) {
	// A length mismatch is a programmer error: it must be reported, not
	// read as "no hits".
	got, err := MergeWeighted([][]DocScore{{}}, []float64{1, 2}, 0)
	if err == nil {
		t.Fatalf("mismatched inputs returned %v without error", got)
	}
	if got != nil {
		t.Errorf("mismatched inputs returned hits %v alongside the error", got)
	}
}

func TestMergeWeightedZeroDBScores(t *testing.T) {
	// All-zero selection scores degrade gracefully to raw-score order.
	results := [][]DocScore{
		{{Doc: 1, Score: 0.3}},
		{{Doc: 2, Score: 0.9}},
	}
	merged, err := MergeWeighted(results, []float64{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if merged[0].Doc != 2 {
		t.Errorf("zero-score merge order wrong: %+v", merged)
	}
}

func TestMergeWeightedAllNonpositiveDBScores(t *testing.T) {
	// Negative (log-space) selection scores must still prefer the better
	// database: before the min-max shift, maxDB stayed 0 and every weight
	// silently became 1.
	results := [][]DocScore{
		{{Doc: 10, Score: 0.5}},
		{{Doc: 20, Score: 0.5}},
	}
	merged, err := MergeWeighted(results, []float64{-4, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if merged[0].DB != 1 || merged[0].Doc != 20 {
		t.Errorf("best hit = %+v, want db 1 doc 20 (higher selection score)", merged[0])
	}
	if merged[0].Score <= merged[1].Score {
		t.Error("nonpositive-score merge did not separate the databases")
	}
	// The best database keeps its raw document score (weight 1).
	if merged[0].Score != 0.5 {
		t.Errorf("best database weight = %v, want 1 (score 0.5)", merged[0].Score/0.5)
	}
}

func TestMergeRoundRobinKLargerThanTotal(t *testing.T) {
	results := [][]DocScore{{{Doc: 1}}, {{Doc: 2}}}
	if got := MergeRoundRobin(results, 99); len(got) != 2 {
		t.Errorf("k=99 over 2 hits returned %d", len(got))
	}
}

func TestMergeRoundRobinDeterministic(t *testing.T) {
	results := [][]DocScore{
		{{Doc: 5, Score: 0.5}, {Doc: 3, Score: 0.4}},
		{{Doc: 1, Score: 0.9}},
		{},
	}
	a := MergeRoundRobin(results, 0)
	b := MergeRoundRobin(results, 0)
	if !reflect.DeepEqual(a, b) {
		t.Error("round-robin merge order unstable")
	}
	// Empty lists are skipped, not fused as zero hits.
	if len(a) != 3 {
		t.Errorf("merged %d hits, want 3", len(a))
	}
}

func TestMergeRoundRobinInterleaves(t *testing.T) {
	results := [][]DocScore{
		{{Doc: 1}, {Doc: 2}},
		{{Doc: 10}},
		{{Doc: 100}, {Doc: 200}, {Doc: 300}},
	}
	merged := MergeRoundRobin(results, 0)
	wantDocs := []int{1, 10, 100, 2, 200, 300}
	if len(merged) != len(wantDocs) {
		t.Fatalf("merged %d hits, want %d", len(merged), len(wantDocs))
	}
	for i, want := range wantDocs {
		if merged[i].Doc != want {
			t.Errorf("position %d: doc %d, want %d", i, merged[i].Doc, want)
		}
	}
}

func TestMergeRoundRobinTopK(t *testing.T) {
	results := [][]DocScore{{{Doc: 1}, {Doc: 2}}, {{Doc: 3}}}
	if got := MergeRoundRobin(results, 2); len(got) != 2 {
		t.Errorf("k=2 returned %d", len(got))
	}
	if got := MergeRoundRobin(nil, 5); len(got) != 0 {
		t.Errorf("empty input returned %d", len(got))
	}
}
