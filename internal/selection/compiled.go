package selection

// Compiled selection snapshots: the zero-allocation serving form of a set
// of language models. The published selection algorithms (CORI, GlOSS)
// consult only precomputed per-database statistics — df per term, docs,
// collection size — never a live index, so a frozen model set can be
// compiled once into flat arrays and served lock-free forever after:
//
//   - every term across every model is interned into one dictionary, so a
//     query is resolved to integer term ids once and scored by id;
//   - per-term document frequencies live in a CSR postings layout
//     (term id -> sorted (database, df) pairs) instead of per-model hash
//     maps;
//   - the CORI collection statistics that are query-independent (avg_cw,
//     the per-term icf log factor) are computed at compile time.
//
// Scoring never allocates: callers pass in the id, score and ranking
// buffers, which a serving layer recycles through a sync.Pool.
//
// Equivalence contract: for CORI and both GlOSS estimators (at any
// threshold), a Compiled set produces bit-for-bit the float64 scores of
// the map-based Algorithm.Scores over the same models in the same order.
// The arithmetic below deliberately mirrors selection.go expression by
// expression — same operand grouping, same accumulation order (query-term
// major, database minor) — because IEEE 754 addition is not associative
// and "almost the same" would break ranking golden tests on ties.

import (
	"math"
	"slices"

	"repro/internal/langmodel"
)

// Compiled is an immutable, flat compilation of one model set. It is safe
// for unsynchronized concurrent use; compile a new one (and swap pointers)
// when the underlying models change.
type Compiled struct {
	n   int
	ids map[string]int32
	// overlay holds terms interned after the base compile (by Patch); it is
	// checked after ids and kept small relative to it. terms is the full
	// dictionary in id order (base then overlay) — the iteration order the
	// snapshot codec and the patcher need, since map order is randomized.
	overlay map[string]int32
	terms   []string
	docs    []float64 // per-database document counts
	cw      []float64 // per-database collection sizes (total ctf)

	avgCW float64   // mean collection size, the CORI cw normalizer
	idf   []float64 // per-term CORI I component (precomputed icf log factor)

	// CSR postings: term id t's (database, df) pairs sit in
	// postDB/postDF[postStart[t]:postStart[t+1]], databases ascending.
	postStart []int32
	postDB    []int32
	postDF    []float64
}

// Compile flattens models into a Compiled set. Model order is preserved:
// database i in every scoring call is models[i]. Terms are interned in
// first-encounter order (model order, then each model's insertion order),
// which is deterministic for deterministic inputs.
func Compile(models []*langmodel.Model) *Compiled {
	n := len(models)
	c := &Compiled{
		n:    n,
		ids:  make(map[string]int32),
		docs: make([]float64, n),
		cw:   make([]float64, n),
	}
	var (
		perTermDB [][]int32
		perTermDF [][]float64
		postings  int
	)
	for i, m := range models {
		c.docs[i] = float64(m.Docs())
		c.cw[i] = float64(m.TotalCTF())
		db := int32(i)
		m.Range(func(t string, st langmodel.TermStats) bool {
			id, ok := c.ids[t]
			if !ok {
				id = int32(len(perTermDB))
				c.ids[t] = id
				c.terms = append(c.terms, t)
				perTermDB = append(perTermDB, nil)
				perTermDF = append(perTermDF, nil)
			}
			perTermDB[id] = append(perTermDB[id], db)
			perTermDF[id] = append(perTermDF[id], float64(st.DF))
			postings++
			return true
		})
	}

	// avg_cw, mirroring CORI.Scores: sum in model order, divide, floor at 1.
	var avgCW float64
	for _, m := range models {
		avgCW += float64(m.TotalCTF())
	}
	if n > 0 {
		avgCW /= float64(n)
	}
	if avgCW == 0 {
		avgCW = 1
	}
	c.avgCW = avgCW

	// Per-term CORI I component. cf is the number of databases whose model
	// contains the term — the posting count, never zero for interned terms.
	// Query terms outside the dictionary score with idf 0, exactly as the
	// map-based path treats a term no model contains.
	terms := len(perTermDB)
	c.idf = make([]float64, terms)
	for id := 0; id < terms; id++ {
		cf := len(perTermDB[id])
		c.idf[id] = math.Log((float64(n)+0.5)/float64(cf)) / math.Log(float64(n)+1.0)
	}

	// Flatten to CSR.
	c.postStart = make([]int32, terms+1)
	c.postDB = make([]int32, 0, postings)
	c.postDF = make([]float64, 0, postings)
	for id := 0; id < terms; id++ {
		c.postStart[id] = int32(len(c.postDB))
		c.postDB = append(c.postDB, perTermDB[id]...)
		c.postDF = append(c.postDF, perTermDF[id]...)
	}
	c.postStart[terms] = int32(len(c.postDB))
	return c
}

// NumDBs returns the number of compiled databases.
func (c *Compiled) NumDBs() int { return c.n }

// VocabSize returns the number of interned terms across all models. After
// a Patch this may include terms whose last posting was removed; they keep
// an empty posting row, which every scorer treats exactly like a term
// outside the dictionary.
func (c *Compiled) VocabSize() int { return len(c.terms) }

// Postings returns the total number of (term, database) statistics pairs.
func (c *Compiled) Postings() int { return len(c.postDB) }

// TermAt returns the interned term with id i, 0 <= i < VocabSize().
func (c *Compiled) TermAt(i int) string { return c.terms[i] }

// ID resolves a term to its interned id; ok is false for terms no model
// contains.
func (c *Compiled) ID(term string) (int32, bool) {
	if id, ok := c.ids[term]; ok {
		return id, true
	}
	id, ok := c.overlay[term]
	return id, ok
}

// AppendIDs resolves terms to interned ids, appending one id per term to
// dst (unknown terms append -1 — they still count toward CORI's query
// length). The caller recycles dst; no allocations beyond dst growth.
//
//lint:hotpath
func (c *Compiled) AppendIDs(dst []int32, terms []string) []int32 {
	for _, t := range terms {
		if id, ok := c.ids[t]; ok {
			dst = append(dst, id)
		} else if id, ok := c.overlay[t]; ok {
			dst = append(dst, id)
		} else {
			dst = append(dst, -1)
		}
	}
	return dst
}

// ScoreInto scores the query (as interned ids from AppendIDs) into scores,
// which must have length NumDBs; previous contents are overwritten. It
// returns false when alg is not one of the compiled algorithm families
// (CORI, Gloss) — the caller should fall back to Algorithm.Scores.
//
//lint:hotpath
func (c *Compiled) ScoreInto(alg Algorithm, ids []int32, scores []float64) bool {
	switch a := alg.(type) {
	case CORI:
		c.scoreCORI(a, ids, scores)
	case Gloss:
		c.scoreGloss(a, ids, scores)
	default:
		return false
	}
	return true
}

// scoreCORI mirrors CORI.Scores. Per query term the belief added to a
// database without the term is exactly B (the T component is zero), so
// only posting databases evaluate the full belief expression; every other
// database adds the constant. Accumulation stays query-term major with one
// addition per (term, database), so the float64 stream per database is
// identical to the map-based loop's.
func (c *Compiled) scoreCORI(co CORI, ids []int32, scores []float64) {
	b, k0, k1 := co.B, co.K0, co.K1
	if b == 0 {
		b = 0.4
	}
	if k0 == 0 {
		k0 = 50
	}
	if k1 == 0 {
		k1 = 150
	}
	n := c.n
	for i := 0; i < n; i++ {
		scores[i] = 0
	}
	if n == 0 || len(ids) == 0 {
		return
	}
	for _, id := range ids {
		if id < 0 {
			// Unknown term: cf = 0, idf = 0, belief = B everywhere.
			for i := 0; i < n; i++ {
				scores[i] += b
			}
			continue
		}
		idf := c.idf[id]
		pos, end := int(c.postStart[id]), int(c.postStart[id+1])
		next := int32(-1)
		if pos < end {
			next = c.postDB[pos]
		}
		for i := 0; i < n; i++ {
			if int32(i) != next {
				scores[i] += b
				continue
			}
			df := c.postDF[pos]
			tcomp := df / (df + k0 + k1*c.cw[i]/c.avgCW)
			scores[i] += b + (1-b)*tcomp*idf
			pos++
			next = -1
			if pos < end {
				next = c.postDB[pos]
			}
		}
	}
	for i := 0; i < n; i++ {
		scores[i] /= float64(len(ids))
	}
}

// scoreGloss mirrors Gloss.Scores. For the Sum estimator, absent terms
// contribute +0 and are skipped outright (x + 0 is exact); the Ind
// estimator multiplies, so absent terms must still zero the estimate —
// that path walks densely per term, carrying the posting cursor.
func (c *Compiled) scoreGloss(g Gloss, ids []int32, scores []float64) {
	n := c.n
	for i := 0; i < n; i++ {
		scores[i] = 0
	}
	if g.Estimator == GlossInd {
		for i := 0; i < n; i++ {
			if c.docs[i] > 0 {
				scores[i] = c.docs[i]
			}
		}
		for _, id := range ids {
			var pos, end int
			if id >= 0 {
				pos, end = int(c.postStart[id]), int(c.postStart[id+1])
			}
			next := int32(-1)
			if pos < end {
				next = c.postDB[pos]
			}
			for i := 0; i < n; i++ {
				df := 0.0
				if int32(i) == next {
					df = c.postDF[pos]
					pos++
					next = -1
					if pos < end {
						next = c.postDB[pos]
					}
				}
				docs := c.docs[i]
				if docs == 0 {
					continue // map path skips empty databases entirely
				}
				frac := df / docs
				if frac < g.Threshold {
					frac = 0
				}
				scores[i] *= frac
			}
		}
		return
	}
	// Sum estimator: sparse — only posting databases receive a nonzero
	// addend, and adding 0.0 to a non-negative partial sum is exact, so
	// skipping absent (term, database) pairs preserves bit equality.
	for _, id := range ids {
		if id < 0 {
			continue
		}
		for pos, end := int(c.postStart[id]), int(c.postStart[id+1]); pos < end; pos++ {
			i := c.postDB[pos]
			docs := c.docs[i]
			if docs == 0 {
				continue
			}
			frac := c.postDF[pos] / docs
			if frac < g.Threshold {
				frac = 0
			}
			scores[i] += frac
		}
	}
}

// RankInto scores and ranks in one call without allocating: ids, scores
// and out are caller-recycled buffers (scores must have length NumDBs; out
// is appended to from empty). The ranking is identical to Rank over the
// same models: best first, ties by database index. ok reports whether alg
// is a compiled algorithm family.
//
//lint:hotpath
func (c *Compiled) RankInto(alg Algorithm, ids []int32, scores []float64, out []Ranked) ([]Ranked, bool) {
	if !c.ScoreInto(alg, ids, scores) {
		return out, false
	}
	for i := 0; i < c.n; i++ {
		out = append(out, Ranked{DB: i, Score: scores[i]})
	}
	// The comparator is total (ties broken by DB), so the unstable pdqsort
	// yields exactly the order sort.SliceStable yields in Rank.
	slices.SortFunc(out, func(a, b Ranked) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.DB < b.DB:
			return -1
		case a.DB > b.DB:
			return 1
		}
		return 0
	})
	return out, true
}

// Rank is the convenience form of RankInto for callers that do not manage
// buffers (tests, one-shot tools): it resolves the query terms and returns
// a fresh ranking, falling back to the map-based Rank for non-compiled
// algorithms — for which it needs the original models, so it panics if alg
// is not a compiled family. Serving paths use RankInto with pooled buffers.
func (c *Compiled) Rank(alg Algorithm, query []string) []Ranked {
	ids := c.AppendIDs(make([]int32, 0, len(query)), query)
	scores := make([]float64, c.n)
	out, ok := c.RankInto(alg, ids, scores, make([]Ranked, 0, c.n))
	if !ok {
		panic("selection: " + alg.Name() + " is not a compiled algorithm family")
	}
	return out
}
