package selection

// On-disk binary format for compiled selection snapshots.
//
// A Compiled set is flat arrays plus a dictionary, which makes it almost
// its own file format: the layout below writes each array as a raw
// little-endian section at an 8-byte-aligned offset, so a loader on a
// little-endian machine slices the file (or an mmap of it) in place and
// only the dictionary strings are materialized on the heap. Everything is
// checksummed with CRC-32C — the header, the section table, and each
// section payload — so a torn write or flipped bit is detected before a
// snapshot can serve a single query.
//
//	offset  size  field
//	0       8     magic "QBSNAP1\x00"
//	8       4     format version (uint32, = SnapshotVersion)
//	12      4     section count (uint32)
//	16      8     epoch (uint64)
//	24      4     database count (uint32)
//	28      4     term count (uint32)
//	32      8     posting count (uint64)
//	40      8     avg_cw (IEEE 754 float64 bits)
//	48      8     reserved (0)
//	56      4     CRC-32C of bytes [0, 56)
//	60      4     padding (0)
//	64      ...   section table: count × {id u32, crc u32, off u64, len u64},
//	              then table CRC-32C (u32), zero-padded to 8 bytes
//	...           section payloads, each at an 8-byte-aligned offset
//
// Sections (ids are stable; readers skip unknown ids, so the format can
// grow without a version bump as long as existing sections keep meaning):
//
//	1 names      u32 offsets[dbs+1], then concatenated name bytes
//	2 fprints    u64[dbs] model fingerprints (optional)
//	3 dict       u32 offsets[terms+1], then concatenated term bytes
//	4 docs       f64[dbs]
//	5 cw         f64[dbs]
//	6 idf        f64[terms]
//	7 poststart  i32[terms+1]
//	8 postdb     i32[postings]
//	9 postdf     f64[postings]
//
// All integers are little-endian. The encoder emits sections in id order
// with deterministic padding, so the byte stream is a pure function of the
// snapshot — the golden test pins it.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// SnapshotVersion is the current format version.
const SnapshotVersion = 1

var snapshotMagic = [8]byte{'Q', 'B', 'S', 'N', 'A', 'P', '1', 0}

// Section ids.
const (
	secNames     = 1
	secFprints   = 2
	secDict      = 3
	secDocs      = 4
	secCW        = 5
	secIDF       = 6
	secPostStart = 7
	secPostDB    = 8
	secPostDF    = 9
)

// sectionName labels section ids for diagnostics (cmd/lmtool snapshot).
func sectionName(id uint32) string {
	switch id {
	case secNames:
		return "names"
	case secFprints:
		return "fprints"
	case secDict:
		return "dict"
	case secDocs:
		return "docs"
	case secCW:
		return "cw"
	case secIDF:
		return "idf"
	case secPostStart:
		return "poststart"
	case secPostDB:
		return "postdb"
	case secPostDF:
		return "postdf"
	}
	return fmt.Sprintf("unknown(%d)", id)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	snapHeaderSize  = 64
	snapEntrySize   = 24
	maxSnapSections = 64 // decode guard against corrupt counts
)

// Snapshot is a compiled model set plus the serving metadata that must
// survive a restart: the database names behind the compiled indices, the
// epoch the snapshot was stamped with, and (optionally) one fingerprint
// per database so a loader can detect that the persisted models moved on
// without it.
type Snapshot struct {
	Epoch        uint64
	Names        []string
	Fingerprints []uint64 // len == len(Names) when present, else nil
	Compiled     *Compiled
}

// AppendSnapshot encodes s in the versioned binary format, appending to
// dst (which is usually nil) and returning the extended slice.
func AppendSnapshot(dst []byte, s *Snapshot) ([]byte, error) {
	c := s.Compiled
	if c == nil {
		return nil, fmt.Errorf("selection: snapshot has no compiled set")
	}
	if len(s.Names) != c.n {
		return nil, fmt.Errorf("selection: snapshot has %d names for %d databases", len(s.Names), c.n)
	}
	if s.Fingerprints != nil && len(s.Fingerprints) != c.n {
		return nil, fmt.Errorf("selection: snapshot has %d fingerprints for %d databases", len(s.Fingerprints), c.n)
	}

	type section struct {
		id      uint32
		payload []byte
	}
	sections := []section{
		{secNames, encodeStringTable(s.Names)},
	}
	if s.Fingerprints != nil {
		sections = append(sections, section{secFprints, encodeUint64s(s.Fingerprints)})
	}
	sections = append(sections,
		section{secDict, encodeStringTable(c.terms)},
		section{secDocs, encodeFloat64s(c.docs)},
		section{secCW, encodeFloat64s(c.cw)},
		section{secIDF, encodeFloat64s(c.idf)},
		section{secPostStart, encodeInt32s(c.postStart)},
		section{secPostDB, encodeInt32s(c.postDB)},
		section{secPostDF, encodeFloat64s(c.postDF)},
	)

	base := len(dst)
	// Header.
	dst = append(dst, snapshotMagic[:]...)
	dst = appendU32(dst, SnapshotVersion)
	dst = appendU32(dst, uint32(len(sections)))
	dst = appendU64(dst, s.Epoch)
	dst = appendU32(dst, uint32(c.n))
	dst = appendU32(dst, uint32(len(c.terms)))
	dst = appendU64(dst, uint64(len(c.postDB)))
	dst = appendU64(dst, math.Float64bits(c.avgCW))
	dst = appendU64(dst, 0) // reserved
	dst = appendU32(dst, crc32.Checksum(dst[base:base+56], castagnoli))
	dst = appendU32(dst, 0) // pad to 64

	// Section table: offsets are assigned first (8-aligned, in id order),
	// then the table is emitted and checksummed.
	tableLen := len(sections)*snapEntrySize + 4
	off := uint64(snapHeaderSize + align8(tableLen))
	tableStart := len(dst)
	for _, sec := range sections {
		dst = appendU32(dst, sec.id)
		dst = appendU32(dst, crc32.Checksum(sec.payload, castagnoli))
		dst = appendU64(dst, off)
		dst = appendU64(dst, uint64(len(sec.payload)))
		off += uint64(align8(len(sec.payload)))
	}
	dst = appendU32(dst, crc32.Checksum(dst[tableStart:], castagnoli))
	dst = pad8(dst, base)

	for _, sec := range sections {
		dst = append(dst, sec.payload...)
		dst = pad8(dst, base)
	}
	return dst, nil
}

// EncodeSnapshot is AppendSnapshot into a fresh buffer.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	return AppendSnapshot(nil, s)
}

// DecodeSnapshot parses data (a full segment as written by AppendSnapshot)
// after verifying every checksum. On little-endian machines the numeric
// arrays of the returned Compiled alias data — the caller must keep data
// immutable and alive for the snapshot's lifetime (an mmap qualifies);
// Patch copies before editing, so patched descendants do not alias.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	hdr, secs, err := parseSnapshot(data, true)
	if err != nil {
		return nil, err
	}
	find := func(id uint32) []byte {
		for _, s := range secs {
			if s.id == id {
				return data[s.off : s.off+s.length]
			}
		}
		return nil
	}
	need := func(id uint32) ([]byte, error) {
		for _, s := range secs {
			if s.id == id {
				return data[s.off : s.off+s.length], nil
			}
		}
		return nil, fmt.Errorf("selection: snapshot missing section %s", sectionName(id))
	}

	nDBs, nTerms, nPost := int(hdr.dbs), int(hdr.terms), int(hdr.postings)
	c := &Compiled{n: nDBs, avgCW: math.Float64frombits(hdr.avgCW)}
	var snap Snapshot
	snap.Epoch = hdr.epoch
	snap.Compiled = c

	namesPayload, err := need(secNames)
	if err != nil {
		return nil, err
	}
	if snap.Names, err = decodeStringTable(namesPayload, nDBs, "names"); err != nil {
		return nil, err
	}
	if fp := find(secFprints); fp != nil {
		if len(fp) != 8*nDBs {
			return nil, fmt.Errorf("selection: fprints section is %d bytes, want %d", len(fp), 8*nDBs)
		}
		snap.Fingerprints = decodeUint64s(fp)
	}
	dictPayload, err := need(secDict)
	if err != nil {
		return nil, err
	}
	if c.terms, err = decodeStringTable(dictPayload, nTerms, "dict"); err != nil {
		return nil, err
	}
	c.ids = make(map[string]int32, nTerms)
	for i, t := range c.terms {
		c.ids[t] = int32(i)
	}
	if c.docs, err = sectionFloat64s(need, secDocs, nDBs); err != nil {
		return nil, err
	}
	if c.cw, err = sectionFloat64s(need, secCW, nDBs); err != nil {
		return nil, err
	}
	if c.idf, err = sectionFloat64s(need, secIDF, nTerms); err != nil {
		return nil, err
	}
	if c.postStart, err = sectionInt32s(need, secPostStart, nTerms+1); err != nil {
		return nil, err
	}
	if c.postDB, err = sectionInt32s(need, secPostDB, nPost); err != nil {
		return nil, err
	}
	if c.postDF, err = sectionFloat64s(need, secPostDF, nPost); err != nil {
		return nil, err
	}

	// Structural validation: everything a scorer indexes with must be in
	// range, so a snapshot that passes decode can never panic at query
	// time. (Checksums catch accidents; this catches crafted input.)
	if len(c.postStart) == 0 || c.postStart[0] != 0 {
		return nil, fmt.Errorf("selection: poststart does not begin at 0")
	}
	for i := 1; i < len(c.postStart); i++ {
		if c.postStart[i] < c.postStart[i-1] {
			return nil, fmt.Errorf("selection: poststart not monotonic at term %d", i)
		}
	}
	if int(c.postStart[len(c.postStart)-1]) != nPost {
		return nil, fmt.Errorf("selection: poststart ends at %d, want %d postings", c.postStart[len(c.postStart)-1], nPost)
	}
	for i, db := range c.postDB {
		if db < 0 || int(db) >= nDBs {
			return nil, fmt.Errorf("selection: posting %d references database %d of %d", i, db, nDBs)
		}
	}
	return &snap, nil
}

// SectionInfo describes one section of a snapshot segment for diagnostics.
type SectionInfo struct {
	ID     uint32
	Name   string
	Offset uint64
	Length uint64
	CRC    uint32
	OK     bool // payload checksum matched
}

// SnapshotInfo is the parsed header and section table of a segment.
type SnapshotInfo struct {
	Version  uint32
	Epoch    uint64
	DBs      uint32
	Terms    uint32
	Postings uint64
	AvgCW    float64
	Sections []SectionInfo
}

// InspectSnapshot parses the header and section table of a segment and
// verifies each section's checksum without building a Compiled — the
// debugging view behind `lmtool snapshot`. Unlike DecodeSnapshot it
// tolerates payload corruption (reporting it per section) but not a
// corrupt header or table, which it cannot interpret.
func InspectSnapshot(data []byte) (*SnapshotInfo, error) {
	hdr, secs, err := parseSnapshot(data, false)
	if err != nil {
		return nil, err
	}
	info := &SnapshotInfo{
		Version:  hdr.version,
		Epoch:    hdr.epoch,
		DBs:      hdr.dbs,
		Terms:    hdr.terms,
		Postings: hdr.postings,
		AvgCW:    math.Float64frombits(hdr.avgCW),
	}
	for _, s := range secs {
		payload := data[s.off : s.off+s.length]
		info.Sections = append(info.Sections, SectionInfo{
			ID:     s.id,
			Name:   sectionName(s.id),
			Offset: s.off,
			Length: s.length,
			CRC:    s.crc,
			OK:     crc32.Checksum(payload, castagnoli) == s.crc,
		})
	}
	return info, nil
}

type snapHeader struct {
	version  uint32
	epoch    uint64
	dbs      uint32
	terms    uint32
	postings uint64
	avgCW    uint64
}

type snapSection struct {
	id     uint32
	crc    uint32
	off    uint64
	length uint64
}

// parseSnapshot validates the header and section table (always) and each
// section payload checksum (when verifyPayloads is set), returning
// bounds-checked section descriptors.
func parseSnapshot(data []byte, verifyPayloads bool) (snapHeader, []snapSection, error) {
	var hdr snapHeader
	if len(data) < snapHeaderSize {
		return hdr, nil, fmt.Errorf("selection: snapshot too short (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return hdr, nil, fmt.Errorf("selection: bad snapshot magic %q", data[:8])
	}
	if got, want := binary.LittleEndian.Uint32(data[56:]), crc32.Checksum(data[:56], castagnoli); got != want {
		return hdr, nil, fmt.Errorf("selection: snapshot header checksum %08x, want %08x", got, want)
	}
	hdr.version = binary.LittleEndian.Uint32(data[8:])
	if hdr.version != SnapshotVersion {
		return hdr, nil, fmt.Errorf("selection: unsupported snapshot version %d (want %d)", hdr.version, SnapshotVersion)
	}
	count := binary.LittleEndian.Uint32(data[12:])
	hdr.epoch = binary.LittleEndian.Uint64(data[16:])
	hdr.dbs = binary.LittleEndian.Uint32(data[24:])
	hdr.terms = binary.LittleEndian.Uint32(data[28:])
	hdr.postings = binary.LittleEndian.Uint64(data[32:])
	hdr.avgCW = binary.LittleEndian.Uint64(data[40:])
	if count > maxSnapSections {
		return hdr, nil, fmt.Errorf("selection: implausible section count %d", count)
	}
	tableLen := int(count)*snapEntrySize + 4
	if len(data) < snapHeaderSize+tableLen {
		return hdr, nil, fmt.Errorf("selection: snapshot truncated in section table")
	}
	table := data[snapHeaderSize : snapHeaderSize+int(count)*snapEntrySize]
	if got, want := binary.LittleEndian.Uint32(data[snapHeaderSize+int(count)*snapEntrySize:]),
		crc32.Checksum(table, castagnoli); got != want {
		return hdr, nil, fmt.Errorf("selection: section table checksum %08x, want %08x", got, want)
	}
	// Canonical layout: there is exactly one writer, and it lays sections
	// out back to back in table order, 8-aligned, with zero padding. The
	// parser demands that shape, which makes every byte of a segment
	// accounted for — covered by the header CRC, the table CRC, a section
	// CRC, or a must-be-zero pad — so no flipped bit anywhere survives
	// undetected.
	if !allZero(data[60:snapHeaderSize]) {
		return hdr, nil, fmt.Errorf("selection: nonzero header padding")
	}
	expect := uint64(snapHeaderSize + align8(tableLen))
	if !allZero(data[snapHeaderSize+tableLen : expect]) {
		return hdr, nil, fmt.Errorf("selection: nonzero section table padding")
	}
	secs := make([]snapSection, count)
	for i := range secs {
		e := table[i*snapEntrySize:]
		secs[i] = snapSection{
			id:     binary.LittleEndian.Uint32(e),
			crc:    binary.LittleEndian.Uint32(e[4:]),
			off:    binary.LittleEndian.Uint64(e[8:]),
			length: binary.LittleEndian.Uint64(e[16:]),
		}
		s := secs[i]
		if s.off != expect || s.length > uint64(len(data))-s.off {
			return hdr, nil, fmt.Errorf("selection: section %s [%d, +%d) breaks canonical layout (want offset %d in segment of %d)",
				sectionName(s.id), s.off, s.length, expect, len(data))
		}
		expect = s.off + uint64(align8(int(s.length)))
		if expect > uint64(len(data)) {
			return hdr, nil, fmt.Errorf("selection: section %s overruns the segment", sectionName(s.id))
		}
		if !allZero(data[s.off+s.length : expect]) {
			return hdr, nil, fmt.Errorf("selection: nonzero padding after section %s", sectionName(s.id))
		}
		if verifyPayloads {
			payload := data[s.off : s.off+s.length]
			if got := crc32.Checksum(payload, castagnoli); got != s.crc {
				return hdr, nil, fmt.Errorf("selection: section %s checksum %08x, want %08x",
					sectionName(s.id), got, s.crc)
			}
		}
	}
	if expect != uint64(len(data)) {
		return hdr, nil, fmt.Errorf("selection: %d trailing bytes after the last section", uint64(len(data))-expect)
	}
	return hdr, secs, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// --- payload encoders -------------------------------------------------

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func align8(n int) int { return (n + 7) &^ 7 }

// pad8 zero-pads dst so its length relative to base is 8-byte aligned.
func pad8(dst []byte, base int) []byte {
	for (len(dst)-base)%8 != 0 {
		dst = append(dst, 0)
	}
	return dst
}

// encodeStringTable lays out strings as u32 end-offsets followed by the
// concatenated bytes: offsets[0] = 0, offsets[i+1] = end of string i.
func encodeStringTable(strs []string) []byte {
	total := 0
	for _, s := range strs {
		total += len(s)
	}
	out := make([]byte, 0, 4*(len(strs)+1)+total)
	out = appendU32(out, 0)
	end := uint32(0)
	for _, s := range strs {
		end += uint32(len(s))
		out = appendU32(out, end)
	}
	for _, s := range strs {
		out = append(out, s...)
	}
	return out
}

// decodeStringTable parses an encodeStringTable payload with n entries.
// The blob is converted to a string once; entries are substrings of it, so
// the dictionary costs one allocation plus the map.
func decodeStringTable(payload []byte, n int, what string) ([]string, error) {
	offBytes := 4 * (n + 1)
	if n < 0 || len(payload) < offBytes {
		return nil, fmt.Errorf("selection: %s section is %d bytes, too short for %d offsets", what, len(payload), n+1)
	}
	blob := string(payload[offBytes:])
	prev := binary.LittleEndian.Uint32(payload)
	if prev != 0 {
		return nil, fmt.Errorf("selection: %s offsets do not begin at 0", what)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		end := binary.LittleEndian.Uint32(payload[4*(i+1):])
		if end < prev || int(end) > len(blob) {
			return nil, fmt.Errorf("selection: %s offset %d out of order or out of range", what, i+1)
		}
		out[i] = blob[prev:end]
		prev = end
	}
	if int(prev) != len(blob) {
		return nil, fmt.Errorf("selection: %s blob has %d trailing bytes", what, len(blob)-int(prev))
	}
	return out, nil
}

func encodeFloat64s(vals []float64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = appendU64(out, math.Float64bits(v))
	}
	return out
}

func encodeInt32s(vals []int32) []byte {
	out := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		out = appendU32(out, uint32(v))
	}
	return out
}

func encodeUint64s(vals []uint64) []byte {
	out := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		out = appendU64(out, v)
	}
	return out
}

func decodeUint64s(payload []byte) []uint64 {
	out := make([]uint64, len(payload)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return out
}

// sectionFloat64s returns section id as a []float64 of length n — a
// zero-copy view when the platform allows, a decoded heap copy otherwise.
func sectionFloat64s(need func(uint32) ([]byte, error), id uint32, n int) ([]float64, error) {
	payload, err := need(id)
	if err != nil {
		return nil, err
	}
	if len(payload) != 8*n {
		return nil, fmt.Errorf("selection: %s section is %d bytes, want %d", sectionName(id), len(payload), 8*n)
	}
	if v := castFloat64(payload); v != nil {
		return v, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out, nil
}

// sectionInt32s is sectionFloat64s for []int32 sections.
func sectionInt32s(need func(uint32) ([]byte, error), id uint32, n int) ([]int32, error) {
	payload, err := need(id)
	if err != nil {
		return nil, err
	}
	if len(payload) != 4*n {
		return nil, fmt.Errorf("selection: %s section is %d bytes, want %d", sectionName(id), len(payload), 4*n)
	}
	if v := castInt32(payload); v != nil {
		return v, nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out, nil
}
