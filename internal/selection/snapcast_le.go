//go:build amd64 || arm64 || 386 || arm || riscv64 || wasm || loong64 || ppc64le || mips64le || mipsle

package selection

import "unsafe"

// Zero-copy section views for little-endian architectures: a snapshot
// section is exactly the in-memory representation of its array, so a
// loaded (or mmapped) segment can be sliced in place instead of decoded
// element by element. The casts require the platform byte order to match
// the format's (little-endian) and the payload to be 8-byte aligned —
// both checked; a nil return sends the caller to the portable decoder.
//
// Aliasing contract: the returned slices share memory with the input and
// are never written — Compiled is immutable and Patch copies before
// editing — so backing a snapshot with a read-only mmap is safe.

// castFloat64 reinterprets b as a []float64, or nil if unaligned.
func castFloat64(b []byte) []float64 {
	if len(b) == 0 {
		return []float64{}
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// castInt32 reinterprets b as a []int32, or nil if unaligned.
func castInt32(b []byte) []int32 {
	if len(b) == 0 {
		return []int32{}
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
