package selection

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/langmodel"
	"repro/internal/randx"
)

// compiledAlgorithms are the algorithm family instances whose compiled
// scorers must be bit-identical to the map-based path: defaults, custom
// CORI constants, and both GlOSS estimators at both interesting thresholds.
func compiledAlgorithms() []Algorithm {
	return []Algorithm{
		CORI{},
		CORI{B: 0.6, K0: 100, K1: 200},
		Gloss{Estimator: GlossSum},
		Gloss{Estimator: GlossSum, Threshold: 0.2},
		Gloss{Estimator: GlossInd},
		Gloss{Estimator: GlossInd, Threshold: 0.2},
	}
}

// randomModels builds nDBs models over a shared pool of poolSize terms so
// that terms overlap across databases (cf > 1), with some empty databases
// and some zero-doc databases mixed in to exercise the edge paths.
func randomModels(src *randx.Source, nDBs, poolSize int) []*langmodel.Model {
	pool := make([]string, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("t%03d", i)
	}
	models := make([]*langmodel.Model, nDBs)
	for i := range models {
		m := langmodel.New()
		switch src.Intn(10) {
		case 0: // empty model, zero docs
			models[i] = m
			continue
		case 1: // terms but zero docs (sampled-but-unsized pathology)
		default:
			m.SetDocs(1 + src.Intn(500))
		}
		terms := 1 + src.Intn(poolSize)
		for _, j := range src.Perm(poolSize)[:terms] {
			df := 1 + src.Intn(200)
			m.AddTerm(pool[j], langmodel.TermStats{DF: df, CTF: int64(df + src.Intn(400))})
		}
		models[i] = m
	}
	return models
}

// TestCompiledMatchesMapScorers is the equivalence property test: across
// random model sets and random queries (including unknown and repeated
// terms), the compiled scorer must reproduce the map-based Scores float64
// for float64 — not approximately, bit for bit — and Rank order must match
// exactly for every compiled algorithm family.
func TestCompiledMatchesMapScorers(t *testing.T) {
	src := randx.New(0x5e1ec7)
	for trial := 0; trial < 40; trial++ {
		nDBs := 1 + src.Intn(30)
		models := randomModels(src, nDBs, 40)
		c := Compile(models)

		qlen := 1 + src.Intn(8)
		query := make([]string, qlen)
		for i := range query {
			if src.Intn(6) == 0 {
				query[i] = "unknown-term" // not in any model
			} else {
				query[i] = fmt.Sprintf("t%03d", src.Intn(40))
			}
		}

		ids := c.AppendIDs(nil, query)
		scores := make([]float64, nDBs)
		for _, alg := range compiledAlgorithms() {
			want := alg.Scores(query, models)
			if !c.ScoreInto(alg, ids, scores) {
				t.Fatalf("ScoreInto rejected %s", alg.Name())
			}
			for i := range want {
				if math.Float64bits(scores[i]) != math.Float64bits(want[i]) {
					t.Fatalf("trial %d %s: db %d compiled score %v != map score %v (query %v)",
						trial, alg.Name(), i, scores[i], want[i], query)
				}
			}
			if gotR, wantR := c.Rank(alg, query), Rank(alg, query, models); !reflect.DeepEqual(gotR, wantR) {
				t.Fatalf("trial %d %s: rankings diverge\ncompiled: %+v\nmap:      %+v",
					trial, alg.Name(), gotR, wantR)
			}
		}
	}
}

func TestCompiledEmptyInputs(t *testing.T) {
	empty := Compile(nil)
	if empty.NumDBs() != 0 || empty.VocabSize() != 0 {
		t.Fatalf("empty compile: %d dbs, %d terms", empty.NumDBs(), empty.VocabSize())
	}
	if got := empty.Rank(CORI{}, []string{"x"}); len(got) != 0 {
		t.Fatalf("empty compile ranked %v", got)
	}

	models := threeDBs()
	c := Compile(models)
	for _, alg := range compiledAlgorithms() {
		got := c.Rank(alg, nil)
		want := Rank(alg, nil, models)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s on empty query: %+v vs %+v", alg.Name(), got, want)
		}
	}
}

func TestCompiledRejectsUnknownAlgorithm(t *testing.T) {
	c := Compile(threeDBs())
	if ok := c.ScoreInto(fakeAlg{}, nil, make([]float64, 3)); ok {
		t.Fatal("ScoreInto accepted a non-compiled algorithm")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Rank did not panic on a non-compiled algorithm")
		}
	}()
	c.Rank(fakeAlg{}, []string{"x"})
}

type fakeAlg struct{}

func (fakeAlg) Name() string { return "fake" }
func (fakeAlg) Scores(query []string, models []*langmodel.Model) []float64 {
	return make([]float64, len(models))
}

func TestCompiledAppendIDs(t *testing.T) {
	c := Compile(threeDBs())
	ids := c.AppendIDs(nil, []string{"apple", "no-such-term", "stock"})
	if len(ids) != 3 || ids[1] != -1 || ids[0] < 0 || ids[2] < 0 {
		t.Fatalf("AppendIDs = %v", ids)
	}
	if id, ok := c.ID("apple"); !ok || id != ids[0] {
		t.Fatalf("ID(apple) = %d, %v; AppendIDs gave %d", id, ok, ids[0])
	}
	if _, ok := c.ID("no-such-term"); ok {
		t.Fatal("ID resolved a term no model contains")
	}
}

// TestCompiledRankIntoZeroAlloc pins the serving-path contract: with
// recycled buffers, resolving + scoring + ranking performs zero heap
// allocations for every compiled algorithm family.
func TestCompiledRankIntoZeroAlloc(t *testing.T) {
	src := randx.New(0xa110c)
	models := randomModels(src, 50, 60)
	c := Compile(models)
	query := []string{"t001", "t007", "t013", "unknown-term"}

	ids := make([]int32, 0, 8)
	scores := make([]float64, c.NumDBs())
	out := make([]Ranked, 0, c.NumDBs())
	for _, alg := range compiledAlgorithms() {
		allocs := testing.AllocsPerRun(100, func() {
			ids = c.AppendIDs(ids[:0], query)
			out, _ = c.RankInto(alg, ids, scores, out[:0])
		})
		if allocs != 0 {
			t.Errorf("%s: RankInto allocated %.1f times per run, want 0", alg.Name(), allocs)
		}
	}
}

func TestGlossThresholdNames(t *testing.T) {
	if got := (Gloss{Estimator: GlossSum, Threshold: 0.2}).Name(); got != "gloss-sum@0.2" {
		t.Errorf("Name = %q", got)
	}
	if got := (Gloss{Estimator: GlossInd, Threshold: 0.05}).Name(); got != "gloss-ind@0.05" {
		t.Errorf("Name = %q", got)
	}
}

func TestGlossThresholdZeroesWeakEvidence(t *testing.T) {
	// db 0: df 80/100 = 0.8 survives l = 0.2; db 1: df 5/100 = 0.05 zeroed.
	models := threeDBs()
	scores := Gloss{Estimator: GlossSum, Threshold: 0.2}.Scores([]string{"apple"}, models)
	if scores[0] != 0.8 {
		t.Errorf("db 0 score = %v, want 0.8", scores[0])
	}
	if scores[1] != 0 {
		t.Errorf("db 1 score = %v, want 0 (below threshold)", scores[1])
	}
}
