package selection

// Incremental recompilation of Compiled snapshots.
//
// A resample changes one database's model while the other N-1 stay put,
// yet Compile re-interns every term of every model — O(federation) map
// hashing for an O(1/N) change. Patch instead edits only the structures
// the changed databases touch: their posting-row entries, the CORI idf of
// exactly the terms whose cf changed, and the per-database columns. The
// untouched majority of the CSR arrays moves by bulk copy (no hashing, no
// string work), so a single-database patch of a large federation costs a
// few memcpys plus work proportional to the changed models' vocabularies.
//
// Equivalence contract (the same one Compile carries against the map
// scorers): a patched snapshot produces bit-for-bit the float64 scores of
// a from-scratch Compile over the new model list, for every compiled
// algorithm family. Three facts make that hold:
//
//   - posting rows are keyed by database index in ascending order, and a
//     patch preserves both the membership and the order a fresh compile
//     would produce, so each scorer sees the identical addend stream;
//   - avg_cw is re-summed over the per-database cw column in index order —
//     the exact accumulation sequence Compile performs — rather than
//     patched arithmetically (IEEE addition is not associative);
//   - idf is recomputed from scratch (math.Log is exactly rounded for
//     these operands' purposes — more to the point, it is deterministic)
//     for precisely the terms whose posting count changed.
//
// Two benign representational differences remain, neither observable
// through scoring: terms first introduced by a patch get ids at the end of
// the dictionary instead of first-encounter positions, and terms whose
// last posting disappeared stay interned with an empty row (which every
// scorer already treats exactly like an out-of-dictionary term — CORI adds
// the default belief everywhere, GlOSS-Sum adds nothing, GlOSS-Ind zeroes
// through df=0).

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/langmodel"
)

// ModelPatch replaces the model compiled at index DB. Old must be the
// model the receiver snapshot was compiled (or previously patched) from at
// that index — it tells the patcher which posting rows to visit without
// scanning the whole CSR — and New is its replacement.
type ModelPatch struct {
	DB  int
	Old *langmodel.Model
	New *langmodel.Model
}

// rowChange is one (term, database) posting edit.
type rowChange struct {
	db int32
	df float64 // meaningful unless remove
	// remove deletes the db's posting; otherwise the posting is set
	// (replacing an existing entry or inserting a new one — add tells
	// which, so row size deltas are known without searching the row).
	add    bool
	remove bool
}

// overlayFlattenRatio: when the overlay dictionary outgrows this fraction
// of the base, lookups pay two map probes too often and the next patch
// flattens both into one map.
const overlayFlattenRatio = 8

// Patch returns a new Compiled reflecting the model replacements in
// patches, leaving the receiver untouched (snapshots are immutable and may
// still be serving queries). The database count and order must be
// unchanged — registrations and unregistrations renumber databases and
// need a full Compile. Patches must target distinct indices.
func (c *Compiled) Patch(patches []ModelPatch) (*Compiled, error) {
	seen := make(map[int]bool, len(patches))
	for _, p := range patches {
		if p.DB < 0 || p.DB >= c.n {
			return nil, fmt.Errorf("selection: patch index %d out of range [0,%d)", p.DB, c.n)
		}
		if p.Old == nil || p.New == nil {
			return nil, fmt.Errorf("selection: patch for db %d has a nil model", p.DB)
		}
		if seen[p.DB] {
			return nil, fmt.Errorf("selection: duplicate patch for db %d", p.DB)
		}
		seen[p.DB] = true
	}

	next := &Compiled{
		n:    c.n,
		ids:  c.ids,
		docs: slices.Clone(c.docs),
		cw:   slices.Clone(c.cw),
	}

	// Per-database columns, then avg_cw re-summed in index order — the
	// same float64 addition sequence Compile performs over the new models.
	for _, p := range patches {
		next.docs[p.DB] = float64(p.New.Docs())
		next.cw[p.DB] = float64(p.New.TotalCTF())
	}
	var avgCW float64
	for _, w := range next.cw {
		avgCW += w
	}
	if next.n > 0 {
		avgCW /= float64(next.n)
	}
	if avgCW == 0 {
		avgCW = 1
	}
	next.avgCW = avgCW

	// Collect posting edits per term id, plus brand-new terms in
	// deterministic first-encounter order (patch order, then each New
	// model's insertion order — mirroring Compile's interning discipline).
	edits := make(map[int32][]rowChange)
	var (
		newTerms   []string
		newRows    [][]rowChange
		newTermIDs map[string]int32
	)
	oldVocab := len(c.terms)
	var patchErr error
	for _, p := range patches {
		db := int32(p.DB)
		p.New.Range(func(t string, st langmodel.TermStats) bool {
			if id, ok := c.ID(t); ok {
				_, inOld := p.Old.Stats(t)
				edits[id] = append(edits[id], rowChange{db: db, df: float64(st.DF), add: !inOld})
				return true
			}
			if newTermIDs == nil {
				newTermIDs = make(map[string]int32)
			}
			id, ok := newTermIDs[t]
			if !ok {
				id = int32(len(newTerms))
				newTermIDs[t] = id
				newTerms = append(newTerms, t)
				newRows = append(newRows, nil)
			}
			newRows[id] = append(newRows[id], rowChange{db: db, df: float64(st.DF), add: true})
			return true
		})
		p.Old.Range(func(t string, _ langmodel.TermStats) bool {
			if p.New.Contains(t) {
				return true // replaced above
			}
			id, ok := c.ID(t)
			if !ok {
				// Old was not the compiled model; the CSR has no posting to
				// remove and the patch would silently diverge.
				patchErr = fmt.Errorf("selection: patch old model for db %d has term %q unknown to the snapshot", p.DB, t)
				return false
			}
			edits[id] = append(edits[id], rowChange{db: db, remove: true})
			return true
		})
		if patchErr != nil {
			return nil, patchErr
		}
	}

	// Dictionary: the base map is shared; new terms go to a copied overlay
	// so sibling snapshots never observe the mutation. An overgrown overlay
	// is flattened into a single map.
	next.terms = c.terms
	next.overlay = c.overlay
	if len(newTerms) > 0 {
		next.terms = make([]string, oldVocab, oldVocab+len(newTerms))
		copy(next.terms, c.terms)
		next.terms = append(next.terms, newTerms...)
		next.overlay = make(map[string]int32, len(c.overlay)+len(newTerms))
		for t, id := range c.overlay {
			next.overlay[t] = id
		}
		for i, t := range newTerms {
			next.overlay[t] = int32(oldVocab + i)
		}
		if len(next.overlay)*overlayFlattenRatio > len(next.ids) {
			flat := make(map[string]int32, len(next.terms))
			for i, t := range next.terms {
				flat[t] = int32(i)
			}
			next.ids, next.overlay = flat, nil
		}
	}
	vocab := len(next.terms)

	// Sized CSR rebuild: row size deltas are known from the edit kinds, so
	// the new arrays are allocated exactly and filled in one pass — bulk
	// copies across unaffected runs, a sorted merge at each edited row.
	affected := make([]int32, 0, len(edits))
	delta := 0
	for id, chs := range edits {
		affected = append(affected, id)
		for _, ch := range chs {
			switch {
			case ch.remove:
				delta--
			case ch.add:
				delta++
			}
		}
	}
	slices.Sort(affected)
	newPost := len(c.postDB) + delta
	for _, row := range newRows {
		newPost += len(row)
	}
	next.postStart = make([]int32, vocab+1)
	next.postDB = make([]int32, 0, newPost)
	next.postDF = make([]float64, 0, newPost)
	next.idf = make([]float64, vocab)
	copy(next.idf, c.idf)

	prev := int32(0)
	for _, id := range affected {
		// Unaffected run [prev, id): rows shift wholesale.
		next.copyRows(c, prev, id)
		chs := edits[id]
		slices.SortFunc(chs, func(a, b rowChange) int { return int(a.db) - int(b.db) })
		next.postStart[id] = int32(len(next.postDB))
		next.mergeRow(c, id, chs)
		next.idf[id] = next.termIDF(id)
		prev = id + 1
	}
	next.copyRows(c, prev, int32(oldVocab))
	for i, row := range newRows {
		id := int32(oldVocab + i)
		slices.SortFunc(row, func(a, b rowChange) int { return int(a.db) - int(b.db) })
		next.postStart[id] = int32(len(next.postDB))
		for _, ch := range row {
			next.postDB = append(next.postDB, ch.db)
			next.postDF = append(next.postDF, ch.df)
		}
		next.idf[id] = next.termIDF(id)
	}
	next.postStart[vocab] = int32(len(next.postDB))
	return next, nil
}

// copyRows bulk-copies term rows [from, to) of src (with their postStart
// offsets shifted to the current write position) onto the end of c's CSR.
func (c *Compiled) copyRows(src *Compiled, from, to int32) {
	if from >= to {
		return
	}
	shift := int32(len(c.postDB)) - src.postStart[from]
	for id := from; id < to; id++ {
		c.postStart[id] = src.postStart[id] + shift
	}
	lo, hi := src.postStart[from], src.postStart[to]
	c.postDB = append(c.postDB, src.postDB[lo:hi]...)
	c.postDF = append(c.postDF, src.postDF[lo:hi]...)
}

// mergeRow writes term id's patched posting row: the old sorted row merged
// with the (sorted, distinct-db) changes, ascending by database.
func (c *Compiled) mergeRow(src *Compiled, id int32, chs []rowChange) {
	pos, end := src.postStart[id], src.postStart[id+1]
	j := 0
	for pos < end || j < len(chs) {
		switch {
		case j == len(chs) || (pos < end && src.postDB[pos] < chs[j].db):
			c.postDB = append(c.postDB, src.postDB[pos])
			c.postDF = append(c.postDF, src.postDF[pos])
			pos++
		case pos == end || chs[j].db < src.postDB[pos]:
			// A db the old row does not contain: insert a set, and let a
			// remove fall through as a no-op (only reachable if Old was not
			// the compiled model; the merge stays structurally sound).
			if !chs[j].remove {
				c.postDB = append(c.postDB, chs[j].db)
				c.postDF = append(c.postDF, chs[j].df)
			}
			j++
		default: // same db: replace or remove
			if !chs[j].remove {
				c.postDB = append(c.postDB, chs[j].db)
				c.postDF = append(c.postDF, chs[j].df)
			}
			pos++
			j++
		}
	}
}

// termIDF computes the CORI I component for term id's posting count,
// exactly as Compile does. It is called right after the row is written, so
// the row occupies the CSR tail (postStart[id+1] is not yet set) and cf is
// the distance from the row's start to the tail. A term with no postings
// left gets 0, which scores identically to a term outside the dictionary.
func (c *Compiled) termIDF(id int32) float64 {
	cf := len(c.postDB) - int(c.postStart[id])
	if cf == 0 {
		return 0
	}
	return math.Log((float64(c.n)+0.5)/float64(cf)) / math.Log(float64(c.n)+1.0)
}
