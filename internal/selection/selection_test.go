package selection

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/langmodel"
)

// db builds a model with the given doc count and term stats.
func db(docs int, stats map[string][2]int64) *langmodel.Model {
	m := langmodel.New()
	for t, s := range stats {
		m.AddTerm(t, langmodel.TermStats{DF: int(s[0]), CTF: s[1]})
	}
	m.SetDocs(docs)
	return m
}

func threeDBs() []*langmodel.Model {
	return []*langmodel.Model{
		// db 0: all about apples.
		db(100, map[string][2]int64{"apple": {80, 300}, "pie": {30, 50}, "stock": {2, 2}}),
		// db 1: finance.
		db(100, map[string][2]int64{"stock": {90, 400}, "bond": {70, 200}, "apple": {5, 6}}),
		// db 2: no relevant terms.
		db(100, map[string][2]int64{"soccer": {50, 100}, "goal": {40, 80}}),
	}
}

func TestCORIRanksTopicallyRelevantDBFirst(t *testing.T) {
	models := threeDBs()
	ranked := Rank(CORI{}, []string{"apple", "pie"}, models)
	if ranked[0].DB != 0 {
		t.Errorf("apple query ranked db %d first: %+v", ranked[0].DB, ranked)
	}
	ranked = Rank(CORI{}, []string{"stock", "bond"}, models)
	if ranked[0].DB != 1 {
		t.Errorf("finance query ranked db %d first: %+v", ranked[0].DB, ranked)
	}
}

func TestCORIScoresBounded(t *testing.T) {
	// CORI beliefs are averages of values in [B, 1).
	models := threeDBs()
	scores := (CORI{}).Scores([]string{"apple", "stock", "unseen"}, models)
	for i, s := range scores {
		if s < 0.39999 || s > 1 {
			t.Errorf("score[%d] = %f outside [0.4, 1]", i, s)
		}
	}
}

func TestCORIEmptyInputs(t *testing.T) {
	if got := (CORI{}).Scores(nil, threeDBs()); len(got) != 3 {
		t.Errorf("nil query scores = %v", got)
	}
	if got := (CORI{}).Scores([]string{"x"}, nil); len(got) != 0 {
		t.Errorf("no dbs scores = %v", got)
	}
}

func TestCORIUnknownTermNeutral(t *testing.T) {
	// A term no database contains adds the same minimum belief everywhere.
	models := threeDBs()
	base := (CORI{}).Scores([]string{"apple"}, models)
	with := (CORI{}).Scores([]string{"apple", "qqqqqq"}, models)
	// Order must be preserved.
	for i := range models {
		for j := range models {
			if (base[i] > base[j]) != (with[i] > with[j]) && base[i] != base[j] {
				t.Errorf("unknown term changed order between %d and %d", i, j)
			}
		}
	}
}

func TestGlossSumRanksByCoverage(t *testing.T) {
	models := threeDBs()
	ranked := Rank(Gloss{Estimator: GlossSum}, []string{"apple"}, models)
	if ranked[0].DB != 0 {
		t.Errorf("gloss-sum ranked db %d first", ranked[0].DB)
	}
	if ranked[2].DB != 2 {
		t.Errorf("gloss-sum ranked db %d last", ranked[2].DB)
	}
}

func TestGlossIndConjunctive(t *testing.T) {
	// Ind multiplies: a db missing one query term estimates zero matches.
	models := threeDBs()
	scores := Gloss{Estimator: GlossInd}.Scores([]string{"apple", "bond"}, models)
	if scores[0] != 0 { // db 0 lacks "bond"
		t.Errorf("db 0 score = %f, want 0", scores[0])
	}
	if scores[1] <= 0 { // db 1 has both
		t.Errorf("db 1 score = %f, want > 0", scores[1])
	}
	// db(100): df(apple)=5, df(bond)=70 -> 100·(5/100)·(70/100) = 3.5.
	if math.Abs(scores[1]-3.5) > 1e-9 {
		t.Errorf("db 1 score = %f, want 3.5", scores[1])
	}
}

func TestGlossEmptyDatabase(t *testing.T) {
	empty := langmodel.New()
	scores := Gloss{Estimator: GlossSum}.Scores([]string{"x"}, []*langmodel.Model{empty})
	if scores[0] != 0 {
		t.Errorf("empty db score = %f", scores[0])
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	a := db(10, map[string][2]int64{"x": {5, 5}})
	models := []*langmodel.Model{a.Clone(), a.Clone(), a.Clone()}
	for trial := 0; trial < 5; trial++ {
		ranked := Rank(Gloss{Estimator: GlossSum}, []string{"x"}, models)
		for i, r := range ranked {
			if r.DB != i {
				t.Fatalf("tie break unstable: %+v", ranked)
			}
		}
	}
}

func TestAlgorithmNames(t *testing.T) {
	if (CORI{}).Name() != "cori" {
		t.Error("CORI name")
	}
	if (Gloss{Estimator: GlossSum}).Name() != "gloss-sum" || (Gloss{Estimator: GlossInd}).Name() != "gloss-ind" {
		t.Error("Gloss names")
	}
}

func TestRankAgreementIdentical(t *testing.T) {
	r := []Ranked{{DB: 0, Score: 3}, {DB: 1, Score: 2}, {DB: 2, Score: 1}}
	if got := RankAgreement(r, r); math.Abs(got-1) > 1e-12 {
		t.Errorf("self agreement = %f", got)
	}
}

func TestRankAgreementReversed(t *testing.T) {
	a := []Ranked{{DB: 0, Score: 3}, {DB: 1, Score: 2}, {DB: 2, Score: 1}}
	b := []Ranked{{DB: 0, Score: 1}, {DB: 1, Score: 2}, {DB: 2, Score: 3}}
	if got := RankAgreement(a, b); math.Abs(got+1) > 1e-12 {
		t.Errorf("reversed agreement = %f, want -1", got)
	}
}

func TestRankAgreementDegenerate(t *testing.T) {
	if got := RankAgreement(nil, nil); got != 1 {
		t.Errorf("empty agreement = %f", got)
	}
	one := []Ranked{{DB: 0, Score: 1}}
	if got := RankAgreement(one, one); got != 1 {
		t.Errorf("single-db agreement = %f", got)
	}
	// All tied in one ranking -> undefined -> 0.
	tied := []Ranked{{DB: 0, Score: 1}, {DB: 1, Score: 1}}
	real := []Ranked{{DB: 0, Score: 2}, {DB: 1, Score: 1}}
	if got := RankAgreement(tied, real); got != 0 {
		t.Errorf("tied agreement = %f, want 0", got)
	}
}

func TestRankAgreementBounds(t *testing.T) {
	if err := quick.Check(func(scores [4]uint8) bool {
		a := make([]Ranked, 4)
		b := make([]Ranked, 4)
		for i := 0; i < 4; i++ {
			a[i] = Ranked{DB: i, Score: float64(i)}
			b[i] = Ranked{DB: i, Score: float64(scores[i])}
		}
		g := RankAgreement(a, b)
		return g >= -1-1e-9 && g <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []Ranked{{DB: 0}, {DB: 1}, {DB: 2}, {DB: 3}}
	b := []Ranked{{DB: 1}, {DB: 0}, {DB: 9}, {DB: 3}}
	if got := TopKOverlap(a, b, 2); got != 1 {
		t.Errorf("top-2 overlap = %f, want 1", got)
	}
	if got := TopKOverlap(a, b, 3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("top-3 overlap = %f, want 2/3", got)
	}
	if got := TopKOverlap(a, b, 0); got != 1 {
		t.Errorf("k=0 overlap = %f, want 1", got)
	}
	if got := TopKOverlap(a, b, 100); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("k>len overlap = %f, want 0.75", got)
	}
}

func TestCORICustomConstants(t *testing.T) {
	models := threeDBs()
	// Higher minimum belief compresses the range but keeps the ordering.
	def := Rank(CORI{}, []string{"apple"}, models)
	custom := Rank(CORI{B: 0.6, K0: 100, K1: 200}, []string{"apple"}, models)
	if def[0].DB != custom[0].DB {
		t.Errorf("constant change flipped winner: %+v vs %+v", def, custom)
	}
}
