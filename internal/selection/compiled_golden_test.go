package selection

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/langmodel"
)

// cacmModels partitions the CACM corpus round-robin into nDBs databases and
// builds one full (actual, not sampled) language model per database, the
// way the experiment harness models a multi-database testbed.
func cacmModels(t testing.TB, nDBs int) []*langmodel.Model {
	t.Helper()
	docs := corpus.CACM().MustGenerate()
	an := analysis.Raw()
	models := make([]*langmodel.Model, nDBs)
	for i := range models {
		models[i] = langmodel.New()
	}
	var toks []string
	for i, d := range docs {
		toks = an.AppendTokens(toks[:0], d.Text)
		models[i%nDBs].AddDocument(toks)
	}
	return models
}

// TestCompiledGoldenCACM is the acceptance golden test: on the CACM corpus
// split across 20 databases, the compiled scorer must produce rankings
// byte-identical to the map-based selection.Rank — same database order,
// same float64 score bits — for CORI, GlOSS(0.0), and GlOSS(0.2), across
// queries mixing frequent terms, rare terms, and out-of-vocabulary terms.
func TestCompiledGoldenCACM(t *testing.T) {
	models := cacmModels(t, 20)
	c := Compile(models)

	queries := [][]string{
		{"the"},
		{"the", "of", "and"},
		{"algorithm"},                         // topical content term (if present)
		{"the", "zzz-not-in-any-vocabulary"},  // known + unknown mix
		{"zzz-not-in-any-vocabulary"},         // fully out of vocabulary
		{"the", "the", "of"},                  // repeated terms
		{"computing0001", "computing0002"},    // synthetic topic terms
	}
	// Add a handful of real vocabulary terms drawn from the first model so
	// the golden queries always include in-vocabulary content terms no
	// matter how the synthetic vocabulary spells them.
	picked := 0
	models[0].Range(func(term string, _ langmodel.TermStats) bool {
		queries = append(queries, []string{term})
		picked++
		return picked < 5
	})

	algorithms := []Algorithm{
		CORI{},
		Gloss{Estimator: GlossSum},                 // GlOSS(0.0)
		Gloss{Estimator: GlossSum, Threshold: 0.2}, // GlOSS(0.2)
		Gloss{Estimator: GlossInd},
		Gloss{Estimator: GlossInd, Threshold: 0.2},
	}
	for _, alg := range algorithms {
		for qi, q := range queries {
			want := Rank(alg, q, models)
			got := c.Rank(alg, q)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d ranked, want %d", alg.Name(), qi, len(got), len(want))
			}
			for i := range want {
				if got[i].DB != want[i].DB ||
					math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
					t.Fatalf("%s query %d (%v) diverges at rank %d:\ncompiled: %+v\nmap:      %+v",
						alg.Name(), qi, q, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCompiledGoldenCACMStats sanity-checks the compiled layout against the
// models it was built from.
func TestCompiledGoldenCACMStats(t *testing.T) {
	models := cacmModels(t, 20)
	c := Compile(models)
	if c.NumDBs() != 20 {
		t.Fatalf("NumDBs = %d", c.NumDBs())
	}
	union := make(map[string]bool)
	postings := 0
	for _, m := range models {
		m.Range(func(term string, _ langmodel.TermStats) bool {
			union[term] = true
			postings++
			return true
		})
	}
	if c.VocabSize() != len(union) {
		t.Fatalf("VocabSize = %d, union = %d", c.VocabSize(), len(union))
	}
	if c.Postings() != postings {
		t.Fatalf("Postings = %d, want %d", c.Postings(), postings)
	}
	// Spot-check df round-trips through the CSR layout for a few terms.
	checked := 0
	models[3].Range(func(term string, st langmodel.TermStats) bool {
		id, ok := c.ID(term)
		if !ok {
			t.Fatalf("term %q missing from dictionary", term)
		}
		found := false
		for pos := c.postStart[id]; pos < c.postStart[id+1]; pos++ {
			if c.postDB[pos] == 3 {
				if c.postDF[pos] != float64(st.DF) {
					t.Fatalf("term %q db 3: df %v, want %d", term, c.postDF[pos], st.DF)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("term %q has no posting for db 3", term)
		}
		checked++
		return checked < 50
	})
}
