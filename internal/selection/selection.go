// Package selection implements content-based database selection — the
// downstream consumer that language models exist to serve (§1, §2). Given a
// query and one language model per database, a selection algorithm ranks
// the databases by how likely each is to satisfy the query.
//
// Two published algorithm families are provided:
//
//   - CORI (Callan, Lu & Croft, SIGIR 1995) — the INQUERY-style belief
//     ranking the paper's group used. Term belief is 0.4 + 0.6·T·I with a
//     df-based T component and an icf-based I component.
//   - GlOSS (Gravano, García-Molina & Tomasic) — the estimator-based
//     ranking the paper cites as its lead example. Both the Sum goodness
//     estimator and the independence (Ind) matching-document estimator are
//     implemented.
//
// The extension experiment (EXPERIMENTS.md, ext-agree) replaces actual
// models with sampled models and measures how much the database ranking
// moves — the open question the paper poses in §5.
package selection

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/langmodel"
)

// Algorithm ranks databases for a query given their language models.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Scores returns one goodness score per database, parallel to models.
	// Query terms must already be normalized to the models' conventions.
	Scores(query []string, models []*langmodel.Model) []float64
}

// Ranked is one database in a selection ranking.
type Ranked struct {
	// DB is the caller's index for the database (position in the models
	// slice handed to Rank).
	DB int
	// Score is the algorithm's goodness value.
	Score float64
}

// Rank scores every database and returns them best first, ties broken by
// database index for determinism.
func Rank(alg Algorithm, query []string, models []*langmodel.Model) []Ranked {
	scores := alg.Scores(query, models)
	out := make([]Ranked, len(scores))
	for i, s := range scores {
		out[i] = Ranked{DB: i, Score: s}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DB < out[j].DB
	})
	return out
}

// CORI implements the CORI database-ranking function. The zero value uses
// the published constants.
type CORI struct {
	// B is the minimum belief (default 0.4).
	B float64
	// K0 and K1 parameterize the T component denominator
	// df + K0 + K1·cw/avg_cw (defaults 50 and 150).
	K0, K1 float64
}

// Name implements Algorithm.
func (CORI) Name() string { return "cori" }

// Scores implements Algorithm. For each database i and query term t:
//
//	T = df_{t,i} / (df_{t,i} + K0 + K1·cw_i/avg_cw)
//	I = log((|DB| + 0.5) / cf_t) / log(|DB| + 1.0)
//	belief_i(t) = B + (1-B)·T·I
//
// and the database score is the mean belief over query terms. cw_i is the
// total term count of database i; cf_t is the number of databases whose
// model contains t.
func (c CORI) Scores(query []string, models []*langmodel.Model) []float64 {
	b, k0, k1 := c.B, c.K0, c.K1
	if b == 0 {
		b = 0.4
	}
	if k0 == 0 {
		k0 = 50
	}
	if k1 == 0 {
		k1 = 150
	}
	n := len(models)
	scores := make([]float64, n)
	if n == 0 || len(query) == 0 {
		return scores
	}

	var avgCW float64
	for _, m := range models {
		avgCW += float64(m.TotalCTF())
	}
	avgCW /= float64(n)
	if avgCW == 0 {
		avgCW = 1
	}

	for _, t := range query {
		cf := 0
		for _, m := range models {
			if m.Contains(t) {
				cf++
			}
		}
		var idf float64
		if cf > 0 {
			idf = math.Log((float64(n)+0.5)/float64(cf)) / math.Log(float64(n)+1.0)
		}
		for i, m := range models {
			df := float64(m.DF(t))
			tcomp := df / (df + k0 + k1*float64(m.TotalCTF())/avgCW)
			scores[i] += b + (1-b)*tcomp*idf
		}
	}
	for i := range scores {
		scores[i] /= float64(len(query))
	}
	return scores
}

// GlossEstimator selects the GlOSS scoring estimator.
type GlossEstimator int

const (
	// GlossSum scores a database by the sum over query terms of
	// df_t/docs_i — the expected number of term matches per document,
	// Gravano et al.'s vector-space goodness under the high-correlation
	// scenario.
	GlossSum GlossEstimator = iota
	// GlossInd estimates the number of documents matching *all* query
	// terms under term independence: docs_i · Π_t df_{t,i}/docs_i.
	GlossInd
)

// Gloss implements the GlOSS family.
type Gloss struct {
	// Estimator picks Sum (default) or Ind.
	Estimator GlossEstimator
	// Threshold is GlOSS's l parameter (Gravano et al.'s Sum(l)/Max(l)
	// goodness family): a query term whose df fraction df_t/docs falls
	// below l is treated as zero evidence. The zero value keeps every
	// term, matching the l = 0 estimators above.
	Threshold float64
}

// Name implements Algorithm. The threshold is part of the name — distinct
// thresholds are distinct rankings, and the name keys result caches.
func (g Gloss) Name() string {
	base := "gloss-sum"
	if g.Estimator == GlossInd {
		base = "gloss-ind"
	}
	if g.Threshold > 0 {
		return base + "@" + strconv.FormatFloat(g.Threshold, 'g', -1, 64)
	}
	return base
}

// Scores implements Algorithm.
func (g Gloss) Scores(query []string, models []*langmodel.Model) []float64 {
	scores := make([]float64, len(models))
	for i, m := range models {
		docs := float64(m.Docs())
		if docs == 0 {
			continue
		}
		switch g.Estimator {
		case GlossInd:
			est := docs
			for _, t := range query {
				frac := float64(m.DF(t)) / docs
				if frac < g.Threshold {
					frac = 0
				}
				est *= frac
			}
			scores[i] = est
		default:
			var sum float64
			for _, t := range query {
				frac := float64(m.DF(t)) / docs
				if frac < g.Threshold {
					frac = 0
				}
				sum += frac
			}
			scores[i] = sum
		}
	}
	return scores
}
