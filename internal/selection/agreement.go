package selection

import (
	"math"
	"sort"
)

// RankAgreement compares two database rankings (e.g. one computed from
// actual language models and one from learned models) and returns the
// Spearman correlation of database positions. 1 means the sampled models
// reproduce the selection decision exactly; this quantifies the open
// question of §5 — "how correlated the rankings need to be for accurate
// database selection".
func RankAgreement(a, b []Ranked) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 1
	}
	n := len(a)
	posA := rankPositions(a)
	posB := rankPositions(b)
	var mx, my float64
	for db := range posA {
		mx += posA[db]
		my += posB[db]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for db, ra := range posA {
		dx, dy := ra-mx, posB[db]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k — the share of the databases
// a user would actually search that is preserved when learned models
// replace actual ones. Selection systems search "the top n databases"
// (§2), so this is the operationally meaningful agreement measure.
func TopKOverlap(a, b []Ranked, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > len(a) {
		k = len(a)
	}
	if k > len(b) {
		k = len(b)
	}
	if k == 0 {
		return 1
	}
	inA := make(map[int]bool, k)
	for _, r := range a[:k] {
		inA[r.DB] = true
	}
	overlap := 0
	for _, r := range b[:k] {
		if inA[r.DB] {
			overlap++
		}
	}
	return float64(overlap) / float64(k)
}

// rankPositions maps database id to its fractional position in the
// ranking, averaging positions across score ties.
func rankPositions(r []Ranked) map[int]float64 {
	sorted := append([]Ranked(nil), r...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	pos := make(map[int]float64, len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			j++
		}
		avg := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			pos[sorted[k].DB] = avg
		}
		i = j
	}
	return pos
}
