package selection

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/langmodel"
	"repro/internal/randx"
)

// assertPatchEquivalent checks the Patch contract against a from-scratch
// compile of the same model list: identical database columns, identical
// per-term idf and posting rows (matched by term string — ids may differ,
// since patch-introduced terms take appended ids), and nothing extra in
// the patched snapshot beyond score-inert ghost terms (empty row, idf 0).
func assertPatchEquivalent(t *testing.T, trial int, got, want *Compiled) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("trial %d: %d dbs, want %d", trial, got.n, want.n)
	}
	if math.Float64bits(got.avgCW) != math.Float64bits(want.avgCW) {
		t.Fatalf("trial %d: avgCW %v != %v", trial, got.avgCW, want.avgCW)
	}
	for i := range want.docs {
		if math.Float64bits(got.docs[i]) != math.Float64bits(want.docs[i]) ||
			math.Float64bits(got.cw[i]) != math.Float64bits(want.cw[i]) {
			t.Fatalf("trial %d: db %d columns (%v,%v) != (%v,%v)",
				trial, i, got.docs[i], got.cw[i], want.docs[i], want.cw[i])
		}
	}
	row := func(c *Compiled, id int32) ([]int32, []float64) {
		return c.postDB[c.postStart[id]:c.postStart[id+1]], c.postDF[c.postStart[id]:c.postStart[id+1]]
	}
	for wid := int32(0); wid < int32(len(want.terms)); wid++ {
		term := want.terms[wid]
		gid, ok := got.ID(term)
		if !ok {
			t.Fatalf("trial %d: patched snapshot lost term %q", trial, term)
		}
		if math.Float64bits(got.idf[gid]) != math.Float64bits(want.idf[wid]) {
			t.Fatalf("trial %d: term %q idf %v != %v", trial, term, got.idf[gid], want.idf[wid])
		}
		gdb, gdf := row(got, gid)
		wdb, wdf := row(want, wid)
		if len(gdb) != len(wdb) {
			t.Fatalf("trial %d: term %q row has %d postings, want %d", trial, term, len(gdb), len(wdb))
		}
		for i := range wdb {
			if gdb[i] != wdb[i] || math.Float64bits(gdf[i]) != math.Float64bits(wdf[i]) {
				t.Fatalf("trial %d: term %q posting %d (%d,%v) != (%d,%v)",
					trial, term, i, gdb[i], gdf[i], wdb[i], wdf[i])
			}
		}
	}
	for gid := int32(0); gid < int32(len(got.terms)); gid++ {
		if _, ok := want.ID(got.terms[gid]); ok {
			continue
		}
		// A term every model dropped: it may linger interned, but only as a
		// ghost that scores exactly like an out-of-dictionary term.
		if got.postStart[gid] != got.postStart[gid+1] || got.idf[gid] != 0 {
			t.Fatalf("trial %d: vanished term %q kept postings or idf", trial, got.terms[gid])
		}
	}
}

// TestPatchMatchesFullCompile is the incremental-recompilation property
// test: across random model sets, random replacement subsets, and chained
// patches (a patch applied to an already-patched snapshot), the patched
// snapshot must equal a from-scratch Compile of the final model list —
// structurally (rows, columns, idf, Float64bits for Float64bits) and
// through every compiled scorer against the map-based gold standard.
func TestPatchMatchesFullCompile(t *testing.T) {
	src := randx.New(0xbadc0de)
	for trial := 0; trial < 40; trial++ {
		nDBs := 1 + src.Intn(20)
		models := randomModels(src, nDBs, 40)
		snap := Compile(models)

		// Two rounds of patching: the second patches the first's output, so
		// overlay dictionaries and patched-row re-patching get exercised.
		// Replacements draw from a 60-term pool — terms t040..t059 are new
		// to the snapshot and take appended ids.
		for round := 0; round < 2; round++ {
			k := 1 + src.Intn(nDBs)
			patches := make([]ModelPatch, 0, k)
			for _, idx := range src.Perm(nDBs)[:k] {
				repl := randomModels(src, 1, 60)[0]
				patches = append(patches, ModelPatch{DB: idx, Old: models[idx], New: repl})
				models[idx] = repl
			}
			var err error
			snap, err = snap.Patch(patches)
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
		}

		full := Compile(models)
		assertPatchEquivalent(t, trial, snap, full)

		for q := 0; q < 4; q++ {
			qlen := 1 + src.Intn(6)
			query := make([]string, qlen)
			for i := range query {
				if src.Intn(8) == 0 {
					query[i] = "unknown-term"
				} else {
					query[i] = fmt.Sprintf("t%03d", src.Intn(60))
				}
			}
			ids := snap.AppendIDs(nil, query)
			scores := make([]float64, nDBs)
			for _, alg := range compiledAlgorithms() {
				want := alg.Scores(query, models)
				if !snap.ScoreInto(alg, ids, scores) {
					t.Fatalf("ScoreInto rejected %s", alg.Name())
				}
				for i := range want {
					if math.Float64bits(scores[i]) != math.Float64bits(want[i]) {
						t.Fatalf("trial %d %s: db %d patched score %v != map score %v (query %v)",
							trial, alg.Name(), i, scores[i], want[i], query)
					}
				}
			}
		}
	}
}

// TestPatchLeavesReceiverUntouched pins immutability: a snapshot still
// serving queries must not observe a sibling's patch.
func TestPatchLeavesReceiverUntouched(t *testing.T) {
	models := threeDBs()
	base := Compile(models)
	query := []string{"apple", "stock"}
	before := base.Rank(CORI{}, query)

	repl := langmodel.New()
	repl.SetDocs(7)
	repl.AddTerm("apple", langmodel.TermStats{DF: 3, CTF: 9})
	repl.AddTerm("zebra", langmodel.TermStats{DF: 1, CTF: 1})
	if _, err := base.Patch([]ModelPatch{{DB: 0, Old: models[0], New: repl}}); err != nil {
		t.Fatal(err)
	}

	after := base.Rank(CORI{}, query)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("patch mutated its receiver: %+v -> %+v", before, after)
		}
	}
	if _, ok := base.ID("zebra"); ok {
		t.Fatal("patch leaked a new term into its receiver's dictionary")
	}
}

// TestPatchRejectsBadArguments covers the caller-mistake surface: out of
// range indices, nil models, duplicate targets, and an Old model the
// snapshot was not compiled from.
func TestPatchRejectsBadArguments(t *testing.T) {
	models := threeDBs()
	c := Compile(models)
	ok := langmodel.New()
	ok.SetDocs(1)
	ok.AddTerm("apple", langmodel.TermStats{DF: 1, CTF: 1})

	cases := []struct {
		name    string
		patches []ModelPatch
	}{
		{"negative index", []ModelPatch{{DB: -1, Old: models[0], New: ok}}},
		{"index past end", []ModelPatch{{DB: 3, Old: models[0], New: ok}}},
		{"nil old", []ModelPatch{{DB: 0, Old: nil, New: ok}}},
		{"nil new", []ModelPatch{{DB: 0, Old: models[0], New: nil}}},
		{"duplicate db", []ModelPatch{{DB: 0, Old: models[0], New: ok}, {DB: 0, Old: models[0], New: ok}}},
	}
	for _, tc := range cases {
		if _, err := c.Patch(tc.patches); err == nil {
			t.Errorf("%s: Patch accepted it", tc.name)
		}
	}

	// Old claims a term the snapshot never interned: the patch cannot know
	// which row to edit and must refuse rather than silently diverge.
	stranger := langmodel.New()
	stranger.SetDocs(1)
	stranger.AddTerm("never-compiled", langmodel.TermStats{DF: 1, CTF: 1})
	if _, err := c.Patch([]ModelPatch{{DB: 0, Old: stranger, New: ok}}); err == nil {
		t.Error("Patch accepted an Old model foreign to the snapshot")
	}
}

// TestPatchEmptyPatchList: a no-op patch must still be a valid, equivalent
// snapshot (it re-sums avgCW, which must land on the identical float64).
func TestPatchEmptyPatchList(t *testing.T) {
	models := threeDBs()
	c := Compile(models)
	p, err := c.Patch(nil)
	if err != nil {
		t.Fatal(err)
	}
	assertPatchEquivalent(t, 0, p, c)
}
