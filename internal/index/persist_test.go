package index

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/corpus"
)

func TestIndexRoundTrip(t *testing.T) {
	orig := Build([]corpus.Document{
		{ID: 0, Title: "one", Text: "the running dogs ran"},
		{ID: 1, Title: "two", Text: "dogs and cats living together"},
		{ID: 2, Title: "three", Text: "running 42 marathons"},
	}, analysis.Database(), BM25)

	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.NumDocs() != orig.NumDocs() || got.VocabSize() != orig.VocabSize() ||
		got.TotalTerms() != orig.TotalTerms() {
		t.Fatalf("shape mismatch: %d/%d docs, %d/%d vocab",
			got.NumDocs(), orig.NumDocs(), got.VocabSize(), orig.VocabSize())
	}
	// Language models identical.
	if !got.LanguageModel().Equal(orig.LanguageModel()) {
		t.Error("language models differ after round trip")
	}
	// Searches identical — including the analyzer (stemming + stopwords).
	for _, q := range []string{"running", "dogs", "the", "cats marathons", "zzz"} {
		a, err := orig.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %q: %v vs %v", q, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %q: %v vs %v", q, a, b)
			}
		}
	}
	// Documents fetchable.
	d, err := got.Fetch(1)
	if err != nil || !strings.Contains(d.Text, "cats") {
		t.Errorf("fetch after load: %+v, %v", d, err)
	}
}

func TestIndexSaveLoadFile(t *testing.T) {
	orig := Build([]corpus.Document{{ID: 0, Text: "persist me"}}, analysis.Raw(), InQuery)
	path := filepath.Join(t.TempDir(), "db.index")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := got.Search("persist", 1)
	if err != nil || len(ids) != 1 {
		t.Errorf("loaded index search: %v, %v", ids, err)
	}
}

func TestIndexLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestIndexReadFromGarbage(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestIndexRoundTripPreservesAnalyzer(t *testing.T) {
	// A custom analyzer (no stemming, custom stoplist) must survive.
	an := analysis.Analyzer{
		Stoplist:    analysis.NewStoplist([]string{"klaatu"}),
		MinLength:   2,
		DropNumbers: true,
	}
	orig := Build([]corpus.Document{{ID: 0, Text: "klaatu barada nikto 99"}}, an, InQuery)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := got.Search("klaatu", 5); len(hits) != 0 {
		t.Error("custom stopword not honored after load")
	}
	if hits, _ := got.Search("barada", 5); len(hits) != 1 {
		t.Error("content term lost after load")
	}
}

func TestIndexRoundTripAddAfterLoad(t *testing.T) {
	orig := Build([]corpus.Document{{ID: 0, Text: "first doc"}}, analysis.Raw(), InQuery)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got.Add(corpus.Document{ID: 1, Text: "second doc added later"})
	if got.NumDocs() != 2 {
		t.Errorf("NumDocs = %d after post-load Add", got.NumDocs())
	}
	if hits, _ := got.Search("doc", 5); len(hits) != 2 {
		t.Errorf("post-load Add not searchable: %v", hits)
	}
}

func TestIndexReadFromRejectsBadPostings(t *testing.T) {
	// Encode an index, then corrupt a posting's doc id via the DTO path:
	// simplest is to hand-build an invalid DTO through WriteTo of a valid
	// index and a manual re-encode. Instead, assert the validation exists
	// by constructing the mismatch directly.
	orig := Build([]corpus.Document{{ID: 0, Text: "x"}}, analysis.Raw(), InQuery)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated stream must error.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream decoded")
	}
}

func BenchmarkIndexWriteTo(b *testing.B) {
	docs := corpus.Scaled(corpus.CACM(), 0.2).MustGenerate()
	ix := Build(docs, analysis.Database(), InQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexReadFrom(b *testing.B) {
	docs := corpus.Scaled(corpus.CACM(), 0.2).MustGenerate()
	ix := Build(docs, analysis.Database(), InQuery)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrom(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
