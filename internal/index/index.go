// Package index implements the full-text retrieval substrate: an inverted
// index with ranked top-N search and document fetch. It plays the role the
// INQUERY engine played in the paper — the thing each *database* runs, with
// its own indexing conventions, that the sampler can only reach through
// "run a query, retrieve documents" (§3).
//
// Ranking uses the INQUERY belief function (0.4 + 0.6·T·I) by default, with
// Okapi BM25 as an alternative, so the ranked-result bias that query-based
// sampling must overcome is realistic.
package index

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/langmodel"
)

// Scoring selects the document-ranking function.
type Scoring int

const (
	// InQuery is the belief function used by the paper's retrieval engine:
	// 0.4 + 0.6 · T · I with T = tf/(tf + 0.5 + 1.5·dl/avgdl) and
	// I = log((N + 0.5)/df) / log(N + 1).
	InQuery Scoring = iota
	// BM25 is Okapi BM25 with k1 = 1.2, b = 0.75.
	BM25
)

func (s Scoring) String() string {
	switch s {
	case InQuery:
		return "inquery"
	case BM25:
		return "bm25"
	}
	return "unknown"
}

// posting records one document's term frequency for a term.
type posting struct {
	doc int32
	tf  int32
}

// Index is an inverted index over a set of documents. Build it with Add or
// Build; after that it is safe for concurrent readers. It is not safe to
// Add concurrently with reads.
type Index struct {
	analyzer analysis.Analyzer
	scoring  Scoring
	docs     []corpus.Document
	postings map[string][]posting
	ctf      map[string]int64
	docLens  []int32
	totalLen int64
}

// New returns an empty index that analyzes documents with an and ranks
// results with the given scoring function.
func New(an analysis.Analyzer, scoring Scoring) *Index {
	return &Index{
		analyzer: an,
		scoring:  scoring,
		postings: make(map[string][]posting),
		ctf:      make(map[string]int64),
	}
}

// Build indexes all documents with the given analyzer.
func Build(docs []corpus.Document, an analysis.Analyzer, scoring Scoring) *Index {
	ix := New(an, scoring)
	for _, d := range docs {
		ix.Add(d)
	}
	return ix
}

// Add indexes one document. Internal document ids are assigned sequentially
// in insertion order and are the ids Search returns and Fetch accepts.
func (ix *Index) Add(doc corpus.Document) {
	id := int32(len(ix.docs))
	ix.docs = append(ix.docs, doc)
	tokens := ix.analyzer.Tokens(doc.Text)
	tf := make(map[string]int32, len(tokens))
	for _, t := range tokens {
		tf[t]++
		ix.ctf[t]++
	}
	for t, n := range tf {
		ix.postings[t] = append(ix.postings[t], posting{doc: id, tf: n})
	}
	ix.docLens = append(ix.docLens, int32(len(tokens)))
	ix.totalLen += int64(len(tokens))
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.docs) }

// VocabSize returns the number of distinct index terms.
func (ix *Index) VocabSize() int { return len(ix.postings) }

// TotalTerms returns the total number of term occurrences indexed.
func (ix *Index) TotalTerms() int64 { return ix.totalLen }

// DF returns the document frequency of an index term (0 if absent). The
// term must already be in the index's own vocabulary (i.e. analyzed).
func (ix *Index) DF(term string) int { return len(ix.postings[term]) }

// CTF returns the collection term frequency of an index term.
func (ix *Index) CTF(term string) int64 { return ix.ctf[term] }

// Analyzer returns the indexing pipeline, so experiments can normalize
// learned vocabularies to this database's conventions (§4.1).
func (ix *Index) Analyzer() analysis.Analyzer { return ix.analyzer }

// Hit is one ranked search result.
type Hit struct {
	Doc   int
	Score float64
}

// Search runs a free-text query and returns the ids of the top n documents
// by score, best first. It implements core.Database. A query whose terms
// are all unknown returns no hits — exactly the "failed query" case that
// inflates Table 3's query counts.
func (ix *Index) Search(query string, n int) ([]int, error) {
	hits, err := ix.SearchScored(query, n)
	if err != nil || len(hits) == 0 {
		return nil, err
	}
	ids := make([]int, len(hits))
	for i, h := range hits {
		ids[i] = h.Doc
	}
	return ids, nil
}

// searchScratch holds the per-query working memory of SearchScored — token
// list, dense score accumulator, and candidate hits — recycled through a
// pool so the serving hot path allocates only the result it returns.
//
// The accumulator uses generation marks instead of clearing: scores[doc] is
// valid only when mark[doc] equals the scratch's current generation, so
// "resetting" between queries is a single counter increment rather than an
// O(docs) zeroing pass.
type searchScratch struct {
	terms   []string
	scores  []float64
	mark    []uint32
	gen     uint32
	touched []int32
	hits    []Hit
}

var searchScratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// reset prepares the scratch for an index with nDocs documents.
func (s *searchScratch) reset(nDocs int) {
	if cap(s.scores) < nDocs {
		//lint:ignore allocfree grow-once per pooled scratch; amortized to zero across queries once the accumulator covers the corpus
		s.scores = make([]float64, nDocs)
		//lint:ignore allocfree grow-once per pooled scratch; amortized to zero across queries once the accumulator covers the corpus
		s.mark = make([]uint32, nDocs)
		s.gen = 0
	} else {
		s.scores = s.scores[:nDocs]
		s.mark = s.mark[:nDocs]
	}
	s.gen++
	if s.gen == 0 {
		// Generation counter wrapped: stale marks could collide, so pay the
		// one-time clear (once per 2^32 queries) over the full capacity.
		m := s.mark[:cap(s.mark)]
		for i := range m {
			m[i] = 0
		}
		s.gen = 1
	}
	s.terms = s.terms[:0]
	s.touched = s.touched[:0]
	s.hits = s.hits[:0]
}

// SearchScored is Search with the ranking scores included. Ties break by
// ascending document id so results are deterministic.
//
// Scoring accumulates into a dense pooled array keyed by document id — no
// per-query map, no per-posting hashing — and topN is the single sort site
// for every n. Per-document score accumulation stays in query-term order
// (first touch stores, later touches add, and x = 0 + x exactly), so the
// float64 results are bit-identical to the previous map-based accumulator.
//
//lint:hotpath
func (ix *Index) SearchScored(query string, n int) ([]Hit, error) {
	if n <= 0 {
		return nil, nil
	}
	scr := searchScratchPool.Get().(*searchScratch)
	defer searchScratchPool.Put(scr)
	scr.reset(len(ix.docs))

	scr.terms = ix.analyzer.AppendTokens(scr.terms, query)
	if len(scr.terms) == 0 {
		return nil, nil
	}
	avgdl := ix.avgDocLen()
	for _, t := range scr.terms {
		plist, ok := ix.postings[t]
		if !ok {
			continue
		}
		df := len(plist)
		for _, p := range plist {
			s := ix.termScore(float64(p.tf), float64(ix.docLens[p.doc]), df, avgdl)
			if scr.mark[p.doc] != scr.gen {
				scr.mark[p.doc] = scr.gen
				scr.scores[p.doc] = s
				scr.touched = append(scr.touched, p.doc)
			} else {
				scr.scores[p.doc] += s
			}
		}
	}
	if len(scr.touched) == 0 {
		return nil, nil
	}
	for _, doc := range scr.touched {
		scr.hits = append(scr.hits, Hit{Doc: int(doc), Score: scr.scores[doc]})
	}
	return topN(scr.hits, n), nil
}

// betterHit orders hits best-first: higher score, ties by ascending doc.
func betterHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// topN selects the n best hits with a bounded min-heap (the worst kept
// hit sits at the root), then sorts just those n. Ordering is identical
// to a full sort: betterHit is a total order (unique doc ids break score
// ties), so the heap keeps exactly the hits a full sort would return. When
// n covers all hits the heap degenerates to an insert-everything pass
// followed by the same sort, so there is a single sort site for every n.
// The returned slice is freshly allocated; hits may be caller-recycled.
func topN(hits []Hit, n int) []Hit {
	if n > len(hits) {
		n = len(hits)
	}
	//lint:ignore allocfree the returned top-n slice is the query's result — the one allocation SearchScored's contract permits — and n bounds it
	heap := make([]Hit, 0, n)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && betterHit(heap[worst], heap[l]) {
				worst = l
			}
			if r < len(heap) && betterHit(heap[worst], heap[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	for _, h := range hits {
		if len(heap) < n {
			//lint:ignore allocfree heap is presized to n and only appended to while len < n; this append never grows it
			heap = append(heap, h)
			// Sift up.
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !betterHit(heap[parent], heap[i]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
			continue
		}
		if betterHit(h, heap[0]) {
			heap[0] = h
			siftDown(0)
		}
	}
	// slices.SortFunc rather than sort.Slice: the value comparator does not
	// capture heap, so sorting boxes nothing (sort.Slice converts the slice
	// to an interface and allocates the closure). betterHit is a total order
	// (doc ids are unique), so the unstable sort is deterministic.
	slices.SortFunc(heap, func(a, b Hit) int {
		if betterHit(a, b) {
			return -1
		}
		if betterHit(b, a) {
			return 1
		}
		return 0
	})
	return heap
}

func (ix *Index) avgDocLen() float64 {
	if len(ix.docs) == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(len(ix.docs))
}

func (ix *Index) termScore(tf, dl float64, df int, avgdl float64) float64 {
	n := float64(len(ix.docs))
	switch ix.scoring {
	case BM25:
		const k1, b = 1.2, 0.75
		idf := logf((n - float64(df) + 0.5) / (float64(df) + 0.5))
		if idf < 0 {
			idf = 0
		}
		denom := tf + k1*(1-b+b*dl/avgdl)
		return idf * tf * (k1 + 1) / denom
	default: // InQuery
		t := tf / (tf + 0.5 + 1.5*dl/avgdl)
		i := logf((n+0.5)/float64(df)) / logf(n+1)
		return 0.4 + 0.6*t*i
	}
}

func logf(x float64) float64 { return math.Log(x) }

// TotalHits returns the number of documents matching the query (documents
// containing at least one query term). Real search services report this
// figure alongside their top results; the sample–resample size estimator
// (sizeest package) depends on it.
func (ix *Index) TotalHits(query string) (int, error) {
	terms := ix.analyzer.Tokens(query)
	if len(terms) == 0 {
		return 0, nil
	}
	if len(terms) == 1 {
		return len(ix.postings[terms[0]]), nil
	}
	docs := make(map[int32]struct{})
	for _, t := range terms {
		for _, p := range ix.postings[t] {
			docs[p.doc] = struct{}{}
		}
	}
	return len(docs), nil
}

// Fetch returns the document with the given internal id.
func (ix *Index) Fetch(id int) (corpus.Document, error) {
	if id < 0 || id >= len(ix.docs) {
		return corpus.Document{}, fmt.Errorf("index: no document with id %d", id)
	}
	return ix.docs[id], nil
}

// LanguageModel builds the *actual* language model of this database: df and
// ctf for every index term, under the database's own analyzer. This is what
// a fully cooperative provider would export, and the ground truth the
// experiments compare learned models against.
// Terms are inserted in sorted order, not map-iteration order: the model's
// positional term order feeds the sampler's query selector, so building the
// same index twice must yield models with identical draws.
func (ix *Index) LanguageModel() *langmodel.Model {
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	m := langmodel.New()
	for _, t := range terms {
		m.AddTerm(t, langmodel.TermStats{DF: len(ix.postings[t]), CTF: ix.ctf[t]})
	}
	m.SetDocs(len(ix.docs))
	return m
}
